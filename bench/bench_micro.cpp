// Micro-benchmarks (google-benchmark): throughput of the substrates — packed
// gate-level simulation, fault-injection batches, feature extraction, and
// the ML kernels (k-NN predict, SVR fit, linear fit) at workload scale.

#include <benchmark/benchmark.h>

#include <cmath>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "fault/campaign.hpp"
#include "features/extractor.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/svr.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace {

using namespace ffr;

struct MicroContext {
  circuits::MacCore mac;
  circuits::MacTestbench bench;
  sim::GoldenResult golden;
  linalg::Matrix x;
  linalg::Vector y;
};

const MicroContext& micro_context() {
  static const MicroContext ctx = [] {
    MicroContext c;
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 4;
    mc.rx_depth_log2 = 4;
    c.mac = circuits::build_mac_core(mc);
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 5;
    c.bench = circuits::build_mac_testbench(c.mac, tbc);
    c.golden = sim::run_golden(c.mac.netlist, c.bench.tb);
    // Synthetic regression problem at campaign scale.
    util::Rng rng(1);
    const std::size_t n = 500;
    const std::size_t d = 25;
    c.x = linalg::Matrix(n, d);
    c.y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < d; ++j) c.x(i, j) = rng.normal();
      c.y[i] = std::tanh(c.x(i, 0)) + 0.2 * c.x(i, 1) * c.x(i, 2);
    }
    return c;
  }();
  return ctx;
}

void BM_PackedSimGoldenRun(benchmark::State& state) {
  const auto& ctx = micro_context();
  for (auto _ : state) {
    auto result = sim::run_golden(ctx.mac.netlist, ctx.bench.tb);
    benchmark::DoNotOptimize(result.frames.size());
  }
  const double cells = static_cast<double>(ctx.mac.netlist.num_cells());
  const double cycles = static_cast<double>(ctx.bench.tb.stimulus.num_cycles());
  state.SetItemsProcessed(static_cast<std::int64_t>(
      cells * cycles * static_cast<double>(state.iterations())));
  state.counters["lane_evals/s"] = benchmark::Counter(
      cells * cycles * 64.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PackedSimGoldenRun)->Unit(benchmark::kMillisecond);

void BM_FaultBatch64Lanes(benchmark::State& state) {
  const auto& ctx = micro_context();
  const auto ffs = ctx.mac.netlist.flip_flops();
  std::vector<sim::InjectionEvent> events;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    events.push_back({ffs[lane % ffs.size()],
                      static_cast<std::uint32_t>(12 + lane),
                      sim::Lanes{1} << lane});
  }
  for (auto _ : state) {
    auto result = sim::run_testbench(ctx.mac.netlist, ctx.bench.tb, events);
    benchmark::DoNotOptimize(result.lane_frames[0].size());
  }
  state.counters["injections/s"] = benchmark::Counter(
      64.0 * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultBatch64Lanes)->Unit(benchmark::kMillisecond);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& ctx = micro_context();
  for (auto _ : state) {
    auto fm = features::extract_features(ctx.mac.netlist, ctx.golden.activity);
    benchmark::DoNotOptimize(fm.num_ffs());
  }
  state.counters["ffs/s"] = benchmark::Counter(
      static_cast<double>(ctx.mac.netlist.num_flip_flops()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMillisecond);

void BM_LinearFit(benchmark::State& state) {
  const auto& ctx = micro_context();
  for (auto _ : state) {
    ml::LinearLeastSquares model;
    model.fit(ctx.x, ctx.y);
    benchmark::DoNotOptimize(model.intercept());
  }
}
BENCHMARK(BM_LinearFit)->Unit(benchmark::kMillisecond);

void BM_KnnPredict(benchmark::State& state) {
  const auto& ctx = micro_context();
  ml::KnnRegressor model(3, 1.0, ml::KnnWeights::kDistance);
  model.fit(ctx.x, ctx.y);
  for (auto _ : state) {
    auto pred = model.predict(ctx.x);
    benchmark::DoNotOptimize(pred[0]);
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(ctx.x.rows()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KnnPredict)->Unit(benchmark::kMillisecond);

void BM_SvrFit(benchmark::State& state) {
  const auto& ctx = micro_context();
  ml::SvrConfig config;
  config.c = 3.5;
  config.gamma = 0.055;
  config.epsilon = 0.025;
  for (auto _ : state) {
    ml::SvrRegressor model(config);
    model.fit(ctx.x, ctx.y);
    benchmark::DoNotOptimize(model.num_support_vectors());
  }
}
BENCHMARK(BM_SvrFit)->Unit(benchmark::kMillisecond);

void BM_NetlistBuild(benchmark::State& state) {
  for (auto _ : state) {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 4;
    mc.rx_depth_log2 = 4;
    auto mac = circuits::build_mac_core(mc);
    benchmark::DoNotOptimize(mac.netlist.num_cells());
  }
}
BENCHMARK(BM_NetlistBuild)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
