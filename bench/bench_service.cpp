// Repeated-request benchmark for the service layer: the content-addressed
// engine registry must make the second identical campaign request skip the
// golden-run/engine build entirely (cache hit counter >= 1), dropping its
// wall time to the campaign alone — a small fraction of the cold request
// for realistic "short campaign on a big design" service traffic. Also
// measures predict-job serving throughput: after the first request on a
// design, predictions are pure feature-extraction + model application (no
// simulation), and feature-matrix predictions never construct an engine at
// all. Emits BENCH_service.json.
//
// The campaign scenario is service-shaped: a long workload trace whose
// requests probe the drain phase (the last 512 cycles), so checkpointed
// replay starts late and the golden prefix — the part the registry caches —
// dominates the cold request.
//
// Environment knobs:
//   FFR_SERVICE_FRAMES       workload frames in the testbench (default 80)
//   FFR_SERVICE_REQUEST_FFS  flip-flops per campaign request (default 8)
//   FFR_SERVICE_INJECTIONS   injections per flip-flop (default 16)
//   FFR_SERVICE_FF_OFFSET    first flip-flop of the request subset (default 0)
//   FFR_SERVICE_PREDICTS     predict jobs in the serving burst (default 100)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "core/transfer_flow.hpp"
#include "features/extractor.hpp"
#include "service/job_queue.hpp"
#include "sim/runner.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<std::size_t>(std::atoll(value)) : fallback;
}

struct Row {
  std::string phase;
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t engine_builds = 0;
};

}  // namespace

int main() {
  using namespace ffr;

  const std::size_t request_ffs = env_size("FFR_SERVICE_REQUEST_FFS", 8);
  const std::size_t num_predicts = env_size("FFR_SERVICE_PREDICTS", 100);

  const circuits::MacCore mac = circuits::build_mac_core();
  circuits::MacTestbenchConfig tb_config;
  tb_config.num_frames = env_size("FFR_SERVICE_FRAMES", 80);
  circuits::MacTestbench bench = circuits::build_mac_testbench(mac, tb_config);
  // Service-shaped traffic: requests probe the drain phase at the end of a
  // long workload, so every request shares the expensive golden prefix (the
  // exact thing the registry caches) and checkpointed replay starts late.
  const std::size_t trace = bench.tb.stimulus.num_cycles();
  bench.tb.inject_begin = trace > 512 ? trace - 512 : 0;
  std::printf("circuit  : %s\n", mac.netlist.summary().c_str());
  std::printf("workload : %zu cycles, inject window [%zu, %zu)\n",
              trace, bench.tb.inject_begin, bench.tb.inject_end);

  // Persisted model for the predict phases (trained here for hermeticity).
  core::TransferConfig train_config;
  train_config.model = "knn_paper";
  train_config.injections_per_ff = 32;
  const std::vector<core::TransferCircuit> train_set = {
      {&mac.netlist, &bench.tb}};
  const std::filesystem::path model_path =
      std::filesystem::temp_directory_path() / "ffr_bench_service_model.txt";
  core::train_transfer_model(train_set, train_config).save(model_path);

  // A service-shaped campaign request: a targeted subset of flip-flops, not
  // the whole-circuit sweep (which would drown the golden run it shares).
  fault::CampaignConfig request;
  request.injections_per_ff = env_size("FFR_SERVICE_INJECTIONS", 16);
  // A <=64-injection request fits one scalar pass; the wide blocks would
  // sweep 4-8x the word width for the same handful of fault lanes.
  request.lane_width = sim::LaneWidth::k64;
  const std::size_t ff_offset = env_size("FFR_SERVICE_FF_OFFSET", 0);
  for (std::size_t i = 0; i < request_ffs && i < mac.netlist.num_flip_flops(); ++i) {
    request.ff_subset.push_back(
        (ff_offset + i) % mac.netlist.num_flip_flops());
  }

  service::FfrService service;
  std::vector<Row> rows;
  util::Stopwatch stopwatch;

  // Phase 1: cold campaign request — pays stimulus compile + golden run +
  // checkpoints + the campaign itself.
  stopwatch.reset();
  (void)service.wait(service.submit_campaign(mac.netlist, bench.tb, request));
  rows.push_back({"campaign_cold", 1, stopwatch.elapsed_seconds(),
                  service.metrics().snapshot().cache_hits,
                  service.metrics().snapshot().engine_builds});

  // Phase 2: identical request — must hit the cache and skip the build.
  stopwatch.reset();
  (void)service.wait(service.submit_campaign(mac.netlist, bench.tb, request));
  rows.push_back({"campaign_warm", 1, stopwatch.elapsed_seconds(),
                  service.metrics().snapshot().cache_hits,
                  service.metrics().snapshot().engine_builds});

  // Phase 3: predict serving off the cached golden run.
  stopwatch.reset();
  for (std::size_t i = 0; i < num_predicts; ++i) {
    (void)service.submit_predict(model_path, mac.netlist, bench.tb);
  }
  service.wait_all();
  rows.push_back({"predict_cached", num_predicts, stopwatch.elapsed_seconds(),
                  service.metrics().snapshot().cache_hits,
                  service.metrics().snapshot().engine_builds});

  // Phase 4: feature-matrix predicts — no engine, no simulator, ever.
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  const features::FeatureMatrix features =
      features::extract_features(mac.netlist, golden.activity);
  service::FfrService model_only;
  stopwatch.reset();
  for (std::size_t i = 0; i < num_predicts; ++i) {
    (void)model_only.submit_predict(model_path, features);
  }
  model_only.wait_all();
  rows.push_back({"predict_features", num_predicts, stopwatch.elapsed_seconds(),
                  model_only.metrics().snapshot().cache_hits,
                  model_only.metrics().snapshot().engine_builds});

  util::TablePrinter table({"phase", "jobs", "wall ms", "ms/job", "cache hits",
                            "engine builds"});
  for (const Row& row : rows) {
    table.add_row({row.phase, std::to_string(row.jobs),
                   util::TablePrinter::format(row.wall_seconds * 1e3, 2),
                   util::TablePrinter::format(
                       row.wall_seconds * 1e3 / static_cast<double>(row.jobs), 3),
                   std::to_string(row.cache_hits),
                   std::to_string(row.engine_builds)});
  }
  table.print();

  const double cold = rows[0].wall_seconds;
  const double warm = rows[1].wall_seconds;
  std::printf("\nwarm/cold request ratio : %.3f (build + golden skipped)\n",
              warm / cold);
  if (rows[1].cache_hits < 1 || rows[1].engine_builds != 1) {
    std::fprintf(stderr, "FAIL: second identical request did not hit the cache\n");
    return 1;
  }
  if (rows[3].engine_builds != 0) {
    std::fprintf(stderr, "FAIL: feature-matrix predicts built an engine\n");
    return 1;
  }

  std::FILE* f = std::fopen("BENCH_service.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f,
                   "  {\"phase\": \"%s\", \"jobs\": %zu, \"wall_seconds\": "
                   "%.6f, \"cache_hits\": %llu, \"engine_builds\": %llu}%s\n",
                   row.phase.c_str(), row.jobs, row.wall_seconds,
                   static_cast<unsigned long long>(row.cache_hits),
                   static_cast<unsigned long long>(row.engine_builds),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote BENCH_service.json\n");
  }
  std::filesystem::remove(model_path);
  return 0;
}
