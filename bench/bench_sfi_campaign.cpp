// Reproduces §IV-A: the flat statistical fault injection campaign — per-
// flip-flop FDR from N random-time injections, with the failure-class
// breakdown, the FDR distribution histogram, per-block FDR summary, and
// simulation throughput (the cost the ML methodology amortizes) — then
// benchmarks the batched CampaignEngine against the flat campaign on the
// paper-scale relay circuit (≥947 FFs) and sweeps the thread / batch-size
// scheduling knobs.
//
// Environment knobs (besides bench_common's):
//   FFR_SWEEP_INJECTIONS  injections per FF for the scheduling sweep
//                         (default 34; the flat-vs-batched headline always
//                         runs at the paper's 170)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "bench/bench_common.hpp"
#include "circuits/relay_core.hpp"
#include "fault/engine.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();

  std::printf("== Flat statistical fault injection campaign (paper SS IV-A) ==\n");
  std::printf("paper: 1054 FFs x 170 injections = 179,180 simulations\n");
  const std::size_t passes_per_ff =
      (ctx.injections_per_ff + sim::kNumLanes - 1) / sim::kNumLanes;
  std::printf("ours : %zu FFs x %zu injections = %llu simulations "
              "(%zu packed 64-lane passes)\n\n",
              ctx.num_ffs(), ctx.injections_per_ff,
              static_cast<unsigned long long>(ctx.campaign.total_injections),
              ctx.num_ffs() * passes_per_ff);

  // Failure-class breakdown over all injections.
  fault::ClassCounts total;
  for (const auto& ff : ctx.campaign.per_ff) {
    for (std::size_t c = 0; c < fault::kNumFailureClasses; ++c) {
      total.counts[c] += ff.classes.counts[c];
    }
  }
  std::printf("failure classification of all %llu injections:\n",
              static_cast<unsigned long long>(total.total()));
  util::TablePrinter classes({"Class", "Count", "Share"});
  for (std::size_t c = 0; c < fault::kNumFailureClasses; ++c) {
    classes.add_row(
        {std::string(fault::to_string(static_cast<fault::FailureClass>(c))),
         std::to_string(total.counts[c]),
         util::TablePrinter::format(100.0 * static_cast<double>(total.counts[c]) /
                                        static_cast<double>(total.total()),
                                    1) +
             "%"});
  }
  classes.print();

  // FDR distribution histogram.
  std::printf("\nFDR distribution over flip-flops (mean %.3f):\n",
              ctx.campaign.mean_fdr());
  int hist[10] = {};
  for (const double v : ctx.fdr) {
    int bin = static_cast<int>(v * 10.0);
    if (bin > 9) bin = 9;
    ++hist[bin];
  }
  int peak = 1;
  for (const int h : hist) peak = std::max(peak, h);
  for (int b = 0; b < 10; ++b) {
    const int bar = 50 * hist[b] / peak;
    std::printf("[%.1f,%.1f) %4d |%s\n", b / 10.0, (b + 1) / 10.0, hist[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  // Per-block summary: group flip-flops by register-bus name prefix.
  std::printf("\nper-block mean FDR (register-bus groups):\n");
  std::map<std::string, std::pair<double, int>> blocks;
  const auto ffs = ctx.mac.netlist.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    std::string name = ctx.mac.netlist.cell(ffs[i]).name;
    // Strip "[idx]" and trailing digits to get a block label.
    if (const auto bracket = name.find('['); bracket != std::string::npos) {
      name.resize(bracket);
    }
    while (!name.empty() && std::isdigit(static_cast<unsigned char>(name.back()))) {
      name.pop_back();
    }
    auto& [sum, count] = blocks[name];
    sum += ctx.fdr[i];
    ++count;
  }
  util::TablePrinter block_table({"Block", "#FFs", "mean FDR"});
  for (const auto& [name, agg] : blocks) {
    block_table.add_row({name, std::to_string(agg.second),
                         util::TablePrinter::format(agg.first / agg.second, 3)});
  }
  block_table.print();

  const auto csv = bench::write_series_csv(ctx, "sfi_fdr_per_ff.csv",
                                           {{"fdr", ctx.fdr}});
  std::printf("\nper-FF FDR series -> %s\n", csv.string().c_str());

  // ---- paper-scale campaign: flat vs batched engine ----------------------------

  std::printf("\n== Paper-scale campaign: relay_core (flat vs batched engine) ==\n");
  const circuits::RelayCore relay = circuits::build_relay_core();
  const circuits::RelayTestbench relay_tb = circuits::build_relay_testbench(relay);
  std::printf("# %s\n", relay.netlist.summary().c_str());

  util::Stopwatch stopwatch;
  fault::CampaignEngine engine(relay.netlist, relay_tb.tb);
  std::printf("# engine precompute (compiled stimulus + golden run): %.2fs\n",
              stopwatch.elapsed_seconds());

  fault::CampaignConfig full;
  full.injections_per_ff = ctx.injections_per_ff;
  const fault::CampaignResult flat =
      fault::run_campaign(relay.netlist, relay_tb.tb, engine.golden(), full);
  const fault::CampaignResult batched = engine.run(full);
  util::TablePrinter headline(
      {"campaign", "injections", "sim passes", "wall[s]", "mean FDR"});
  for (const auto& [name, result] :
       {std::pair<const char*, const fault::CampaignResult&>{"flat", flat},
        {"batched", batched}}) {
    headline.add_row({name, std::to_string(result.total_injections),
                      std::to_string(result.total_sim_passes),
                      util::TablePrinter::format(result.wall_seconds, 2),
                      util::TablePrinter::format(result.mean_fdr(), 4)});
  }
  headline.print();
  std::printf("pass reduction: %.1f%% fewer 64-lane passes (%llu -> %llu), "
              "FDR vectors %s\n",
              100.0 *
                  (1.0 - static_cast<double>(batched.total_sim_passes) /
                             static_cast<double>(flat.total_sim_passes)),
              static_cast<unsigned long long>(flat.total_sim_passes),
              static_cast<unsigned long long>(batched.total_sim_passes),
              flat.fdr_vector() == batched.fdr_vector() ? "bit-identical"
                                                        : "DIVERGED (BUG)");

  // ---- scheduling sweep: threads x batch size ----------------------------------

  std::size_t sweep_injections = 34;
  if (const char* env = std::getenv("FFR_SWEEP_INJECTIONS")) {
    sweep_injections = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const std::size_t hardware = std::thread::hardware_concurrency();
  std::printf("\nscheduling sweep (%zu injections/FF, hardware = %zu threads; "
              "pure scheduling knobs — results are identical in every cell):\n",
              sweep_injections, hardware);
  fault::CampaignConfig sweep;
  sweep.injections_per_ff = sweep_injections;
  std::vector<std::size_t> thread_counts = {1};
  if (hardware >= 2) thread_counts.push_back(2);
  if (hardware > 2) thread_counts.push_back(hardware);
  util::TablePrinter sweep_table({"threads", "batch=1", "batch=4", "batch=16",
                                  "batch=auto"});
  for (const std::size_t threads : thread_counts) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}, std::size_t{0}}) {
      sweep.num_threads = threads;
      sweep.batch_size = batch;
      const fault::CampaignResult r = engine.run(sweep);
      row.push_back(util::TablePrinter::format(r.wall_seconds, 2) + "s");
    }
    sweep_table.add_row(std::move(row));
  }
  sweep_table.print();
  return 0;
}
