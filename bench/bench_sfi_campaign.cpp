// Reproduces §IV-A: the flat statistical fault injection campaign — per-
// flip-flop FDR from N random-time injections, with the failure-class
// breakdown, the FDR distribution histogram, per-block FDR summary, and
// simulation throughput (the cost the ML methodology amortizes) — then
// benchmarks the CampaignEngine replay modes (full / checkpoint /
// incremental) against the flat campaign on the paper-scale relay circuit
// (≥947 FFs), reports the simulated-cycle and op-evaluation savings, sweeps
// the SIMD lane-block width (64 / 256 / 512 fault lanes per pass) and the
// thread / batch-size scheduling knobs, runs a k-of-N sharded campaign
// (fault/shard.hpp) whose merged partials must stay bit-identical to the
// unsharded incremental run, and emits every measurement as
// machine-readable JSON (BENCH_sfi_campaign.json) so the perf trajectory is
// tracked across PRs. The replay-mode and scheduling rows are pinned to the
// 64-lane scalar path so they stay comparable with earlier PRs; the width
// sweep reports the SIMD speedup on top of the incremental baseline.
//
// Environment knobs (besides bench_common's):
//   FFR_SWEEP_INJECTIONS  injections per FF for the scheduling sweep
//                         (default 34; the flat-vs-batched headline always
//                         runs at the paper's 170)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "circuits/relay_core.hpp"
#include "fault/engine.hpp"
#include "fault/shard.hpp"
#include "service/content_hash.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

namespace {

// One benchmark measurement, serialized to BENCH_sfi_campaign.json.
struct BenchRecord {
  std::string circuit;
  std::string mode;  // "flat" or a fault::ReplayMode name
  std::size_t threads = 0;
  std::size_t batch = 0;
  std::size_t checkpoint_interval = 0;
  std::size_t injections_per_ff = 0;
  ffr::fault::CampaignResult result;
};

/// Compact pass-schedule histogram, widest shape first: "512x2:349;64x1:2"
/// means 349 passes of 2x512-lane blocks plus 2 scalar 64-lane passes.
std::string histogram_string(const ffr::fault::CampaignResult& c) {
  std::string out;
  for (const ffr::fault::PassShapeCount& shape : c.pass_histogram) {
    if (!out.empty()) out += ";";
    out += std::to_string(shape.width) + "x" + std::to_string(shape.blocks) +
           ":" + std::to_string(shape.passes);
  }
  return out;
}

void write_bench_json(const char* path, const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    const ffr::fault::CampaignResult& c = r.result;
    std::fprintf(
        f,
        "  {\"circuit\": \"%s\", \"mode\": \"%s\", \"threads\": %zu, "
        "\"batch\": %zu, \"checkpoint_interval\": %zu, "
        "\"injections_per_ff\": %zu, \"injections\": %llu, \"passes\": %llu, "
        "\"cycles_simulated\": %llu, \"ops_evaluated\": %llu, "
        "\"checkpoint_restores\": %llu, \"lane_width\": %zu, "
        "\"blocks_per_pass\": %zu, \"pass_histogram\": \"%s\", "
        "\"peak_checkpoint_bytes\": %zu, \"checkpoint_bytes_unpacked\": %zu, "
        "\"wall_seconds\": %.6f, \"mean_fdr\": %.9f}%s\n",
        r.circuit.c_str(), r.mode.c_str(), r.threads, r.batch,
        r.checkpoint_interval, r.injections_per_ff,
        static_cast<unsigned long long>(c.total_injections),
        static_cast<unsigned long long>(c.total_sim_passes),
        static_cast<unsigned long long>(c.cycles_simulated),
        static_cast<unsigned long long>(c.ops_evaluated),
        static_cast<unsigned long long>(c.checkpoint_restores),
        c.lanes_per_pass / std::max<std::size_t>(1, c.blocks_per_pass),
        c.blocks_per_pass, histogram_string(c).c_str(), c.checkpoint_bytes,
        c.checkpoint_bytes_unpacked, c.wall_seconds, c.mean_fdr(),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nmachine-readable results -> %s (%zu records)\n", path,
              records.size());
}

/// Campaign warnings are part of the result contract (e.g. a lane_width
/// request wider than the host, a clamped blocks_per_pass) — print them
/// wherever a row lands in the bench output.
void print_warnings(const ffr::fault::CampaignResult& result) {
  for (const std::string& warning : result.warnings) {
    std::printf("# warning: %s\n", warning.c_str());
  }
}

}  // namespace

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();

  std::printf("== Flat statistical fault injection campaign (paper SS IV-A) ==\n");
  std::printf("paper: 1054 FFs x 170 injections = 179,180 simulations\n");
  const std::size_t passes_per_ff =
      (ctx.injections_per_ff + sim::kNumLanes - 1) / sim::kNumLanes;
  std::printf("ours : %zu FFs x %zu injections = %llu simulations "
              "(%zu packed 64-lane passes)\n\n",
              ctx.num_ffs(), ctx.injections_per_ff,
              static_cast<unsigned long long>(ctx.campaign.total_injections),
              ctx.num_ffs() * passes_per_ff);

  // Failure-class breakdown over all injections.
  fault::ClassCounts total;
  for (const auto& ff : ctx.campaign.per_ff) {
    for (std::size_t c = 0; c < fault::kNumFailureClasses; ++c) {
      total.counts[c] += ff.classes.counts[c];
    }
  }
  std::printf("failure classification of all %llu injections:\n",
              static_cast<unsigned long long>(total.total()));
  util::TablePrinter classes({"Class", "Count", "Share"});
  for (std::size_t c = 0; c < fault::kNumFailureClasses; ++c) {
    classes.add_row(
        {std::string(fault::to_string(static_cast<fault::FailureClass>(c))),
         std::to_string(total.counts[c]),
         util::TablePrinter::format(100.0 * static_cast<double>(total.counts[c]) /
                                        static_cast<double>(total.total()),
                                    1) +
             "%"});
  }
  classes.print();

  // FDR distribution histogram.
  std::printf("\nFDR distribution over flip-flops (mean %.3f):\n",
              ctx.campaign.mean_fdr());
  int hist[10] = {};
  for (const double v : ctx.fdr) {
    int bin = static_cast<int>(v * 10.0);
    if (bin > 9) bin = 9;
    ++hist[bin];
  }
  int peak = 1;
  for (const int h : hist) peak = std::max(peak, h);
  for (int b = 0; b < 10; ++b) {
    const int bar = 50 * hist[b] / peak;
    std::printf("[%.1f,%.1f) %4d |%s\n", b / 10.0, (b + 1) / 10.0, hist[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }

  // Per-block summary: group flip-flops by register-bus name prefix.
  std::printf("\nper-block mean FDR (register-bus groups):\n");
  std::map<std::string, std::pair<double, int>> blocks;
  const auto ffs = ctx.mac.netlist.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    std::string name = ctx.mac.netlist.cell(ffs[i]).name;
    // Strip "[idx]" and trailing digits to get a block label.
    if (const auto bracket = name.find('['); bracket != std::string::npos) {
      name.resize(bracket);
    }
    while (!name.empty() && std::isdigit(static_cast<unsigned char>(name.back()))) {
      name.pop_back();
    }
    auto& [sum, count] = blocks[name];
    sum += ctx.fdr[i];
    ++count;
  }
  util::TablePrinter block_table({"Block", "#FFs", "mean FDR"});
  for (const auto& [name, agg] : blocks) {
    block_table.add_row({name, std::to_string(agg.second),
                         util::TablePrinter::format(agg.first / agg.second, 3)});
  }
  block_table.print();

  const auto csv = bench::write_series_csv(ctx, "sfi_fdr_per_ff.csv",
                                           {{"fdr", ctx.fdr}});
  std::printf("\nper-FF FDR series -> %s\n", csv.string().c_str());

  // ---- paper-scale campaign: flat vs engine replay modes -----------------------

  std::printf("\n== Paper-scale campaign: relay_core (flat vs engine modes) ==\n");
  const circuits::RelayCore relay = circuits::build_relay_core();
  const circuits::RelayTestbench relay_tb = circuits::build_relay_testbench(relay);
  std::printf("# %s (%zu-cycle testbench)\n", relay.netlist.summary().c_str(),
              relay_tb.tb.stimulus.num_cycles());

  util::Stopwatch stopwatch;
  fault::CampaignEngine engine(relay.netlist, relay_tb.tb);
  std::printf("# engine precompute (compiled stimulus + golden run + "
              "checkpoints): %.2fs\n",
              stopwatch.elapsed_seconds());

  std::vector<BenchRecord> records;
  fault::CampaignConfig full;
  full.injections_per_ff = ctx.injections_per_ff;
  // The replay-mode comparison is pinned to the scalar 64-lane path so its
  // rows stay comparable with the pre-SIMD baselines; the lane-width sweep
  // below measures the SIMD win separately.
  full.lane_width = sim::LaneWidth::k64;
  const fault::CampaignResult flat =
      fault::run_campaign(relay.netlist, relay_tb.tb, engine.golden(), full);
  records.push_back({"relay_core", "flat", full.num_threads, 0, 0,
                     full.injections_per_ff, flat});

  util::TablePrinter headline({"campaign", "injections", "sim passes",
                               "cycles[M]", "ops[G]", "wall[s]", "mean FDR"});
  const auto add_headline = [&](const char* name,
                                const fault::CampaignResult& result) {
    headline.add_row(
        {name, std::to_string(result.total_injections),
         std::to_string(result.total_sim_passes),
         util::TablePrinter::format(
             static_cast<double>(result.cycles_simulated) * 1e-6, 2),
         util::TablePrinter::format(
             static_cast<double>(result.ops_evaluated) * 1e-9, 2),
         util::TablePrinter::format(result.wall_seconds, 2),
         util::TablePrinter::format(result.mean_fdr(), 4)});
  };
  add_headline("flat", flat);

  std::map<fault::ReplayMode, fault::CampaignResult> by_mode;
  for (const fault::ReplayMode mode :
       {fault::ReplayMode::kFull, fault::ReplayMode::kCheckpoint,
        fault::ReplayMode::kIncremental}) {
    fault::CampaignConfig config = full;
    config.replay_mode = mode;
    const fault::CampaignResult result = engine.run(config);
    print_warnings(result);
    add_headline(fault::to_string(mode), result);
    records.push_back({"relay_core", fault::to_string(mode),
                       config.num_threads, config.batch_size,
                       config.checkpoint_interval, config.injections_per_ff,
                       result});
    by_mode.emplace(mode, result);
  }
  headline.print();

  const fault::CampaignResult& batched = by_mode.at(fault::ReplayMode::kFull);
  const fault::CampaignResult& incremental =
      by_mode.at(fault::ReplayMode::kIncremental);
  bool identical = true;
  for (const auto& [mode, result] : by_mode) {
    identical = identical && flat.fdr_vector() == result.fdr_vector();
  }
  std::printf("pass reduction: %.1f%% fewer 64-lane passes (%llu -> %llu), "
              "FDR vectors %s\n",
              100.0 *
                  (1.0 - static_cast<double>(batched.total_sim_passes) /
                             static_cast<double>(flat.total_sim_passes)),
              static_cast<unsigned long long>(flat.total_sim_passes),
              static_cast<unsigned long long>(batched.total_sim_passes),
              identical ? "bit-identical" : "DIVERGED (BUG)");
  std::printf("incremental vs batched-full (PR 2 baseline): %.2fx wall "
              "(%.2fs -> %.2fs), %.1f%% fewer simulated cycles "
              "(%llu -> %llu), %.1f%% fewer op evaluations (%llu -> %llu), "
              "%llu checkpoint restores\n",
              batched.wall_seconds / incremental.wall_seconds,
              batched.wall_seconds, incremental.wall_seconds,
              100.0 * (1.0 - static_cast<double>(incremental.cycles_simulated) /
                                 static_cast<double>(batched.cycles_simulated)),
              static_cast<unsigned long long>(batched.cycles_simulated),
              static_cast<unsigned long long>(incremental.cycles_simulated),
              100.0 * (1.0 - static_cast<double>(incremental.ops_evaluated) /
                                 static_cast<double>(batched.ops_evaluated)),
              static_cast<unsigned long long>(batched.ops_evaluated),
              static_cast<unsigned long long>(incremental.ops_evaluated),
              static_cast<unsigned long long>(incremental.checkpoint_restores));
  if (incremental.checkpoint_bytes > 0) {
    std::printf("golden checkpoints: %zu bytes bit-packed vs %zu bytes in the "
                "broadcast-word layout (%.1fx smaller)\n",
                incremental.checkpoint_bytes,
                incremental.checkpoint_bytes_unpacked,
                static_cast<double>(incremental.checkpoint_bytes_unpacked) /
                    static_cast<double>(incremental.checkpoint_bytes));
  }

  // ---- SIMD lane-width sweep: 64 / 256 / 512 fault lanes per pass -------------

  std::printf("\nSIMD lane-width sweep (%zu injections/FF, incremental "
              "replay; native width: %s lanes — results are bit-identical "
              "at every width):\n",
              full.injections_per_ff, sim::to_string(sim::native_lane_width()));
  util::TablePrinter width_table({"lanes/pass", "sim passes", "cycles[M]",
                                  "ops[G]", "wall[s]", "vs 64-lane"});
  const auto add_width_row = [&](const fault::CampaignResult& result) {
    width_table.add_row(
        {std::to_string(result.lanes_per_pass),
         std::to_string(result.total_sim_passes),
         util::TablePrinter::format(
             static_cast<double>(result.cycles_simulated) * 1e-6, 2),
         util::TablePrinter::format(
             static_cast<double>(result.ops_evaluated) * 1e-9, 2),
         util::TablePrinter::format(result.wall_seconds, 2),
         util::TablePrinter::format(
             incremental.wall_seconds / result.wall_seconds, 2) +
             "x"});
  };
  // The pinned incremental headline run IS the 64-lane row.
  add_width_row(incremental);
  double best_wide_speedup = 0.0;
  for (const sim::LaneWidth width :
       {sim::LaneWidth::k256, sim::LaneWidth::k512}) {
    fault::CampaignConfig config = full;
    config.lane_width = width;
    // Single-block rows: comparable with the pre-multi-block width sweep.
    config.blocks_per_pass = 1;
    const fault::CampaignResult result = engine.run(config);
    add_width_row(result);
    print_warnings(result);
    records.push_back({"relay_core", fault::to_string(config.replay_mode),
                       config.num_threads, config.batch_size,
                       config.checkpoint_interval, config.injections_per_ff,
                       result});
    if (flat.fdr_vector() != result.fdr_vector()) {
      std::printf("# WIDTH %s DIVERGED FROM FLAT REFERENCE (BUG)\n",
                  sim::to_string(width));
    }
    best_wide_speedup = std::max(
        best_wide_speedup, incremental.wall_seconds / result.wall_seconds);
  }
  width_table.print();
  std::printf("SIMD lane blocks: best wide width = %.2fx wall over the "
              "64-lane incremental baseline\n",
              best_wide_speedup);

  // ---- multi-block sweep: lane blocks per pass at the native width -------------

  std::printf("\nmulti-block sweep (%zu injections/FF, incremental replay, "
              "native width; blocks_per_pass multiplies the per-pass fault "
              "lanes — results are bit-identical at every block count):\n",
              full.injections_per_ff);
  util::TablePrinter block_sweep_table({"blocks", "lanes/pass", "sim passes",
                                        "schedule", "wall[s]", "vs 64-lane"});
  double best_block_speedup = best_wide_speedup;
  for (const std::size_t blocks :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
        std::size_t{0}}) {
    fault::CampaignConfig config = full;
    config.lane_width = sim::LaneWidth::kAuto;
    config.blocks_per_pass = blocks;
    const fault::CampaignResult result = engine.run(config);
    print_warnings(result);
    block_sweep_table.add_row(
        {blocks == 0 ? "auto=" + std::to_string(result.blocks_per_pass)
                     : std::to_string(blocks),
         std::to_string(result.lanes_per_pass),
         std::to_string(result.total_sim_passes), histogram_string(result),
         util::TablePrinter::format(result.wall_seconds, 2),
         util::TablePrinter::format(
             incremental.wall_seconds / result.wall_seconds, 2) +
             "x"});
    records.push_back({"relay_core", fault::to_string(config.replay_mode),
                       config.num_threads, config.batch_size,
                       config.checkpoint_interval, config.injections_per_ff,
                       result});
    if (flat.fdr_vector() != result.fdr_vector()) {
      std::printf("# BLOCKS=%zu DIVERGED FROM FLAT REFERENCE (BUG)\n", blocks);
    }
    best_block_speedup = std::max(
        best_block_speedup, incremental.wall_seconds / result.wall_seconds);
  }
  block_sweep_table.print();
  std::printf("multi-block passes: best shape = %.2fx wall over the 64-lane "
              "incremental baseline\n",
              best_block_speedup);

  // ---- k-of-N sharding: mergeable partials vs the unsharded run ----------------

  constexpr std::size_t kShardCount = 3;
  std::printf("\nk-of-N sharding (%zu shards, %zu injections/FF, incremental "
              "replay, 64-lane pinned; shard k owns the global-schedule "
              "passes with pass %% %zu == k — fault/shard.hpp):\n",
              kShardCount, full.injections_per_ff, kShardCount);
  const std::string relay_hash =
      service::content_hash(relay.netlist, relay_tb.tb).hex();
  fault::CampaignConfig shard_config = full;
  shard_config.replay_mode = fault::ReplayMode::kIncremental;
  std::vector<fault::CampaignPartial> partials;
  util::TablePrinter shard_table(
      {"shard", "injections", "sim passes", "cycles[M]", "wall[s]"});
  for (std::size_t k = 0; k < kShardCount; ++k) {
    shard_config.shard = {k, kShardCount};
    partials.push_back(fault::run_shard(engine, shard_config, relay_hash));
    const fault::CampaignResult& share = partials.back().result;
    print_warnings(share);
    shard_table.add_row(
        {std::to_string(k) + "/" + std::to_string(kShardCount),
         std::to_string(share.total_injections),
         std::to_string(share.total_sim_passes),
         util::TablePrinter::format(
             static_cast<double>(share.cycles_simulated) * 1e-6, 2),
         util::TablePrinter::format(share.wall_seconds, 2)});
    records.push_back({"relay_core",
                       "shard" + std::to_string(k) + "of" +
                           std::to_string(kShardCount),
                       shard_config.num_threads, shard_config.batch_size,
                       shard_config.checkpoint_interval,
                       shard_config.injections_per_ff, share});
  }
  const fault::CampaignResult merged = fault::merge_partials(partials);
  shard_table.add_row(
      {"merged", std::to_string(merged.total_injections),
       std::to_string(merged.total_sim_passes),
       util::TablePrinter::format(
           static_cast<double>(merged.cycles_simulated) * 1e-6, 2),
       util::TablePrinter::format(merged.wall_seconds, 2)});
  shard_table.print();
  const bool shard_identical =
      merged.fdr_vector() == incremental.fdr_vector() &&
      merged.total_sim_passes == incremental.total_sim_passes &&
      merged.cycles_simulated == incremental.cycles_simulated &&
      merged.ops_evaluated == incremental.ops_evaluated;
  std::printf("merged %zu-shard result vs unsharded incremental run: %s "
              "(FDR vector + pass/cycle/op counters)\n",
              kShardCount,
              shard_identical ? "bit-identical" : "DIVERGED (BUG)");
  records.push_back({"relay_core", "sharded-merge", shard_config.num_threads,
                     shard_config.batch_size, shard_config.checkpoint_interval,
                     shard_config.injections_per_ff, merged});

  // ---- scheduling sweep: threads x batch size ----------------------------------

  std::size_t sweep_injections = 34;
  if (const char* env = std::getenv("FFR_SWEEP_INJECTIONS")) {
    sweep_injections = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  const std::size_t hardware = std::thread::hardware_concurrency();
  std::printf("\nscheduling sweep (%zu injections/FF, incremental replay, "
              "hardware = %zu threads; pure scheduling knobs — results are "
              "identical in every cell):\n",
              sweep_injections, hardware);
  fault::CampaignConfig sweep;
  sweep.injections_per_ff = sweep_injections;
  sweep.lane_width = sim::LaneWidth::k64;  // scheduling rows stay PR-comparable
  std::vector<std::size_t> thread_counts = {1};
  if (hardware >= 2) thread_counts.push_back(2);
  if (hardware > 2) thread_counts.push_back(hardware);
  util::TablePrinter sweep_table({"threads", "batch=1", "batch=4", "batch=16",
                                  "batch=auto"});
  for (const std::size_t threads : thread_counts) {
    std::vector<std::string> row = {std::to_string(threads)};
    for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}, std::size_t{0}}) {
      sweep.num_threads = threads;
      sweep.batch_size = batch;
      const fault::CampaignResult r = engine.run(sweep);
      row.push_back(util::TablePrinter::format(r.wall_seconds, 2) + "s");
      records.push_back({"relay_core", fault::to_string(sweep.replay_mode),
                         threads, batch, sweep.checkpoint_interval,
                         sweep.injections_per_ff, r});
    }
    sweep_table.add_row(std::move(row));
  }
  sweep_table.print();

  write_bench_json("BENCH_sfi_campaign.json", records);
  return 0;
}
