// Ablation bench (DESIGN.md): value of the three feature groups the paper
// combines — structural (netlist graph), synthesis attributes, and dynamic
// signal activity — plus a leave-one-feature-out importance sweep for the
// best model. Motivates the paper's future-work note on feature value and
// dimensionality reduction.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "features/feature_set.hpp"
#include "ml/model_zoo.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();
  const auto splits = bench::paper_splits(ctx);
  const auto prototype = ml::make_model("knn_paper");

  const auto evaluate_subset = [&](const std::vector<std::size_t>& cols) {
    const linalg::Matrix x = ctx.features.values.select_cols(cols);
    return ml::cross_validate(*prototype, x, ctx.fdr, splits, 0.5).mean_test.r2;
  };

  std::printf("== Feature-group ablation (k-NN, CV = 10, train = 50%%) ==\n");
  const auto structural = features::structural_feature_indices();
  const auto synthesis = features::synthesis_feature_indices();
  const auto dynamic = features::dynamic_feature_indices();
  auto concat = [](std::vector<std::size_t> a, const std::vector<std::size_t>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };

  util::TablePrinter table({"Feature set", "#features", "R2(test)"});
  const std::pair<const char*, std::vector<std::size_t>> subsets[] = {
      {"structural only", structural},
      {"synthesis only", synthesis},
      {"dynamic only", dynamic},
      {"structural + synthesis", concat(structural, synthesis)},
      {"structural + dynamic", concat(structural, dynamic)},
      {"all (paper)", concat(concat(structural, synthesis), dynamic)},
  };
  for (const auto& [label, cols] : subsets) {
    table.add_row({label, std::to_string(cols.size()),
                   util::TablePrinter::format(evaluate_subset(cols), 3)});
  }
  table.print();

  std::printf("\n== Leave-one-out feature importance (drop in R2 when the "
              "feature is removed) ==\n");
  std::vector<std::size_t> all(features::kNumFeatures);
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const double baseline = evaluate_subset(all);
  std::printf("baseline (all %zu features): R2 = %.3f\n", all.size(), baseline);

  std::vector<std::pair<double, std::size_t>> importance;
  for (std::size_t drop = 0; drop < features::kNumFeatures; ++drop) {
    std::vector<std::size_t> cols;
    for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
      if (i != drop) cols.push_back(i);
    }
    importance.push_back({baseline - evaluate_subset(cols), drop});
  }
  std::sort(importance.rbegin(), importance.rend());
  util::TablePrinter loo({"Feature", "R2 drop when removed"});
  for (const auto& [drop, index] : importance) {
    loo.add_row(
        {std::string(features::to_string(static_cast<features::Feature>(index))),
         util::TablePrinter::format(drop, 4)});
  }
  loo.print();
  return 0;
}
