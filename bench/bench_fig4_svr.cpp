// Reproduces Fig. 4: regression with the Support Vector Regressor with RBF
// kernel (C = 3.5, gamma = 0.055, epsilon = 0.025) — (a) example test fold
// at training size 50%, (b) R² learning curve with 10-fold CV.

#include "bench/fig_common.hpp"

int main() {
  ffr::bench::run_figure("svr_paper", "SVR w/ RBF kernel", "4");
  return 0;
}
