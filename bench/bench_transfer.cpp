// Cross-circuit transfer benchmark: leave-one-circuit-out over the three
// bundled designs (mac_core, pipeline_core, relay_core). For every held-out
// target the models are trained on the other two circuits — raw stacked
// features vs. per-circuit domain standardization (features::DomainScaler) —
// and scored against the target's ground-truth campaign with R², Spearman
// rank correlation and MAE. Every measurement lands in BENCH_transfer.json
// (uploaded by CI) so the transfer trajectory is tracked across PRs.
//
// The ground-truth campaign on each circuit doubles as its training labels
// when the circuit is in the training set, so each campaign runs once.
//
// Environment knobs:
//   FFR_TRANSFER_INJECTIONS  injections per flip-flop (default 64)
//
//   ./build/bench/bench_transfer

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/relay_core.hpp"
#include "core/transfer_flow.hpp"
#include "features/domain_scaler.hpp"
#include "ml/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace ffr;

struct TransferRecord {
  std::string target;
  std::string train_set;
  std::string model;
  bool adapted = false;
  std::size_t train_rows = 0;
  std::size_t target_ffs = 0;
  std::size_t injections_per_ff = 0;
  double r2 = 0.0;
  double spearman = 0.0;
  double mae = 0.0;
  double train_seconds = 0.0;
};

void write_bench_json(const char* path, const std::vector<TransferRecord>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TransferRecord& r = records[i];
    std::fprintf(f,
                 "  {\"target\": \"%s\", \"train_set\": \"%s\", "
                 "\"model\": \"%s\", \"adapted\": %s, \"train_rows\": %zu, "
                 "\"target_ffs\": %zu, \"injections_per_ff\": %zu, "
                 "\"r2\": %.6f, \"spearman\": %.6f, \"mae\": %.6f, "
                 "\"train_seconds\": %.6f}%s\n",
                 r.target.c_str(), r.train_set.c_str(), r.model.c_str(),
                 r.adapted ? "true" : "false", r.train_rows, r.target_ffs,
                 r.injections_per_ff, r.r2, r.spearman, r.mae, r.train_seconds,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu records)\n", path, records.size());
}

std::size_t env_injections() {
  if (const char* s = std::getenv("FFR_TRANSFER_INJECTIONS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 64;
}

core::TransferSample gather(const netlist::Netlist& nl, const sim::Testbench& tb,
                            std::size_t injections) {
  core::TransferConfig config;
  config.injections_per_ff = injections;
  return core::gather_transfer_sample(nl, tb, config);
}

}  // namespace

int main() {
  const std::size_t injections = env_injections();
  std::printf("cross-circuit transfer bench: leave-one-out over 3 circuits, "
              "%zu injections/FF\n\n", injections);

  // Build all three designs and run one campaign each (labels + ground truth).
  circuits::MacConfig mac_config;
  mac_config.tx_depth_log2 = 4;
  mac_config.rx_depth_log2 = 4;
  const circuits::MacCore mac = circuits::build_mac_core(mac_config);
  const circuits::MacTestbench mac_bench = circuits::build_mac_testbench(mac, {});
  const circuits::PipelineCore pipe = circuits::build_pipeline_core();
  const circuits::PipelineTestbench pipe_bench =
      circuits::build_pipeline_testbench(pipe, 96, 0.7, 0x51);
  const circuits::RelayCore relay = circuits::build_relay_core();
  const circuits::RelayTestbench relay_bench = circuits::build_relay_testbench(relay);

  util::Stopwatch total;
  std::vector<core::TransferSample> samples;
  samples.push_back(gather(mac.netlist, mac_bench.tb, injections));
  samples.push_back(gather(pipe.netlist, pipe_bench.tb, injections));
  samples.push_back(gather(relay.netlist, relay_bench.tb, injections));
  std::printf("campaigns done in %.1fs: ", total.elapsed_seconds());
  for (const auto& s : samples) {
    std::printf("%s (%zu FFs) ", s.name.c_str(), s.fdr.size());
  }
  std::printf("\n\n");

  features::DomainScalerConfig raw_norms;
  raw_norms.norms.assign(features::kNumFeatures, features::ColumnNorm::kIdentity);

  std::vector<TransferRecord> records;
  for (std::size_t held_out = 0; held_out < samples.size(); ++held_out) {
    const core::TransferSample& target = samples[held_out];
    std::vector<core::TransferSample> train;
    std::string train_set;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i == held_out) continue;
      train.push_back(samples[i]);
      if (!train_set.empty()) train_set += "+";
      train_set += samples[i].name;
    }

    std::printf("target %s (train: %s)\n", target.name.c_str(), train_set.c_str());
    util::TablePrinter table(
        {"Model", "raw R2", "raw rho", "adapted R2", "adapted rho", "adapted MAE"});
    for (const char* model :
         {"linear", "knn_paper", "svr_paper", "random_forest"}) {
      TransferRecord raw_rec;
      raw_rec.target = target.name;
      raw_rec.train_set = train_set;
      raw_rec.model = model;
      raw_rec.target_ffs = target.fdr.size();
      raw_rec.injections_per_ff = injections;
      TransferRecord adapted_rec = raw_rec;
      adapted_rec.adapted = true;

      core::TransferConfig config;
      config.model = model;

      util::Stopwatch raw_watch;
      config.norms = raw_norms;
      const core::TransferModel raw_model = core::train_transfer_model(train, config);
      const linalg::Vector raw_pred = raw_model.predict(target.features);
      raw_rec.train_seconds = raw_watch.elapsed_seconds();
      raw_rec.train_rows = raw_model.train_rows();
      raw_rec.r2 = ml::r2_score(target.fdr, raw_pred);
      raw_rec.spearman = ml::spearman_rho(target.fdr, raw_pred);
      raw_rec.mae = ml::mean_absolute_error(target.fdr, raw_pred);

      util::Stopwatch adapted_watch;
      config.norms = {};  // default transfer norms
      const core::TransferModel adapted = core::train_transfer_model(train, config);
      const linalg::Vector pred = adapted.predict(target.features);
      adapted_rec.train_seconds = adapted_watch.elapsed_seconds();
      adapted_rec.train_rows = adapted.train_rows();
      adapted_rec.r2 = ml::r2_score(target.fdr, pred);
      adapted_rec.spearman = ml::spearman_rho(target.fdr, pred);
      adapted_rec.mae = ml::mean_absolute_error(target.fdr, pred);

      table.add_row({model, util::TablePrinter::format(raw_rec.r2, 3),
                     util::TablePrinter::format(raw_rec.spearman, 3),
                     util::TablePrinter::format(adapted_rec.r2, 3),
                     util::TablePrinter::format(adapted_rec.spearman, 3),
                     util::TablePrinter::format(adapted_rec.mae, 3)});
      records.push_back(raw_rec);
      records.push_back(adapted_rec);
    }
    table.print();
    std::printf("\n");
  }

  write_bench_json("BENCH_transfer.json", records);
  return 0;
}
