// Reproduces Fig. 2: regression with the Linear Least Squares model —
// (a) prediction and per-instance error on the example test fold at
// training size 50%, (b) the R² learning curve with 10-fold CV.

#include "bench/fig_common.hpp"

int main() {
  ffr::bench::run_figure("linear", "Linear Least Squares", "2");
  return 0;
}
