#include "bench/bench_common.hpp"

#include <cstdio>
#include <cstdlib>

#include "fault/engine.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"

namespace ffr::bench {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

std::filesystem::path env_path(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

// Builds the context in place: ctx must already live at its final address,
// because the engine keeps references into ctx.mac / ctx.workload.
void build_context(PaperContext& ctx) {
  util::Stopwatch stopwatch;
  ctx.injections_per_ff = env_size("FFR_INJECTIONS", 170);
  ctx.results_dir = env_path("FFR_RESULTS_DIR", "ffr_results");
  std::filesystem::create_directories(ctx.results_dir);

  ctx.mac = circuits::build_mac_core();
  ctx.workload = circuits::build_mac_testbench(ctx.mac, {});
  // One batched engine serves the golden run, the ground-truth campaign and
  // every bench that sweeps flows on the same pair.
  ctx.engine =
      std::make_unique<fault::CampaignEngine>(ctx.mac.netlist, ctx.workload.tb);
  ctx.golden = ctx.engine->golden();
  ctx.features = features::extract_features(ctx.mac.netlist, ctx.golden.activity);
  std::printf("# %s\n", ctx.mac.netlist.summary().c_str());
  std::printf("# workload: %zu frames, %zu cycles, golden delivers %zu frames\n",
              ctx.workload.sent_payloads.size(),
              ctx.workload.tb.stimulus.num_cycles(), ctx.golden.frames.size());

  const std::filesystem::path cache_dir = env_path("FFR_CACHE_DIR", "ffr_cache");
  const std::filesystem::path cache_file =
      cache_dir / ("mac_campaign_" + std::to_string(ctx.injections_per_ff) + ".csv");
  fault::CampaignConfig config;
  config.injections_per_ff = ctx.injections_per_ff;
  const bool cached = std::filesystem::exists(cache_file);
  ctx.campaign = ctx.engine->run_cached(config, cache_file);
  ctx.fdr = ctx.campaign.fdr_vector();
  std::printf(
      "# flat SFI campaign: %zu FFs x %zu injections = %llu runs (%s, %.1fs), "
      "mean FDR %.3f\n\n",
      ctx.num_ffs(), ctx.injections_per_ff,
      static_cast<unsigned long long>(ctx.campaign.total_injections),
      cached ? "cache hit" : "freshly simulated", stopwatch.elapsed_seconds(),
      ctx.campaign.mean_fdr());
}

}  // namespace

const PaperContext& paper_context() {
  static PaperContext ctx;
  static const bool built = (build_context(ctx), true);
  (void)built;
  return ctx;
}

std::vector<ml::Split> paper_splits(const PaperContext& ctx, std::uint64_t seed) {
  return ml::stratified_k_fold(ctx.fdr, 10, seed);
}

std::filesystem::path write_series_csv(
    const PaperContext& ctx, const std::string& filename,
    const std::vector<std::pair<std::string, std::vector<double>>>& columns) {
  util::CsvTable table;
  std::size_t rows = 0;
  for (const auto& [name, values] : columns) {
    table.header.push_back(name);
    rows = std::max(rows, values.size());
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (const auto& [name, values] : columns) {
      row.push_back(r < values.size() ? util::CsvWriter::format_double(values[r])
                                      : "");
    }
    table.rows.push_back(std::move(row));
  }
  const std::filesystem::path path = ctx.results_dir / filename;
  util::write_csv_file(path, table);
  return path;
}

}  // namespace ffr::bench
