#pragma once
// Shared context for the paper-reproduction benches: builds the MAC core and
// its workload testbench at full scale, runs the golden simulation, extracts
// features, and loads (or runs + caches) the flat statistical fault
// injection campaign that serves as ground truth for every table/figure.
//
// Environment knobs:
//   FFR_INJECTIONS  injections per flip-flop (default 170, the paper's value)
//   FFR_CACHE_DIR   campaign cache directory  (default ./ffr_cache)
//   FFR_RESULTS_DIR output directory for CSV series (default ./ffr_results)

#include <filesystem>
#include <memory>
#include <string>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "features/extractor.hpp"
#include "ml/model_selection.hpp"
#include "sim/runner.hpp"

namespace ffr::bench {

struct PaperContext {
  circuits::MacCore mac;
  circuits::MacTestbench workload;
  /// Shared batched engine over (mac, workload): golden run and compiled
  /// stimulus paid once per process; benches reuse it for campaigns and
  /// estimation-flow sweeps.
  std::unique_ptr<fault::CampaignEngine> engine;
  sim::GoldenResult golden;
  features::FeatureMatrix features;
  fault::CampaignResult campaign;
  linalg::Vector fdr;  // ground-truth targets, one per flip-flop
  std::size_t injections_per_ff = 170;
  std::filesystem::path results_dir;

  [[nodiscard]] std::size_t num_ffs() const { return fdr.size(); }
};

/// Builds (once per process) the full paper context. Prints a short banner
/// with the circuit census and campaign provenance to stdout.
[[nodiscard]] const PaperContext& paper_context();

/// The paper's CV protocol: 10-fold stratified splits over the FDR targets.
[[nodiscard]] std::vector<ml::Split> paper_splits(const PaperContext& ctx,
                                                  std::uint64_t seed = 0xCF);

/// Writes a CSV of named columns into the results dir; returns the path.
std::filesystem::path write_series_csv(
    const PaperContext& ctx, const std::string& filename,
    const std::vector<std::pair<std::string, std::vector<double>>>& columns);

/// Paper Table I reference values, for side-by-side printing.
struct PaperTable1Row {
  const char* model;
  double mae, max, rmse, ev, r2;
};
inline constexpr PaperTable1Row kPaperTable1[] = {
    {"linear_least_squares", 0.165, 0.944, 0.218, 0.520, 0.519},
    {"knn", 0.050, 0.907, 0.124, 0.843, 0.842},
    {"svr_rbf", 0.063, 0.849, 0.124, 0.845, 0.844},
};

}  // namespace ffr::bench
