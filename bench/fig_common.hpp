#pragma once
// Shared driver for Figs. 2/3/4: each figure shows (a) the regression of one
// example test fold at training size 50% — true vs predicted FDR plus the
// per-instance prediction error, for both the train and test sides — and
// (b) the R² learning curve over training sizes with 10-fold CV.
//
// Series are written as CSV into the results dir (one file per panel) and a
// textual digest is printed, since the harness is terminal-based.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "ml/model_zoo.hpp"
#include "util/table_printer.hpp"

namespace ffr::bench {

inline void run_figure(const std::string& zoo_name, const std::string& label,
                       const std::string& fig_prefix) {
  const PaperContext& ctx = paper_context();
  const auto splits = paper_splits(ctx);
  const auto prototype = ml::make_model(zoo_name);

  // ---- panel (a): example fold, training size 50% ---------------------------
  std::printf("== Fig. %s(a): %s regression on the example test fold "
              "(training size = 50%%) ==\n",
              fig_prefix.c_str(), label.c_str());
  util::Rng rng(1);
  std::vector<std::size_t> train_idx = splits[0].train;
  rng.shuffle(train_idx);
  train_idx.resize(ctx.num_ffs() / 2);
  const auto& test_idx = splits[0].test;

  auto model = prototype->clone();
  const linalg::Matrix x_train = ml::take_rows(ctx.features.values, train_idx);
  const linalg::Vector y_train = ml::take(ctx.fdr, train_idx);
  model->fit(x_train, y_train);

  const linalg::Vector pred_train = model->predict(x_train);
  const linalg::Vector pred_test =
      model->predict(ml::take_rows(ctx.features.values, test_idx));
  const linalg::Vector y_test = ml::take(ctx.fdr, test_idx);

  auto errors = [](const linalg::Vector& truth, const linalg::Vector& pred) {
    linalg::Vector err(truth.size());
    for (std::size_t i = 0; i < truth.size(); ++i) err[i] = pred[i] - truth[i];
    return err;
  };
  const linalg::Vector err_train = errors(y_train, pred_train);
  const linalg::Vector err_test = errors(y_test, pred_test);

  const auto train_csv = write_series_csv(
      ctx, "fig" + fig_prefix + "a_train.csv",
      {{"ff", [&] {
          linalg::Vector idx;
          for (const auto i : train_idx) idx.push_back(static_cast<double>(i));
          return idx;
        }()},
       {"fdr_true", y_train},
       {"fdr_pred", pred_train},
       {"error", err_train}});
  const auto test_csv = write_series_csv(
      ctx, "fig" + fig_prefix + "a_test.csv",
      {{"ff", [&] {
          linalg::Vector idx;
          for (const auto i : test_idx) idx.push_back(static_cast<double>(i));
          return idx;
        }()},
       {"fdr_true", y_test},
       {"fdr_pred", pred_test},
       {"error", err_test}});

  const ml::RegressionMetrics train_m = ml::compute_metrics(y_train, pred_train);
  const ml::RegressionMetrics test_m = ml::compute_metrics(y_test, pred_test);
  std::printf("train (%4zu FFs): %s\n", y_train.size(),
              train_m.to_string().c_str());
  std::printf("test  (%4zu FFs): %s\n", y_test.size(), test_m.to_string().c_str());
  std::printf("series -> %s, %s\n", train_csv.string().c_str(),
              test_csv.string().c_str());

  // Compact error profile of the test fold (the paper plots it per FF).
  std::printf("test error quantiles: ");
  linalg::Vector sorted_err = err_test;
  std::sort(sorted_err.begin(), sorted_err.end());
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const auto at = static_cast<std::size_t>(q * (sorted_err.size() - 1));
    std::printf("p%02.0f=%+.3f  ", q * 100, sorted_err[at]);
  }
  std::printf("\n\n");

  // ---- panel (b): learning curve ---------------------------------------------
  std::printf("== Fig. %s(b): %s learning curve (cross validation fold = 10) ==\n",
              fig_prefix.c_str(), label.c_str());
  const std::vector<double> fractions{0.05, 0.1, 0.2, 0.3, 0.4,
                                      0.5,  0.6, 0.7, 0.8, 0.9};
  const auto curve =
      ml::learning_curve(*prototype, ctx.features.values, ctx.fdr, fractions, splits);
  util::TablePrinter table({"train%", "#train", "R2(train)", "+/-", "R2(test)",
                            "+/-"});
  linalg::Vector col_frac;
  linalg::Vector col_train;
  linalg::Vector col_test;
  linalg::Vector col_train_sd;
  linalg::Vector col_test_sd;
  for (const auto& point : curve) {
    table.add_row({util::TablePrinter::format(point.train_fraction * 100, 0),
                   std::to_string(point.train_samples),
                   util::TablePrinter::format(point.train_r2_mean, 3),
                   util::TablePrinter::format(point.train_r2_stddev, 3),
                   util::TablePrinter::format(point.test_r2_mean, 3),
                   util::TablePrinter::format(point.test_r2_stddev, 3)});
    col_frac.push_back(point.train_fraction);
    col_train.push_back(point.train_r2_mean);
    col_train_sd.push_back(point.train_r2_stddev);
    col_test.push_back(point.test_r2_mean);
    col_test_sd.push_back(point.test_r2_stddev);
  }
  table.print();
  const auto curve_csv = write_series_csv(ctx, "fig" + fig_prefix + "b_curve.csv",
                                          {{"train_fraction", col_frac},
                                           {"train_r2", col_train},
                                           {"train_r2_sd", col_train_sd},
                                           {"test_r2", col_test},
                                           {"test_r2_sd", col_test_sd}});
  std::printf("series -> %s\n", curve_csv.string().c_str());
}

}  // namespace ffr::bench
