// Reproduces the paper's §IV-B.4 cost claim: "training sizes of 20% to 50%
// provide appropriate performance, which means that the cost for a classical
// statistical fault injection campaign could be reduced by 2 up to 5 times"
// with "<10% accuracy reduction" at the aggressive end. Sweeps the training
// size, reporting cost reduction, R² and the accuracy loss vs. the 50% point.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "ml/model_zoo.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();
  const auto splits = bench::paper_splits(ctx);

  std::printf("== Cost reduction vs accuracy (k-NN, CV = 10) ==\n");
  const std::vector<double> fractions{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9};
  const auto prototype = ml::make_model("knn_paper");
  const auto curve = ml::learning_curve(*prototype, ctx.features.values, ctx.fdr,
                                        fractions, splits);

  double r2_at_half = 0.0;
  for (const auto& point : curve) {
    if (point.train_fraction == 0.5) r2_at_half = point.test_r2_mean;
  }

  util::TablePrinter table({"train size", "injections", "cost reduction",
                            "R2(test)", "R2 loss vs 50%"});
  linalg::Vector col_frac;
  linalg::Vector col_cost;
  linalg::Vector col_r2;
  for (const auto& point : curve) {
    const double injections = point.train_fraction *
                              static_cast<double>(ctx.num_ffs()) *
                              static_cast<double>(ctx.injections_per_ff);
    const double reduction = 1.0 / point.train_fraction;
    const double loss =
        r2_at_half > 0 ? (r2_at_half - point.test_r2_mean) / r2_at_half : 0.0;
    table.add_row({util::TablePrinter::format(point.train_fraction * 100, 0) + "%",
                   util::TablePrinter::format(injections, 0),
                   util::TablePrinter::format(reduction, 1) + "x",
                   util::TablePrinter::format(point.test_r2_mean, 3),
                   util::TablePrinter::format(loss * 100, 1) + "%"});
    col_frac.push_back(point.train_fraction);
    col_cost.push_back(reduction);
    col_r2.push_back(point.test_r2_mean);
  }
  table.print();

  // The paper's claim, checked programmatically.
  double r2_at_fifth = 0.0;
  for (const auto& point : curve) {
    if (point.train_fraction == 0.2) r2_at_fifth = point.test_r2_mean;
  }
  const double loss_at_5x = (r2_at_half - r2_at_fifth) / r2_at_half;
  std::printf(
      "\nclaim check: 2x reduction (50%% train) R2 = %.3f; 5x reduction "
      "(20%% train) R2 = %.3f -> accuracy loss %.1f%% (paper: < 10%%) %s\n",
      r2_at_half, r2_at_fifth, loss_at_5x * 100,
      loss_at_5x < 0.10 ? "[holds]" : "[violated]");

  const auto csv = bench::write_series_csv(
      ctx, "cost_reduction.csv",
      {{"train_fraction", col_frac}, {"cost_reduction", col_cost}, {"test_r2", col_r2}});
  std::printf("series -> %s\n", csv.string().c_str());
  return 0;
}
