// Reproduces Table I: "Performance results for different regression models
// (cross validation = 10, training size = 50%)" — MAE, MAX, RMSE, EV, R² for
// Linear Least Squares, k-NN (k=3, Manhattan, distance weights) and SVR with
// RBF kernel (C=3.5, gamma=0.055, epsilon=0.025), against the flat SFI
// campaign ground truth. Paper values are printed alongside for comparison.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "ml/model_zoo.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();
  const auto splits = bench::paper_splits(ctx);

  std::printf("== Table I: model performance (CV = 10, training size = 50%%) ==\n");
  util::TablePrinter table(
      {"Model", "MAE", "MAX", "RMSE", "EV", "R2", "fit+predict[s]"});

  const std::pair<const char*, const char*> models[] = {
      {"Linear Least Squares", "linear"},
      {"k-NN (k=3, manhattan)", "knn_paper"},
      {"SVR w/ RBF kernel", "svr_paper"},
  };
  for (const auto& [label, zoo_name] : models) {
    const auto model = ml::make_model(zoo_name);
    util::Stopwatch stopwatch;
    const ml::CrossValidationResult cv =
        ml::cross_validate(*model, ctx.features.values, ctx.fdr, splits, 0.5);
    const auto& m = cv.mean_test;
    table.add_row({label, util::TablePrinter::format(m.mae, 3),
                   util::TablePrinter::format(m.max, 3),
                   util::TablePrinter::format(m.rmse, 3),
                   util::TablePrinter::format(m.ev, 3),
                   util::TablePrinter::format(m.r2, 3),
                   util::TablePrinter::format(stopwatch.elapsed_seconds(), 2)});
  }
  table.print();

  std::printf("\n== Paper's Table I (DSN'19, OpenCores 10GE MAC, 1054 FFs) ==\n");
  util::TablePrinter paper({"Model", "MAE", "MAX", "RMSE", "EV", "R2"});
  for (const auto& row : bench::kPaperTable1) {
    paper.add_row_numeric(row.model, {row.mae, row.max, row.rmse, row.ev, row.r2});
  }
  paper.print();

  std::printf(
      "\nShape check: the linear model must rank last and the two kernel/\n"
      "distance models must land close together with high R2 — see\n"
      "EXPERIMENTS.md for the paper-vs-measured discussion.\n");
  return 0;
}
