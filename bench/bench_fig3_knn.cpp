// Reproduces Fig. 3: regression with the k-Nearest Neighbors model
// (k = 3, Manhattan distance, inverse-distance weights) — (a) example test
// fold at training size 50%, (b) R² learning curve with 10-fold CV.

#include "bench/fig_common.hpp"

int main() {
  ffr::bench::run_figure("knn_paper", "k-Nearest Neighbors", "3");
  return 0;
}
