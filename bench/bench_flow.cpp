// Exercises the end-to-end estimation flow of Fig. 1 at several training
// sizes: wall-clock breakdown (golden run + features, partial SFI campaign,
// model training/prediction), injections spent vs. the flat campaign, and
// held-out accuracy against the ground-truth campaign.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/estimation_flow.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();
  // The context's shared engine serves every flow invocation: the golden
  // run and compiled stimulus were paid once when the context was built, so
  // golden[s] below covers feature extraction only.
  const fault::CampaignEngine& engine = *ctx.engine;

  std::printf("== End-to-end estimation flow (paper Fig. 1) ==\n");
  util::TablePrinter table({"train size", "model", "golden[s]", "SFI[s]",
                            "train[s]", "cost red.", "held-out R2",
                            "held-out MAE"});
  for (const double training_size : {0.2, 0.5}) {
    for (const char* model : {"knn_paper", "svr_paper"}) {
      core::FlowConfig config;
      config.training_size = training_size;
      config.injections_per_ff = ctx.injections_per_ff;
      config.model = model;
      const core::FlowResult flow = core::run_estimation_flow(engine, config);
      const ml::RegressionMetrics held_out =
          core::score_against_campaign(flow, ctx.campaign);
      table.add_row(
          {util::TablePrinter::format(training_size * 100, 0) + "%", model,
           util::TablePrinter::format(flow.golden_seconds, 2),
           util::TablePrinter::format(flow.campaign_seconds, 2),
           util::TablePrinter::format(flow.training_seconds, 2),
           util::TablePrinter::format(flow.cost_reduction(), 1) + "x",
           util::TablePrinter::format(held_out.r2, 3),
           util::TablePrinter::format(held_out.mae, 3)});
    }
  }
  table.print();
  std::printf(
      "\nThe flow injects only the training fraction; 'held-out' scores its\n"
      "predictions on the never-injected flip-flops against the full flat\n"
      "campaign (which costs the SFI column divided by the training size).\n");
  return 0;
}
