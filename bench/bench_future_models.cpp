// Implements the paper's future-work proposal (§V): evaluating further
// non-linear models — Decision Tree, Random Forest, Gradient Boosting —
// plus Ridge, under the exact Table I protocol (CV = 10, train size = 50%).

#include <cstdio>

#include "bench/bench_common.hpp"
#include "ml/model_zoo.hpp"
#include "util/stopwatch.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();
  const auto splits = bench::paper_splits(ctx);

  std::printf("== Future-work models under the Table I protocol "
              "(CV = 10, training size = 50%%) ==\n");
  util::TablePrinter table(
      {"Model", "MAE", "MAX", "RMSE", "EV", "R2", "fit+predict[s]"});
  const std::pair<const char*, const char*> models[] = {
      {"Linear Least Squares (baseline)", "linear"},
      {"Ridge", "ridge"},
      {"k-NN (paper)", "knn_paper"},
      {"SVR-RBF (paper)", "svr_paper"},
      {"Decision Tree", "decision_tree"},
      {"Random Forest", "random_forest"},
      {"Gradient Boosting", "gradient_boosting"},
  };
  for (const auto& [label, zoo_name] : models) {
    const auto model = ml::make_model(zoo_name);
    util::Stopwatch stopwatch;
    const auto cv =
        ml::cross_validate(*model, ctx.features.values, ctx.fdr, splits, 0.5);
    const auto& m = cv.mean_test;
    table.add_row({label, util::TablePrinter::format(m.mae, 3),
                   util::TablePrinter::format(m.max, 3),
                   util::TablePrinter::format(m.rmse, 3),
                   util::TablePrinter::format(m.ev, 3),
                   util::TablePrinter::format(m.r2, 3),
                   util::TablePrinter::format(stopwatch.elapsed_seconds(), 2)});
  }
  table.print();
  std::printf("\nThe paper conjectures tree ensembles and boosting as future\n"
              "candidates; on this workload they are competitive with (or\n"
              "better than) the kernel/distance models, confirming the\n"
              "direction of that conjecture.\n");
  return 0;
}
