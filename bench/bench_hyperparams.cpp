// Reproduces the paper's §III-A hyperparameter methodology: random search
// over broad distributions followed by a refining grid search, for both
// k-NN (k, metric, weights) and SVR (C, gamma, epsilon). Prints the search
// winners next to the paper's reported settings (k=3/Manhattan; C=3.5,
// gamma=0.055, epsilon=0.025) and an ablation of k and the distance metric.

#include <cstdio>

#include "bench/bench_common.hpp"
#include "ml/knn.hpp"
#include "ml/pipeline.hpp"
#include "ml/search.hpp"
#include "ml/svr.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  const bench::PaperContext& ctx = bench::paper_context();
  const auto splits = bench::paper_splits(ctx);
  const auto& x = ctx.features.values;
  const auto& y = ctx.fdr;

  // ---- k-NN ------------------------------------------------------------------
  std::printf("== k-NN: random search + grid refinement (paper: k=3, "
              "Manhattan, distance weights) ==\n");
  {
    const ml::ScaledPipeline prototype(std::make_unique<ml::KnnRegressor>());
    const std::vector<ml::ParamRange> ranges{
        {.name = "k", .lo = 1, .hi = 25, .integer = true},
        {.name = "p", .lo = 1, .hi = 3, .integer = true},
        {.name = "weights", .lo = 0, .hi = 1.99, .integer = true},
    };
    const ml::SearchResult result = ml::random_then_grid_search(
        prototype, x, y, ranges, 12, 5, splits, 0.5);
    std::printf("best: k=%.0f p=%.0f weights=%s  (mean test R2 = %.3f, %zu "
                "configurations tried)\n\n",
                result.best.params.at("k"), result.best.params.at("p"),
                result.best.params.at("weights") != 0 ? "distance" : "uniform",
                result.best.score, result.evaluated.size());
  }

  // k / metric ablation grid (the paper reports Manhattan beating Euclidean).
  std::printf("-- k x metric ablation (distance weights, train size 50%%) --\n");
  util::TablePrinter knn_table({"k", "R2 manhattan", "R2 euclidean"});
  for (const double k : {1, 2, 3, 5, 9, 15}) {
    std::vector<std::string> row{util::TablePrinter::format(k, 0)};
    for (const double p : {1.0, 2.0}) {
      ml::ScaledPipeline model(std::make_unique<ml::KnnRegressor>(
          static_cast<std::size_t>(k), p, ml::KnnWeights::kDistance));
      const auto cv = ml::cross_validate(model, x, y, splits, 0.5);
      row.push_back(util::TablePrinter::format(cv.mean_test.r2, 3));
    }
    knn_table.add_row(std::move(row));
  }
  knn_table.print();

  // ---- SVR -------------------------------------------------------------------
  std::printf("\n== SVR-RBF: random search + grid refinement (paper: C=3.5, "
              "gamma=0.055, epsilon=0.025) ==\n");
  {
    ml::SvrConfig base;
    base.tol = 1e-2;  // coarser KKT tolerance keeps the search fast
    const ml::ScaledPipeline prototype(std::make_unique<ml::SvrRegressor>(base));
    const std::vector<ml::ParamRange> ranges{
        {.name = "C", .lo = 0.1, .hi = 100, .log_scale = true},
        {.name = "gamma", .lo = 1e-3, .hi = 1.0, .log_scale = true},
        {.name = "epsilon", .lo = 1e-3, .hi = 0.2, .log_scale = true},
    };
    const ml::SearchResult result = ml::random_then_grid_search(
        prototype, x, y, ranges, 10, 3, splits, 0.5);
    std::printf("best: C=%.3f gamma=%.4f epsilon=%.4f  (mean test R2 = %.3f, "
                "%zu configurations tried)\n",
                result.best.params.at("C"), result.best.params.at("gamma"),
                result.best.params.at("epsilon"), result.best.score,
                result.evaluated.size());
  }

  // C / gamma sensitivity around the paper's point.
  std::printf("\n-- SVR sensitivity around the paper's configuration --\n");
  util::TablePrinter svr_table({"C", "gamma", "epsilon", "R2"});
  const double c_values[] = {0.35, 3.5, 35.0};
  const double gamma_values[] = {0.0055, 0.055, 0.55};
  for (const double c : c_values) {
    for (const double gamma : gamma_values) {
      ml::SvrConfig config;
      config.c = c;
      config.gamma = gamma;
      config.epsilon = 0.025;
      config.tol = 1e-2;
      ml::ScaledPipeline model(std::make_unique<ml::SvrRegressor>(config));
      const auto cv = ml::cross_validate(model, x, y, splits, 0.5);
      svr_table.add_row({util::TablePrinter::format(c, 3),
                         util::TablePrinter::format(gamma, 4), "0.025",
                         util::TablePrinter::format(cv.mean_test.r2, 3)});
    }
  }
  svr_table.print();
  return 0;
}
