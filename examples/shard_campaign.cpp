// shard_campaign: k-of-N campaign sharding across processes, with mergeable
// partial files and resume-from-partial (fault/shard.hpp).
//
// Each invocation runs ONE shard of a fixed campaign and writes its partial
// to the working directory — run the N shards as separate processes (or
// hosts sharing the directory), in any order; re-running a shard whose
// partial already exists resumes from disk and simulates nothing. A final
// `--merge` invocation reassembles the partials into a CampaignResult that
// is bit-identical to the unsharded engine run (`--verify` proves it by
// running the unsharded campaign and diffing FDR + deterministic counters).
//
//   ./build/examples/shard_campaign mac 0/2 /tmp/shards
//   ./build/examples/shard_campaign mac 1/2 /tmp/shards
//   ./build/examples/shard_campaign mac --merge /tmp/shards --verify
//
// circuits: mac | pipeline | relay

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/relay_core.hpp"
#include "fault/engine.hpp"
#include "fault/shard.hpp"
#include "service/content_hash.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Design {
  ffr::netlist::Netlist netlist;
  ffr::sim::Testbench tb;
  ffr::fault::CampaignConfig config;  ///< Fixed per circuit: every process
                                      ///< sharding this campaign must agree.
};

Design make_design(const std::string& name) {
  ffr::fault::CampaignConfig config;
  if (name == "mac") {
    ffr::circuits::MacCore core = ffr::circuits::build_mac_core();
    ffr::circuits::MacTestbench bench =
        ffr::circuits::build_mac_testbench(core, {});
    config.injections_per_ff = 32;
    return {std::move(core.netlist), std::move(bench.tb), config};
  }
  if (name == "pipeline") {
    ffr::circuits::PipelineCore core = ffr::circuits::build_pipeline_core();
    ffr::circuits::PipelineTestbench bench =
        ffr::circuits::build_pipeline_testbench(core);
    config.injections_per_ff = 32;
    return {std::move(core.netlist), std::move(bench.tb), config};
  }
  if (name == "relay") {
    ffr::circuits::RelayCore core = ffr::circuits::build_relay_core();
    ffr::circuits::RelayTestbench bench =
        ffr::circuits::build_relay_testbench(core);
    config.injections_per_ff = 16;
    for (std::size_t i = 0; i < core.netlist.num_flip_flops(); i += 7) {
      config.ff_subset.push_back(i);
    }
    return {std::move(core.netlist), std::move(bench.tb), config};
  }
  throw std::runtime_error("unknown circuit '" + name +
                           "' (expected mac, pipeline or relay)");
}

int usage() {
  std::fprintf(stderr,
               "usage: shard_campaign <circuit> <k>/<N> <dir>\n"
               "       shard_campaign <circuit> --merge <dir> [--verify]\n"
               "circuits: mac | pipeline | relay\n");
  return 2;
}

/// Parses "k/N" with k < N; throws on anything else.
ffr::fault::ShardSpec parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    throw std::runtime_error("bad shard spec '" + text + "' (expected k/N)");
  }
  ffr::fault::ShardSpec shard;
  shard.index = std::stoull(text.substr(0, slash));
  shard.count = std::stoull(text.substr(slash + 1));
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::runtime_error("bad shard spec '" + text + "' (need k < N)");
  }
  return shard;
}

int run_one_shard(const Design& design, const ffr::fault::ShardSpec& shard,
                  const std::filesystem::path& dir) {
  ffr::util::Stopwatch stopwatch;
  const ffr::fault::CampaignEngine engine(design.netlist, design.tb);
  const std::string hash =
      ffr::service::content_hash(design.netlist, design.tb).hex();
  std::printf("engine   : %s (content %s)\n", design.netlist.summary().c_str(),
              hash.c_str());

  ffr::fault::CampaignConfig config = design.config;
  config.shard = shard;
  bool resumed = false;
  const ffr::fault::CampaignPartial partial =
      ffr::fault::load_or_run_shard(engine, config, hash, dir, &resumed);
  std::printf("shard %zu/%zu: %s — %llu injections in %llu passes, %llu "
              "cycles simulated\n",
              shard.index, shard.count,
              resumed ? "resumed from partial" : "executed",
              static_cast<unsigned long long>(partial.result.total_injections),
              static_cast<unsigned long long>(partial.result.total_sim_passes),
              static_cast<unsigned long long>(partial.result.cycles_simulated));
  std::printf("partial  : %s\n",
              (dir / ffr::fault::partial_filename(shard.index, shard.count))
                  .string()
                  .c_str());
  std::printf("wall     : %.3f s\n", stopwatch.elapsed_seconds());
  return 0;
}

int merge_dir(const Design& design, const std::filesystem::path& dir,
              bool verify) {
  std::vector<ffr::fault::CampaignPartial> partials;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".partial") {
      partials.push_back(ffr::fault::CampaignPartial::load_file(entry.path()));
    }
  }
  if (partials.empty()) {
    throw std::runtime_error("no .partial files in " + dir.string());
  }
  std::printf("merging  : %zu partials from %s\n", partials.size(),
              dir.string().c_str());
  const ffr::fault::CampaignResult merged =
      ffr::fault::merge_partials(partials);
  std::printf("merged   : %llu injections over %zu flip-flops, %llu passes, "
              "mean FDR %.6f\n",
              static_cast<unsigned long long>(merged.total_injections),
              merged.per_ff.size(),
              static_cast<unsigned long long>(merged.total_sim_passes),
              merged.mean_fdr());

  if (!verify) return 0;

  // The differential proof: re-run the campaign unsharded and require
  // bit-identity in science output and deterministic counters.
  const ffr::fault::CampaignEngine engine(design.netlist, design.tb);
  const ffr::fault::CampaignResult reference = engine.run(design.config);
  std::size_t mismatches = 0;
  const auto check = [&](const char* what, std::uint64_t got,
                         std::uint64_t want) {
    if (got != want) {
      std::printf("MISMATCH : %s %llu != %llu\n", what,
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
      ++mismatches;
    }
  };
  check("total_injections", merged.total_injections,
        reference.total_injections);
  check("total_sim_passes", merged.total_sim_passes,
        reference.total_sim_passes);
  check("cycles_simulated", merged.cycles_simulated,
        reference.cycles_simulated);
  check("ops_evaluated", merged.ops_evaluated, reference.ops_evaluated);
  check("checkpoint_restores", merged.checkpoint_restores,
        reference.checkpoint_restores);
  if (merged.per_ff.size() != reference.per_ff.size()) {
    std::printf("MISMATCH : %zu flip-flops != %zu\n", merged.per_ff.size(),
                reference.per_ff.size());
    ++mismatches;
  } else {
    for (std::size_t i = 0; i < merged.per_ff.size(); ++i) {
      if (merged.per_ff[i].classes.counts !=
              reference.per_ff[i].classes.counts ||
          merged.per_ff[i].fdr() != reference.per_ff[i].fdr()) {
        std::printf("MISMATCH : ff %s\n", merged.per_ff[i].name.c_str());
        ++mismatches;
      }
    }
  }
  if (mismatches != 0) {
    std::printf("verify   : FAILED (%zu mismatches)\n", mismatches);
    return 1;
  }
  std::printf("verify   : OK — merged result bit-identical to the unsharded "
              "engine run\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  try {
    const Design design = make_design(argv[1]);
    const std::string mode = argv[2];
    if (mode == "--merge") {
      const bool verify = argc > 4 && std::string(argv[4]) == "--verify";
      if (argc > 5 || (argc == 5 && !verify)) return usage();
      return merge_dir(design, argv[3], verify);
    }
    if (argc != 4) return usage();
    return run_one_shard(design, parse_shard(mode), argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_campaign: %s\n", e.what());
    return 1;
  }
}
