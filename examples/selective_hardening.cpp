// Selective hardening: the use case that motivates per-instance Functional
// De-Rating (paper §I cites selective-TMR methodologies [3]-[5]).
//
// A designer can only afford to harden (e.g. triplicate) a fraction of the
// flip-flops. Hardening a flip-flop removes its contribution to the circuit
// failure rate, so the best picks are the highest-FDR instances. This
// example compares three selection policies under the ground-truth campaign:
//   - oracle   : rank by measured FDR (needs the full, expensive campaign)
//   - ml       : rank by FDR *predicted* by the estimation flow (cheap)
//   - activity : rank by raw signal activity (a common heuristic)
//
//   ./build/examples/selective_hardening

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "core/estimation_flow.hpp"
#include "features/feature_set.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace ffr;

// Residual circuit failure-rate proxy after hardening `chosen` flip-flops:
// the sum of true FDR over the unhardened instances (uniform raw fault rate
// per flip-flop assumed, as in the paper's failure-rate composition).
double residual_failure(const linalg::Vector& true_fdr,
                        std::vector<std::size_t> chosen) {
  std::vector<bool> hardened(true_fdr.size(), false);
  for (const std::size_t i : chosen) hardened[i] = true;
  double sum = 0.0;
  for (std::size_t i = 0; i < true_fdr.size(); ++i) {
    if (!hardened[i]) sum += true_fdr[i];
  }
  return sum;
}

std::vector<std::size_t> top_k(const linalg::Vector& score, std::size_t k) {
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] > score[b]; });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace

int main() {
  circuits::MacConfig circuit_config;
  circuit_config.tx_depth_log2 = 4;
  circuit_config.rx_depth_log2 = 4;
  const circuits::MacCore mac = circuits::build_mac_core(circuit_config);
  const circuits::MacTestbench bench = circuits::build_mac_testbench(mac, {});
  std::printf("circuit: %s\n\n", mac.netlist.summary().c_str());

  // Ground truth (the expensive flat campaign — what the oracle sees).
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  fault::CampaignConfig campaign_config;
  campaign_config.injections_per_ff = 64;
  const fault::CampaignResult campaign =
      fault::run_campaign(mac.netlist, bench.tb, golden, campaign_config);
  const linalg::Vector true_fdr = campaign.fdr_vector();

  // ML policy: estimation flow with a 25% training budget.
  core::FlowConfig flow_config;
  flow_config.training_size = 0.25;
  flow_config.injections_per_ff = 64;
  flow_config.model = "knn_paper";
  const core::FlowResult flow =
      core::run_estimation_flow(mac.netlist, bench.tb, flow_config);
  for (const std::string& warning : flow.warnings) {
    std::printf("warning: %s\n", warning.c_str());
  }

  // Activity heuristic: state changes from the golden trace.
  const core::FlowResult& features_source = flow;
  const linalg::Vector activity =
      features_source.features.column(features::Feature::kStateChanges);

  const double baseline = residual_failure(true_fdr, {});
  util::TablePrinter table({"hardened FFs", "oracle", "ml (25% budget)",
                            "activity heuristic"});
  for (const double fraction : {0.05, 0.10, 0.20, 0.30}) {
    const auto k = static_cast<std::size_t>(fraction *
                                            static_cast<double>(true_fdr.size()));
    const double oracle = residual_failure(true_fdr, top_k(true_fdr, k));
    const double ml = residual_failure(true_fdr, top_k(flow.fdr, k));
    const double heuristic = residual_failure(true_fdr, top_k(activity, k));
    auto pct = [&](double v) {
      return util::TablePrinter::format(100.0 * (baseline - v) / baseline, 1) +
             "% reduction";
    };
    table.add_row({util::TablePrinter::format(fraction * 100, 0) + "%",
                   pct(oracle), pct(ml), pct(heuristic)});
  }
  std::printf("circuit failure-rate reduction achieved by hardening the\n"
              "top-k flip-flops chosen by each policy (higher is better):\n\n");
  table.print();
  std::printf(
      "\nThe ML policy needs %llu injections; the oracle needs %llu.\n",
      static_cast<unsigned long long>(flow.injections_spent),
      static_cast<unsigned long long>(campaign.total_injections));
  return 0;
}
