// ffr_service: the campaign-and-prediction front end on a mixed workload.
//
// Spins up an FfrService (content-addressed engine registry + async job
// queue), trains and persists a small transfer model, then drives the two
// job classes the service is built for:
//
//   1. campaign jobs   — full fault-injection campaigns; repeated and
//                        concurrent requests on the same (netlist,
//                        testbench) content share one cached golden run,
//                        checkpoint set and compiled stimulus;
//   2. predict jobs    — per-flip-flop FDR from the persisted model; after
//                        the first request on a design, thousands of
//                        predictions run without simulating anything.
//
// Finishes with an eviction demo (a 1-byte registry budget) and the full
// service metrics dump: cache hits/misses, evictions, queue depth, and
// per-job-class latency histograms.
//
//   ./build/examples/ffr_service

#include <cstdio>
#include <filesystem>
#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "core/transfer_flow.hpp"
#include "service/content_hash.hpp"
#include "service/job_queue.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace ffr;

  // Two designs with workload testbenches: the paper's MAC case study and
  // the bundled pipeline core.
  circuits::MacConfig mac_config;
  mac_config.tx_depth_log2 = 4;
  mac_config.rx_depth_log2 = 4;
  const circuits::MacCore mac = circuits::build_mac_core(mac_config);
  const circuits::MacTestbench mac_bench = circuits::build_mac_testbench(mac, {});
  const circuits::PipelineCore pipe = circuits::build_pipeline_core();
  const circuits::PipelineTestbench pipe_bench =
      circuits::build_pipeline_testbench(pipe);
  std::printf("mac      : %s\n", mac.netlist.summary().c_str());
  std::printf("pipeline : %s\n", pipe.netlist.summary().c_str());

  // Train-once/predict-many: persist a transfer model for the predict jobs
  // (in production this file comes from a previous training run).
  core::TransferConfig train_config;
  train_config.model = "knn_paper";
  train_config.injections_per_ff = 32;
  const std::vector<core::TransferCircuit> train_set = {
      {&mac.netlist, &mac_bench.tb}};
  const std::filesystem::path model_path =
      std::filesystem::temp_directory_path() / "ffr_service_demo_model.txt";
  core::train_transfer_model(train_set, train_config).save(model_path);
  std::printf("model    : trained on mac_core, persisted to %s\n\n",
              model_path.string().c_str());

  service::FfrService service;
  // A service-shaped request: a targeted shard of the flip-flops rather than
  // the full sweep, so the engine build the registry caches (stimulus
  // compile + golden run + checkpoints) is a visible share of the cold
  // request.
  fault::CampaignConfig campaign;
  campaign.injections_per_ff = 16;
  for (std::size_t ff = 0; ff < 16 && ff < mac.netlist.num_flip_flops(); ++ff) {
    campaign.ff_subset.push_back(ff);
  }

  // --- Campaign jobs: the second identical request skips the golden run ---
  util::Stopwatch stopwatch;
  const service::JobId first =
      service.submit_campaign(mac.netlist, mac_bench.tb, campaign);
  (void)service.wait(first);
  const double cold_seconds = stopwatch.elapsed_seconds();

  stopwatch.reset();
  const service::JobId second =
      service.submit_campaign(mac.netlist, mac_bench.tb, campaign);
  (void)service.wait(second);
  const double warm_seconds = stopwatch.elapsed_seconds();

  const fault::CampaignResult cold = service.campaign_result(first);
  const fault::CampaignResult warm = service.campaign_result(second);
  std::printf("campaign jobs on mac_core (%zu injections each):\n",
              static_cast<std::size_t>(cold.total_injections));
  std::printf("  cold (build + golden + campaign) : %7.1f ms\n",
              cold_seconds * 1e3);
  std::printf("  warm (cached engine)             : %7.1f ms\n",
              warm_seconds * 1e3);
  std::printf("  identical results                : %s\n",
              cold.fdr_vector() == warm.fdr_vector() ? "yes" : "NO");

  // --- Predict jobs: model serving off the cached golden run -------------
  std::vector<service::JobId> predictions;
  stopwatch.reset();
  for (int i = 0; i < 100; ++i) {
    predictions.push_back(
        service.submit_predict(model_path, pipe.netlist, pipe_bench.tb));
  }
  service.wait_all();
  const double predict_seconds = stopwatch.elapsed_seconds();
  const linalg::Vector fdr = service.prediction(predictions.back());
  double mean = 0.0;
  for (const double v : fdr) mean += v;
  mean /= static_cast<double>(fdr.size());
  std::printf("\n100 predict jobs on pipeline_core: %0.1f ms total "
              "(%zu flip-flops each, mean FDR %.4f)\n",
              predict_seconds * 1e3, fdr.size(), mean);

  // --- Eviction under a byte budget ---------------------------------------
  service::RegistryConfig tiny;
  tiny.max_resident_bytes = 1;
  service::EngineRegistry squeezed(tiny);
  (void)squeezed.acquire(mac.netlist, mac_bench.tb);
  (void)squeezed.acquire(pipe.netlist, pipe_bench.tb);  // evicts the MAC
  std::printf("\n1-byte-budget registry after two acquires: %zu resident\n",
              squeezed.size());
  for (const service::EvictionRecord& ev : squeezed.eviction_log()) {
    std::printf("  evicted %s (key %s, %zu bytes, %llu acquisitions)\n",
                ev.circuit.c_str(), ev.key.hex().c_str(), ev.bytes,
                static_cast<unsigned long long>(ev.acquisitions));
  }

  std::printf("\nservice metrics:\n%s", service.metrics().to_text().c_str());
  std::filesystem::remove(model_path);
  return 0;
}
