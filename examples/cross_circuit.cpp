// Cross-circuit transfer serving: train the FDR model ONCE on two designs
// (the MAC core and the pipelined checksum datapath), persist it to disk,
// reload it in a fresh object, and predict a third design — the 1054-FF
// relay_core — from a golden simulation alone, with zero fault injection on
// the target for training. A ground-truth campaign on the relay (used only
// for scoring, never for training) quantifies the transfer with R² and
// Spearman rank correlation.
//
// The experiment also shows WHY the domain scaler exists: the same models
// trained on raw stacked features (the seed repo's approach) fail outright
// on the unseen circuit, while per-circuit standardization + rank
// normalization (features::DomainScaler) makes the features comparable
// across designs.
//
//   ./build/examples/cross_circuit

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/relay_core.hpp"
#include "core/transfer_flow.hpp"
#include "features/domain_scaler.hpp"
#include "ml/metrics.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace ffr;

core::TransferSample gather(const netlist::Netlist& nl, const sim::Testbench& tb,
                            std::size_t injections) {
  core::TransferConfig config;
  config.injections_per_ff = injections;
  return core::gather_transfer_sample(nl, tb, config);
}

}  // namespace

int main() {
  // Training domains: the MAC core (small config for speed) and the
  // pipeline core. Both are fault-injected once, at training time only.
  circuits::MacConfig mac_config;
  mac_config.tx_depth_log2 = 4;
  mac_config.rx_depth_log2 = 4;
  const circuits::MacCore mac = circuits::build_mac_core(mac_config);
  const circuits::MacTestbench mac_bench = circuits::build_mac_testbench(mac, {});
  const circuits::PipelineCore pipe = circuits::build_pipeline_core();
  const circuits::PipelineTestbench pipe_bench =
      circuits::build_pipeline_testbench(pipe, 96, 0.7, 0x51);
  std::printf("train circuit: %s\n", mac.netlist.summary().c_str());
  std::printf("train circuit: %s\n", pipe.netlist.summary().c_str());

  const std::vector<core::TransferSample> train = {
      gather(mac.netlist, mac_bench.tb, 64),
      gather(pipe.netlist, pipe_bench.tb, 64),
  };

  // Target domain: the paper-scale relay core. Its campaign is ground truth
  // for SCORING only — the served prediction uses the golden run alone.
  const circuits::RelayCore relay = circuits::build_relay_core();
  const circuits::RelayTestbench relay_bench = circuits::build_relay_testbench(relay);
  std::printf("target circuit: %s\n\n", relay.netlist.summary().c_str());
  const core::TransferSample target =
      gather(relay.netlist, relay_bench.tb, 64);

  // Raw stacked features vs. per-circuit domain standardization.
  features::DomainScalerConfig raw_norms;
  raw_norms.norms.assign(features::kNumFeatures, features::ColumnNorm::kIdentity);

  util::TablePrinter table({"Model", "raw R2", "raw rho", "adapted R2",
                            "adapted rho", "adapted MAE"});
  double worst_raw_r2 = std::numeric_limits<double>::infinity();
  for (const char* name : {"linear", "knn_paper", "svr_paper", "random_forest"}) {
    core::TransferConfig config;
    config.model = name;

    config.norms = raw_norms;
    const core::TransferModel raw_model = core::train_transfer_model(train, config);
    const linalg::Vector raw_pred = raw_model.predict(target.features);
    worst_raw_r2 = std::min(worst_raw_r2, ml::r2_score(target.fdr, raw_pred));

    config.norms = {};  // default transfer norms: rank + identity mix
    const core::TransferModel adapted = core::train_transfer_model(train, config);
    const linalg::Vector pred = adapted.predict(target.features);

    table.add_row(
        {name,
         util::TablePrinter::format(ml::r2_score(target.fdr, raw_pred), 3),
         util::TablePrinter::format(ml::spearman_rho(target.fdr, raw_pred), 3),
         util::TablePrinter::format(ml::r2_score(target.fdr, pred), 3),
         util::TablePrinter::format(ml::spearman_rho(target.fdr, pred), 3),
         util::TablePrinter::format(ml::mean_absolute_error(target.fdr, pred), 3)});
  }
  table.print();

  // Train-once / predict-many serving: persist the tuned k-NN transfer
  // model, reload it in a fresh object, and check the served predictions
  // are bit-identical to the in-memory model's.
  core::TransferConfig config;
  config.model = "knn_paper";
  const core::TransferModel trained = core::train_transfer_model(train, config);
  const std::filesystem::path model_path =
      std::filesystem::temp_directory_path() / "fferate_transfer_model.txt";
  trained.save(model_path);
  const core::TransferModel served = core::TransferModel::load(model_path);

  const linalg::Vector in_memory = trained.predict(target.features);
  const linalg::Vector reloaded = served.predict(target.features);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < in_memory.size(); ++i) {
    if (in_memory[i] != reloaded[i]) ++mismatches;
  }

  std::printf(
      "\npersisted %s (trained on %s+%s, %zu rows) to %s (%ju bytes)\n",
      served.model_name().c_str(), served.train_circuits()[0].c_str(),
      served.train_circuits()[1].c_str(), served.train_rows(),
      model_path.string().c_str(),
      static_cast<std::uintmax_t>(std::filesystem::file_size(model_path)));
  std::printf("reloaded model predictions: %zu/%zu bit-identical (%s)\n",
              in_memory.size() - mismatches, in_memory.size(),
              mismatches == 0 ? "OK" : "MISMATCH");
  std::printf(
      "served relay_core FDR without injecting it: R2=%.3f, Spearman rho=%.3f\n",
      ml::r2_score(target.fdr, reloaded),
      ml::spearman_rho(target.fdr, reloaded));
  std::printf(
      "\nRaw-feature transfer fails outright (R2 down to %.1f: wildly\n"
      "mis-scaled predictions). Per-circuit domain standardization puts the\n"
      "predictions on a sane scale and recovers part of the vulnerability\n"
      "ranking (rho > 0); the remaining absolute-scale gap is the target's\n"
      "circuit-level FDR (FIFO occupancy physics the per-FF features cannot\n"
      "see) and is tracked in the ROADMAP. The serving mechanics are exact:\n"
      "train once, persist, reload anywhere, predict bit-identically.\n",
      worst_raw_r2);
  return mismatches == 0 ? 0 : 1;
}
