// Cross-circuit generalization: train the FDR model on one design (the MAC
// core) and predict a structurally different one (the pipelined checksum
// datapath) — a step beyond the paper, which trains and predicts within a
// single circuit. The per-instance features are design-agnostic, so the
// experiment probes whether "what makes a flip-flop vulnerable" transfers.
//
//   ./build/examples/cross_circuit

#include <cstdio>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "fault/campaign.hpp"
#include "features/extractor.hpp"
#include "ml/metrics.hpp"
#include "ml/model_selection.hpp"
#include "ml/model_zoo.hpp"
#include "util/table_printer.hpp"

namespace {

using namespace ffr;

struct CircuitData {
  features::FeatureMatrix features;
  linalg::Vector fdr;
};

CircuitData gather(const netlist::Netlist& nl, const sim::Testbench& tb,
                   std::size_t injections) {
  const sim::GoldenResult golden = sim::run_golden(nl, tb);
  fault::CampaignConfig config;
  config.injections_per_ff = injections;
  const fault::CampaignResult campaign = fault::run_campaign(nl, tb, golden, config);
  CircuitData data;
  data.features = features::extract_features(nl, golden.activity);
  data.fdr = campaign.fdr_vector();
  return data;
}

}  // namespace

int main() {
  // Source domain: the MAC core (small config for speed).
  circuits::MacConfig mac_config;
  mac_config.tx_depth_log2 = 4;
  mac_config.rx_depth_log2 = 4;
  const circuits::MacCore mac = circuits::build_mac_core(mac_config);
  const circuits::MacTestbench mac_bench = circuits::build_mac_testbench(mac, {});
  std::printf("train circuit: %s\n", mac.netlist.summary().c_str());
  const CircuitData source = gather(mac.netlist, mac_bench.tb, 64);

  // Target domain: the pipeline core (never fault-injected for training).
  const circuits::PipelineCore pipe = circuits::build_pipeline_core();
  const circuits::PipelineTestbench pipe_bench =
      circuits::build_pipeline_testbench(pipe, 96, 0.7, 0x51);
  std::printf("test circuit : %s\n\n", pipe.netlist.summary().c_str());
  const CircuitData target = gather(pipe.netlist, pipe_bench.tb, 64);

  util::TablePrinter table({"Model", "in-domain R2 (MAC, CV-like 50/50)",
                            "cross-circuit R2 (-> pipeline)", "cross MAE"});
  for (const char* name : {"linear", "knn_paper", "svr_paper", "random_forest"}) {
    // In-domain sanity: split the MAC data in half.
    const auto split = ml::train_test_split(source.fdr.size(), 0.5, 7);
    auto in_model = ml::make_model(name);
    in_model->fit(ml::take_rows(source.features.values, split.train),
                  ml::take(source.fdr, split.train));
    const double in_r2 = ml::r2_score(
        ml::take(source.fdr, split.test),
        in_model->predict(ml::take_rows(source.features.values, split.test)));

    // Cross-circuit: train on ALL of the MAC, predict the pipeline.
    auto cross_model = ml::make_model(name);
    cross_model->fit(source.features.values, source.fdr);
    const linalg::Vector pred = cross_model->predict(target.features.values);
    const double cross_r2 = ml::r2_score(target.fdr, pred);
    const double cross_mae = ml::mean_absolute_error(target.fdr, pred);

    table.add_row({name, util::TablePrinter::format(in_r2, 3),
                   util::TablePrinter::format(cross_r2, 3),
                   util::TablePrinter::format(cross_mae, 3)});
  }
  table.print();
  std::printf(
      "\nCross-circuit transfer fails outright (negative R2: worse than the\n"
      "mean predictor) while in-domain prediction is excellent — feature\n"
      "scales and vulnerability regimes are design-specific. This is direct\n"
      "evidence for the paper's design choice of training per circuit, and\n"
      "marks transfer/domain adaptation as genuine future work.\n");
  return 0;
}
