// Bring your own circuit: build a small serial-protocol design directly with
// the netlist builder + RTL lowering API, write a testbench for it, run a
// fault-injection campaign, extract the paper's features, and export the
// netlist as structural Verilog.
//
// The design: an 8-bit "frame sender" — bytes are written into a 4-entry
// FIFO, a serializer shifts each byte out LSB-first after a start bit, and a
// parity bit is appended (a minimal UART-style TX).
//
//   ./build/examples/custom_circuit

#include <cstdio>

#include "fault/campaign.hpp"
#include "features/extractor.hpp"
#include "netlist/builder.hpp"
#include "netlist/verilog_writer.hpp"
#include "rtl/arith.hpp"
#include "rtl/fifo.hpp"
#include "rtl/fsm.hpp"
#include "rtl/sequential.hpp"
#include "rtl/word.hpp"
#include "sim/runner.hpp"
#include "util/table_printer.hpp"

int main() {
  using namespace ffr;
  using netlist::NetId;

  // ---- 1. the design ---------------------------------------------------------
  netlist::NetlistBuilder bld("uart_tx");
  const NetId wr = bld.input("wr");
  const auto din = bld.input_bus("din", 8);

  enum State : std::size_t { kIdle, kStart, kShift, kParity, kNumStates };
  const NetId fifo_rd = bld.forward_wire("fifo_rd");
  const NetId bit_en = bld.forward_wire("bit_en");
  const NetId bit_clr = bld.forward_wire("bit_clr");

  rtl::Fifo fifo = rtl::make_fifo(bld, "txq", din, 2, wr, fifo_rd);
  const NetId not_empty = bld.inv(fifo.empty);
  rtl::Counter bit_cnt = rtl::make_counter_clear(bld, "bit_cnt", 3, bit_en, bit_clr);
  const NetId last_bit = rtl::equals_const(bld, bit_cnt.reg.q, 7);

  rtl::FsmBuilder fsm_b(bld, "tx_fsm", kNumStates, kIdle);
  fsm_b.transition(kIdle, kStart, not_empty);
  fsm_b.transition(kStart, kShift, bld.constant(true));
  fsm_b.transition(kShift, kParity, last_bit);
  fsm_b.transition(kParity, kIdle, bld.constant(true));
  rtl::Fsm fsm = fsm_b.build();

  bld.bind_forward_wire(fifo_rd, fsm.in_state(kStart));  // pop head on start
  bld.bind_forward_wire(bit_en, fsm.in_state(kShift));
  bld.bind_forward_wire(bit_clr, fsm.in_state(kIdle));

  // Shift register: loaded from the FIFO head while in START, shifts in SHIFT.
  const NetId load = fsm.in_state(kStart);
  const rtl::Word head = rtl::word_slice(fifo.dout, 0, 8);
  std::vector<NetId> shift_d = bld.forward_wires("shift_d", 8);
  rtl::Register shifter;
  {
    netlist::RegisterBus bus;
    bus.name = "shift_reg";
    for (std::size_t i = 0; i < 8; ++i) {
      netlist::FlipFlop ff =
          bld.dff(shift_d[i], false, "shift_reg[" + std::to_string(i) + "]");
      bus.flip_flops.push_back(ff.cell);
      shifter.ffs.push_back(ff);
      shifter.q.push_back(ff.q);
    }
    bld.add_register_bus(std::move(bus));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const NetId shifted = i + 1 < 8 ? shifter.q[i + 1] : bld.constant(false);
    const NetId hold_or_shift =
        bld.mux2(shifter.q[i], shifted, fsm.in_state(kShift));
    bld.bind_forward_wire(shift_d[i], bld.mux2(hold_or_shift, head[i], load));
  }

  // Running parity over the shifted-out bits; cleared while loading.
  const netlist::FlipFlop parity = bld.dff_loop(
      [&](NetId q) {
        const NetId accumulated =
            bld.mux2(q, bld.xor2(q, shifter.q[0]), fsm.in_state(kShift));
        return bld.and2(accumulated, bld.inv(load));
      },
      false, "parity_acc");

  // Serial output: start bit in START, data bit in SHIFT, parity in PARITY.
  const NetId data_or_parity =
      bld.mux2(shifter.q[0], parity.q, fsm.in_state(kParity));
  const NetId tx_bit = bld.or2(fsm.in_state(kStart),
                               bld.and2(data_or_parity, bld.inv(load)));
  const NetId tx_valid = bld.inv(fsm.in_state(kIdle));
  bld.output(tx_bit, "tx_bit");
  bld.output(tx_valid, "tx_valid");
  const netlist::Netlist nl = bld.build();
  std::printf("design : %s\n", nl.summary().c_str());

  // ---- 2. export as structural Verilog ----------------------------------------
  netlist::write_verilog_file("uart_tx.v", nl);
  std::printf("verilog: wrote uart_tx.v (%zu cells)\n", nl.num_cells());

  // ---- 3. a testbench ----------------------------------------------------------
  // Write 6 bytes with gaps; monitor the serial stream as 1-bit frames.
  const std::uint8_t payload[] = {0xA5, 0x3C, 0x01, 0xFF, 0x80, 0x7E};
  const std::size_t cycles = 160;
  sim::Stimulus stim(nl.primary_inputs().size(), cycles);
  const auto pi = [&](NetId net) {
    return static_cast<std::size_t>(nl.net(net).pi_index);
  };
  for (std::size_t i = 0; i < std::size(payload); ++i) {
    const std::size_t c = 2 + 14 * i;  // slower than the 11-cycle drain rate
    stim.set(pi(wr), c, true);
    for (std::size_t b = 0; b < 8; ++b) {
      stim.set(pi(din[b]), c, ((payload[i] >> b) & 1u) != 0);
    }
  }
  sim::Testbench tb;
  tb.stimulus = std::move(stim);
  tb.monitor.valid = tx_valid;
  tb.monitor.sop = tx_valid;
  // Frame delimiting is approximate for this demo: `wr` pulses act as end
  // markers. The stimulus is identical in every lane, so golden and faulty
  // runs see the same framing and comparisons stay exact.
  tb.monitor.eop = wr;
  tb.monitor.err = wr;
  tb.monitor.data = {tx_bit};
  tb.inject_begin = 2;
  tb.inject_end = cycles - 20;

  const sim::GoldenResult golden = sim::run_golden(nl, tb);
  std::printf("golden : %zu serial bursts observed\n\n", golden.frames.size());

  // ---- 4. fault-injection campaign + features ----------------------------------
  fault::CampaignConfig config;
  config.injections_per_ff = 48;
  const fault::CampaignResult campaign = fault::run_campaign(nl, tb, golden, config);
  for (const std::string& warning : campaign.warnings) {
    std::printf("warning: %s\n", warning.c_str());
  }
  const features::FeatureMatrix fm =
      features::extract_features(nl, golden.activity);

  util::TablePrinter table({"flip-flop", "FDR", "state changes", "fan-in",
                            "feedback loop"});
  const auto ffs = nl.flip_flops();
  for (std::size_t i = 0; i < ffs.size(); ++i) {
    table.add_row(
        {nl.cell(ffs[i]).name,
         util::TablePrinter::format(campaign.per_ff[i].fdr(), 3),
         util::TablePrinter::format(
             fm.values(i, features::index_of(features::Feature::kStateChanges)), 0),
         util::TablePrinter::format(
             fm.values(i, features::index_of(features::Feature::kFfFanIn)), 0),
         fm.values(i, features::index_of(features::Feature::kHasFeedbackLoop)) > 0
             ? "yes"
             : "no"});
  }
  table.print();
  return 0;
}
