// Quickstart: the library in ~60 lines.
//
// Builds the bundled 10GE-MAC-like circuit, runs the paper's estimation flow
// (fault-inject 30% of the flip-flops, learn features -> FDR with k-NN,
// predict the rest) and prints the most vulnerable flip-flop instances.
//
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "core/estimation_flow.hpp"
#include "core/report.hpp"

int main() {
  using namespace ffr;

  // 1. A gate-level design + its workload testbench. Any finalized
  //    netlist::Netlist with a sim::Testbench works here; the MAC core is
  //    the paper's case study.
  circuits::MacConfig circuit_config;
  circuit_config.tx_depth_log2 = 4;  // 16-entry FIFOs keep the demo snappy
  circuit_config.rx_depth_log2 = 4;
  const circuits::MacCore mac = circuits::build_mac_core(circuit_config);
  const circuits::MacTestbench bench = circuits::build_mac_testbench(mac, {});
  std::printf("circuit : %s\n", mac.netlist.summary().c_str());

  // 2. The estimation flow (paper Fig. 1): golden run -> features -> SFI on
  //    a training subset -> train -> predict every flip-flop.
  core::FlowConfig flow_config;
  flow_config.training_size = 0.3;   // inject only 30% of the flip-flops
  flow_config.injections_per_ff = 64;
  flow_config.model = "knn_paper";   // k=3, Manhattan, distance weights
  const core::FlowResult flow =
      core::run_estimation_flow(mac.netlist, bench.tb, flow_config);

  for (const std::string& warning : flow.warnings) {
    std::printf("warning : %s\n", warning.c_str());
  }
  std::printf("flow    : injected %llu faults (a flat campaign needs %llu; "
              "%.1fx cheaper)\n",
              static_cast<unsigned long long>(flow.injections_spent),
              static_cast<unsigned long long>(flow.injections_full),
              flow.cost_reduction());
  std::printf("estimate: circuit mean FDR = %.3f\n\n", flow.mean_fdr());

  // 3. Rank flip-flops by estimated Functional De-Rating.
  std::vector<std::size_t> order(flow.fdr.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return flow.fdr[a] > flow.fdr[b]; });
  std::printf("most vulnerable flip-flops (FDR, * = measured by injection):\n");
  const auto ffs = mac.netlist.flip_flops();
  for (std::size_t rank = 0; rank < 10; ++rank) {
    const std::size_t i = order[rank];
    std::printf("  %2zu. %-24s %.3f %s\n", rank + 1,
                mac.netlist.cell(ffs[i]).name.c_str(), flow.fdr[i],
                flow.is_train[i] ? "*" : "");
  }

  // 4. A full markdown report for the safety file.
  core::write_report("fdr_report.md", mac.netlist, flow);
  std::printf("\nwrote fdr_report.md\n");
  return 0;
}
