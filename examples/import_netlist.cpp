// Import a structural Verilog netlist and make it a first-class citizen of
// the estimation flow: parse + elaborate the file against the NanGate45-style
// default library, print the design census, and prove the round-trip
// contract on the spot (write -> read -> write byte-identical, read -> write
// -> read structurally equal). With --emit the canonical re-export is
// printed to stdout, so the tool doubles as a netlist normalizer.
//
//   ./build/examples/import_netlist <design.v> [--emit]
//
// Try it on a design the repo generates itself:
//
//   ./build/examples/custom_circuit        # writes uart_tx.v
//   ./build/examples/import_netlist uart_tx.v
//
// Exit status: 0 on a clean import, 1 on a parse/elaboration error (the
// positioned file:line:col diagnostic is printed to stderr) or a round-trip
// mismatch.

#include <cstdio>
#include <exception>
#include <string>

#include "netlist/netlist.hpp"
#include "netlist/verilog_reader.hpp"
#include "netlist/verilog_writer.hpp"

int main(int argc, char** argv) {
  using namespace ffr;

  bool emit = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit") {
      emit = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: import_netlist <design.v> [--emit]\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: import_netlist <design.v> [--emit]\n");
    return 1;
  }

  try {
    const netlist::Netlist imported = netlist::read_verilog_file(path);
    std::fprintf(stderr, "imported %s\n", imported.summary().c_str());
    std::fprintf(stderr, "cell area: %.1f um^2\n", imported.total_area_um2());

    // Round-trip check: the canonical re-export must read back into a
    // structurally identical netlist and re-emit byte-for-byte.
    const std::string canonical = netlist::to_verilog(imported);
    const netlist::Netlist reread =
        netlist::read_verilog(canonical, "<round-trip>");
    std::string why;
    if (!netlist::structurally_equal(imported, reread, &why)) {
      std::fprintf(stderr, "round-trip FAILED (structural): %s\n", why.c_str());
      return 1;
    }
    if (netlist::to_verilog(reread) != canonical) {
      std::fprintf(stderr, "round-trip FAILED: re-export is not byte-stable\n");
      return 1;
    }
    std::fprintf(stderr, "round-trip OK (write->read->write byte-identical)\n");

    if (emit) std::fputs(canonical.c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
