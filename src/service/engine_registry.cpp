#include "service/engine_registry.hpp"

#include <future>
#include <optional>
#include <utility>

namespace ffr::service {

/// A cache slot. The netlist/testbench copies are written once by the
/// builder thread before the build future is signalled; every other access
/// happens after wait() on that future (release/acquire pairing), so the
/// copies and the engine need no further locking. The bookkeeping fields
/// (ready, last_use, acquisitions, bytes) are guarded by the registry mutex.
struct EngineRegistry::Entry {
  netlist::Netlist netlist{"pending"};          ///< Owned copy (see header).
  sim::Testbench testbench;                     ///< Owned copy.
  std::optional<fault::CampaignEngine> engine;  ///< Built against the copies.
  std::promise<void> build_done;
  std::shared_future<void> build;
  std::exception_ptr build_error;

  std::size_t bytes = 0;            ///< resident_bytes() after a ready build.
  std::uint64_t last_use = 0;       ///< LRU tick.
  std::uint64_t acquisitions = 0;   ///< acquire() calls served.
  bool ready = false;               ///< Build finished successfully.
};

EngineRegistry::EngineRegistry(RegistryConfig config, ServiceMetrics* metrics)
    : config_(config), metrics_(metrics) {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<ServiceMetrics>();
    metrics_ = owned_metrics_.get();
  }
}

std::shared_ptr<const fault::CampaignEngine> EngineRegistry::acquire(
    const netlist::Netlist& nl, const sim::Testbench& tb) {
  const ContentHash key = content_hash(nl, tb);

  std::shared_ptr<Entry> entry;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      metrics_->cache_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      entry = std::make_shared<Entry>();
      entry->build = entry->build_done.get_future().share();
      entries_.emplace(key, entry);
      builder = true;
      metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (builder) {
    try {
      entry->netlist = nl;
      entry->testbench = tb;
      // The golden simulation — the expensive step the cache amortizes —
      // runs here, outside the registry lock.
      entry->engine.emplace(entry->netlist, entry->testbench);
      metrics_->engine_builds.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      entry->build_error = std::current_exception();
      entry->build_done.set_value();
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
      update_gauges_locked();
      throw;
    }
    entry->build_done.set_value();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) {
      // `bytes` is mutex-guarded (a concurrent evict() of a mid-build slot
      // reads it for the eviction record), so it is published here, not on
      // the unlocked build path above.
      entry->bytes = entry->engine->resident_bytes();
      entry->ready = true;
      entry->last_use = ++use_tick_;
      ++entry->acquisitions;
      enforce_budget_locked(key);
      update_gauges_locked();
    }
    // else: the slot was explicitly evicted mid-build; serve the engine to
    // this caller anyway — the aliasing shared_ptr keeps it alive.
  } else {
    entry->build.wait();
    if (entry->build_error != nullptr) {
      std::rethrow_exception(entry->build_error);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    entry->last_use = ++use_tick_;
    ++entry->acquisitions;
  }

  return std::shared_ptr<const fault::CampaignEngine>(entry, &*entry->engine);
}

void EngineRegistry::evict_locked(
    std::map<ContentHash, std::shared_ptr<Entry>>::iterator it) {
  const std::shared_ptr<Entry>& entry = it->second;
  EvictionRecord record;
  record.key = it->first;
  record.circuit = entry->ready ? entry->netlist.name() : "(building)";
  record.bytes = entry->bytes;
  record.acquisitions = entry->acquisitions;
  eviction_log_.push_back(std::move(record));
  metrics_->cache_evictions.fetch_add(1, std::memory_order_relaxed);
  metrics_->evicted_bytes.fetch_add(entry->bytes, std::memory_order_relaxed);
  entries_.erase(it);
}

void EngineRegistry::enforce_budget_locked(const ContentHash& pinned) {
  if (config_.max_resident_bytes == 0) return;
  for (;;) {
    std::size_t total = 0;
    for (const auto& [key, entry] : entries_) {
      if (entry->ready) total += entry->bytes;
    }
    if (total <= config_.max_resident_bytes) return;
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second->ready || it->first == pinned) continue;
      if (victim == entries_.end() ||
          it->second->last_use < victim->second->last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // only the pinned entry remains
    evict_locked(victim);
  }
}

void EngineRegistry::update_gauges_locked() {
  std::size_t engines = 0;
  std::size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry->ready) continue;
    ++engines;
    bytes += entry->bytes;
  }
  metrics_->resident_engines.store(engines, std::memory_order_relaxed);
  metrics_->resident_bytes.store(bytes, std::memory_order_relaxed);
}

bool EngineRegistry::evict(const ContentHash& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  evict_locked(it);
  update_gauges_locked();
  return true;
}

void EngineRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!entries_.empty()) evict_locked(entries_.begin());
  update_gauges_locked();
}

std::size_t EngineRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) ++ready;
  }
  return ready;
}

std::size_t EngineRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->ready) bytes += entry->bytes;
  }
  return bytes;
}

std::vector<EvictionRecord> EngineRegistry::eviction_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return eviction_log_;
}

EngineRegistry& default_engine_registry() {
  static EngineRegistry registry;
  return registry;
}

}  // namespace ffr::service
