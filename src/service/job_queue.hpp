#pragma once
/// \file job_queue.hpp
/// \brief The campaign-and-prediction service: an async job queue over the
/// engine registry, a load-once TransferModel cache, and service metrics.
///
/// FfrService is the long-lived front end of the whole flow — the
/// "millions of users" architecture the paper's cost story implies: most
/// requests should hit a model or a cache, not a simulator. It accepts two
/// job classes:
///
///  - **Campaign jobs** (submit_campaign): a full fault-injection campaign
///    (any fault::CampaignConfig, including ff_subset shards) against the
///    registry-cached engine for the (netlist, testbench) content — repeated
///    and concurrent requests share one golden run, checkpoint set and
///    compiled stimulus, and results are bit-identical to a direct
///    CampaignEngine::run. submit_sharded_campaign() splits one campaign
///    into N shard jobs plus a merge job (fault/shard.hpp), optionally
///    resuming shards from partial files on disk.
///  - **Predict jobs** (submit_predict): per-flip-flop FDR from a persisted
///    core::TransferModel (PR 5's train-once/predict-many serving). The
///    model file is loaded once per path and shared by every job. The
///    feature-matrix overload never touches a simulator at all; the
///    (netlist, testbench) overload needs only the golden activity, which
///    comes from the registry-cached engine — so after the first request on
///    a design, thousands of predictions run without simulating anything.
///
/// Jobs get monotonically increasing ids and move through
/// queued -> running -> done/failed; queued jobs can be cancelled. Results
/// are polled (status) or awaited (wait / wait_all) and fetched with
/// campaign_result / prediction. Workers run on the existing
/// util::ThreadPool; every metric lands in the shared ServiceMetrics
/// (cache hits/misses, evictions, queue depth, per-job-class latency).
///
/// Lifetimes: netlists/testbenches passed to submit_* must stay alive until
/// that job reaches a terminal state (the registry copies them when the
/// worker first touches the pair — the same contract as CampaignEngine).
/// The service drains in-flight jobs in its destructor.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/transfer_flow.hpp"
#include "fault/campaign.hpp"
#include "features/extractor.hpp"
#include "netlist/netlist.hpp"
#include "service/engine_registry.hpp"
#include "service/metrics.hpp"
#include "sim/testbench.hpp"

namespace ffr::service {

using JobId = std::uint64_t;

enum class JobClass { kCampaign, kPredict };
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] constexpr const char* to_string(JobClass job_class) noexcept {
  switch (job_class) {
    case JobClass::kCampaign: return "campaign";
    case JobClass::kPredict: return "predict";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

/// Point-in-time view of one job.
struct JobStatus {
  JobId id = 0;
  JobClass job_class = JobClass::kCampaign;
  JobState state = JobState::kQueued;
  std::string error;          ///< what() of the failure (kFailed only).
  double queue_seconds = 0.0; ///< Submit -> start (or cancel).
  double run_seconds = 0.0;   ///< Start -> terminal state (0 while running).
};

struct ServiceConfig {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t num_workers = 0;
  /// Engine-registry byte budget and policy.
  RegistryConfig registry;
};

class FfrService {
 public:
  explicit FfrService(ServiceConfig config = {});
  /// Drains: blocks until every submitted job reached a terminal state.
  ~FfrService();

  FfrService(const FfrService&) = delete;
  FfrService& operator=(const FfrService&) = delete;

  // ---- submission ----------------------------------------------------------

  /// Enqueues a full campaign on the registry-cached engine for this
  /// (netlist, testbench) content. `config.ff_subset` makes this a shard.
  [[nodiscard]] JobId submit_campaign(const netlist::Netlist& nl,
                                      const sim::Testbench& tb,
                                      fault::CampaignConfig config = {});

  /// Enqueues a k-of-N sharded campaign (fault/shard.hpp): `shard_count`
  /// shard jobs — each running one ShardSpec{k, N} share of the campaign on
  /// the registry-cached engine — followed by one merge job whose
  /// CampaignResult is bit-identical to an unsharded CampaignEngine::run of
  /// `config`. The merge job is enqueued after every shard job on the FIFO
  /// worker pool, so it can never starve its own shards even on one worker.
  /// A non-empty `partial_dir` enables resume-from-partial: each shard job
  /// first looks for its canonical partial file there (skipping the engine
  /// run when a matching one exists, counted in metrics shards_resumed vs
  /// shards_completed) and persists its partial on completion. Partials that
  /// exist but fail validation fail that shard job — and thereby the merge.
  /// `config.shard` is overwritten per shard job. Returns the merge job id
  /// (a kCampaign job: fetch with campaign_result); when `shard_jobs` is
  /// non-null the N shard job ids are appended to it (each also a kCampaign
  /// job holding its own share as result).
  /// \throws std::invalid_argument when shard_count is 0.
  [[nodiscard]] JobId submit_sharded_campaign(
      const netlist::Netlist& nl, const sim::Testbench& tb,
      fault::CampaignConfig config, std::size_t shard_count,
      std::filesystem::path partial_dir = {},
      std::vector<JobId>* shard_jobs = nullptr);

  /// Enqueues a prediction of every flip-flop's FDR in `nl` using the
  /// persisted transfer model at `model_path` (loaded once per path). Uses
  /// the cached engine's golden activity for features — no fault injection,
  /// and no simulation at all once the engine is cached.
  [[nodiscard]] JobId submit_predict(const std::filesystem::path& model_path,
                                     const netlist::Netlist& nl,
                                     const sim::Testbench& tb);

  /// Enqueues a prediction from an already-extracted raw feature matrix.
  /// Never constructs a simulator or an engine (pure model serving).
  [[nodiscard]] JobId submit_predict(const std::filesystem::path& model_path,
                                     features::FeatureMatrix features);

  // ---- lifecycle -----------------------------------------------------------

  /// Cancels a queued job. Returns true when the job was still queued (it
  /// moves to kCancelled and never runs); false when it already started,
  /// finished, or the id is unknown — running jobs are not interrupted.
  bool cancel(JobId id);

  /// \throws std::out_of_range on an unknown id.
  [[nodiscard]] JobStatus status(JobId id) const;

  /// Blocks until the job reaches a terminal state and returns it.
  JobStatus wait(JobId id);

  /// Blocks until every job submitted so far is terminal.
  void wait_all();

  // ---- results -------------------------------------------------------------

  /// Result of a done campaign job.
  /// \throws std::out_of_range on an unknown id, std::logic_error when the
  ///         job is not a done campaign job (failed jobs rethrow semantics:
  ///         the stored error is in status().error).
  [[nodiscard]] fault::CampaignResult campaign_result(JobId id) const;

  /// Predicted FDR vector of a done predict job (Netlist::flip_flops()
  /// order for the (netlist, testbench) overload, feature-row order for the
  /// feature-matrix overload).
  [[nodiscard]] linalg::Vector prediction(JobId id) const;

  // ---- shared components ---------------------------------------------------

  /// The transfer model for `model_path`, loading it on first use (one
  /// ml::load_model per path, shared across predict jobs and callers).
  /// \throws std::runtime_error on a missing or corrupt model file.
  [[nodiscard]] std::shared_ptr<const core::TransferModel> model(
      const std::filesystem::path& model_path);

  [[nodiscard]] EngineRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const ServiceMetrics& metrics() const noexcept { return metrics_; }

 private:
  struct Job;
  class Impl;

  void run_job(const std::shared_ptr<Job>& job);
  JobId enqueue(std::shared_ptr<Job> job);

  ServiceMetrics metrics_;
  EngineRegistry registry_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ffr::service
