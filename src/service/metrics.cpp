#include "service/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace ffr::service {

double latency_bucket_bound(std::size_t bucket) noexcept {
  if (bucket + 1 >= kLatencyBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  // 1e-4 s * 10^(bucket/2): 100us, ~316us, 1ms, ... up to ~3162s.
  return 1e-4 * std::pow(10.0, static_cast<double>(bucket) / 2.0);
}

void LatencyHistogram::record(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative clock glitches
  std::size_t bucket = 0;
  while (bucket + 1 < kLatencyBuckets && seconds > latency_bucket_bound(bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  samples_.fetch_add(1, std::memory_order_relaxed);
  total_micros_.fetch_add(static_cast<std::uint64_t>(seconds * 1e6),
                          std::memory_order_relaxed);
}

double LatencyHistogram::total_seconds() const noexcept {
  return static_cast<double>(total_micros_.load(std::memory_order_relaxed)) * 1e-6;
}

double LatencyHistogram::mean_seconds() const noexcept {
  const std::uint64_t n = samples();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

MetricsSnapshot ServiceMetrics::snapshot() const noexcept {
  MetricsSnapshot s;
  s.cache_hits = cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses.load(std::memory_order_relaxed);
  s.cache_evictions = cache_evictions.load(std::memory_order_relaxed);
  s.evicted_bytes = evicted_bytes.load(std::memory_order_relaxed);
  s.engine_builds = engine_builds.load(std::memory_order_relaxed);
  s.resident_engines = resident_engines.load(std::memory_order_relaxed);
  s.resident_bytes = resident_bytes.load(std::memory_order_relaxed);
  s.jobs_submitted = jobs_submitted.load(std::memory_order_relaxed);
  s.jobs_completed = jobs_completed.load(std::memory_order_relaxed);
  s.jobs_failed = jobs_failed.load(std::memory_order_relaxed);
  s.jobs_cancelled = jobs_cancelled.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth.load(std::memory_order_relaxed);
  s.shards_completed = shards_completed.load(std::memory_order_relaxed);
  s.shards_resumed = shards_resumed.load(std::memory_order_relaxed);
  s.campaign_jobs = campaign_seconds.samples();
  s.campaign_mean_seconds = campaign_seconds.mean_seconds();
  s.predict_jobs = predict_seconds.samples();
  s.predict_mean_seconds = predict_seconds.mean_seconds();
  return s;
}

namespace {

void append_counter(std::string& out, const char* name, std::uint64_t value) {
  out += "ffr_service_";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void append_histogram(std::string& out, const char* name,
                      const LatencyHistogram& histogram) {
  std::uint64_t cumulative = 0;
  for (std::size_t bucket = 0; bucket < kLatencyBuckets; ++bucket) {
    cumulative += histogram.bucket_count(bucket);
    const double bound = latency_bucket_bound(bucket);
    char label[32];
    if (std::isinf(bound)) {
      std::snprintf(label, sizeof label, "inf");
    } else {
      std::snprintf(label, sizeof label, "%g", bound);
    }
    out += "ffr_service_";
    out += name;
    out += "_seconds_le_";
    out += label;
    out += ' ';
    out += std::to_string(cumulative);
    out += '\n';
  }
  char line[96];
  std::snprintf(line, sizeof line, "ffr_service_%s_seconds_sum %.6f\n", name,
                histogram.total_seconds());
  out += line;
  append_counter(out, (std::string(name) + "_seconds_count").c_str(),
                 histogram.samples());
}

}  // namespace

std::string ServiceMetrics::to_text() const {
  const MetricsSnapshot s = snapshot();
  std::string out;
  out.reserve(1024);
  append_counter(out, "cache_hits", s.cache_hits);
  append_counter(out, "cache_misses", s.cache_misses);
  append_counter(out, "cache_evictions", s.cache_evictions);
  append_counter(out, "evicted_bytes", s.evicted_bytes);
  append_counter(out, "engine_builds", s.engine_builds);
  append_counter(out, "resident_engines", s.resident_engines);
  append_counter(out, "resident_bytes", s.resident_bytes);
  append_counter(out, "jobs_submitted", s.jobs_submitted);
  append_counter(out, "jobs_completed", s.jobs_completed);
  append_counter(out, "jobs_failed", s.jobs_failed);
  append_counter(out, "jobs_cancelled", s.jobs_cancelled);
  append_counter(out, "queue_depth", s.queue_depth);
  append_counter(out, "shards_completed", s.shards_completed);
  append_counter(out, "shards_resumed", s.shards_resumed);
  append_histogram(out, "campaign", campaign_seconds);
  append_histogram(out, "predict", predict_seconds);
  return out;
}

}  // namespace ffr::service
