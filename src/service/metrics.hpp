#pragma once
/// \file metrics.hpp
/// \brief Service observability: lock-free counters and latency histograms
/// for the campaign-and-prediction front end.
///
/// One ServiceMetrics instance is shared by the engine registry and the job
/// queue (every member is an atomic, so concurrent workers update it without
/// locking). snapshot() captures a plain-struct view for programmatic
/// assertions, and to_text() renders the whole surface as a
/// `name value` dump (one metric per line, histograms as cumulative `le`
/// buckets) for the ffr_service demo CLI and log scraping.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ffr::service {

/// Log-scale latency histogram: bucket k counts samples with
/// latency <= kLatencyBucketBounds[k]; the last bucket is unbounded.
inline constexpr std::size_t kLatencyBuckets = 16;

/// Upper bounds in seconds: 100us, 316us, 1ms, ... half-decade steps up to
/// ~316s, then +inf.
[[nodiscard]] double latency_bucket_bound(std::size_t bucket) noexcept;

/// Latency histogram with atomic buckets. record() is wait-free; readers
/// see a consistent-enough view for monitoring (no cross-bucket snapshot
/// atomicity, as usual for scrape-style metrics).
class LatencyHistogram {
 public:
  void record(double seconds) noexcept;

  [[nodiscard]] std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_seconds() const noexcept;
  /// Mean latency over all samples; 0 when empty.
  [[nodiscard]] double mean_seconds() const noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_.at(bucket).load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> total_micros_{0};
};

/// Plain-struct snapshot of every counter (histograms summarized as
/// count/mean), safe to copy around and assert on in tests.
struct MetricsSnapshot {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t engine_builds = 0;
  std::uint64_t resident_engines = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t shards_completed = 0;
  std::uint64_t shards_resumed = 0;
  std::uint64_t campaign_jobs = 0;
  double campaign_mean_seconds = 0.0;
  std::uint64_t predict_jobs = 0;
  double predict_mean_seconds = 0.0;
};

/// The shared metric surface. All counters are cumulative except
/// queue_depth / resident_* which are gauges maintained by their owners.
struct ServiceMetrics {
  // Engine registry.
  std::atomic<std::uint64_t> cache_hits{0};      ///< acquire() found the engine.
  std::atomic<std::uint64_t> cache_misses{0};    ///< acquire() had to build.
  std::atomic<std::uint64_t> cache_evictions{0}; ///< Entries dropped for budget.
  std::atomic<std::uint64_t> evicted_bytes{0};   ///< Bytes reclaimed by eviction.
  std::atomic<std::uint64_t> engine_builds{0};   ///< Golden simulations run.
  std::atomic<std::uint64_t> resident_engines{0};///< Gauge: cached entries.
  std::atomic<std::uint64_t> resident_bytes{0};  ///< Gauge: cached bytes.

  // Job queue.
  std::atomic<std::uint64_t> jobs_submitted{0};
  std::atomic<std::uint64_t> jobs_completed{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> jobs_cancelled{0};
  std::atomic<std::uint64_t> queue_depth{0};     ///< Gauge: queued + running.

  // Sharded campaigns (FfrService::submit_sharded_campaign).
  /// Shard jobs that actually executed on the engine (not resumed).
  std::atomic<std::uint64_t> shards_completed{0};
  /// Shard jobs satisfied by a partial file on disk (resume-from-partial).
  std::atomic<std::uint64_t> shards_resumed{0};

  // Per-job-class wall time (run only, queue wait excluded).
  LatencyHistogram campaign_seconds;
  LatencyHistogram predict_seconds;

  [[nodiscard]] MetricsSnapshot snapshot() const noexcept;

  /// Text dump, one `ffr_service_<name> <value>` line per metric plus
  /// cumulative histogram buckets (`..._le_<bound>`), stable ordering.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace ffr::service
