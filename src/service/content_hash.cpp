#include "service/content_hash.hpp"

#include <cstdio>
#include <stdexcept>

#include "netlist/verilog_writer.hpp"

namespace ffr::service {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kFnvOffsetLo = 0xcbf29ce484222325ull;
// A second, independent stream: the standard offset basis xor-perturbed so
// the two halves never agree by construction.
constexpr std::uint64_t kFnvOffsetHi = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t state, std::string_view bytes) noexcept {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime;
  }
  return state;
}

/// Appends "name" for a bound net, "-" for kNoNet (e.g. an unused monitor
/// error line), keeping the dump unambiguous via a trailing newline.
void append_net_ref(std::string& out, const netlist::Netlist& nl,
                    netlist::NetId id) {
  out += ' ';
  if (id == netlist::kNoNet) {
    out += '-';
  } else {
    out += nl.net(id).name;
  }
}

}  // namespace

std::string ContentHash::hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buffer, 32);
}

ContentHash hash_bytes(std::string_view bytes) noexcept {
  return ContentHash{fnv1a(kFnvOffsetLo, bytes), fnv1a(kFnvOffsetHi, bytes)};
}

std::string canonical_testbench(const netlist::Netlist& nl,
                                const sim::Testbench& tb) {
  std::string out = "ffr-testbench 1\n";
  out += "inject " + std::to_string(tb.inject_begin) + " " +
         std::to_string(tb.inject_end) + "\n";

  const sim::Stimulus& stimulus = tb.stimulus;
  out += "stimulus " + std::to_string(stimulus.num_inputs()) + " " +
         std::to_string(stimulus.num_cycles()) + "\n";
  // One row per primary input, waveform bits packed 4-per-hex-digit. Rows
  // are in netlist PI order (the order the stimulus is defined over).
  for (std::size_t pi = 0; pi < stimulus.num_inputs(); ++pi) {
    unsigned nibble = 0;
    for (std::size_t cycle = 0; cycle < stimulus.num_cycles(); ++cycle) {
      nibble = (nibble << 1) | (stimulus.get(pi, cycle) ? 1u : 0u);
      if (cycle % 4 == 3 || cycle + 1 == stimulus.num_cycles()) {
        out += "0123456789abcdef"[nibble & 0xF];
        nibble = 0;
      }
    }
    out += '\n';
  }

  for (const sim::Loopback& loop : tb.loopbacks) {
    out += "loopback";
    append_net_ref(out, nl, loop.from_net);
    append_net_ref(out, nl, loop.to_input);
    out += loop.initial ? " 1\n" : " 0\n";
  }

  out += "monitor";
  append_net_ref(out, nl, tb.monitor.valid);
  append_net_ref(out, nl, tb.monitor.sop);
  append_net_ref(out, nl, tb.monitor.eop);
  append_net_ref(out, nl, tb.monitor.err);
  for (const netlist::NetId data : tb.monitor.data) {
    append_net_ref(out, nl, data);
  }
  out += '\n';
  return out;
}

ContentHash content_hash(const netlist::Netlist& nl, const sim::Testbench& tb) {
  if (!nl.finalized()) {
    throw std::invalid_argument("content_hash: netlist is not finalized");
  }
  const std::string netlist_text = netlist::to_verilog(nl);
  const std::string bench_text = canonical_testbench(nl, tb);
  std::string stream;
  stream.reserve(netlist_text.size() + bench_text.size() + 48);
  stream += "netlist ";
  stream += std::to_string(netlist_text.size());
  stream += '\n';
  stream += netlist_text;
  stream += "testbench ";
  stream += std::to_string(bench_text.size());
  stream += '\n';
  stream += bench_text;
  return hash_bytes(stream);
}

}  // namespace ffr::service
