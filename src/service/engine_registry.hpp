#pragma once
/// \file engine_registry.hpp
/// \brief Content-addressed cache of fault::CampaignEngine instances.
///
/// Before this layer, golden-run reuse was *per-object*: every caller that
/// constructed its own CampaignEngine re-ran the golden simulation even for
/// a (netlist, testbench) pair another caller had already paid for. The
/// registry keys engines by service::content_hash, so concurrent and
/// repeated requests — from any thread, with any structurally identical
/// copy of the design — share one cached golden run, checkpoint set and
/// compiled stimulus.
///
/// ## Ownership
///
/// acquire() copies the netlist and testbench into the cache entry and
/// builds the engine against the owned copies, so a cached engine never
/// dangles when the caller's objects die — the lifetime coupling that makes
/// a long-lived cache safe for library users. The copy is structurally
/// identical (same ids, same creation order), so campaign results off the
/// cached engine are bit-identical to running on the caller's originals.
/// Returned shared_ptrs alias the entry: an engine stays alive while any
/// caller holds it, even after the registry evicts the entry.
///
/// ## Concurrency
///
/// A single mutex guards the table; golden simulations run *outside* it.
/// Concurrent acquire()s of the same unseen key coalesce onto one build via
/// a shared future (the losers block until the winner's golden run lands,
/// then count as cache hits). CampaignEngine::run is const and internally
/// synchronized, so any number of threads can run campaigns on one cached
/// engine concurrently.
///
/// ## Eviction
///
/// Entries are charged CampaignEngine::resident_bytes() (dominated by the
/// compiled stimulus; checkpoints are bit-packed at 1 bit/FF since PR 8)
/// against RegistryConfig::max_resident_bytes. When the budget overflows,
/// least-recently-used entries are dropped — except the entry being
/// returned, so the newest engine is always resident even if it alone
/// exceeds the budget. Evictions are counted in ServiceMetrics and recorded
/// per-entry in an eviction log the stress tests and the ffr_service demo
/// read back.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/engine.hpp"
#include "service/content_hash.hpp"
#include "service/metrics.hpp"

namespace ffr::service {

struct RegistryConfig {
  /// Byte budget for cached engines (resident_bytes sum). 0 = unlimited.
  /// The most recently acquired entry is never evicted, so a single engine
  /// larger than the budget still serves (with nothing else cached).
  std::size_t max_resident_bytes = std::size_t{256} << 20;
};

/// One eviction, oldest first in EngineRegistry::eviction_log().
struct EvictionRecord {
  ContentHash key;
  std::string circuit;        ///< Netlist name, for log readability.
  std::size_t bytes = 0;      ///< resident_bytes reclaimed.
  std::uint64_t acquisitions = 0;  ///< Hits + the initial miss it served.
};

class EngineRegistry {
 public:
  /// `metrics`, when non-null, must outlive the registry; hit/miss/eviction
  /// and residency gauges are maintained there (shared with the job queue
  /// when the registry lives inside an FfrService).
  explicit EngineRegistry(RegistryConfig config = {},
                          ServiceMetrics* metrics = nullptr);

  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  /// The engine for this (netlist, testbench) content, building (and
  /// caching) it on first sight. Blocks while another thread builds the
  /// same key. The caller's netlist/testbench are only read during the
  /// call — the cache owns private copies.
  /// \throws whatever CampaignEngine's constructor throws on an invalid
  ///         pair (e.g. a stimulus/PI mismatch); failed builds are not
  ///         cached, so a later acquire() retries.
  [[nodiscard]] std::shared_ptr<const fault::CampaignEngine> acquire(
      const netlist::Netlist& nl, const sim::Testbench& tb);

  /// Drops the entry for `key` if cached; returns whether anything was
  /// evicted. Engines still held by callers stay alive until released.
  bool evict(const ContentHash& key);

  /// Drops every cached entry (metrics count them as evictions).
  void clear();

  [[nodiscard]] const RegistryConfig& config() const noexcept { return config_; }

  /// Number of cached entries (ready builds only).
  [[nodiscard]] std::size_t size() const;
  /// Sum of resident_bytes over cached entries.
  [[nodiscard]] std::size_t resident_bytes() const;
  /// Every eviction since construction, oldest first (budget-driven,
  /// explicit evict() and clear() alike).
  [[nodiscard]] std::vector<EvictionRecord> eviction_log() const;

 private:
  struct Entry;

  void evict_locked(std::map<ContentHash, std::shared_ptr<Entry>>::iterator it);
  void enforce_budget_locked(const ContentHash& pinned);
  void update_gauges_locked();

  RegistryConfig config_;
  ServiceMetrics* metrics_;  ///< Never null (falls back to an owned instance).
  std::unique_ptr<ServiceMetrics> owned_metrics_;

  mutable std::mutex mutex_;
  std::map<ContentHash, std::shared_ptr<Entry>> entries_;
  std::vector<EvictionRecord> eviction_log_;
  std::uint64_t use_tick_ = 0;
};

/// The process-wide registry behind the library-level
/// core::run_estimation_flow(netlist, testbench) overload: repeated flow
/// invocations on content-identical pairs share one golden run without the
/// caller constructing an engine or a service. Default budget, private
/// metrics. Thread-safe (function-local static).
[[nodiscard]] EngineRegistry& default_engine_registry();

}  // namespace ffr::service
