#include "service/job_queue.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "fault/shard.hpp"
#include "service/content_hash.hpp"
#include "util/thread_pool.hpp"

namespace ffr::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point from,
                                     Clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

/// One submitted job. The payload closure and the result slots are written
/// only by the worker that runs the job; state, timing and error fields are
/// guarded by Impl::mutex.
struct FfrService::Job {
  JobId id = 0;
  JobClass job_class = JobClass::kCampaign;
  JobState state = JobState::kQueued;
  std::string error;

  Clock::time_point submitted;
  Clock::time_point started;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;

  /// The work itself; fills exactly one of the result slots below. Cleared
  /// after the run so captured netlist/testbench references are released as
  /// soon as the job is terminal.
  std::function<void(Job&)> work;
  std::optional<fault::CampaignResult> campaign;
  std::optional<linalg::Vector> prediction;
};

class FfrService::Impl {
 public:
  explicit Impl(std::size_t num_workers) : pool(num_workers) {}

  mutable std::mutex mutex;
  std::condition_variable job_done;
  std::map<JobId, std::shared_ptr<Job>> jobs;
  JobId next_id = 0;
  std::size_t active = 0;  ///< Jobs in kQueued or kRunning.

  std::mutex models_mutex;
  std::map<std::string, std::shared_ptr<const core::TransferModel>> models;

  /// Last member: destroyed first, draining queued work while the job table
  /// and the enclosing service's registry/metrics are still alive.
  util::ThreadPool pool;
};

FfrService::FfrService(ServiceConfig config)
    : registry_(config.registry, &metrics_),
      impl_(std::make_unique<Impl>(config.num_workers)) {}

FfrService::~FfrService() { wait_all(); }

JobId FfrService::enqueue(std::shared_ptr<Job> job) {
  job->submitted = Clock::now();
  JobId id = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    id = ++impl_->next_id;
    job->id = id;
    impl_->jobs.emplace(id, job);
    ++impl_->active;
  }
  metrics_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  impl_->pool.submit([this, job = std::move(job)] { run_job(job); });
  return id;
}

void FfrService::run_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    job->started = Clock::now();
    job->queue_seconds = seconds_between(job->submitted, job->started);
  }

  std::string error;
  bool failed = false;
  try {
    job->work(*job);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown error";
  }

  const double run_seconds = seconds_between(job->started, Clock::now());
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    job->state = failed ? JobState::kFailed : JobState::kDone;
    job->error = std::move(error);
    job->run_seconds = run_seconds;
    job->work = nullptr;
    --impl_->active;
  }
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  if (failed) {
    metrics_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
    (job->job_class == JobClass::kCampaign ? metrics_.campaign_seconds
                                           : metrics_.predict_seconds)
        .record(run_seconds);
  }
  impl_->job_done.notify_all();
}

JobId FfrService::submit_campaign(const netlist::Netlist& nl,
                                  const sim::Testbench& tb,
                                  fault::CampaignConfig config) {
  auto job = std::make_shared<Job>();
  job->job_class = JobClass::kCampaign;
  job->work = [this, &nl, &tb, config = std::move(config)](Job& self) {
    std::shared_ptr<const fault::CampaignEngine> engine = registry_.acquire(nl, tb);
    self.campaign = engine->run(config);
  };
  return enqueue(std::move(job));
}

JobId FfrService::submit_sharded_campaign(const netlist::Netlist& nl,
                                          const sim::Testbench& tb,
                                          fault::CampaignConfig config,
                                          std::size_t shard_count,
                                          std::filesystem::path partial_dir,
                                          std::vector<JobId>* shard_jobs) {
  if (shard_count == 0) {
    throw std::invalid_argument(
        "ffr_service: sharded campaign needs shard_count >= 1");
  }
  // One slot per shard, written only by that shard's worker; the merge job
  // reads a slot only after wait() observed the shard job done, so the
  // job-state mutex orders every write before the read.
  auto partials = std::make_shared<
      std::vector<std::optional<fault::CampaignPartial>>>(shard_count);

  std::vector<JobId> ids;
  ids.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    fault::CampaignConfig shard_config = config;
    shard_config.shard.index = k;
    shard_config.shard.count = shard_count;
    auto job = std::make_shared<Job>();
    job->job_class = JobClass::kCampaign;
    job->work = [this, &nl, &tb, shard_config = std::move(shard_config),
                 partial_dir, partials, k](Job& self) {
      std::shared_ptr<const fault::CampaignEngine> engine =
          registry_.acquire(nl, tb);
      const std::string hash = content_hash(nl, tb).hex();
      fault::CampaignPartial partial;
      if (partial_dir.empty()) {
        partial = fault::run_shard(*engine, shard_config, hash);
        metrics_.shards_completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        bool resumed = false;
        partial = fault::load_or_run_shard(*engine, shard_config, hash,
                                           partial_dir, &resumed);
        (resumed ? metrics_.shards_resumed : metrics_.shards_completed)
            .fetch_add(1, std::memory_order_relaxed);
      }
      self.campaign = partial.result;
      (*partials)[k] = std::move(partial);
    };
    ids.push_back(enqueue(std::move(job)));
  }
  if (shard_jobs != nullptr) {
    shard_jobs->insert(shard_jobs->end(), ids.begin(), ids.end());
  }

  // Enqueued after every shard job: the FIFO pool pops the merge only once
  // all shards are at least running, so blocking in wait() here can never
  // deadlock the pool — even with a single worker, which runs the shards to
  // completion before reaching this job.
  auto merge = std::make_shared<Job>();
  merge->job_class = JobClass::kCampaign;
  merge->work = [this, ids = std::move(ids), partials](Job& self) {
    std::vector<fault::CampaignPartial> collected;
    collected.reserve(ids.size());
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const JobStatus shard_status = wait(ids[k]);
      if (shard_status.state != JobState::kDone) {
        throw std::runtime_error(
            "ffr_service: shard job " + std::to_string(ids[k]) + " (shard " +
            std::to_string(k) + ") " +
            std::string(to_string(shard_status.state)) +
            (shard_status.error.empty() ? "" : ": " + shard_status.error));
      }
      collected.push_back(std::move(*(*partials)[k]));
    }
    self.campaign = fault::merge_partials(collected);
  };
  return enqueue(std::move(merge));
}

JobId FfrService::submit_predict(const std::filesystem::path& model_path,
                                 const netlist::Netlist& nl,
                                 const sim::Testbench& tb) {
  auto job = std::make_shared<Job>();
  job->job_class = JobClass::kPredict;
  job->work = [this, model_path, &nl, &tb](Job& self) {
    std::shared_ptr<const core::TransferModel> transfer = model(model_path);
    // The cached engine already holds the golden activity trace, so this
    // never re-simulates on a warm cache (and never fault-injects at all).
    std::shared_ptr<const fault::CampaignEngine> engine = registry_.acquire(nl, tb);
    self.prediction = transfer->predict(
        features::extract_features(engine->netlist(), engine->golden().activity));
  };
  return enqueue(std::move(job));
}

JobId FfrService::submit_predict(const std::filesystem::path& model_path,
                                 features::FeatureMatrix features) {
  auto job = std::make_shared<Job>();
  job->job_class = JobClass::kPredict;
  job->work = [this, model_path,
               features = std::move(features)](Job& self) {
    self.prediction = model(model_path)->predict(features);
  };
  return enqueue(std::move(job));
}

bool FfrService::cancel(JobId id) {
  bool cancelled = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->jobs.find(id);
    if (it == impl_->jobs.end() || it->second->state != JobState::kQueued) {
      return false;
    }
    Job& job = *it->second;
    job.state = JobState::kCancelled;
    job.queue_seconds = seconds_between(job.submitted, Clock::now());
    job.work = nullptr;
    --impl_->active;
    cancelled = true;
  }
  metrics_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  impl_->job_done.notify_all();
  return cancelled;
}

namespace {

[[nodiscard]] bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

}  // namespace

JobStatus FfrService::status(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    throw std::out_of_range("ffr_service: unknown job id " + std::to_string(id));
  }
  const Job& job = *it->second;
  JobStatus status;
  status.id = job.id;
  status.job_class = job.job_class;
  status.state = job.state;
  status.error = job.error;
  status.queue_seconds = job.queue_seconds;
  status.run_seconds = job.run_seconds;
  return status;
}

JobStatus FfrService::wait(JobId id) {
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    auto it = impl_->jobs.find(id);
    if (it == impl_->jobs.end()) {
      throw std::out_of_range("ffr_service: unknown job id " +
                              std::to_string(id));
    }
    std::shared_ptr<Job> job = it->second;
    impl_->job_done.wait(lock, [&job] { return is_terminal(job->state); });
  }
  return status(id);
}

void FfrService::wait_all() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->job_done.wait(lock, [this] { return impl_->active == 0; });
}

fault::CampaignResult FfrService::campaign_result(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    throw std::out_of_range("ffr_service: unknown job id " + std::to_string(id));
  }
  const Job& job = *it->second;
  if (job.job_class != JobClass::kCampaign || job.state != JobState::kDone ||
      !job.campaign.has_value()) {
    throw std::logic_error(
        "ffr_service: job " + std::to_string(id) + " is not a done campaign (" +
        std::string(to_string(job.job_class)) + "/" +
        std::string(to_string(job.state)) +
        (job.error.empty() ? "" : ": " + job.error) + ")");
  }
  return *job.campaign;
}

linalg::Vector FfrService::prediction(JobId id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end()) {
    throw std::out_of_range("ffr_service: unknown job id " + std::to_string(id));
  }
  const Job& job = *it->second;
  if (job.job_class != JobClass::kPredict || job.state != JobState::kDone ||
      !job.prediction.has_value()) {
    throw std::logic_error(
        "ffr_service: job " + std::to_string(id) + " is not a done predict (" +
        std::string(to_string(job.job_class)) + "/" +
        std::string(to_string(job.state)) +
        (job.error.empty() ? "" : ": " + job.error) + ")");
  }
  return *job.prediction;
}

std::shared_ptr<const core::TransferModel> FfrService::model(
    const std::filesystem::path& model_path) {
  const std::string key = model_path.lexically_normal().string();
  std::lock_guard<std::mutex> lock(impl_->models_mutex);
  auto it = impl_->models.find(key);
  if (it != impl_->models.end()) return it->second;
  auto loaded = std::make_shared<const core::TransferModel>(
      core::TransferModel::load(model_path));
  impl_->models.emplace(key, loaded);
  return loaded;
}

}  // namespace ffr::service
