#pragma once
/// \file content_hash.hpp
/// \brief Content-addressed keys for (netlist, testbench) pairs.
///
/// The service layer caches one fault::CampaignEngine per *content* of a
/// design-plus-workload pair, not per object: two structurally identical
/// netlists driven by the same stimulus — even one re-imported from a
/// Verilog dump, whose NetIds differ — must land on the same cache entry.
/// The key is a 128-bit FNV-1a hash over two canonical byte streams:
///
///   1. the netlist rendered by netlist::to_verilog(), which is
///      deterministic and byte-stable (the round-trip contract of the
///      Verilog writer), and
///   2. a canonical testbench dump (canonical_testbench()) that refers to
///      nets by *name*, so it is invariant under NetId remapping — a
///      testbench rebound with sim::retarget_testbench hashes identically.
///
/// 128 bits of FNV-1a is not cryptographic; it keys a trusted in-process
/// cache where an accidental collision is the only concern (probability
/// ~n^2 / 2^128 for n cached designs — negligible).

#include <cstdint>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"
#include "sim/testbench.hpp"

namespace ffr::service {

/// A 128-bit content hash, comparable and renderable as 32 hex digits.
struct ContentHash {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] bool operator==(const ContentHash&) const = default;
  /// Lexicographic (hi, lo) order so hashes can key ordered containers.
  [[nodiscard]] bool operator<(const ContentHash& other) const noexcept {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 lowercase hex digits, hi word first.
  [[nodiscard]] std::string hex() const;
};

/// FNV-1a over `bytes`, folded into both halves with distinct offset bases.
[[nodiscard]] ContentHash hash_bytes(std::string_view bytes) noexcept;

/// Canonical text form of a testbench *relative to its netlist*: the
/// injection window, the packed stimulus waveforms, and the loopback /
/// packet-monitor bindings spelled with net names (never NetIds). Two
/// testbenches that drive structurally identical netlists identically
/// produce identical dumps.
/// \throws std::out_of_range when the testbench references a net outside
///         the netlist (a mismatched pair).
[[nodiscard]] std::string canonical_testbench(const netlist::Netlist& nl,
                                              const sim::Testbench& tb);

/// The service cache key: hash of the canonical netlist and testbench byte
/// streams (length-delimited, so the concatenation is unambiguous).
/// \throws std::invalid_argument when the netlist is not finalized.
[[nodiscard]] ContentHash content_hash(const netlist::Netlist& nl,
                                       const sim::Testbench& tb);

}  // namespace ffr::service
