#pragma once
/// \file mac_core.hpp
/// \brief A 10GE-MAC-like gate-level design standing in for the OpenCores Ethernet
/// 10GE MAC used in the paper (see DESIGN.md for the substitution argument).
///
/// The core implements: a user TX packet interface feeding a transmit FIFO,
/// a transmit engine (preamble/SFD framing, CRC-32 FCS generation, XGMII-style
/// start/terminate control characters, inter-packet gap), a receive engine
/// (start detection, SFD hunt, CRC residue check, FCS stripping via a 4-byte
/// delay line), a receive FIFO with an end-marker convention, statistics
/// counters, a config register and a decorative BIST block. All lowered to
/// NanGate45-style gates via src/rtl.

#include <cstdint>

#include "netlist/netlist.hpp"
#include "sim/testbench.hpp"

namespace ffr::circuits {

struct MacConfig {
  std::size_t tx_depth_log2 = 5;  // 32-entry TX FIFO
  std::size_t rx_depth_log2 = 5;  // 32-entry RX FIFO
  bool include_stats = true;      // frame/octet/error counters + status port
  bool include_bist = true;       // free-running LFSR + signature register
};

/// XGMII-ish control characters (one byte lane).
inline constexpr std::uint8_t kXgmiiIdle = 0x07;
inline constexpr std::uint8_t kXgmiiStart = 0xFB;
inline constexpr std::uint8_t kXgmiiTerminate = 0xFD;
inline constexpr std::uint8_t kPreambleByte = 0x55;
inline constexpr std::uint8_t kSfdByte = 0xD5;

/// Primary-input net ids of every port (data buses LSB-first).
struct MacInputPorts {
  netlist::NetId tx_wr, tx_sop, tx_eop;
  std::vector<netlist::NetId> tx_data;  // 8
  netlist::NetId rx_rd;
  netlist::NetId xg_rx_ctrl;
  std::vector<netlist::NetId> xg_rx_data;  // 8
  netlist::NetId cfg_load;
  std::vector<netlist::NetId> cfg_data;  // 8
};

/// Output net ids (the nets marked as primary outputs).
struct MacOutputPorts {
  netlist::NetId tx_full;
  netlist::NetId xg_tx_ctrl;
  std::vector<netlist::NetId> xg_tx_data;  // 8
  netlist::NetId rx_valid, rx_sop, rx_eop, rx_err;
  std::vector<netlist::NetId> rx_data;  // 8
  std::vector<netlist::NetId> status;   // 8 (empty if !include_stats)
};

struct MacCore {
  netlist::Netlist netlist{"mac_core"};
  MacInputPorts in;
  MacOutputPorts out;

  /// Monitor spec over the RX packet interface, ready for sim::Testbench.
  [[nodiscard]] sim::PacketMonitorSpec packet_monitor() const;

  /// XGMII TX -> RX registered loopback connections (testbench wiring).
  [[nodiscard]] std::vector<sim::Loopback> xgmii_loopback() const;
};

[[nodiscard]] MacCore build_mac_core(const MacConfig& config = {});

}  // namespace ffr::circuits
