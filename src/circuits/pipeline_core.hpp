#pragma once
/// \file pipeline_core.hpp
/// \brief A second evaluation circuit: a 4-stage pipelined checksum/transform
/// datapath ("pipeline_core"). Structurally different from the MAC — no
/// FIFOs, deeper combinational stages, an accumulator loop — which makes it
/// useful for cross-circuit generalization experiments (train the model on
/// one design, predict another) and as an extra example scenario.
///
/// Datapath: in each cycle, when `in_valid` is high, the core takes a byte,
/// (S1) registers it, (S2) xors it with a rotating key and adds a round
/// constant, (S3) accumulates it into a 16-bit running sum with
/// rotate-by-bus-position, (S4) emits the transformed byte plus a final
/// parity tag. A 16-bit accumulator with feedback gives long error retention.

#include "netlist/netlist.hpp"
#include "sim/testbench.hpp"

namespace ffr::circuits {

struct PipelineConfig {
  std::size_t stages = 4;      // >= 2 (first and last are fixed roles)
  std::size_t key_bits = 16;   // rotating key register width
};

struct PipelineCore {
  netlist::Netlist netlist{"pipeline_core"};
  // Inputs.
  netlist::NetId in_valid{};
  std::vector<netlist::NetId> in_data;  // 8
  netlist::NetId key_load{};
  std::vector<netlist::NetId> key_data;  // 8 (loaded twice for 16-bit key)
  // Outputs.
  netlist::NetId out_valid{};
  std::vector<netlist::NetId> out_data;  // 8
  netlist::NetId out_parity{};
  std::vector<netlist::NetId> out_sum;  // 16 accumulator taps

  [[nodiscard]] sim::PacketMonitorSpec byte_monitor() const;
};

[[nodiscard]] PipelineCore build_pipeline_core(const PipelineConfig& config = {});

/// Open-loop workload: `num_bytes` random bytes with gaps; monitor treats
/// every valid output byte as a 1-byte frame.
struct PipelineTestbench {
  sim::Testbench tb;
  std::vector<std::uint8_t> sent_bytes;
};

[[nodiscard]] PipelineTestbench build_pipeline_testbench(
    const PipelineCore& core, std::size_t num_bytes = 96, double duty_cycle = 0.7,
    std::uint64_t seed = 0x9E37);

}  // namespace ffr::circuits
