#pragma once
// Workload generator for the MAC core, mirroring the paper's testbench:
// "writes several packets to the transmit packet interface … XGMII TX is
// looped back to XGMII RX … the testbench reads frames from the packet
// receive interface". Frames have random lengths/payloads from a seeded RNG;
// the XGMII loopback is part of the returned sim::Testbench.

#include <cstdint>
#include <vector>

#include "circuits/mac_core.hpp"
#include "sim/testbench.hpp"
#include "util/rng.hpp"

namespace ffr::circuits {

struct MacTestbenchConfig {
  std::size_t num_frames = 10;
  std::size_t min_payload = 16;   // bytes
  std::size_t max_payload = 40;   // bytes
  /// Idle cycles between user writes. Must exceed the TX engine's per-frame
  /// overhead (start + preamble + FCS + terminate + IPG ~ 23 cycles) or the
  /// transmit FIFO accumulates backlog and eventually overflows.
  std::size_t inter_frame_gap = 32;
  std::size_t tail_cycles = 120;  // drain time after the last write
  /// RX user reads in on/off bursts of this length (0 = read every cycle);
  /// bursty reading keeps the receive FIFO partially occupied so its storage
  /// cells carry live data for realistic fault exposure.
  std::size_t rx_read_burst = 16;
  std::uint64_t seed = 0xB0B0;
};

struct MacTestbench {
  sim::Testbench tb;
  std::vector<std::vector<std::uint8_t>> sent_payloads;
};

[[nodiscard]] MacTestbench build_mac_testbench(const MacCore& mac,
                                               const MacTestbenchConfig& config = {});

}  // namespace ffr::circuits
