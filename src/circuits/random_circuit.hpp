#pragma once
// Seeded random netlist generator for property-based testing: random DAGs of
// combinational gates between random register stages. Every generated
// netlist passes Netlist::finalize() (single driver, acyclic combinational
// logic) by construction, so the simulators, graph analyses and exporters
// can be fuzzed against thousands of distinct shapes.

#include <cstdint>

#include "netlist/netlist.hpp"

namespace ffr::circuits {

struct RandomCircuitConfig {
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 3;
  std::size_t num_gates = 40;
  std::size_t num_flip_flops = 10;
  double bus_probability = 0.5;  // chance FFs are grouped into buses
  std::uint64_t seed = 1;
};

[[nodiscard]] netlist::Netlist build_random_circuit(
    const RandomCircuitConfig& config = {});

}  // namespace ffr::circuits
