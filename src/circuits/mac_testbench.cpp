#include "circuits/mac_testbench.hpp"

#include <stdexcept>

namespace ffr::circuits {

MacTestbench build_mac_testbench(const MacCore& mac,
                                 const MacTestbenchConfig& config) {
  if (config.min_payload < 5 || config.max_payload < config.min_payload) {
    throw std::invalid_argument(
        "build_mac_testbench: payload must be >= 5 bytes (FCS delay line)");
  }
  util::Rng rng(config.seed);

  // Frame schedule: payloads and write start cycles.
  MacTestbench result;
  std::vector<std::size_t> starts;
  std::size_t cycle = 8;  // settle time after reset
  for (std::size_t f = 0; f < config.num_frames; ++f) {
    const std::size_t len = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_payload),
                  static_cast<std::int64_t>(config.max_payload)));
    std::vector<std::uint8_t> payload(len);
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
    starts.push_back(cycle);
    cycle += len + config.inter_frame_gap;
    result.sent_payloads.push_back(std::move(payload));
  }
  const std::size_t num_cycles = cycle + config.tail_cycles;

  const netlist::Netlist& nl = mac.netlist;
  sim::Stimulus stim(nl.primary_inputs().size(), num_cycles);
  const auto pi_index = [&](netlist::NetId net) {
    return static_cast<std::size_t>(nl.net(net).pi_index);
  };

  // Configuration load on cycle 1 (status select = 2: rx frame count).
  stim.set(pi_index(mac.in.cfg_load), 1, true);
  const std::uint8_t cfg_value = 0x02;
  for (std::size_t b = 0; b < 8; ++b) {
    stim.set(pi_index(mac.in.cfg_data[b]), 1, ((cfg_value >> b) & 1u) != 0);
  }

  // TX writes: one byte per cycle per frame.
  for (std::size_t f = 0; f < result.sent_payloads.size(); ++f) {
    const auto& payload = result.sent_payloads[f];
    for (std::size_t i = 0; i < payload.size(); ++i) {
      const std::size_t c = starts[f] + i;
      stim.set(pi_index(mac.in.tx_wr), c, true);
      stim.set(pi_index(mac.in.tx_sop), c, i == 0);
      stim.set(pi_index(mac.in.tx_eop), c, i + 1 == payload.size());
      for (std::size_t b = 0; b < 8; ++b) {
        stim.set(pi_index(mac.in.tx_data[b]), c, ((payload[i] >> b) & 1u) != 0);
      }
    }
  }

  // RX reads: continuous or bursty duty cycle.
  for (std::size_t c = 0; c < num_cycles; ++c) {
    const bool read =
        config.rx_read_burst == 0 || ((c / config.rx_read_burst) % 2 == 0);
    stim.set(pi_index(mac.in.rx_rd), c, read);
  }
  // Always drain during the tail so no frame is stuck in the RX FIFO.
  for (std::size_t c = num_cycles - config.tail_cycles; c < num_cycles; ++c) {
    stim.set(pi_index(mac.in.rx_rd), c, true);
  }

  result.tb.stimulus = std::move(stim);
  result.tb.loopbacks = mac.xgmii_loopback();
  result.tb.monitor = mac.packet_monitor();
  result.tb.inject_begin = 10;
  result.tb.inject_end = num_cycles - config.tail_cycles / 2;
  return result;
}

}  // namespace ffr::circuits
