#include "circuits/pipeline_core.hpp"

#include "netlist/builder.hpp"
#include "rtl/arith.hpp"
#include "rtl/sequential.hpp"
#include "rtl/word.hpp"
#include "util/rng.hpp"

namespace ffr::circuits {

using netlist::NetId;
using netlist::NetlistBuilder;
using rtl::Word;

sim::PacketMonitorSpec PipelineCore::byte_monitor() const {
  // Every valid output byte is treated as its own 1-byte frame: sop tracks
  // valid; eop/err are never raised, so the monitor's finish() closes each
  // run with one trailing frame per lane — all lanes see the same shape, so
  // comparisons against golden stay meaningful.
  sim::PacketMonitorSpec spec;
  spec.valid = out_valid;
  spec.sop = out_valid;
  spec.eop = netlist::kNoNet;  // patched by build (constant-0 net)
  spec.err = netlist::kNoNet;
  spec.data = out_data;
  return spec;
}

PipelineCore build_pipeline_core(const PipelineConfig& config) {
  if (config.stages < 2) throw std::invalid_argument("pipeline: stages >= 2");
  NetlistBuilder bld("pipeline_core");
  PipelineCore core;

  core.in_valid = bld.input("in_valid");
  core.in_data = bld.input_bus("in_data", 8);
  core.key_load = bld.input("key_load");
  core.key_data = bld.input_bus("key_data", 8);
  const NetId const0 = bld.constant(false);

  // Rotating key register: loaded bytewise (low byte then high byte), then
  // rotated by one position every accepted byte.
  std::vector<NetId> key_d = bld.forward_wires("key_d", config.key_bits);
  rtl::Register key;
  {
    netlist::RegisterBus bus;
    bus.name = "key_reg";
    for (std::size_t i = 0; i < config.key_bits; ++i) {
      netlist::FlipFlop ff =
          bld.dff(key_d[i], (0xB5A7u >> (i % 16)) & 1u, "key_reg[" + std::to_string(i) + "]");
      bus.flip_flops.push_back(ff.cell);
      key.ffs.push_back(ff);
      key.q.push_back(ff.q);
    }
    bld.add_register_bus(std::move(bus));
  }
  // Load phase flag: first key_load writes the low byte, second the high.
  const netlist::FlipFlop load_phase = bld.dff_loop(
      [&](NetId q) { return bld.xor2(q, core.key_load); }, false, "key_load_phase");
  {
    Word rotated(config.key_bits);
    for (std::size_t i = 0; i < config.key_bits; ++i) {
      rotated[i] = key.q[(i + 1) % config.key_bits];
    }
    Word next = rtl::word_mux(bld, key.q, rotated, core.in_valid);
    // Loading overrides rotation.
    for (std::size_t i = 0; i < config.key_bits; ++i) {
      NetId loaded = key.q[i];
      if (i < 8) {
        loaded = bld.mux2(key.q[i], core.key_data[i],
                          bld.and2(core.key_load, bld.inv(load_phase.q)));
      } else if (i < 16) {
        loaded = bld.mux2(key.q[i], core.key_data[i - 8],
                          bld.and2(core.key_load, load_phase.q));
      }
      next[i] = bld.mux2(next[i], loaded, core.key_load);
      bld.bind_forward_wire(key_d[i], next[i]);
    }
  }

  // Valid bit travels with the data through every stage.
  Word stage_data(core.in_data.begin(), core.in_data.end());
  NetId stage_valid = core.in_valid;

  // Stage 1: input register.
  {
    rtl::Register s1 = rtl::make_register(bld, "s1_data", stage_data);
    rtl::Register v1 =
        rtl::make_register(bld, "s1_valid", std::vector<NetId>{stage_valid});
    stage_data = s1.q;
    stage_valid = v1.q[0];
  }

  // Stage 2: xor with the low key byte, add a round constant.
  {
    const Word key_low = rtl::word_slice(key.q, 0, 8);
    const Word mixed = rtl::word_xor(bld, stage_data, key_low);
    const Word round = rtl::constant_word(bld, 0x5D, 8);
    const rtl::AdderResult sum = rtl::adder(bld, mixed, round, const0);
    rtl::Register s2 = rtl::make_register(bld, "s2_data", sum.sum);
    rtl::Register v2 =
        rtl::make_register(bld, "s2_valid", std::vector<NetId>{stage_valid});
    stage_data = s2.q;
    stage_valid = v2.q[0];
  }

  // Optional middle stages (for configs deeper than the standard four):
  // rotate by 3 and xor the high key byte.
  for (std::size_t extra = 0; extra + 4 < config.stages; ++extra) {
    Word rotated(8);
    for (std::size_t i = 0; i < 8; ++i) rotated[i] = stage_data[(i + 3) % 8];
    const Word key_high = rtl::word_slice(key.q, config.key_bits - 8, 8);
    const Word mixed = rtl::word_xor(bld, rotated, key_high);
    rtl::Register sx =
        rtl::make_register(bld, "sm" + std::to_string(extra) + "_data", mixed);
    rtl::Register vx = rtl::make_register(
        bld, "sm" + std::to_string(extra) + "_valid", std::vector<NetId>{stage_valid});
    stage_data = sx.q;
    stage_valid = vx.q[0];
  }

  // Stage 3: 16-bit accumulator with feedback (sum <= sum + byte when valid).
  std::vector<NetId> acc_d = bld.forward_wires("acc_d", 16);
  rtl::Register acc;
  {
    netlist::RegisterBus bus;
    bus.name = "acc_reg";
    for (std::size_t i = 0; i < 16; ++i) {
      netlist::FlipFlop ff = bld.dff(acc_d[i], false, "acc_reg[" + std::to_string(i) + "]");
      bus.flip_flops.push_back(ff.cell);
      acc.ffs.push_back(ff);
      acc.q.push_back(ff.q);
    }
    bld.add_register_bus(std::move(bus));
  }
  {
    Word extended = stage_data;
    for (std::size_t i = 8; i < 16; ++i) extended.push_back(const0);
    const rtl::AdderResult sum = rtl::adder(bld, acc.q, extended, const0);
    const Word next = rtl::word_mux(bld, acc.q, sum.sum, stage_valid);
    for (std::size_t i = 0; i < 16; ++i) bld.bind_forward_wire(acc_d[i], next[i]);
  }

  // Stage 4: output register = data xor low accumulator byte; parity tag.
  {
    const Word acc_low = rtl::word_slice(acc.q, 0, 8);
    const Word mixed = rtl::word_xor(bld, stage_data, acc_low);
    rtl::Register s4 = rtl::make_register(bld, "s4_data", mixed);
    rtl::Register v4 =
        rtl::make_register(bld, "s4_valid", std::vector<NetId>{stage_valid});
    const NetId parity = bld.xor_reduce(Word(s4.q.begin(), s4.q.end()));
    core.out_data = s4.q;
    core.out_valid = v4.q[0];
    core.out_parity = parity;
  }
  core.out_sum = acc.q;

  bld.output(core.out_valid, "out_valid");
  bld.output_bus(core.out_data, "out_data");
  bld.output(core.out_parity, "out_parity");
  bld.output_bus(core.out_sum, "out_sum");

  core.netlist = bld.build();
  return core;
}

PipelineTestbench build_pipeline_testbench(const PipelineCore& core,
                                           std::size_t num_bytes, double duty_cycle,
                                           std::uint64_t seed) {
  if (duty_cycle <= 0.0 || duty_cycle > 1.0) {
    throw std::invalid_argument("pipeline testbench: duty_cycle in (0, 1]");
  }
  util::Rng rng(seed);
  const auto& nl = core.netlist;
  const auto pi = [&](netlist::NetId net) {
    return static_cast<std::size_t>(nl.net(net).pi_index);
  };
  const std::size_t cycles =
      8 + static_cast<std::size_t>(static_cast<double>(num_bytes) / duty_cycle) + 24;

  PipelineTestbench bench;
  sim::Stimulus stim(nl.primary_inputs().size(), cycles);

  // Key load on cycles 1 and 2.
  const std::uint8_t key_lo = static_cast<std::uint8_t>(rng.below(256));
  const std::uint8_t key_hi = static_cast<std::uint8_t>(rng.below(256));
  for (const auto& [cycle, byte] : {std::pair<std::size_t, std::uint8_t>{1, key_lo},
                                    std::pair<std::size_t, std::uint8_t>{2, key_hi}}) {
    stim.set(pi(core.key_load), cycle, true);
    for (std::size_t b = 0; b < 8; ++b) {
      stim.set(pi(core.key_data[b]), cycle, ((byte >> b) & 1u) != 0);
    }
  }

  std::size_t sent = 0;
  for (std::size_t c = 4; c < cycles - 12 && sent < num_bytes; ++c) {
    if (!rng.bernoulli(duty_cycle)) continue;
    const auto byte = static_cast<std::uint8_t>(rng.below(256));
    bench.sent_bytes.push_back(byte);
    stim.set(pi(core.in_valid), c, true);
    for (std::size_t b = 0; b < 8; ++b) {
      stim.set(pi(core.in_data[b]), c, ((byte >> b) & 1u) != 0);
    }
    ++sent;
  }

  bench.tb.stimulus = std::move(stim);
  sim::PacketMonitorSpec monitor = core.byte_monitor();
  // eop/err: tie to a net that is always 0 — in_valid is a PI the monitor
  // may read, but it is high during traffic; use a never-high net instead.
  // The netlist's constant-0 net exists (const0 used in the datapath).
  const auto const0 = nl.find_net("const0");
  if (!const0) throw std::logic_error("pipeline: missing const0 net");
  monitor.eop = *const0;
  monitor.err = *const0;
  bench.tb.monitor = monitor;
  bench.tb.inject_begin = 4;
  bench.tb.inject_end = cycles - 8;
  return bench;
}

}  // namespace ffr::circuits
