#include "circuits/mac_core.hpp"

#include "netlist/builder.hpp"
#include "rtl/arith.hpp"
#include "rtl/crc.hpp"
#include "rtl/fifo.hpp"
#include "rtl/fsm.hpp"
#include "rtl/sequential.hpp"
#include "rtl/word.hpp"

namespace ffr::circuits {

using netlist::NetId;
using netlist::NetlistBuilder;
using rtl::Word;


namespace {

// TX engine states (one-hot).
enum TxState : std::size_t {
  kTxIdle = 0,
  kTxStart,
  kTxPre,
  kTxSfd,
  kTxData,
  kTxFcs0,
  kTxFcs1,
  kTxFcs2,
  kTxFcs3,
  kTxTerm,
  kTxIpg,
  kTxNumStates,
};

// RX engine states (one-hot).
enum RxState : std::size_t {
  kRxIdle = 0,
  kRxPre,
  kRxData,
  kRxNumStates,
};

}  // namespace

sim::PacketMonitorSpec MacCore::packet_monitor() const {
  sim::PacketMonitorSpec spec;
  spec.valid = out.rx_valid;
  spec.sop = out.rx_sop;
  spec.eop = out.rx_eop;
  spec.err = out.rx_err;
  spec.data = out.rx_data;
  return spec;
}

std::vector<sim::Loopback> MacCore::xgmii_loopback() const {
  std::vector<sim::Loopback> loops;
  loops.push_back({out.xg_tx_ctrl, in.xg_rx_ctrl, true});
  for (std::size_t i = 0; i < 8; ++i) {
    loops.push_back(
        {out.xg_tx_data[i], in.xg_rx_data[i], ((kXgmiiIdle >> i) & 1u) != 0});
  }
  return loops;
}

MacCore build_mac_core(const MacConfig& config) {
  NetlistBuilder bld("mac_core");
  MacCore mac;

  // ---- ports ----------------------------------------------------------------
  mac.in.tx_wr = bld.input("tx_wr");
  mac.in.tx_sop = bld.input("tx_sop");
  mac.in.tx_eop = bld.input("tx_eop");
  mac.in.tx_data = bld.input_bus("tx_data", 8);
  mac.in.rx_rd = bld.input("rx_rd");
  mac.in.xg_rx_ctrl = bld.input("xg_rx_ctrl");
  mac.in.xg_rx_data = bld.input_bus("xg_rx_data", 8);
  mac.in.cfg_load = bld.input("cfg_load");
  mac.in.cfg_data = bld.input_bus("cfg_data", 8);

  // =====================================================================
  // Transmit path
  // =====================================================================

  // TX FIFO entry: {data[0..7], sop, eop}; eop accompanies the last byte.
  Word tx_din(mac.in.tx_data.begin(), mac.in.tx_data.end());
  tx_din.push_back(mac.in.tx_sop);
  tx_din.push_back(mac.in.tx_eop);
  const NetId tx_rd = bld.forward_wire("tx_fifo_rd");
  rtl::Fifo tx_fifo =
      rtl::make_fifo(bld, "tx_fifo", tx_din, config.tx_depth_log2, mac.in.tx_wr,
                     tx_rd);
  const Word tx_head_byte = rtl::word_slice(tx_fifo.dout, 0, 8);
  const NetId tx_head_eop = tx_fifo.dout[9];
  const NetId tx_not_empty = bld.inv(tx_fifo.empty);

  // Preamble and inter-packet-gap counters (cleared outside their state).
  const NetId in_pre = bld.forward_wire("tx_in_pre");
  const NetId in_ipg = bld.forward_wire("tx_in_ipg");
  rtl::Counter pre_cnt =
      rtl::make_counter_clear(bld, "tx_pre_cnt", 3, in_pre, bld.inv(in_pre));
  rtl::Counter ipg_cnt =
      rtl::make_counter_clear(bld, "tx_ipg_cnt", 4, in_ipg, bld.inv(in_ipg));
  const NetId pre_done = rtl::equals_const(bld, pre_cnt.reg.q, 5);
  const NetId ipg_done = rtl::equals_const(bld, ipg_cnt.reg.q, 9);

  // TX FSM.
  rtl::FsmBuilder tx_fsm_b(bld, "tx_fsm", kTxNumStates, kTxIdle);
  const NetId always = bld.constant(true);
  tx_fsm_b.transition(kTxIdle, kTxStart, tx_not_empty);
  tx_fsm_b.transition(kTxStart, kTxPre, always);
  tx_fsm_b.transition(kTxPre, kTxSfd, pre_done);
  tx_fsm_b.transition(kTxSfd, kTxData, always);
  tx_fsm_b.transition(kTxData, kTxFcs0, bld.and2(tx_head_eop, tx_not_empty));
  tx_fsm_b.transition(kTxFcs0, kTxFcs1, always);
  tx_fsm_b.transition(kTxFcs1, kTxFcs2, always);
  tx_fsm_b.transition(kTxFcs2, kTxFcs3, always);
  tx_fsm_b.transition(kTxFcs3, kTxTerm, always);
  tx_fsm_b.transition(kTxTerm, kTxIpg, always);
  tx_fsm_b.transition(kTxIpg, kTxIdle, ipg_done);
  rtl::Fsm tx_fsm = tx_fsm_b.build();
  bld.bind_forward_wire(in_pre, tx_fsm.in_state(kTxPre));
  bld.bind_forward_wire(in_ipg, tx_fsm.in_state(kTxIpg));
  bld.bind_forward_wire(tx_rd, tx_fsm.in_state(kTxData));

  // TX CRC-32: load all-ones in START, accumulate one byte per DATA cycle.
  std::vector<NetId> tx_crc_dw = bld.forward_wires("tx_crc_d", 32);
  rtl::Register tx_crc;
  {
    netlist::RegisterBus bus;
    bus.name = "tx_crc";
    for (std::size_t i = 0; i < 32; ++i) {
      netlist::FlipFlop ff =
          bld.dff(tx_crc_dw[i], true, "tx_crc[" + std::to_string(i) + "]");
      bus.flip_flops.push_back(ff.cell);
      tx_crc.ffs.push_back(ff);
      tx_crc.q.push_back(ff.q);
    }
    bld.add_register_bus(std::move(bus));
  }
  {
    const Word crc_next = rtl::crc32_byte_next(bld, tx_crc.q, tx_head_byte);
    const NetId updating = bld.and2(tx_fsm.in_state(kTxData), tx_not_empty);
    const Word held = rtl::word_mux(bld, tx_crc.q, crc_next, updating);
    const Word loaded =
        rtl::word_mux(bld, held, rtl::constant_word(bld, ~0ULL, 32),
                      tx_fsm.in_state(kTxStart));
    for (std::size_t i = 0; i < 32; ++i) bld.bind_forward_wire(tx_crc_dw[i], loaded[i]);
  }
  // FCS bytes are the complemented CRC register, transmitted LSByte first.
  const Word tx_fcs = rtl::word_not(bld, tx_crc.q);

  // TX output mux over the one-hot state vector, then an output register.
  {
    std::vector<Word> data_options(kTxNumStates);
    data_options[kTxIdle] = rtl::constant_word(bld, kXgmiiIdle, 8);
    data_options[kTxStart] = rtl::constant_word(bld, kXgmiiStart, 8);
    data_options[kTxPre] = rtl::constant_word(bld, kPreambleByte, 8);
    data_options[kTxSfd] = rtl::constant_word(bld, kSfdByte, 8);
    data_options[kTxData] = tx_head_byte;
    data_options[kTxFcs0] = rtl::word_slice(tx_fcs, 0, 8);
    data_options[kTxFcs1] = rtl::word_slice(tx_fcs, 8, 8);
    data_options[kTxFcs2] = rtl::word_slice(tx_fcs, 16, 8);
    data_options[kTxFcs3] = rtl::word_slice(tx_fcs, 24, 8);
    data_options[kTxTerm] = rtl::constant_word(bld, kXgmiiTerminate, 8);
    data_options[kTxIpg] = rtl::constant_word(bld, kXgmiiIdle, 8);
    const Word tx_data_mux = rtl::onehot_mux(bld, data_options, tx_fsm.state);
    const NetId tx_ctrl_mux = bld.or_reduce(
        {tx_fsm.in_state(kTxIdle), tx_fsm.in_state(kTxStart),
         tx_fsm.in_state(kTxTerm), tx_fsm.in_state(kTxIpg)});
    rtl::Register xg_out =
        rtl::make_register(bld, "xg_tx_data_r", tx_data_mux, kXgmiiIdle);
    rtl::Register xg_ctrl = rtl::make_register(bld, "xg_tx_ctrl_r",
                                               std::vector<NetId>{tx_ctrl_mux}, 1);
    mac.out.xg_tx_data = xg_out.q;
    mac.out.xg_tx_ctrl = xg_ctrl.q[0];
  }
  mac.out.tx_full = tx_fifo.full;

  // =====================================================================
  // Receive path
  // =====================================================================

  // Input register stage.
  rtl::Register rx_data_r =
      rtl::make_register(bld, "rx_data_r", mac.in.xg_rx_data, kXgmiiIdle);
  rtl::Register rx_ctrl_r = rtl::make_register(
      bld, "rx_ctrl_r", std::vector<NetId>{mac.in.xg_rx_ctrl}, 1);
  const NetId ctrl_r = rx_ctrl_r.q[0];
  const NetId nctrl_r = bld.inv(ctrl_r);

  const NetId is_start = bld.and2(ctrl_r, rtl::equals_const(bld, rx_data_r.q, kXgmiiStart));
  const NetId is_term = bld.and2(ctrl_r, rtl::equals_const(bld, rx_data_r.q, kXgmiiTerminate));
  const NetId is_sfd = bld.and2(nctrl_r, rtl::equals_const(bld, rx_data_r.q, kSfdByte));

  rtl::FsmBuilder rx_fsm_b(bld, "rx_fsm", kRxNumStates, kRxIdle);
  rx_fsm_b.transition(kRxIdle, kRxPre, is_start);
  rx_fsm_b.transition(kRxPre, kRxData, is_sfd);
  rx_fsm_b.transition(kRxPre, kRxIdle, ctrl_r);  // aborted preamble
  rx_fsm_b.transition(kRxData, kRxIdle, ctrl_r);  // terminate or abort
  rtl::Fsm rx_fsm = rx_fsm_b.build();

  const NetId frame_begin =
      bld.and2(rx_fsm.in_state(kRxPre), is_sfd);  // entering DATA next cycle
  const NetId byte_arrived = bld.and2(rx_fsm.in_state(kRxData), nctrl_r);
  const NetId frame_end = bld.and2(rx_fsm.in_state(kRxData), ctrl_r);

  // RX CRC-32 over every data byte including the FCS field.
  std::vector<NetId> rx_crc_dw = bld.forward_wires("rx_crc_d", 32);
  rtl::Register rx_crc;
  {
    netlist::RegisterBus bus;
    bus.name = "rx_crc";
    for (std::size_t i = 0; i < 32; ++i) {
      netlist::FlipFlop ff =
          bld.dff(rx_crc_dw[i], true, "rx_crc[" + std::to_string(i) + "]");
      bus.flip_flops.push_back(ff.cell);
      rx_crc.ffs.push_back(ff);
      rx_crc.q.push_back(ff.q);
    }
    bld.add_register_bus(std::move(bus));
  }
  {
    const Word crc_next = rtl::crc32_byte_next(bld, rx_crc.q, rx_data_r.q);
    const Word held = rtl::word_mux(bld, rx_crc.q, crc_next, byte_arrived);
    const Word loaded = rtl::word_mux(bld, held, rtl::constant_word(bld, ~0ULL, 32),
                                      frame_begin);
    for (std::size_t i = 0; i < 32; ++i) bld.bind_forward_wire(rx_crc_dw[i], loaded[i]);
  }
  const NetId crc_ok = rtl::equals_const(bld, rx_crc.q, rtl::crc32_residue());

  // 4-byte delay line strips the FCS from the payload stream.
  rtl::Register dly0 = rtl::make_register_en(bld, "rx_dly0", rx_data_r.q, byte_arrived);
  rtl::Register dly1 = rtl::make_register_en(bld, "rx_dly1", dly0.q, byte_arrived);
  rtl::Register dly2 = rtl::make_register_en(bld, "rx_dly2", dly1.q, byte_arrived);
  rtl::Register dly3 = rtl::make_register_en(bld, "rx_dly3", dly2.q, byte_arrived);

  // Fill counter saturating at 4; cleared at frame begin.
  const NetId fill_inc = bld.forward_wire("rx_fill_inc");
  rtl::Counter fill_cnt =
      rtl::make_counter_clear(bld, "rx_fill_cnt", 3, fill_inc, frame_begin);
  const NetId fill_full = rtl::equals_const(bld, fill_cnt.reg.q, 4);
  bld.bind_forward_wire(fill_inc, bld.and2(byte_arrived, bld.inv(fill_full)));
  const NetId push_byte = bld.and2(byte_arrived, fill_full);

  // Start-of-packet flag: first pushed byte of each frame.
  const netlist::FlipFlop first_flag = bld.dff_loop(
      [&](NetId q) {
        const NetId cleared = bld.and2(q, bld.inv(push_byte));
        return bld.or2(frame_begin, cleared);
      },
      false, "rx_first_flag");

  // Frame end classification.
  const NetId good_end = bld.and2(frame_end, bld.and2(is_term, crc_ok));
  const NetId err_flag = bld.inv(good_end);  // meaningful only when frame_end

  // RX FIFO entry: {data[0..7], sop, eop, err}.
  Word rx_din = dly3.q;
  rx_din.push_back(bld.and2(push_byte, first_flag.q));       // sop
  rx_din.push_back(frame_end);                               // eop marker
  rx_din.push_back(bld.and2(frame_end, err_flag));           // err
  const NetId rx_wr = bld.or2(push_byte, frame_end);
  rtl::Fifo rx_fifo =
      rtl::make_fifo(bld, "rx_fifo", rx_din, config.rx_depth_log2, rx_wr, mac.in.rx_rd);

  mac.out.rx_valid = bld.and2(mac.in.rx_rd, bld.inv(rx_fifo.empty));
  mac.out.rx_data = rtl::word_slice(rx_fifo.dout, 0, 8);
  mac.out.rx_sop = rx_fifo.dout[8];
  mac.out.rx_eop = rx_fifo.dout[9];
  mac.out.rx_err = rx_fifo.dout[10];

  // =====================================================================
  // Statistics, configuration, BIST
  // =====================================================================

  rtl::Register cfg =
      rtl::make_register_en(bld, "cfg_reg", mac.in.cfg_data, mac.in.cfg_load);

  if (config.include_stats) {
    rtl::Counter tx_frames = rtl::make_counter(bld, "stat_tx_frames", 16,
                                               tx_fsm.in_state(kTxTerm));
    rtl::Counter tx_octets = rtl::make_counter(
        bld, "stat_tx_octets", 16, bld.and2(tx_fsm.in_state(kTxData), tx_not_empty));
    rtl::Counter rx_frames = rtl::make_counter(bld, "stat_rx_frames", 16, good_end);
    rtl::Counter rx_errors = rtl::make_counter(bld, "stat_rx_errors", 16,
                                               bld.and2(frame_end, err_flag));
    rtl::Counter rx_octets = rtl::make_counter(bld, "stat_rx_octets", 16, push_byte);

    std::vector<Word> sources;
    sources.push_back(rtl::word_slice(tx_frames.reg.q, 0, 8));
    sources.push_back(rtl::word_slice(tx_frames.reg.q, 8, 8));
    sources.push_back(rtl::word_slice(rx_frames.reg.q, 0, 8));
    sources.push_back(rtl::word_slice(rx_frames.reg.q, 8, 8));
    sources.push_back(rtl::word_slice(rx_errors.reg.q, 0, 8));
    sources.push_back(rtl::word_slice(rx_octets.reg.q, 0, 8));
    sources.push_back(rtl::word_slice(tx_octets.reg.q, 0, 8));
    sources.push_back(cfg.q);

    if (config.include_bist) {
      // Free-running pattern generator + folded signature (no functional
      // effect on the datapath; exercises the "benign flip-flop" regime).
      const std::size_t taps[] = {0, 2, 3, 5};
      rtl::Register lfsr =
          rtl::make_lfsr(bld, "bist_lfsr", 16, taps, bld.constant(true), 0xACE1);
      const Word folded = rtl::word_xor(bld, rtl::word_slice(lfsr.q, 0, 8),
                                        rtl::word_slice(lfsr.q, 8, 8));
      // Signature accumulator: sig <= sig ^ folded.
      netlist::RegisterBus sig_bus;
      sig_bus.name = "bist_sig";
      Word sig_q;
      for (std::size_t i = 0; i < 8; ++i) {
        netlist::FlipFlop ff = bld.dff_loop(
            [&](NetId q) { return bld.xor2(q, folded[i]); }, false,
            "bist_sig[" + std::to_string(i) + "]");
        sig_bus.flip_flops.push_back(ff.cell);
        sig_q.push_back(ff.q);
      }
      bld.add_register_bus(std::move(sig_bus));
      sources[6] = sig_q;  // expose the signature on status select 6
    }

    const Word sel = rtl::word_slice(cfg.q, 0, 3);
    const Word sel_dec = rtl::decoder(bld, sel);
    const Word status = rtl::onehot_mux(bld, sources, sel_dec);
    bld.output_bus(status, "status");
    mac.out.status = status;
  }

  // ---- primary outputs -------------------------------------------------------
  bld.output(mac.out.tx_full, "tx_full");
  bld.output(mac.out.xg_tx_ctrl, "xg_tx_ctrl");
  bld.output_bus(mac.out.xg_tx_data, "xg_tx_data");
  bld.output(mac.out.rx_valid, "rx_valid");
  bld.output(mac.out.rx_sop, "rx_sop");
  bld.output(mac.out.rx_eop, "rx_eop");
  bld.output(mac.out.rx_err, "rx_err");
  bld.output_bus(mac.out.rx_data, "rx_data");

  mac.netlist = bld.build();
  return mac;
}

}  // namespace ffr::circuits
