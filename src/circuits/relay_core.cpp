#include "circuits/relay_core.hpp"

#include <stdexcept>
#include <string>

#include "netlist/builder.hpp"
#include "rtl/arith.hpp"
#include "rtl/crc.hpp"
#include "rtl/fifo.hpp"
#include "rtl/fsm.hpp"
#include "rtl/word.hpp"
#include "util/rng.hpp"

namespace ffr::circuits {

using netlist::NetId;
using netlist::NetlistBuilder;
using rtl::Word;

namespace {

// Egress framing FSM states (one-hot).
enum EgressState : std::size_t { kIdle = 0, kPayload = 1, kNumEgressStates = 2 };

// Entry layout inside every hop FIFO: 8 data bits + sop + eop.
constexpr std::size_t kSopBit = 8;
constexpr std::size_t kEopBit = 9;

}  // namespace

sim::PacketMonitorSpec RelayCore::packet_monitor() const {
  sim::PacketMonitorSpec spec;
  spec.valid = out_valid;
  spec.sop = out_sop;
  spec.eop = out_eop;
  spec.err = out_err;
  spec.data = out_data;
  return spec;
}

RelayCore build_relay_core(const RelayConfig& config) {
  if (config.hops == 0) throw std::invalid_argument("relay: hops >= 1");
  NetlistBuilder bld("relay_core");
  RelayCore core;

  core.in_valid = bld.input("in_valid");
  core.in_sop = bld.input("in_sop");
  core.in_eop = bld.input("in_eop");
  core.in_data = bld.input_bus("in_data", 8);
  core.out_ready = bld.input("out_ready");

  // The relay chain. Hop h reads whenever hop h+1 has room; hop h+1 writes
  // whenever hop h has an entry. make_fifo gates both with its own
  // full/empty, so the pair agrees on exactly one transfer per cycle and an
  // entry advances one hop per cycle while the chain has room.
  Word din = rtl::word_concat(core.in_data, Word{core.in_sop, core.in_eop});
  NetId wr_en = core.in_valid;
  std::vector<rtl::Fifo> hops;
  std::vector<NetId> rd_wires;
  hops.reserve(config.hops);
  rd_wires.reserve(config.hops);
  for (std::size_t h = 0; h < config.hops; ++h) {
    const std::string name = "hop" + std::to_string(h);
    const NetId rd_en = bld.forward_wire(name + "_rd");
    rd_wires.push_back(rd_en);
    hops.push_back(
        rtl::make_fifo(bld, name, din, config.depth_log2, wr_en, rd_en));
    if (h > 0) bld.bind_forward_wire(rd_wires[h - 1], bld.inv(hops[h].full));
    din = hops[h].dout;
    wr_en = bld.inv(hops[h].empty);
  }
  bld.bind_forward_wire(rd_wires.back(), core.out_ready);
  const rtl::Fifo& last = hops.back();

  // Egress: the head entry leaves the chain when the consumer reads.
  const NetId pop = bld.and2(core.out_ready, bld.inv(last.empty));
  const Word head_data = rtl::word_slice(last.dout, 0, 8);
  const NetId head_sop = last.dout[kSopBit];
  const NetId head_eop = last.dout[kEopBit];

  // Framing FSM: tracks the in-frame phase between a sop and its eop entry.
  rtl::Fsm fsm;
  {
    rtl::FsmBuilder fsm_bld(bld, "egress_fsm", kNumEgressStates, kIdle);
    const NetId start = bld.gate(netlist::CellFunc::kAnd3,
                                 {pop, head_sop, bld.inv(head_eop)});
    fsm_bld.transition(kIdle, kPayload, start);
    fsm_bld.transition(kPayload, kIdle, bld.and2(pop, head_eop));
    fsm = fsm_bld.build();
  }
  const NetId in_frame = fsm.in_state(kPayload);

  // CRC-32 over every popped payload byte, re-based to the init value at the
  // sop entry; after the payload and its appended FCS the register holds the
  // standard residue iff the frame crossed the chain intact.
  std::vector<NetId> crc_d = bld.forward_wires("egress_crc_d", 32);
  rtl::Register crc;
  {
    netlist::RegisterBus bus;
    bus.name = "egress_crc";
    for (std::size_t i = 0; i < 32; ++i) {
      netlist::FlipFlop ff =
          bld.dff(crc_d[i], true, "egress_crc[" + std::to_string(i) + "]");
      bus.flip_flops.push_back(ff.cell);
      crc.ffs.push_back(ff);
      crc.q.push_back(ff.q);
    }
    bld.add_register_bus(std::move(bus));
  }
  {
    const NetId byte_pop = bld.and2(pop, bld.inv(head_eop));
    const NetId process = bld.and2(byte_pop, bld.or2(head_sop, in_frame));
    const Word init = rtl::constant_word(bld, ~0ULL, 32);
    const Word base = rtl::word_mux(bld, crc.q, init, head_sop);
    const Word next = rtl::crc32_byte_next(bld, base, head_data);
    const Word held = rtl::word_mux(bld, crc.q, next, process);
    for (std::size_t i = 0; i < 32; ++i) bld.bind_forward_wire(crc_d[i], held[i]);
  }
  const NetId crc_ok = rtl::equals_const(bld, crc.q, rtl::crc32_residue());
  const NetId err = bld.and2(head_eop, bld.inv(crc_ok));

  core.out_valid = pop;
  core.out_sop = head_sop;
  core.out_eop = head_eop;
  core.out_err = err;
  core.out_data = head_data;
  core.in_full = hops.front().full;

  bld.output(core.out_valid, "out_valid");
  bld.output(core.out_sop, "out_sop");
  bld.output(core.out_eop, "out_eop");
  bld.output(core.out_err, "out_err");
  bld.output_bus(core.out_data, "out_data");
  bld.output(core.in_full, "in_full");

  core.netlist = bld.build();
  return core;
}

RelayTestbench build_relay_testbench(const RelayCore& core,
                                     const RelayTestbenchConfig& config) {
  if (config.min_payload == 0 || config.max_payload < config.min_payload) {
    throw std::invalid_argument("relay testbench: bad payload range");
  }
  util::Rng rng(config.seed);
  const auto& nl = core.netlist;
  const auto pi = [&](netlist::NetId net) {
    return static_cast<std::size_t>(nl.net(net).pi_index);
  };

  // Generate the frame schedule first to size the stimulus exactly.
  RelayTestbench bench;
  struct Entry {
    std::uint8_t byte = 0;
    bool sop = false;
    bool eop = false;
  };
  std::vector<std::pair<std::size_t, Entry>> schedule;  // (cycle, entry)
  std::size_t cycle = 2;
  for (std::size_t f = 0; f < config.num_frames; ++f) {
    const std::size_t len = static_cast<std::size_t>(rng.range(
        static_cast<std::int64_t>(config.min_payload),
        static_cast<std::int64_t>(config.max_payload)));
    std::vector<std::uint8_t> wire;
    wire.reserve(len + 4);
    for (std::size_t b = 0; b < len; ++b) {
      wire.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    const std::uint32_t fcs = rtl::crc32(wire);
    for (int i = 0; i < 4; ++i) {
      wire.push_back(static_cast<std::uint8_t>(fcs >> (8 * i)));
    }
    for (std::size_t b = 0; b < wire.size(); ++b) {
      schedule.push_back({cycle++, Entry{wire[b], b == 0, false}});
    }
    schedule.push_back({cycle++, Entry{0, false, true}});
    bench.sent_frames.push_back(std::move(wire));
    cycle += config.inter_frame_gap;
  }
  const std::size_t write_end = cycle;
  const std::size_t num_cycles = write_end + config.tail_cycles;

  sim::Stimulus stim(nl.primary_inputs().size(), num_cycles);
  for (const auto& [c, entry] : schedule) {
    stim.set(pi(core.in_valid), c, true);
    stim.set(pi(core.in_sop), c, entry.sop);
    stim.set(pi(core.in_eop), c, entry.eop);
    for (std::size_t b = 0; b < 8; ++b) {
      stim.set(pi(core.in_data[b]), c, ((entry.byte >> b) & 1u) != 0);
    }
  }
  // Egress reads in on/off bursts so the chain stays partially occupied.
  for (std::size_t c = 0; c < num_cycles; ++c) {
    bool ready = true;
    if (config.read_burst != 0) {
      const std::size_t off = std::max<std::size_t>(1, config.read_burst / 4);
      ready = (c % (config.read_burst + off)) < config.read_burst;
    }
    stim.set(pi(core.out_ready), c, ready);
  }

  bench.tb.stimulus = std::move(stim);
  bench.tb.monitor = core.packet_monitor();
  bench.tb.inject_begin = 2;
  bench.tb.inject_end = write_end + config.tail_cycles / 2;
  return bench;
}

}  // namespace ffr::circuits
