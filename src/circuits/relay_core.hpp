#pragma once
/// \file relay_core.hpp
/// \brief Paper-scale evaluation circuit: a store-and-forward relay chain.
///
/// `hops` synchronous FIFOs in series form an elastic pipeline. Each entry is
/// a 10-bit record — 8 data bits plus sop/eop flags — that advances one hop
/// per cycle whenever the downstream FIFO has room (ready/valid coupling of
/// adjacent full/empty flags). The sender appends the frame's CRC-32 FCS
/// (little-endian) after the payload; the egress runs a CRC-32 register over
/// every payload byte, re-based at sop, so a clean frame leaves the register
/// at the standard Ethernet residue, and flags `out_err` on the closing eop
/// entry otherwise. A one-hot FSM tracks the in-frame phase and gates the
/// CRC update. The default configuration (6 hops x 16-deep FIFOs) lowers to
/// ≥ 1000 flip-flops, past the paper's 947-FF operating point, which lets
/// SFI campaigns and their benchmarks finally run at paper scale.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/testbench.hpp"

namespace ffr::circuits {

struct RelayConfig {
  std::size_t hops = 6;        // FIFO stages in series (>= 1)
  std::size_t depth_log2 = 4;  // entries per hop = 2^depth_log2
};

struct RelayCore {
  netlist::Netlist netlist{"relay_core"};
  // Inputs. Entries are written when in_valid is high and the ingress FIFO
  // has room; eop entries carry no payload byte (MAC RX FIFO convention).
  netlist::NetId in_valid{}, in_sop{}, in_eop{};
  std::vector<netlist::NetId> in_data;  // 8
  netlist::NetId out_ready{};           // egress read enable
  // Outputs. out_* mirror the head entry of the last hop while out_valid.
  netlist::NetId out_valid{}, out_sop{}, out_eop{}, out_err{};
  std::vector<netlist::NetId> out_data;  // 8
  netlist::NetId in_full{};              // ingress backpressure

  /// Monitor spec over the egress interface, ready for sim::Testbench.
  [[nodiscard]] sim::PacketMonitorSpec packet_monitor() const;
};

[[nodiscard]] RelayCore build_relay_core(const RelayConfig& config = {});

struct RelayTestbenchConfig {
  std::size_t num_frames = 8;
  std::size_t min_payload = 6;   // bytes, before the 4 FCS bytes
  std::size_t max_payload = 12;
  /// Idle cycles between frames; with bursty egress reads this must leave
  /// enough read slack that the ingress FIFO never fills.
  std::size_t inter_frame_gap = 6;
  /// Egress reads in on/off bursts of this length (0 = read every cycle);
  /// bursty reading keeps the relay FIFOs partially occupied so their
  /// storage cells carry live data for realistic fault exposure.
  std::size_t read_burst = 12;
  std::size_t tail_cycles = 160;  // drain time after the last write
  std::uint64_t seed = 0x51AB;
};

struct RelayTestbench {
  sim::Testbench tb;
  /// Expected frame contents at the egress, payload plus the 4 FCS bytes —
  /// the relay forwards entries verbatim, so golden frames must equal these.
  std::vector<std::vector<std::uint8_t>> sent_frames;
};

[[nodiscard]] RelayTestbench build_relay_testbench(
    const RelayCore& core, const RelayTestbenchConfig& config = {});

}  // namespace ffr::circuits
