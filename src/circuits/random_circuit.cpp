#include "circuits/random_circuit.hpp"

#include "netlist/builder.hpp"
#include "util/rng.hpp"

namespace ffr::circuits {

using netlist::CellFunc;
using netlist::NetId;

netlist::Netlist build_random_circuit(const RandomCircuitConfig& config) {
  if (config.num_inputs == 0 || config.num_outputs == 0) {
    throw std::invalid_argument("random circuit: need inputs and outputs");
  }
  util::Rng rng(config.seed);
  netlist::NetlistBuilder bld("random_" + std::to_string(config.seed));

  // Sources: primary inputs + flip-flop outputs (created up front on
  // forward wires so gates can read register state).
  std::vector<NetId> sources;
  for (std::size_t i = 0; i < config.num_inputs; ++i) {
    sources.push_back(bld.input("in" + std::to_string(i)));
  }
  std::vector<NetId> ff_d_wires =
      bld.forward_wires("ffd", config.num_flip_flops);
  std::vector<netlist::FlipFlop> ffs;
  std::size_t next_bus = 0;
  std::size_t ff_index = 0;
  while (ff_index < config.num_flip_flops) {
    if (rng.bernoulli(config.bus_probability) &&
        ff_index + 2 <= config.num_flip_flops) {
      // Group 2-4 flip-flops into a bus.
      const std::size_t width = std::min<std::size_t>(
          config.num_flip_flops - ff_index, 2 + rng.below(3));
      netlist::RegisterBus bus;
      bus.name = "bus" + std::to_string(next_bus++);
      for (std::size_t b = 0; b < width; ++b) {
        netlist::FlipFlop ff =
            bld.dff(ff_d_wires[ff_index], rng.bernoulli(0.5),
                    bus.name + "[" + std::to_string(b) + "]");
        bus.flip_flops.push_back(ff.cell);
        ffs.push_back(ff);
        sources.push_back(ff.q);
        ++ff_index;
      }
      bld.add_register_bus(std::move(bus));
    } else {
      netlist::FlipFlop ff = bld.dff(ff_d_wires[ff_index], rng.bernoulli(0.5),
                                     "ff" + std::to_string(ff_index));
      ffs.push_back(ff);
      sources.push_back(ff.q);
      ++ff_index;
    }
  }

  // Random combinational DAG: each gate reads from already-created nets.
  constexpr CellFunc kGatePool[] = {
      CellFunc::kBuf,  CellFunc::kInv,   CellFunc::kAnd2, CellFunc::kNand2,
      CellFunc::kOr2,  CellFunc::kNor2,  CellFunc::kXor2, CellFunc::kXnor2,
      CellFunc::kAnd3, CellFunc::kOr3,   CellFunc::kMux2, CellFunc::kAoi21,
      CellFunc::kOai21, CellFunc::kAnd4, CellFunc::kNor4,
  };
  std::vector<NetId> pool = sources;
  // Sprinkle constants occasionally so const-driver features get exercised.
  if (rng.bernoulli(0.5)) pool.push_back(bld.constant(false));
  if (rng.bernoulli(0.5)) pool.push_back(bld.constant(true));
  for (std::size_t g = 0; g < config.num_gates; ++g) {
    const CellFunc func = kGatePool[rng.below(std::size(kGatePool))];
    std::vector<NetId> inputs;
    for (std::size_t i = 0; i < netlist::num_inputs(func); ++i) {
      inputs.push_back(pool[rng.below(pool.size())]);
    }
    pool.push_back(bld.gate(func, std::move(inputs)));
  }

  // Close the registers: each D comes from a random pool net.
  for (std::size_t i = 0; i < config.num_flip_flops; ++i) {
    bld.bind_forward_wire(ff_d_wires[i], pool[rng.below(pool.size())]);
  }
  // Outputs from random pool nets.
  for (std::size_t o = 0; o < config.num_outputs; ++o) {
    bld.output(pool[rng.below(pool.size())], "out" + std::to_string(o));
  }
  return bld.build();
}

}  // namespace ffr::circuits
