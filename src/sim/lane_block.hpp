#pragma once
/// \file lane_block.hpp
/// \brief SIMD lane blocks for the wide fault simulator: a LaneBlock<W> bundles
/// W 64-bit lane words (W in {1, 4, 8} -> 64 / 256 / 512 fault lanes) into
/// one value the bitwise gate kernels operate on. The storage is a GCC/Clang
/// vector-extension type (`__attribute__((vector_size)))`), so a single
/// gate evaluation over a block compiles to AVX2 (W=4) or AVX-512 (W=8)
/// instructions where the build architecture allows, and to narrower
/// register sequences otherwise — semantics never depend on the ISA.
///
/// Which block width a campaign actually runs at is a runtime decision:
/// native_lane_width() probes the CPU once (CPUID via
/// __builtin_cpu_supports) and the engine resolves a CampaignConfig
/// lane-width request against it with resolve_lane_width() — requests wider
/// than the host supports fall back to the widest native block with a
/// recorded warning instead of failing. Tests pin the decision with
/// force_native_lane_width_for_testing() to exercise every path on any
/// host.
///
/// ABI note: LaneBlock values are only ever passed across translation-unit
/// boundaries by reference (see WideSimulator / WideReplayRunner), so the
/// vector-argument ABI of the build architecture never leaks into the
/// public interface.

#include <cstddef>
#include <cstdint>
#include <string>

namespace ffr::sim {

namespace detail {
/// Vector-extension storage for W lane words. The W == 1 specialization is a
/// plain scalar word: GCC collapses one-element vectors to the element type
/// anyway, and a genuinely scalar W == 1 keeps the wide and 64-bit code
/// paths structurally identical.
template <std::size_t W>
struct LaneVec {
  typedef std::uint64_t type
      __attribute__((vector_size(sizeof(std::uint64_t) * W)));
};
template <>
struct LaneVec<1> {
  using type = std::uint64_t;
};
}  // namespace detail

/// W 64-bit lane words evaluated as one SIMD value; lane L lives in word
/// L / 64, bit L % 64.
template <std::size_t W>
struct LaneBlock {
  static_assert(W == 1 || W == 4 || W == 8, "LaneBlock: W must be 1, 4 or 8");
  using Word = std::uint64_t;
  static constexpr std::size_t kWords = W;
  static constexpr std::size_t kLanes = W * 64;

  using Vec = typename detail::LaneVec<W>::type;
  Vec v;

  [[nodiscard]] Word word(std::size_t i) const noexcept {
    if constexpr (W == 1) {
      (void)i;
      return v;
    } else {
      return v[i];
    }
  }
  void set_word(std::size_t i, Word word) noexcept {
    if constexpr (W == 1) {
      (void)i;
      v = word;
    } else {
      v[i] = word;
    }
  }

  /// All lanes of every word set to `word` (e.g. a broadcast golden word).
  [[nodiscard]] static LaneBlock splat(Word word) noexcept {
    LaneBlock block;
    for (std::size_t i = 0; i < W; ++i) block.set_word(i, word);
    return block;
  }
  [[nodiscard]] static LaneBlock zero() noexcept { return splat(0); }
  [[nodiscard]] static LaneBlock ones() noexcept { return splat(~Word{0}); }
  /// Single-lane mask: bit `lane` (< kLanes) set, everything else clear.
  [[nodiscard]] static LaneBlock lane_mask(std::size_t lane) noexcept {
    LaneBlock block = zero();
    block.set_word(lane / 64, Word{1} << (lane % 64));
    return block;
  }

  [[nodiscard]] bool lane(std::size_t lane) const noexcept {
    return ((word(lane / 64) >> (lane % 64)) & 1u) != 0;
  }

  /// True when any bit differs between the two blocks (the wide analogue of
  /// the scalar `a != b` dirty check; written as an OR-reduction so the
  /// compiler keeps it branch-free and vectorized).
  [[nodiscard]] friend bool differs(const LaneBlock& a, const LaneBlock& b) noexcept {
    Word acc = 0;
    for (std::size_t i = 0; i < W; ++i) acc |= a.word(i) ^ b.word(i);
    return acc != 0;
  }
  /// True when any bit is set.
  [[nodiscard]] friend bool any(const LaneBlock& a) noexcept {
    Word acc = 0;
    for (std::size_t i = 0; i < W; ++i) acc |= a.word(i);
    return acc != 0;
  }

  [[nodiscard]] friend LaneBlock operator~(const LaneBlock& a) noexcept {
    return LaneBlock{~a.v};
  }
  [[nodiscard]] friend LaneBlock operator&(const LaneBlock& a,
                                           const LaneBlock& b) noexcept {
    return LaneBlock{a.v & b.v};
  }
  [[nodiscard]] friend LaneBlock operator|(const LaneBlock& a,
                                           const LaneBlock& b) noexcept {
    return LaneBlock{a.v | b.v};
  }
  [[nodiscard]] friend LaneBlock operator^(const LaneBlock& a,
                                           const LaneBlock& b) noexcept {
    return LaneBlock{a.v ^ b.v};
  }
  LaneBlock& operator^=(const LaneBlock& b) noexcept {
    v ^= b.v;
    return *this;
  }
};

/// Upper bound on lane blocks a WideSimulator sweeps per pass. Small enough
/// that an incremental-eval scratch row fits on the stack, large enough that
/// per-pass state streams past any useful L1/L2 footprint budget.
inline constexpr std::size_t kMaxLaneBlocksPerPass = 8;

/// Lane-block width of a campaign pass. The numeric value is the lane count.
enum class LaneWidth : std::uint16_t {
  kAuto = 0,  ///< Widest block the host CPU natively supports.
  k64 = 64,   ///< Scalar 64-bit path (the differential reference width).
  k256 = 256, ///< LaneBlock<4>: AVX2-sized blocks.
  k512 = 512, ///< LaneBlock<8>: AVX-512-sized blocks.
};

/// Lanes per pass of a width; 0 for kAuto.
[[nodiscard]] constexpr std::size_t lanes_of(LaneWidth width) noexcept {
  return static_cast<std::size_t>(width);
}

[[nodiscard]] constexpr const char* to_string(LaneWidth width) noexcept {
  switch (width) {
    case LaneWidth::kAuto: return "auto";
    case LaneWidth::k64: return "64";
    case LaneWidth::k256: return "256";
    case LaneWidth::k512: return "512";
  }
  return "?";
}

/// Widest lane block the host CPU runs at native SIMD width: k512 with
/// AVX-512F, k256 with AVX2, k64 otherwise (and on non-x86 builds). Probed
/// once via CPUID and cached; an active testing override takes precedence.
[[nodiscard]] LaneWidth native_lane_width() noexcept;

/// Overrides native_lane_width() for tests (forced dispatch), so fallback
/// behaviour and every block width can be exercised deterministically on any
/// host. Pass kAuto to restore real CPU detection. Affects subsequent
/// resolve_lane_width() calls process-wide; not thread-safe against
/// concurrently running campaigns — set it from test setup only.
void force_native_lane_width_for_testing(LaneWidth width) noexcept;

/// Outcome of resolving a requested lane width against the host.
struct ResolvedLaneWidth {
  LaneWidth width = LaneWidth::k64;  ///< Width the campaign will run at.
  std::string warning;  ///< Non-empty when the request fell back to native.
};

/// kAuto resolves to native_lane_width(); an explicit request no wider than
/// native is honoured; a request wider than the host supports falls back to
/// the native width with a human-readable warning (never an error — the
/// result is bit-identical at every width, only the cost changes).
[[nodiscard]] ResolvedLaneWidth resolve_lane_width(LaneWidth requested);

}  // namespace ffr::sim
