#include "sim/wide_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace ffr::sim {

using netlist::CellFunc;

namespace {

/// Block-wide gate kernel: the same truth tables as the scalar compute_op in
/// packed_sim.cpp, expressed over LaneBlock operators so one evaluation
/// advances W * 64 lanes. Kept internal-linkage so each translation unit
/// compiles it at its own vector width.
template <std::size_t W>
[[nodiscard]] LaneBlock<W> compute_op(CellFunc func, const netlist::NetId* in,
                                      const LaneBlock<W>* v) {
  switch (func) {
    case CellFunc::kConst0: return LaneBlock<W>::zero();
    case CellFunc::kConst1: return LaneBlock<W>::ones();
    case CellFunc::kBuf: return v[in[0]];
    case CellFunc::kInv: return ~v[in[0]];
    case CellFunc::kAnd2: return v[in[0]] & v[in[1]];
    case CellFunc::kAnd3: return v[in[0]] & v[in[1]] & v[in[2]];
    case CellFunc::kAnd4: return v[in[0]] & v[in[1]] & v[in[2]] & v[in[3]];
    case CellFunc::kNand2: return ~(v[in[0]] & v[in[1]]);
    case CellFunc::kNand3: return ~(v[in[0]] & v[in[1]] & v[in[2]]);
    case CellFunc::kNand4: return ~(v[in[0]] & v[in[1]] & v[in[2]] & v[in[3]]);
    case CellFunc::kOr2: return v[in[0]] | v[in[1]];
    case CellFunc::kOr3: return v[in[0]] | v[in[1]] | v[in[2]];
    case CellFunc::kOr4: return v[in[0]] | v[in[1]] | v[in[2]] | v[in[3]];
    case CellFunc::kNor2: return ~(v[in[0]] | v[in[1]]);
    case CellFunc::kNor3: return ~(v[in[0]] | v[in[1]] | v[in[2]]);
    case CellFunc::kNor4: return ~(v[in[0]] | v[in[1]] | v[in[2]] | v[in[3]]);
    case CellFunc::kXor2: return v[in[0]] ^ v[in[1]];
    case CellFunc::kXnor2: return ~(v[in[0]] ^ v[in[1]]);
    case CellFunc::kMux2: {
      const LaneBlock<W>& sel = v[in[2]];
      return (sel & v[in[1]]) | (~sel & v[in[0]]);
    }
    case CellFunc::kAoi21: return ~((v[in[0]] & v[in[1]]) | v[in[2]]);
    case CellFunc::kOai21: return ~((v[in[0]] | v[in[1]]) & v[in[2]]);
    case CellFunc::kDff:
      throw std::logic_error("DFF in combinational op list");
  }
  throw std::logic_error("compute_op: unknown cell function");
}

}  // namespace

template <std::size_t W>
WideSimulator<W>::WideSimulator(const netlist::Netlist& nl) : nl_(&nl) {
  if (!nl.finalized()) {
    throw std::invalid_argument("WideSimulator: netlist not finalized");
  }
  values_.assign(nl.num_nets(), Block::zero());
  ops_.reserve(nl.topo_order().size());
  for (const netlist::CellId id : nl.topo_order()) {
    const netlist::Cell& cell = nl.cell(id);
    Op op;
    op.func = cell.func;
    op.num_inputs = static_cast<std::uint8_t>(cell.inputs.size());
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) op.in[i] = cell.inputs[i];
    op.out = cell.output;
    ops_.push_back(op);
  }
  ff_slot_.assign(nl.num_cells(), ~std::uint32_t{0});
  for (const netlist::CellId id : nl.flip_flops()) {
    const netlist::Cell& cell = nl.cell(id);
    ff_slot_[id] = static_cast<std::uint32_t>(ffs_.size());
    ffs_.push_back(FfSlot{cell.inputs[0], cell.output,
                          cell.init_value ? Block::ones() : Block::zero()});
  }
  next_state_.assign(ffs_.size(), Block::zero());

  // Net -> reading-op fanout in CSR form (counting sort by input net);
  // identical construction to the scalar PackedSimulator.
  fanout_begin_.assign(nl.num_nets() + 1, 0);
  for (const Op& op : ops_) {
    for (std::size_t i = 0; i < op.num_inputs; ++i) ++fanout_begin_[op.in[i] + 1];
  }
  for (std::size_t n = 1; n < fanout_begin_.size(); ++n) {
    fanout_begin_[n] += fanout_begin_[n - 1];
  }
  fanout_ops_.resize(fanout_begin_.back());
  std::vector<std::uint32_t> cursor(fanout_begin_.begin(), fanout_begin_.end() - 1);
  for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    for (std::size_t i = 0; i < op.num_inputs; ++i) {
      fanout_ops_[cursor[op.in[i]]++] = idx;
    }
  }
  op_level_.resize(ops_.size());
  std::vector<std::uint32_t> net_level(nl.num_nets(), 0);
  std::uint32_t max_level = 0;
  for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    std::uint32_t level = 0;
    for (std::size_t i = 0; i < op.num_inputs; ++i) {
      level = std::max(level, net_level[op.in[i]]);
    }
    op_level_[idx] = level;
    net_level[op.out] = level + 1;
    max_level = std::max(max_level, level);
  }
  level_buckets_.resize(ops_.empty() ? 0 : max_level + 1);

  net_dirty_.assign(nl.num_nets(), 0);
  op_pending_.assign(ops_.size(), 0);
  dirty_nets_.reserve(64);

  reset();
}

template <std::size_t W>
void WideSimulator<W>::reset() {
  std::fill(values_.begin(), values_.end(), Block::zero());
  for (const FfSlot& ff : ffs_) values_[ff.q] = ff.init;
  eval();
}

template <std::size_t W>
void WideSimulator<W>::set_input(netlist::NetId net, const Block& value) {
  if (net >= values_.size() || nl_->net(net).pi_index < 0) {
    throw std::invalid_argument("set_input: not a primary input net");
  }
  if (differs(values_[net], value)) {
    values_[net] = value;
    mark_dirty(net);
  }
}

template <std::size_t W>
void WideSimulator<W>::mark_dirty(netlist::NetId net) {
  if (!net_dirty_[net]) {
    net_dirty_[net] = 1;
    dirty_nets_.push_back(net);
  }
}

template <std::size_t W>
void WideSimulator<W>::schedule_fanout(netlist::NetId net) {
  for (std::uint32_t f = fanout_begin_[net]; f < fanout_begin_[net + 1]; ++f) {
    const std::uint32_t idx = fanout_ops_[f];
    if (!op_pending_[idx]) {
      op_pending_[idx] = 1;
      level_buckets_[op_level_[idx]].push_back(idx);
    }
  }
}

template <std::size_t W>
void WideSimulator<W>::clear_dirty() {
  for (const netlist::NetId net : dirty_nets_) net_dirty_[net] = 0;
  dirty_nets_.clear();
}

template <std::size_t W>
void WideSimulator<W>::eval() {
  ++eval_count_;
  ops_evaluated_ += ops_.size();
  Block* const v = values_.data();
  for (const Op& op : ops_) {
    v[op.out] = compute_op<W>(op.func, op.in, v);
  }
  clear_dirty();
  coherent_ = true;
}

template <std::size_t W>
void WideSimulator<W>::eval_incremental() {
  if (!coherent_) {
    eval();
    return;
  }
  ++eval_count_;
  Block* const v = values_.data();
  for (const netlist::NetId net : dirty_nets_) {
    net_dirty_[net] = 0;
    schedule_fanout(net);
  }
  dirty_nets_.clear();
  std::uint64_t evaluated = 0;
  // An evaluated op only ever schedules deeper levels, so one in-order sweep
  // over the buckets settles everything.
  for (std::vector<std::uint32_t>& bucket : level_buckets_) {
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      const std::uint32_t idx = bucket[b];
      op_pending_[idx] = 0;
      const Op& op = ops_[idx];
      const Block out = compute_op<W>(op.func, op.in, v);
      ++evaluated;
      if (differs(out, v[op.out])) {
        v[op.out] = out;
        schedule_fanout(op.out);
      }
    }
    bucket.clear();
  }
  ops_evaluated_ += evaluated;
}

template <std::size_t W>
void WideSimulator<W>::tick() {
  for (std::size_t i = 0; i < ffs_.size(); ++i) next_state_[i] = values_[ffs_[i].d];
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    if (differs(values_[ffs_[i].q], next_state_[i])) {
      values_[ffs_[i].q] = next_state_[i];
      mark_dirty(ffs_[i].q);
    }
  }
}

template <std::size_t W>
void WideSimulator<W>::inject(netlist::CellId ff_cell, const Block& mask) {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("inject: cell is not a flip-flop");
  }
  if (any(mask)) {
    values_[ffs_[slot].q] ^= mask;
    mark_dirty(ffs_[slot].q);
  }
}

template <std::size_t W>
void WideSimulator<W>::snapshot_ff_state(std::vector<Block>& out) const {
  out.resize(ffs_.size());
  for (std::size_t i = 0; i < ffs_.size(); ++i) out[i] = values_[ffs_[i].q];
}

template <std::size_t W>
void WideSimulator<W>::restore_ff_state(std::span<const Block> state) {
  if (state.size() != ffs_.size()) {
    throw std::invalid_argument("restore_ff_state: state size mismatch");
  }
  for (std::size_t i = 0; i < ffs_.size(); ++i) values_[ffs_[i].q] = state[i];
  // Combinational nets are now stale relative to the restored registers;
  // force the next incremental sweep to run in full. Note this covers nets
  // whose blocks were dirtied before the restore too — the stale dirty set
  // is superseded by the full resync sweep, never consulted to skip work.
  coherent_ = false;
}

template <std::size_t W>
const typename WideSimulator<W>::Block& WideSimulator<W>::ff_state(
    netlist::CellId ff_cell) const {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("ff_state: cell is not a flip-flop");
  }
  return values_[ffs_[slot].q];
}

template class WideSimulator<1>;
template class WideSimulator<4>;
template class WideSimulator<8>;

}  // namespace ffr::sim
