#include "sim/wide_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace ffr::sim {

using netlist::CellFunc;

namespace {

/// Block-wide gate kernel: the same truth tables as the scalar compute_op in
/// packed_sim.cpp, expressed over LaneBlock operators so one evaluation
/// advances W * 64 lanes per block. The operand pointers are formed once per
/// op and the block loop runs inside each case: `blocks` independent SIMD
/// ops on contiguous storage, which keeps the vector units busy once the
/// register width itself is exhausted. Kept internal-linkage so each
/// translation unit compiles it at its own vector width.
template <std::size_t W>
void eval_op_blocks(CellFunc func, const netlist::NetId* in,
                    const LaneBlock<W>* v, std::size_t blocks,
                    LaneBlock<W>* out) {
  using B = LaneBlock<W>;
  const auto arg = [&](std::size_t k) {
    return v + static_cast<std::size_t>(in[k]) * blocks;
  };
  switch (func) {
    case CellFunc::kConst0:
      for (std::size_t b = 0; b < blocks; ++b) out[b] = B::zero();
      return;
    case CellFunc::kConst1:
      for (std::size_t b = 0; b < blocks; ++b) out[b] = B::ones();
      return;
    case CellFunc::kBuf: {
      const B* a = arg(0);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = a[b];
      return;
    }
    case CellFunc::kInv: {
      const B* a = arg(0);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~a[b];
      return;
    }
    case CellFunc::kAnd2: {
      const B* a = arg(0);
      const B* c = arg(1);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = a[b] & c[b];
      return;
    }
    case CellFunc::kAnd3: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = a[b] & c[b] & d[b];
      return;
    }
    case CellFunc::kAnd4: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      const B* e = arg(3);
      for (std::size_t b = 0; b < blocks; ++b) {
        out[b] = a[b] & c[b] & d[b] & e[b];
      }
      return;
    }
    case CellFunc::kNand2: {
      const B* a = arg(0);
      const B* c = arg(1);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~(a[b] & c[b]);
      return;
    }
    case CellFunc::kNand3: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~(a[b] & c[b] & d[b]);
      return;
    }
    case CellFunc::kNand4: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      const B* e = arg(3);
      for (std::size_t b = 0; b < blocks; ++b) {
        out[b] = ~(a[b] & c[b] & d[b] & e[b]);
      }
      return;
    }
    case CellFunc::kOr2: {
      const B* a = arg(0);
      const B* c = arg(1);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = a[b] | c[b];
      return;
    }
    case CellFunc::kOr3: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = a[b] | c[b] | d[b];
      return;
    }
    case CellFunc::kOr4: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      const B* e = arg(3);
      for (std::size_t b = 0; b < blocks; ++b) {
        out[b] = a[b] | c[b] | d[b] | e[b];
      }
      return;
    }
    case CellFunc::kNor2: {
      const B* a = arg(0);
      const B* c = arg(1);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~(a[b] | c[b]);
      return;
    }
    case CellFunc::kNor3: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~(a[b] | c[b] | d[b]);
      return;
    }
    case CellFunc::kNor4: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      const B* e = arg(3);
      for (std::size_t b = 0; b < blocks; ++b) {
        out[b] = ~(a[b] | c[b] | d[b] | e[b]);
      }
      return;
    }
    case CellFunc::kXor2: {
      const B* a = arg(0);
      const B* c = arg(1);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = a[b] ^ c[b];
      return;
    }
    case CellFunc::kXnor2: {
      const B* a = arg(0);
      const B* c = arg(1);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~(a[b] ^ c[b]);
      return;
    }
    case CellFunc::kMux2: {
      const B* lo = arg(0);
      const B* hi = arg(1);
      const B* sel = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) {
        out[b] = (sel[b] & hi[b]) | (~sel[b] & lo[b]);
      }
      return;
    }
    case CellFunc::kAoi21: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~((a[b] & c[b]) | d[b]);
      return;
    }
    case CellFunc::kOai21: {
      const B* a = arg(0);
      const B* c = arg(1);
      const B* d = arg(2);
      for (std::size_t b = 0; b < blocks; ++b) out[b] = ~((a[b] | c[b]) & d[b]);
      return;
    }
    case CellFunc::kDff:
      throw std::logic_error("DFF in combinational op list");
  }
  throw std::logic_error("eval_op_blocks: unknown cell function");
}

}  // namespace

template <std::size_t W>
WideSimulator<W>::WideSimulator(const netlist::Netlist& nl, std::size_t blocks)
    : nl_(&nl), blocks_(blocks) {
  if (!nl.finalized()) {
    throw std::invalid_argument("WideSimulator: netlist not finalized");
  }
  if (blocks == 0 || blocks > kMaxLaneBlocksPerPass) {
    throw std::invalid_argument("WideSimulator: blocks out of range");
  }
  values_.assign(nl.num_nets() * blocks_, Block::zero());
  ops_.reserve(nl.topo_order().size());
  for (const netlist::CellId id : nl.topo_order()) {
    const netlist::Cell& cell = nl.cell(id);
    Op op;
    op.func = cell.func;
    op.num_inputs = static_cast<std::uint8_t>(cell.inputs.size());
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) op.in[i] = cell.inputs[i];
    op.out = cell.output;
    ops_.push_back(op);
  }
  ff_slot_.assign(nl.num_cells(), ~std::uint32_t{0});
  for (const netlist::CellId id : nl.flip_flops()) {
    const netlist::Cell& cell = nl.cell(id);
    ff_slot_[id] = static_cast<std::uint32_t>(ffs_.size());
    ffs_.push_back(FfSlot{cell.inputs[0], cell.output,
                          cell.init_value ? Block::ones() : Block::zero()});
  }
  next_state_.assign(ffs_.size() * blocks_, Block::zero());

  // Net -> reading-op fanout in CSR form (counting sort by input net);
  // identical construction to the scalar PackedSimulator.
  fanout_begin_.assign(nl.num_nets() + 1, 0);
  for (const Op& op : ops_) {
    for (std::size_t i = 0; i < op.num_inputs; ++i) ++fanout_begin_[op.in[i] + 1];
  }
  for (std::size_t n = 1; n < fanout_begin_.size(); ++n) {
    fanout_begin_[n] += fanout_begin_[n - 1];
  }
  fanout_ops_.resize(fanout_begin_.back());
  std::vector<std::uint32_t> cursor(fanout_begin_.begin(), fanout_begin_.end() - 1);
  for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    for (std::size_t i = 0; i < op.num_inputs; ++i) {
      fanout_ops_[cursor[op.in[i]]++] = idx;
    }
  }
  op_level_.resize(ops_.size());
  std::vector<std::uint32_t> net_level(nl.num_nets(), 0);
  std::uint32_t max_level = 0;
  for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    std::uint32_t level = 0;
    for (std::size_t i = 0; i < op.num_inputs; ++i) {
      level = std::max(level, net_level[op.in[i]]);
    }
    op_level_[idx] = level;
    net_level[op.out] = level + 1;
    max_level = std::max(max_level, level);
  }
  level_buckets_.resize(ops_.empty() ? 0 : max_level + 1);

  net_dirty_.assign(nl.num_nets(), 0);
  op_pending_.assign(ops_.size(), 0);
  dirty_nets_.reserve(64);

  reset();
}

template <std::size_t W>
void WideSimulator<W>::reset() {
  std::fill(values_.begin(), values_.end(), Block::zero());
  for (const FfSlot& ff : ffs_) {
    for (std::size_t b = 0; b < blocks_; ++b) values_[ff.q * blocks_ + b] = ff.init;
  }
  eval();
}

template <std::size_t W>
void WideSimulator<W>::set_input(netlist::NetId net, const Block& value) {
  if (net >= net_dirty_.size() || nl_->net(net).pi_index < 0) {
    throw std::invalid_argument("set_input: not a primary input net");
  }
  Block* slots = values_.data() + static_cast<std::size_t>(net) * blocks_;
  bool changed = false;
  for (std::size_t b = 0; b < blocks_; ++b) {
    if (differs(slots[b], value)) {
      slots[b] = value;
      changed = true;
    }
  }
  if (changed) mark_dirty(net);
}

template <std::size_t W>
void WideSimulator<W>::set_input_block(netlist::NetId net, std::size_t block,
                                       const Block& value) {
  if (net >= net_dirty_.size() || nl_->net(net).pi_index < 0) {
    throw std::invalid_argument("set_input_block: not a primary input net");
  }
  if (block >= blocks_) {
    throw std::invalid_argument("set_input_block: block out of range");
  }
  Block& slot = values_[static_cast<std::size_t>(net) * blocks_ + block];
  if (differs(slot, value)) {
    slot = value;
    mark_dirty(net);
  }
}

template <std::size_t W>
void WideSimulator<W>::mark_dirty(netlist::NetId net) {
  if (!net_dirty_[net]) {
    net_dirty_[net] = 1;
    dirty_nets_.push_back(net);
  }
}

template <std::size_t W>
void WideSimulator<W>::schedule_fanout(netlist::NetId net) {
  for (std::uint32_t f = fanout_begin_[net]; f < fanout_begin_[net + 1]; ++f) {
    const std::uint32_t idx = fanout_ops_[f];
    if (!op_pending_[idx]) {
      op_pending_[idx] = 1;
      level_buckets_[op_level_[idx]].push_back(idx);
    }
  }
}

template <std::size_t W>
void WideSimulator<W>::clear_dirty() {
  for (const netlist::NetId net : dirty_nets_) net_dirty_[net] = 0;
  dirty_nets_.clear();
}

template <std::size_t W>
void WideSimulator<W>::eval() {
  ++eval_count_;
  ops_evaluated_ += ops_.size();
  Block* const v = values_.data();
  for (const Op& op : ops_) {
    eval_op_blocks<W>(op.func, op.in, v, blocks_,
                      v + static_cast<std::size_t>(op.out) * blocks_);
  }
  clear_dirty();
  coherent_ = true;
}

template <std::size_t W>
void WideSimulator<W>::eval_incremental() {
  if (!coherent_) {
    eval();
    return;
  }
  ++eval_count_;
  Block* const v = values_.data();
  for (const netlist::NetId net : dirty_nets_) {
    net_dirty_[net] = 0;
    schedule_fanout(net);
  }
  dirty_nets_.clear();
  std::uint64_t evaluated = 0;
  Block scratch[kMaxLaneBlocksPerPass];
  // An evaluated op only ever schedules deeper levels, so one in-order sweep
  // over the buckets settles everything.
  for (std::vector<std::uint32_t>& bucket : level_buckets_) {
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      const std::uint32_t idx = bucket[b];
      op_pending_[idx] = 0;
      const Op& op = ops_[idx];
      eval_op_blocks<W>(op.func, op.in, v, blocks_, scratch);
      ++evaluated;
      Block* out = v + static_cast<std::size_t>(op.out) * blocks_;
      bool changed = false;
      for (std::size_t blk = 0; blk < blocks_; ++blk) {
        if (differs(scratch[blk], out[blk])) {
          out[blk] = scratch[blk];
          changed = true;
        }
      }
      if (changed) schedule_fanout(op.out);
    }
    bucket.clear();
  }
  ops_evaluated_ += evaluated;
}

template <std::size_t W>
void WideSimulator<W>::tick() {
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    const Block* d = values_.data() + static_cast<std::size_t>(ffs_[i].d) * blocks_;
    for (std::size_t b = 0; b < blocks_; ++b) next_state_[i * blocks_ + b] = d[b];
  }
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    Block* q = values_.data() + static_cast<std::size_t>(ffs_[i].q) * blocks_;
    bool changed = false;
    for (std::size_t b = 0; b < blocks_; ++b) {
      if (differs(q[b], next_state_[i * blocks_ + b])) {
        q[b] = next_state_[i * blocks_ + b];
        changed = true;
      }
    }
    if (changed) mark_dirty(ffs_[i].q);
  }
}

template <std::size_t W>
void WideSimulator<W>::inject(netlist::CellId ff_cell, const Block& mask,
                              std::size_t block) {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("inject: cell is not a flip-flop");
  }
  if (block >= blocks_) {
    throw std::invalid_argument("inject: block out of range");
  }
  if (any(mask)) {
    values_[static_cast<std::size_t>(ffs_[slot].q) * blocks_ + block] ^= mask;
    mark_dirty(ffs_[slot].q);
  }
}

template <std::size_t W>
void WideSimulator<W>::snapshot_ff_state(std::vector<Block>& out) const {
  out.resize(ffs_.size() * blocks_);
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    for (std::size_t b = 0; b < blocks_; ++b) {
      out[i * blocks_ + b] = values_[static_cast<std::size_t>(ffs_[i].q) * blocks_ + b];
    }
  }
}

template <std::size_t W>
void WideSimulator<W>::restore_ff_state(std::span<const Block> state) {
  if (state.size() != ffs_.size() * blocks_) {
    throw std::invalid_argument("restore_ff_state: state size mismatch");
  }
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    for (std::size_t b = 0; b < blocks_; ++b) {
      values_[static_cast<std::size_t>(ffs_[i].q) * blocks_ + b] = state[i * blocks_ + b];
    }
  }
  // Combinational nets are now stale relative to the restored registers;
  // force the next incremental sweep to run in full. Note this covers nets
  // whose blocks were dirtied before the restore too — the stale dirty set
  // is superseded by the full resync sweep, never consulted to skip work.
  coherent_ = false;
}

template <std::size_t W>
const typename WideSimulator<W>::Block& WideSimulator<W>::ff_state(
    netlist::CellId ff_cell, std::size_t block) const {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("ff_state: cell is not a flip-flop");
  }
  return values_[static_cast<std::size_t>(ffs_[slot].q) * blocks_ + block];
}

template class WideSimulator<1>;
template class WideSimulator<4>;
template class WideSimulator<8>;

}  // namespace ffr::sim
