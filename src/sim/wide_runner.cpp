#include "sim/wide_runner.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ffr::sim {

namespace {

/// Incremental per-lane frame extraction over `blocks` lane blocks: the
/// generalization of runner.cpp's PacketMonitor (which stays scalar and
/// untouched as the reference). Lane L of word w in block b is global lane
/// b * W * 64 + w * 64 + L.
template <std::size_t W>
class WidePacketMonitor {
 public:
  using Block = LaneBlock<W>;

  WidePacketMonitor(const PacketMonitorSpec& spec, std::size_t blocks)
      : spec_(&spec), blocks_(blocks) {
    if (spec.valid == netlist::kNoNet || spec.data.empty()) {
      throw std::invalid_argument("WidePacketMonitor: incomplete monitor spec");
    }
    lanes_.resize(blocks * Block::kLanes);
  }

  /// Seeds every lane with the golden progress at a checkpoint (the golden
  /// prefix is identical on all lanes, so one snapshot seeds every block).
  void seed(std::span<const Frame> frames,
            const std::vector<std::uint8_t>& open_bytes, bool frame_open) {
    for (LaneState& state : lanes_) {
      state.frames.assign(frames.begin(), frames.end());
      state.current = Frame{};
      state.current.bytes = open_bytes;
      state.open = frame_open;
    }
  }

  /// Captures lane 0's progress for a golden checkpoint (see the scalar
  /// PacketMonitor::snapshot contract in runner.cpp).
  void snapshot(std::size_t& frames_completed,
                std::vector<std::uint8_t>& open_bytes, bool& frame_open) const {
    const LaneState& lane0 = lanes_.front();
    frames_completed = lane0.frames.size();
    open_bytes = lane0.current.bytes;
    frame_open = lane0.open;
  }

  void observe(const WideSimulator<W>& simulator, std::size_t cycle) {
    for (std::size_t blk = 0; blk < blocks_; ++blk) {
      const Block& valid = simulator.value(spec_->valid, blk);
      if (!any(valid)) continue;
      const Block& sop = simulator.value(spec_->sop, blk);
      const Block& eop = simulator.value(spec_->eop, blk);
      const Block& err = simulator.value(spec_->err, blk);
      const std::size_t width = std::min<std::size_t>(spec_->data.size(), 8);
      const Block* data_bits[8] = {};
      for (std::size_t b = 0; b < width; ++b) {
        data_bits[b] = &simulator.value(spec_->data[b], blk);
      }
      for (std::size_t w = 0; w < W; ++w) {
        std::uint64_t remaining = valid.word(w);
        while (remaining != 0) {
          const int lane = std::countr_zero(remaining);
          remaining &= remaining - 1;
          LaneState& state =
              lanes_[blk * Block::kLanes + w * 64 + static_cast<std::size_t>(lane)];
          const std::uint64_t bit = std::uint64_t{1} << lane;
          if (eop.word(w) & bit) {
            // End marker: close the open frame (or record a headless end).
            state.current.err = (err.word(w) & bit) != 0;
            state.current.end_cycle = cycle;
            state.frames.push_back(std::move(state.current));
            state.current = Frame{};
            state.open = false;
            continue;
          }
          if (sop.word(w) & bit) {
            if (state.open) {
              // Truncated previous frame (no end marker): emit as errored.
              state.current.err = true;
              state.current.end_cycle = cycle;
              state.frames.push_back(std::move(state.current));
              state.current = Frame{};
            }
            state.open = true;
          }
          std::uint8_t byte = 0;
          for (std::size_t b = 0; b < width; ++b) {
            if (data_bits[b]->word(w) & bit) {
              byte |= static_cast<std::uint8_t>(1u << b);
            }
          }
          state.current.bytes.push_back(byte);
        }
      }
    }
  }

  [[nodiscard]] std::vector<FrameList> finish() {
    std::vector<FrameList> result;
    result.reserve(lanes_.size());
    for (LaneState& state : lanes_) {
      if (state.open && !state.current.bytes.empty()) {
        // Frame left open at end of simulation: the circuit stopped
        // delivering data mid-frame.
        state.current.err = true;
        state.frames.push_back(std::move(state.current));
      }
      result.push_back(std::move(state.frames));
    }
    return result;
  }

 private:
  struct LaneState {
    FrameList frames;
    Frame current;
    bool open = false;
  };

  const PacketMonitorSpec* spec_;
  std::size_t blocks_;
  std::vector<LaneState> lanes_;
};

}  // namespace

template <std::size_t W>
WideReplayRunner<W>::WideReplayRunner(const CompiledStimulus& stimulus,
                                      std::size_t blocks)
    : stim_(&stimulus), sim_(stimulus.netlist(), blocks) {}

template <std::size_t W>
RunResult WideReplayRunner<W>::run(std::span<const LaneInjection> injections,
                                   const WideRunOptions& options) {
  const netlist::Netlist& nl = stim_->netlist();
  const Testbench& tb = stim_->testbench();
  const std::size_t num_cycles = stim_->num_cycles();
  const std::size_t blocks = sim_.num_blocks();
  for (const LaneInjection& ev : injections) {
    if (ev.cycle >= num_cycles) {
      throw std::invalid_argument("WideReplayRunner: injection beyond end of run");
    }
    if (ev.lane >= lanes()) {
      throw std::invalid_argument("WideReplayRunner: injection lane out of block");
    }
  }
  if (options.record != nullptr) {
    if (!injections.empty()) {
      throw std::invalid_argument(
          "WideReplayRunner: checkpoint recording requires a fault-free run");
    }
    if (options.resume != nullptr) {
      throw std::invalid_argument(
          "WideReplayRunner: cannot record and resume in the same run");
    }
    if (options.record->interval == 0) {
      throw std::invalid_argument(
          "WideReplayRunner: checkpoint interval must be >= 1");
    }
    if (options.record->interval > num_cycles) {
      throw std::invalid_argument(
          "WideReplayRunner: checkpoint interval exceeds the testbench length");
    }
    options.record->begin_recording(nl.flip_flops().size(), tb.loopbacks.size());
  }
  if (options.resume != nullptr && options.trace_activity) {
    throw std::invalid_argument(
        "WideReplayRunner: activity tracing requires a full replay from reset");
  }

  // Injection schedule sorted by cycle for a single sweep.
  schedule_.assign(injections.begin(), injections.end());
  std::sort(schedule_.begin(), schedule_.end(),
            [](const LaneInjection& a, const LaneInjection& b) {
              return a.cycle < b.cycle;
            });

  const std::uint64_t evals_before = sim_.eval_count();
  const std::uint64_t ops_before = sim_.ops_evaluated();
  WidePacketMonitor<W> monitor(tb.monitor, blocks);

  // Loopback registers, driven with their idle value on the first cycle.
  loop_values_.resize(tb.loopbacks.size() * blocks);
  for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
    const Block initial = Block::splat(broadcast(tb.loopbacks[i].initial));
    for (std::size_t b = 0; b < blocks; ++b) loop_values_[i * blocks + b] = initial;
  }

  // Start point: reset, or the latest golden checkpoint not after the first
  // injection. Golden state is identical on every lane by construction, so
  // splatting each packed snapshot bit across whole blocks restores
  // blocks * W * 64 lanes all sitting on the golden prefix.
  std::size_t start_cycle = 0;
  if (options.resume != nullptr && !schedule_.empty()) {
    const GoldenCheckpoints& ckpts = *options.resume;
    const std::size_t index = ckpts.index_at_or_before(schedule_.front().cycle);
    const GoldenCheckpoints::Snapshot& snap = ckpts.snapshots[index];
    if (ckpts.num_loopbacks != tb.loopbacks.size()) {
      throw std::invalid_argument(
          "WideReplayRunner: checkpoint/testbench loopback mismatch");
    }
    start_cycle = snap.cycle;
    restore_state_.resize(ckpts.num_ffs * blocks);
    for (std::size_t i = 0; i < ckpts.num_ffs; ++i) {
      const Block value = ckpts.ff_bit(index, i) ? Block::ones() : Block::zero();
      for (std::size_t b = 0; b < blocks; ++b) restore_state_[i * blocks + b] = value;
    }
    sim_.restore_ff_state(restore_state_);
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      const Block value =
          ckpts.loopback_bit(index, i) ? Block::ones() : Block::zero();
      for (std::size_t b = 0; b < blocks; ++b) loop_values_[i * blocks + b] = value;
    }
    monitor.seed(std::span<const Frame>(ckpts.golden_frames)
                     .first(std::min(snap.frames_completed,
                                     ckpts.golden_frames.size())),
                 snap.open_bytes, snap.frame_open);
  } else {
    sim_.reset();
  }

  const auto ffs = nl.flip_flops();
  ActivityTrace activity;
  if (options.trace_activity) {
    activity.cycles_at_1.assign(ffs.size(), 0);
    activity.state_changes.assign(ffs.size(), 0);
    prev_q_.resize(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      prev_q_[i] = static_cast<std::uint8_t>(sim_.ff_state(ffs[i]).word(0) & 1u);
    }
  }

  std::size_t next_event = 0;
  const auto pis = nl.primary_inputs();
  for (std::size_t cycle = start_cycle; cycle < num_cycles; ++cycle) {
    if (options.record != nullptr && cycle % options.record->interval == 0) {
      GoldenCheckpoints& rec = *options.record;
      GoldenCheckpoints::Snapshot& snap = rec.add_snapshot(cycle);
      const std::size_t index = rec.snapshots.size() - 1;
      // Golden state is broadcast, so lane 0's bit is every lane's bit.
      for (std::size_t i = 0; i < ffs.size(); ++i) {
        if (sim_.ff_state(ffs[i]).word(0) & 1u) rec.set_state_bit(index, i);
      }
      for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
        if (loop_values_[i * blocks].word(0) & 1u) {
          rec.set_state_bit(index, ffs.size() + i);
        }
      }
      monitor.snapshot(snap.frames_completed, snap.open_bytes, snap.frame_open);
    }
    for (std::size_t i = 0; i < pis.size(); ++i) {
      sim_.set_input(pis[i], Block::splat(stim_->input(cycle, i)));
    }
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      for (std::size_t b = 0; b < blocks; ++b) {
        sim_.set_input_block(tb.loopbacks[i].to_input, b,
                             loop_values_[i * blocks + b]);
      }
    }
    while (next_event < schedule_.size() && schedule_[next_event].cycle == cycle) {
      const std::uint32_t lane = schedule_[next_event].lane;
      sim_.inject(schedule_[next_event].ff_cell,
                  Block::lane_mask(lane % Block::kLanes), lane / Block::kLanes);
      ++next_event;
    }
    if (options.incremental_eval) {
      sim_.eval_incremental();
    } else {
      sim_.eval();
    }
    monitor.observe(sim_, cycle);
    if (options.trace_activity) {
      for (std::size_t i = 0; i < ffs.size(); ++i) {
        const std::uint8_t q =
            static_cast<std::uint8_t>(sim_.ff_state(ffs[i]).word(0) & 1u);
        activity.cycles_at_1[i] += q;
        activity.state_changes[i] += static_cast<std::uint8_t>(q ^ prev_q_[i]);
        prev_q_[i] = q;
      }
    }
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      for (std::size_t b = 0; b < blocks; ++b) {
        loop_values_[i * blocks + b] = sim_.value(tb.loopbacks[i].from_net, b);
      }
    }
    sim_.tick();
  }
  if (options.trace_activity) activity.total_cycles = num_cycles;

  RunResult result;
  result.lane_frames = monitor.finish();
  if (options.record != nullptr) {
    // The shared frame stream every snapshot's frames_completed indexes into.
    options.record->golden_frames = result.lane_frames[0];
  }
  result.activity = std::move(activity);
  result.eval_count = sim_.eval_count() - evals_before;
  result.cycles_simulated = num_cycles - start_cycle;
  result.ops_evaluated = sim_.ops_evaluated() - ops_before;
  result.start_cycle = start_cycle;
  return result;
}

template class WideReplayRunner<1>;
template class WideReplayRunner<4>;
template class WideReplayRunner<8>;

}  // namespace ffr::sim
