#include "sim/wide_runner.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ffr::sim {

namespace {

/// Incremental per-lane frame extraction over a lane block: the W-word
/// generalization of runner.cpp's PacketMonitor (which stays scalar and
/// untouched as the reference). Lane L of word w is global lane w * 64 + L.
template <std::size_t W>
class WidePacketMonitor {
 public:
  using Block = LaneBlock<W>;

  explicit WidePacketMonitor(const PacketMonitorSpec& spec) : spec_(&spec) {
    if (spec.valid == netlist::kNoNet || spec.data.empty()) {
      throw std::invalid_argument("WidePacketMonitor: incomplete monitor spec");
    }
    lanes_.resize(Block::kLanes);
  }

  /// Seeds every lane with the golden progress at a checkpoint (the golden
  /// prefix is identical on all lanes, so one snapshot seeds the block).
  void seed(const FrameList& frames, const std::vector<std::uint8_t>& open_bytes,
            bool frame_open) {
    for (LaneState& state : lanes_) {
      state.frames = frames;
      state.current = Frame{};
      state.current.bytes = open_bytes;
      state.open = frame_open;
    }
  }

  void observe(const WideSimulator<W>& simulator, std::size_t cycle) {
    const Block& valid = simulator.value(spec_->valid);
    if (!any(valid)) return;
    const Block& sop = simulator.value(spec_->sop);
    const Block& eop = simulator.value(spec_->eop);
    const Block& err = simulator.value(spec_->err);
    const std::size_t width = std::min<std::size_t>(spec_->data.size(), 8);
    const Block* data_bits[8] = {};
    for (std::size_t b = 0; b < width; ++b) {
      data_bits[b] = &simulator.value(spec_->data[b]);
    }
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t remaining = valid.word(w);
      while (remaining != 0) {
        const int lane = std::countr_zero(remaining);
        remaining &= remaining - 1;
        LaneState& state = lanes_[w * 64 + static_cast<std::size_t>(lane)];
        const std::uint64_t bit = std::uint64_t{1} << lane;
        if (eop.word(w) & bit) {
          // End marker: close the open frame (or record a headless end).
          state.current.err = (err.word(w) & bit) != 0;
          state.current.end_cycle = cycle;
          state.frames.push_back(std::move(state.current));
          state.current = Frame{};
          state.open = false;
          continue;
        }
        if (sop.word(w) & bit) {
          if (state.open) {
            // Truncated previous frame (no end marker): emit as errored.
            state.current.err = true;
            state.current.end_cycle = cycle;
            state.frames.push_back(std::move(state.current));
            state.current = Frame{};
          }
          state.open = true;
        }
        std::uint8_t byte = 0;
        for (std::size_t b = 0; b < width; ++b) {
          if (data_bits[b]->word(w) & bit) byte |= static_cast<std::uint8_t>(1u << b);
        }
        state.current.bytes.push_back(byte);
      }
    }
  }

  [[nodiscard]] std::vector<FrameList> finish() {
    std::vector<FrameList> result;
    result.reserve(Block::kLanes);
    for (LaneState& state : lanes_) {
      if (state.open && !state.current.bytes.empty()) {
        // Frame left open at end of simulation: the circuit stopped
        // delivering data mid-frame.
        state.current.err = true;
        state.frames.push_back(std::move(state.current));
      }
      result.push_back(std::move(state.frames));
    }
    return result;
  }

 private:
  struct LaneState {
    FrameList frames;
    Frame current;
    bool open = false;
  };

  const PacketMonitorSpec* spec_;
  std::vector<LaneState> lanes_;
};

}  // namespace

template <std::size_t W>
WideReplayRunner<W>::WideReplayRunner(const CompiledStimulus& stimulus)
    : stim_(&stimulus), sim_(stimulus.netlist()) {}

template <std::size_t W>
RunResult WideReplayRunner<W>::run(std::span<const LaneInjection> injections,
                                   const WideRunOptions& options) {
  const netlist::Netlist& nl = stim_->netlist();
  const Testbench& tb = stim_->testbench();
  const std::size_t num_cycles = stim_->num_cycles();
  for (const LaneInjection& ev : injections) {
    if (ev.cycle >= num_cycles) {
      throw std::invalid_argument("WideReplayRunner: injection beyond end of run");
    }
    if (ev.lane >= kLanes) {
      throw std::invalid_argument("WideReplayRunner: injection lane out of block");
    }
  }

  // Injection schedule sorted by cycle for a single sweep.
  schedule_.assign(injections.begin(), injections.end());
  std::sort(schedule_.begin(), schedule_.end(),
            [](const LaneInjection& a, const LaneInjection& b) {
              return a.cycle < b.cycle;
            });

  const std::uint64_t evals_before = sim_.eval_count();
  const std::uint64_t ops_before = sim_.ops_evaluated();
  WidePacketMonitor<W> monitor(tb.monitor);

  // Loopback registers, driven with their idle value on the first cycle.
  loop_values_.resize(tb.loopbacks.size());
  for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
    loop_values_[i] = Block::splat(broadcast(tb.loopbacks[i].initial));
  }

  // Start point: reset, or the latest golden checkpoint not after the first
  // injection. Golden snapshot words are broadcast (all 64 lanes identical),
  // so splatting each word across the block restores whole blocks whose
  // W * 64 lanes all sit on the golden prefix.
  std::size_t start_cycle = 0;
  if (options.resume != nullptr && !schedule_.empty()) {
    const GoldenCheckpoints::Snapshot& snap =
        options.resume->at_or_before(schedule_.front().cycle);
    if (snap.loopback_values.size() != loop_values_.size()) {
      throw std::invalid_argument(
          "WideReplayRunner: checkpoint/testbench loopback mismatch");
    }
    start_cycle = snap.cycle;
    restore_state_.resize(snap.ff_state.size());
    for (std::size_t i = 0; i < snap.ff_state.size(); ++i) {
      restore_state_[i] = Block::splat(snap.ff_state[i]);
    }
    sim_.restore_ff_state(restore_state_);
    for (std::size_t i = 0; i < snap.loopback_values.size(); ++i) {
      loop_values_[i] = Block::splat(snap.loopback_values[i]);
    }
    monitor.seed(snap.frames, snap.open_bytes, snap.frame_open);
  } else {
    sim_.reset();
  }

  std::size_t next_event = 0;
  const auto pis = nl.primary_inputs();
  for (std::size_t cycle = start_cycle; cycle < num_cycles; ++cycle) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      sim_.set_input(pis[i], Block::splat(stim_->input(cycle, i)));
    }
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      sim_.set_input(tb.loopbacks[i].to_input, loop_values_[i]);
    }
    while (next_event < schedule_.size() && schedule_[next_event].cycle == cycle) {
      sim_.inject(schedule_[next_event].ff_cell,
                  Block::lane_mask(schedule_[next_event].lane));
      ++next_event;
    }
    if (options.incremental_eval) {
      sim_.eval_incremental();
    } else {
      sim_.eval();
    }
    monitor.observe(sim_, cycle);
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      loop_values_[i] = sim_.value(tb.loopbacks[i].from_net);
    }
    sim_.tick();
  }

  RunResult result;
  result.lane_frames = monitor.finish();
  result.eval_count = sim_.eval_count() - evals_before;
  result.cycles_simulated = num_cycles - start_cycle;
  result.ops_evaluated = sim_.ops_evaluated() - ops_before;
  result.start_cycle = start_cycle;
  return result;
}

template class WideReplayRunner<1>;
template class WideReplayRunner<4>;
template class WideReplayRunner<8>;

}  // namespace ffr::sim
