#pragma once
/// \file testbench.hpp
/// \brief Testbench description: open-loop input waveforms, registered loopback
/// connections (e.g. XGMII TX -> RX in the paper's 10GE MAC bench), the
/// packet-interface monitor specification and the fault-injection window.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ffr::sim {

/// Precomputed input waveforms. waves[i][c] is the value of the i-th primary
/// input (in netlist PI order) at cycle c.
class Stimulus {
 public:
  Stimulus(std::size_t num_inputs, std::size_t num_cycles)
      : num_cycles_(num_cycles),
        waves_(num_inputs, std::vector<std::uint8_t>(num_cycles, 0)) {}

  void set(std::size_t pi_index, std::size_t cycle, bool value) {
    waves_.at(pi_index).at(cycle) = value ? 1 : 0;
  }
  [[nodiscard]] bool get(std::size_t pi_index, std::size_t cycle) const {
    return waves_.at(pi_index).at(cycle) != 0;
  }
  [[nodiscard]] std::size_t num_cycles() const noexcept { return num_cycles_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return waves_.size(); }

 private:
  std::size_t num_cycles_;
  std::vector<std::vector<std::uint8_t>> waves_;
};

/// A registered (one-cycle-delay) connection from an output net back into a
/// primary input, with an idle value driven on the first cycle.
struct Loopback {
  netlist::NetId from_net = netlist::kNoNet;
  netlist::NetId to_input = netlist::kNoNet;
  bool initial = false;
};

/// Nets of the user-side packet read interface to monitor. A byte is part of
/// a frame when `valid` is high; `sop` opens a frame; an entry with `eop`
/// closes it (eop entries carry no payload byte, matching the MAC's RX FIFO
/// end-marker convention); `err` on the eop entry flags a bad frame.
struct PacketMonitorSpec {
  netlist::NetId valid = netlist::kNoNet;
  netlist::NetId sop = netlist::kNoNet;
  netlist::NetId eop = netlist::kNoNet;
  netlist::NetId err = netlist::kNoNet;
  std::vector<netlist::NetId> data;  // 8 nets, LSB first
};

struct Testbench {
  Stimulus stimulus{0, 0};
  std::vector<Loopback> loopbacks;
  PacketMonitorSpec monitor;
  /// Fault injections are drawn uniformly from [inject_begin, inject_end).
  std::size_t inject_begin = 0;
  std::size_t inject_end = 0;
};

/// One received frame as seen at the packet interface.
struct Frame {
  std::vector<std::uint8_t> bytes;
  bool err = false;
  std::size_t end_cycle = 0;

  [[nodiscard]] bool operator==(const Frame& other) const {
    // end_cycle intentionally ignored: a time-shifted but intact frame is
    // functionally benign (Temporal De-Rating at the application level).
    return err == other.err && bytes == other.bytes;
  }
};

using FrameList = std::vector<Frame>;

/// Rebinds a testbench written against `from` onto `to`, a netlist with the
/// same interface (e.g. one re-imported from a Verilog dump, whose net ids
/// differ even though every name survives): loopback and packet-monitor
/// NetIds are resolved by net name in `to`, and the stimulus is carried over
/// after checking that both netlists expose the same primary inputs in the
/// same order. This is what makes an imported design a first-class campaign
/// target — the retargeted bench replays bit-identically on `to`.
/// \throws std::invalid_argument when the primary-input interfaces differ or
///         a referenced net has no same-named counterpart in `to`.
[[nodiscard]] Testbench retarget_testbench(const Testbench& tb,
                                           const netlist::Netlist& from,
                                           const netlist::Netlist& to);

}  // namespace ffr::sim
