#pragma once
/// \file packed_sim.hpp
/// \brief Bit-parallel gate-level simulator. Every net carries a 64-bit word whose
/// bit L is the value of the net in simulation lane L, so one pass through
/// the levelized netlist advances 64 independent fault scenarios at once
/// (classic parallel fault simulation). A fault-free ("golden") run simply
/// drives identical stimulus on all lanes and reads lane 0.
///
/// Two evaluation strategies are offered: eval() sweeps the full levelized op
/// list, and eval_incremental() propagates only from nets whose stored value
/// actually changed since the last sweep (classic event-driven / dirty-set
/// evaluation) — after a fault injection most cycles touch only the small
/// divergence cone. Both produce bit-identical net values.
///
/// This scalar 64-lane simulator is deliberately kept untouched as the
/// differential reference for the SIMD lane-block generalization
/// (WideSimulator<W> in wide_sim.hpp, 256/512 lanes per pass): every wider
/// path must match it bit-for-bit on every circuit and replay mode.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace ffr::sim {

using Lanes = std::uint64_t;
inline constexpr Lanes kAllLanes = ~Lanes{0};
inline constexpr std::size_t kNumLanes = 64;

[[nodiscard]] constexpr Lanes broadcast(bool value) noexcept {
  return value ? kAllLanes : Lanes{0};
}

class PackedSimulator {
 public:
  /// The netlist must be finalized. The simulator keeps a reference; the
  /// netlist must outlive it.
  explicit PackedSimulator(const netlist::Netlist& nl);

  /// Resets every flip-flop to its init value (all lanes) and clears inputs.
  void reset();

  // ---- inputs ----------------------------------------------------------------

  void set_input(netlist::NetId net, Lanes value);
  void set_input_broadcast(netlist::NetId net, bool value) {
    set_input(net, broadcast(value));
  }

  // ---- execution --------------------------------------------------------------

  /// Re-evaluates all combinational logic from current inputs + FF states.
  void eval();

  /// Event-driven sweep: propagates only from nets changed since the last
  /// sweep (inputs, injections, flip-flop updates), evaluating an op only
  /// when one of its inputs actually changed. Net values after the call are
  /// bit-identical to eval(). Falls back to a full eval() when the stored
  /// values are not known to be coherent (after restore_ff_state()).
  void eval_incremental();

  /// Clock edge: every flip-flop captures its D input. Call eval() first.
  void tick();

  /// Flips the stored state of a flip-flop in the given lanes (SEU model).
  /// Takes effect on the Q value immediately; call eval() to propagate.
  void inject(netlist::CellId ff_cell, Lanes lane_mask);

  // ---- state snapshots ---------------------------------------------------------

  [[nodiscard]] std::size_t num_ffs() const noexcept { return ffs_.size(); }

  /// Copies every flip-flop's Q word into `out` (Netlist::flip_flops order).
  void snapshot_ff_state(std::vector<Lanes>& out) const;

  /// Overwrites every flip-flop's Q word from `state` (same order/size as
  /// snapshot_ff_state). Combinational nets become stale: the next
  /// eval_incremental() performs a full sweep to re-establish coherence.
  /// \throws std::invalid_argument on a size mismatch.
  void restore_ff_state(std::span<const Lanes> state);

  // ---- observation --------------------------------------------------------------

  [[nodiscard]] Lanes value(netlist::NetId net) const { return values_[net]; }
  [[nodiscard]] bool value_in_lane(netlist::NetId net, std::size_t lane) const {
    return ((values_[net] >> lane) & 1u) != 0;
  }

  /// Current Q value of a flip-flop.
  [[nodiscard]] Lanes ff_state(netlist::CellId ff_cell) const;

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }

  /// Number of eval()/eval_incremental() sweeps since construction.
  [[nodiscard]] std::uint64_t eval_count() const noexcept { return eval_count_; }

  /// Individual op evaluations since construction: eval() adds the full op
  /// count, eval_incremental() only the ops it actually visited.
  [[nodiscard]] std::uint64_t ops_evaluated() const noexcept {
    return ops_evaluated_;
  }

 private:
  struct Op {
    netlist::CellFunc func;
    std::uint8_t num_inputs;
    netlist::NetId in[4];
    netlist::NetId out;
  };
  struct FfSlot {
    netlist::NetId d;
    netlist::NetId q;
    Lanes init;
  };

  void mark_dirty(netlist::NetId net);
  void schedule_fanout(netlist::NetId net);
  void clear_dirty();

  const netlist::Netlist* nl_;
  std::vector<Op> ops_;                 // combinational cells, topo order
  std::vector<FfSlot> ffs_;             // all flip-flops
  std::vector<Lanes> values_;           // per net
  std::vector<Lanes> next_state_;       // scratch for tick()
  std::vector<std::uint32_t> ff_slot_;  // CellId -> index into ffs_ (or ~0)

  // Event-driven evaluation: per-net fanout (CSR into ops_ indices, built at
  // construction), the set of nets changed since the last sweep, and pending
  // ops bucketed by logic level. An op's output only feeds strictly deeper
  // levels, so sweeping the buckets in level order evaluates each op at most
  // once, after all its dirty inputs settled — with O(1) scheduling (a heap
  // keyed on topo index is correct too, but its log-cost pushes/pops cost
  // more than the gate evaluations they schedule).
  std::vector<std::uint32_t> fanout_begin_;  // per net, size num_nets + 1
  std::vector<std::uint32_t> fanout_ops_;
  std::vector<std::uint32_t> op_level_;      // logic level per op
  std::vector<std::vector<std::uint32_t>> level_buckets_;  // pending ops
  std::vector<netlist::NetId> dirty_nets_;
  std::vector<std::uint8_t> net_dirty_;
  std::vector<std::uint8_t> op_pending_;
  bool coherent_ = false;  // stored values consistent with inputs + FF state?

  std::uint64_t eval_count_ = 0;
  std::uint64_t ops_evaluated_ = 0;
};

}  // namespace ffr::sim
