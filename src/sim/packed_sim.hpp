#pragma once
/// \file packed_sim.hpp
/// \brief Bit-parallel gate-level simulator. Every net carries a 64-bit word whose
/// bit L is the value of the net in simulation lane L, so one pass through
/// the levelized netlist advances 64 independent fault scenarios at once
/// (classic parallel fault simulation). A fault-free ("golden") run simply
/// drives identical stimulus on all lanes and reads lane 0.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace ffr::sim {

using Lanes = std::uint64_t;
inline constexpr Lanes kAllLanes = ~Lanes{0};
inline constexpr std::size_t kNumLanes = 64;

[[nodiscard]] constexpr Lanes broadcast(bool value) noexcept {
  return value ? kAllLanes : Lanes{0};
}

class PackedSimulator {
 public:
  /// The netlist must be finalized. The simulator keeps a reference; the
  /// netlist must outlive it.
  explicit PackedSimulator(const netlist::Netlist& nl);

  /// Resets every flip-flop to its init value (all lanes) and clears inputs.
  void reset();

  // ---- inputs ----------------------------------------------------------------

  void set_input(netlist::NetId net, Lanes value);
  void set_input_broadcast(netlist::NetId net, bool value) {
    set_input(net, broadcast(value));
  }

  // ---- execution --------------------------------------------------------------

  /// Re-evaluates all combinational logic from current inputs + FF states.
  void eval();

  /// Clock edge: every flip-flop captures its D input. Call eval() first.
  void tick();

  /// Flips the stored state of a flip-flop in the given lanes (SEU model).
  /// Takes effect on the Q value immediately; call eval() to propagate.
  void inject(netlist::CellId ff_cell, Lanes lane_mask);

  // ---- observation --------------------------------------------------------------

  [[nodiscard]] Lanes value(netlist::NetId net) const { return values_[net]; }
  [[nodiscard]] bool value_in_lane(netlist::NetId net, std::size_t lane) const {
    return ((values_[net] >> lane) & 1u) != 0;
  }

  /// Current Q value of a flip-flop.
  [[nodiscard]] Lanes ff_state(netlist::CellId ff_cell) const;

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }

  /// Number of eval() calls since construction (cost accounting).
  [[nodiscard]] std::uint64_t eval_count() const noexcept { return eval_count_; }

 private:
  struct Op {
    netlist::CellFunc func;
    std::uint8_t num_inputs;
    netlist::NetId in[4];
    netlist::NetId out;
  };
  struct FfSlot {
    netlist::NetId d;
    netlist::NetId q;
    Lanes init;
  };

  const netlist::Netlist* nl_;
  std::vector<Op> ops_;                 // combinational cells, topo order
  std::vector<FfSlot> ffs_;             // all flip-flops
  std::vector<Lanes> values_;           // per net
  std::vector<Lanes> next_state_;       // scratch for tick()
  std::vector<std::uint32_t> ff_slot_;  // CellId -> index into ffs_ (or ~0)
  std::uint64_t eval_count_ = 0;
};

}  // namespace ffr::sim
