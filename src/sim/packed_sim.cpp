#include "sim/packed_sim.hpp"

#include <stdexcept>

namespace ffr::sim {

using netlist::CellFunc;

PackedSimulator::PackedSimulator(const netlist::Netlist& nl) : nl_(&nl) {
  if (!nl.finalized()) {
    throw std::invalid_argument("PackedSimulator: netlist not finalized");
  }
  values_.assign(nl.num_nets(), 0);
  ops_.reserve(nl.topo_order().size());
  for (const netlist::CellId id : nl.topo_order()) {
    const netlist::Cell& cell = nl.cell(id);
    Op op;
    op.func = cell.func;
    op.num_inputs = static_cast<std::uint8_t>(cell.inputs.size());
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) op.in[i] = cell.inputs[i];
    op.out = cell.output;
    ops_.push_back(op);
  }
  ff_slot_.assign(nl.num_cells(), ~std::uint32_t{0});
  for (const netlist::CellId id : nl.flip_flops()) {
    const netlist::Cell& cell = nl.cell(id);
    ff_slot_[id] = static_cast<std::uint32_t>(ffs_.size());
    ffs_.push_back(FfSlot{cell.inputs[0], cell.output, broadcast(cell.init_value)});
  }
  next_state_.assign(ffs_.size(), 0);
  reset();
}

void PackedSimulator::reset() {
  std::fill(values_.begin(), values_.end(), Lanes{0});
  for (const FfSlot& ff : ffs_) values_[ff.q] = ff.init;
  eval();
}

void PackedSimulator::set_input(netlist::NetId net, Lanes value) {
  if (net >= values_.size() || nl_->net(net).pi_index < 0) {
    throw std::invalid_argument("set_input: not a primary input net");
  }
  values_[net] = value;
}

void PackedSimulator::eval() {
  ++eval_count_;
  Lanes* const v = values_.data();
  for (const Op& op : ops_) {
    Lanes out = 0;
    switch (op.func) {
      case CellFunc::kConst0: out = 0; break;
      case CellFunc::kConst1: out = kAllLanes; break;
      case CellFunc::kBuf: out = v[op.in[0]]; break;
      case CellFunc::kInv: out = ~v[op.in[0]]; break;
      case CellFunc::kAnd2: out = v[op.in[0]] & v[op.in[1]]; break;
      case CellFunc::kAnd3: out = v[op.in[0]] & v[op.in[1]] & v[op.in[2]]; break;
      case CellFunc::kAnd4:
        out = v[op.in[0]] & v[op.in[1]] & v[op.in[2]] & v[op.in[3]];
        break;
      case CellFunc::kNand2: out = ~(v[op.in[0]] & v[op.in[1]]); break;
      case CellFunc::kNand3: out = ~(v[op.in[0]] & v[op.in[1]] & v[op.in[2]]); break;
      case CellFunc::kNand4:
        out = ~(v[op.in[0]] & v[op.in[1]] & v[op.in[2]] & v[op.in[3]]);
        break;
      case CellFunc::kOr2: out = v[op.in[0]] | v[op.in[1]]; break;
      case CellFunc::kOr3: out = v[op.in[0]] | v[op.in[1]] | v[op.in[2]]; break;
      case CellFunc::kOr4:
        out = v[op.in[0]] | v[op.in[1]] | v[op.in[2]] | v[op.in[3]];
        break;
      case CellFunc::kNor2: out = ~(v[op.in[0]] | v[op.in[1]]); break;
      case CellFunc::kNor3: out = ~(v[op.in[0]] | v[op.in[1]] | v[op.in[2]]); break;
      case CellFunc::kNor4:
        out = ~(v[op.in[0]] | v[op.in[1]] | v[op.in[2]] | v[op.in[3]]);
        break;
      case CellFunc::kXor2: out = v[op.in[0]] ^ v[op.in[1]]; break;
      case CellFunc::kXnor2: out = ~(v[op.in[0]] ^ v[op.in[1]]); break;
      case CellFunc::kMux2: {
        const Lanes sel = v[op.in[2]];
        out = (sel & v[op.in[1]]) | (~sel & v[op.in[0]]);
        break;
      }
      case CellFunc::kAoi21:
        out = ~((v[op.in[0]] & v[op.in[1]]) | v[op.in[2]]);
        break;
      case CellFunc::kOai21:
        out = ~((v[op.in[0]] | v[op.in[1]]) & v[op.in[2]]);
        break;
      case CellFunc::kDff:
        throw std::logic_error("DFF in combinational op list");
    }
    v[op.out] = out;
  }
}

void PackedSimulator::tick() {
  for (std::size_t i = 0; i < ffs_.size(); ++i) next_state_[i] = values_[ffs_[i].d];
  for (std::size_t i = 0; i < ffs_.size(); ++i) values_[ffs_[i].q] = next_state_[i];
}

void PackedSimulator::inject(netlist::CellId ff_cell, Lanes lane_mask) {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("inject: cell is not a flip-flop");
  }
  values_[ffs_[slot].q] ^= lane_mask;
}

Lanes PackedSimulator::ff_state(netlist::CellId ff_cell) const {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("ff_state: cell is not a flip-flop");
  }
  return values_[ffs_[slot].q];
}

}  // namespace ffr::sim
