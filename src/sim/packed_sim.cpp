#include "sim/packed_sim.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace ffr::sim {

using netlist::CellFunc;

namespace {

[[nodiscard]] Lanes compute_op(CellFunc func, const netlist::NetId* in,
                               const Lanes* v) {
  switch (func) {
    case CellFunc::kConst0: return 0;
    case CellFunc::kConst1: return kAllLanes;
    case CellFunc::kBuf: return v[in[0]];
    case CellFunc::kInv: return ~v[in[0]];
    case CellFunc::kAnd2: return v[in[0]] & v[in[1]];
    case CellFunc::kAnd3: return v[in[0]] & v[in[1]] & v[in[2]];
    case CellFunc::kAnd4: return v[in[0]] & v[in[1]] & v[in[2]] & v[in[3]];
    case CellFunc::kNand2: return ~(v[in[0]] & v[in[1]]);
    case CellFunc::kNand3: return ~(v[in[0]] & v[in[1]] & v[in[2]]);
    case CellFunc::kNand4: return ~(v[in[0]] & v[in[1]] & v[in[2]] & v[in[3]]);
    case CellFunc::kOr2: return v[in[0]] | v[in[1]];
    case CellFunc::kOr3: return v[in[0]] | v[in[1]] | v[in[2]];
    case CellFunc::kOr4: return v[in[0]] | v[in[1]] | v[in[2]] | v[in[3]];
    case CellFunc::kNor2: return ~(v[in[0]] | v[in[1]]);
    case CellFunc::kNor3: return ~(v[in[0]] | v[in[1]] | v[in[2]]);
    case CellFunc::kNor4: return ~(v[in[0]] | v[in[1]] | v[in[2]] | v[in[3]]);
    case CellFunc::kXor2: return v[in[0]] ^ v[in[1]];
    case CellFunc::kXnor2: return ~(v[in[0]] ^ v[in[1]]);
    case CellFunc::kMux2: {
      const Lanes sel = v[in[2]];
      return (sel & v[in[1]]) | (~sel & v[in[0]]);
    }
    case CellFunc::kAoi21: return ~((v[in[0]] & v[in[1]]) | v[in[2]]);
    case CellFunc::kOai21: return ~((v[in[0]] | v[in[1]]) & v[in[2]]);
    case CellFunc::kDff:
      throw std::logic_error("DFF in combinational op list");
  }
  throw std::logic_error("compute_op: unknown cell function");
}

}  // namespace

PackedSimulator::PackedSimulator(const netlist::Netlist& nl) : nl_(&nl) {
  if (!nl.finalized()) {
    throw std::invalid_argument("PackedSimulator: netlist not finalized");
  }
  values_.assign(nl.num_nets(), 0);
  ops_.reserve(nl.topo_order().size());
  for (const netlist::CellId id : nl.topo_order()) {
    const netlist::Cell& cell = nl.cell(id);
    Op op;
    op.func = cell.func;
    op.num_inputs = static_cast<std::uint8_t>(cell.inputs.size());
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) op.in[i] = cell.inputs[i];
    op.out = cell.output;
    ops_.push_back(op);
  }
  ff_slot_.assign(nl.num_cells(), ~std::uint32_t{0});
  for (const netlist::CellId id : nl.flip_flops()) {
    const netlist::Cell& cell = nl.cell(id);
    ff_slot_[id] = static_cast<std::uint32_t>(ffs_.size());
    ffs_.push_back(FfSlot{cell.inputs[0], cell.output, broadcast(cell.init_value)});
  }
  next_state_.assign(ffs_.size(), 0);

  // Net -> reading-op fanout in CSR form (counting sort by input net).
  fanout_begin_.assign(nl.num_nets() + 1, 0);
  for (const Op& op : ops_) {
    for (std::size_t i = 0; i < op.num_inputs; ++i) ++fanout_begin_[op.in[i] + 1];
  }
  for (std::size_t n = 1; n < fanout_begin_.size(); ++n) {
    fanout_begin_[n] += fanout_begin_[n - 1];
  }
  fanout_ops_.resize(fanout_begin_.back());
  std::vector<std::uint32_t> cursor(fanout_begin_.begin(), fanout_begin_.end() - 1);
  for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    for (std::size_t i = 0; i < op.num_inputs; ++i) {
      fanout_ops_[cursor[op.in[i]]++] = idx;
    }
  }
  // Logic level per op: one past the deepest level feeding any input
  // (primary inputs and flip-flop outputs sit at level 0). An op's output
  // net therefore only feeds ops at strictly greater levels.
  op_level_.resize(ops_.size());
  std::vector<std::uint32_t> net_level(nl.num_nets(), 0);
  std::uint32_t max_level = 0;
  for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    std::uint32_t level = 0;
    for (std::size_t i = 0; i < op.num_inputs; ++i) {
      level = std::max(level, net_level[op.in[i]]);
    }
    op_level_[idx] = level;
    net_level[op.out] = level + 1;
    max_level = std::max(max_level, level);
  }
  level_buckets_.resize(ops_.empty() ? 0 : max_level + 1);

  net_dirty_.assign(nl.num_nets(), 0);
  op_pending_.assign(ops_.size(), 0);
  dirty_nets_.reserve(64);

  reset();
}

void PackedSimulator::reset() {
  std::fill(values_.begin(), values_.end(), Lanes{0});
  for (const FfSlot& ff : ffs_) values_[ff.q] = ff.init;
  eval();
}

void PackedSimulator::set_input(netlist::NetId net, Lanes value) {
  if (net >= values_.size() || nl_->net(net).pi_index < 0) {
    throw std::invalid_argument("set_input: not a primary input net");
  }
  if (values_[net] != value) {
    values_[net] = value;
    mark_dirty(net);
  }
}

void PackedSimulator::mark_dirty(netlist::NetId net) {
  if (!net_dirty_[net]) {
    net_dirty_[net] = 1;
    dirty_nets_.push_back(net);
  }
}

void PackedSimulator::schedule_fanout(netlist::NetId net) {
  for (std::uint32_t f = fanout_begin_[net]; f < fanout_begin_[net + 1]; ++f) {
    const std::uint32_t idx = fanout_ops_[f];
    if (!op_pending_[idx]) {
      op_pending_[idx] = 1;
      level_buckets_[op_level_[idx]].push_back(idx);
    }
  }
}

void PackedSimulator::clear_dirty() {
  for (const netlist::NetId net : dirty_nets_) net_dirty_[net] = 0;
  dirty_nets_.clear();
}

void PackedSimulator::eval() {
  ++eval_count_;
  ops_evaluated_ += ops_.size();
  Lanes* const v = values_.data();
  for (const Op& op : ops_) {
    v[op.out] = compute_op(op.func, op.in, v);
  }
  clear_dirty();
  coherent_ = true;
}

void PackedSimulator::eval_incremental() {
  if (!coherent_) {
    eval();
    return;
  }
  ++eval_count_;
  Lanes* const v = values_.data();
  for (const netlist::NetId net : dirty_nets_) {
    net_dirty_[net] = 0;
    schedule_fanout(net);
  }
  dirty_nets_.clear();
  std::uint64_t evaluated = 0;
  // An evaluated op only ever schedules deeper levels, so one in-order sweep
  // over the buckets settles everything.
  for (std::vector<std::uint32_t>& bucket : level_buckets_) {
    for (std::size_t b = 0; b < bucket.size(); ++b) {
      const std::uint32_t idx = bucket[b];
      op_pending_[idx] = 0;
      const Op& op = ops_[idx];
      const Lanes out = compute_op(op.func, op.in, v);
      ++evaluated;
      if (out != v[op.out]) {
        v[op.out] = out;
        schedule_fanout(op.out);
      }
    }
    bucket.clear();
  }
  ops_evaluated_ += evaluated;
}

void PackedSimulator::tick() {
  for (std::size_t i = 0; i < ffs_.size(); ++i) next_state_[i] = values_[ffs_[i].d];
  for (std::size_t i = 0; i < ffs_.size(); ++i) {
    if (values_[ffs_[i].q] != next_state_[i]) {
      values_[ffs_[i].q] = next_state_[i];
      mark_dirty(ffs_[i].q);
    }
  }
}

void PackedSimulator::inject(netlist::CellId ff_cell, Lanes lane_mask) {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("inject: cell is not a flip-flop");
  }
  if (lane_mask != 0) {
    values_[ffs_[slot].q] ^= lane_mask;
    mark_dirty(ffs_[slot].q);
  }
}

void PackedSimulator::snapshot_ff_state(std::vector<Lanes>& out) const {
  out.resize(ffs_.size());
  for (std::size_t i = 0; i < ffs_.size(); ++i) out[i] = values_[ffs_[i].q];
}

void PackedSimulator::restore_ff_state(std::span<const Lanes> state) {
  if (state.size() != ffs_.size()) {
    throw std::invalid_argument("restore_ff_state: state size mismatch");
  }
  for (std::size_t i = 0; i < ffs_.size(); ++i) values_[ffs_[i].q] = state[i];
  // Combinational nets are now stale relative to the restored registers;
  // force the next incremental sweep to run in full.
  coherent_ = false;
}

Lanes PackedSimulator::ff_state(netlist::CellId ff_cell) const {
  const std::uint32_t slot = ff_slot_.at(ff_cell);
  if (slot == ~std::uint32_t{0}) {
    throw std::invalid_argument("ff_state: cell is not a flip-flop");
  }
  return values_[ffs_[slot].q];
}

}  // namespace ffr::sim
