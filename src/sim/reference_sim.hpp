#pragma once
/// \file reference_sim.hpp
/// \brief Naive single-lane reference simulator: evaluates cells with the cell
/// library's scalar `evaluate()` over bool values, recomputing until a fixed
/// point each cycle. Orders of magnitude slower than PackedSimulator but
/// obviously correct — used for differential testing of the packed engine.

#include <vector>

#include "netlist/netlist.hpp"

namespace ffr::sim {

class ReferenceSimulator {
 public:
  explicit ReferenceSimulator(const netlist::Netlist& nl);

  void reset();
  void set_input(netlist::NetId net, bool value);
  /// Recomputes every combinational cell until no net changes.
  void eval();
  void tick();
  void inject(netlist::CellId ff_cell);

  [[nodiscard]] bool value(netlist::NetId net) const { return values_[net]; }

 private:
  const netlist::Netlist* nl_;
  std::vector<char> values_;  // per net
};

}  // namespace ffr::sim
