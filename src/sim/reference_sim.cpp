#include "sim/reference_sim.hpp"

#include <stdexcept>

namespace ffr::sim {

ReferenceSimulator::ReferenceSimulator(const netlist::Netlist& nl) : nl_(&nl) {
  if (!nl.finalized()) {
    throw std::invalid_argument("ReferenceSimulator: netlist not finalized");
  }
  values_.assign(nl.num_nets(), 0);
  reset();
}

void ReferenceSimulator::reset() {
  std::fill(values_.begin(), values_.end(), 0);
  for (const netlist::CellId id : nl_->flip_flops()) {
    values_[nl_->cell(id).output] = nl_->cell(id).init_value ? 1 : 0;
  }
  eval();
}

void ReferenceSimulator::set_input(netlist::NetId net, bool value) {
  if (nl_->net(net).pi_index < 0) {
    throw std::invalid_argument("ReferenceSimulator::set_input: not a PI");
  }
  values_[net] = value ? 1 : 0;
}

void ReferenceSimulator::eval() {
  // Deliberately ignores the topological order: sweep all combinational
  // cells until a fixed point. Correct for acyclic logic and independent of
  // the levelization the packed simulator relies on.
  bool changed = true;
  while (changed) {
    changed = false;
    for (netlist::CellId id = 0; id < nl_->num_cells(); ++id) {
      const netlist::Cell& cell = nl_->cell(id);
      if (netlist::is_sequential(cell.func)) continue;
      bool buffer[4] = {};
      for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
        buffer[i] = values_[cell.inputs[i]] != 0;
      }
      const bool value = netlist::evaluate(
          cell.func, std::span<const bool>(buffer, cell.inputs.size()));
      if (values_[cell.output] != (value ? 1 : 0)) {
        values_[cell.output] = value ? 1 : 0;
        changed = true;
      }
    }
  }
}

void ReferenceSimulator::tick() {
  std::vector<char> next;
  next.reserve(nl_->flip_flops().size());
  for (const netlist::CellId id : nl_->flip_flops()) {
    next.push_back(values_[nl_->cell(id).inputs[0]]);
  }
  std::size_t slot = 0;
  for (const netlist::CellId id : nl_->flip_flops()) {
    values_[nl_->cell(id).output] = next[slot++];
  }
}

void ReferenceSimulator::inject(netlist::CellId ff_cell) {
  const netlist::Cell& cell = nl_->cell(ff_cell);
  if (!netlist::is_sequential(cell.func)) {
    throw std::invalid_argument("ReferenceSimulator::inject: not a flip-flop");
  }
  values_[cell.output] ^= 1;
}

}  // namespace ffr::sim
