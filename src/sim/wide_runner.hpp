#pragma once
/// \file wide_runner.hpp
/// \brief Block-wide testbench driver for campaign fault passes: the
/// WideSimulator<W> counterpart of ReplayRunner. One run advances W * 64
/// independent fault scenarios; stimulus words from the shared
/// CompiledStimulus are splatted across the block, and a golden checkpoint
/// resume restores whole blocks — every 64-lane golden word is broadcast by
/// construction, so splatting it into the W words of a block reproduces the
/// golden prefix on all W * 64 lanes bit-exactly.
///
/// The wide runner serves fault passes only: it supports checkpoint resume
/// and incremental evaluation, but not checkpoint recording or activity
/// tracing — those stay on the scalar golden path (runner.hpp), which is the
/// differential reference for every wider width.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/runner.hpp"
#include "sim/wide_sim.hpp"

namespace ffr::sim {

/// A scheduled single-event upset for a wide pass: flip `ff_cell` in the
/// single lane `lane` (< W * 64) at the start of `cycle`. Single-lane by
/// design — campaign passes inject exactly one fault per lane.
struct LaneInjection {
  netlist::CellId ff_cell = netlist::kNoCell;
  std::uint32_t cycle = 0;
  std::uint32_t lane = 0;
};

struct WideRunOptions {
  /// Resume from the latest golden checkpoint at or before the earliest
  /// injection instead of replaying from reset (see RunOptions::resume).
  /// Ignored when the schedule is empty.
  const GoldenCheckpoints* resume = nullptr;
  /// Use dirty-set eval_incremental() per cycle instead of the full sweep.
  bool incremental_eval = false;
};

/// Reusable wide-pass driver: owns one WideSimulator<W>, so the levelized op
/// list is built once per worker and only reset + replayed per run(). Frames
/// observed on lane L are bit-identical to the scalar ReplayRunner running
/// the same injection in any of its 64 lanes. Not thread-safe; use one
/// runner per worker.
template <std::size_t W>
class WideReplayRunner {
 public:
  using Block = LaneBlock<W>;
  static constexpr std::size_t kLanes = Block::kLanes;

  explicit WideReplayRunner(const CompiledStimulus& stimulus);

  /// Replays the testbench with the given fault schedule (from reset, or
  /// from a golden checkpoint when options.resume is set). The returned
  /// RunResult carries W * 64 lane frame streams and no activity trace.
  [[nodiscard]] RunResult run(std::span<const LaneInjection> injections = {},
                              const WideRunOptions& options = {});

  /// The owned simulator, e.g. to inspect flip-flop state after a run.
  [[nodiscard]] const WideSimulator<W>& simulator() const noexcept {
    return sim_;
  }

 private:
  const CompiledStimulus* stim_;
  WideSimulator<W> sim_;
  std::vector<LaneInjection> schedule_;  // scratch, reused across runs
  std::vector<Block> loop_values_;       // scratch
  std::vector<Block> restore_state_;     // scratch for block-splat restores
};

extern template class WideReplayRunner<1>;
extern template class WideReplayRunner<4>;
extern template class WideReplayRunner<8>;

}  // namespace ffr::sim
