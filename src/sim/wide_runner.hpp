#pragma once
/// \file wide_runner.hpp
/// \brief Block-wide testbench driver for campaign fault passes: the
/// WideSimulator<W> counterpart of ReplayRunner. One run advances
/// blocks * W * 64 independent fault scenarios; stimulus words from the
/// shared CompiledStimulus are splatted across every block, and a golden
/// checkpoint resume splats each packed golden bit into whole blocks —
/// golden state is identical on every lane by construction, so the
/// bit-per-FF snapshot reproduces the golden prefix on all lanes bit-exactly.
///
/// Besides fault passes, the wide runner also carries the golden path:
/// fault-free runs may record packed checkpoints and trace activity (the
/// golden bit stream is the same on every lane, so lane 0 of block 0
/// observes it). The scalar ReplayRunner (runner.hpp) stays untouched as
/// the differential reference for both.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/runner.hpp"
#include "sim/wide_sim.hpp"

namespace ffr::sim {

/// A scheduled single-event upset for a wide pass: flip `ff_cell` in the
/// single global lane `lane` (< blocks * W * 64) at the start of `cycle`.
/// Single-lane by design — campaign passes inject exactly one fault per lane.
struct LaneInjection {
  netlist::CellId ff_cell = netlist::kNoCell;
  std::uint32_t cycle = 0;
  std::uint32_t lane = 0;
};

struct WideRunOptions {
  /// Record per-FF activity of the golden bit stream (lane 0 of block 0).
  /// Fault-free full replays only, like RunOptions::trace_activity.
  bool trace_activity = false;
  /// Record packed golden checkpoints every `record->interval` cycles (see
  /// RunOptions::record). Fault-free runs only; incompatible with resume.
  GoldenCheckpoints* record = nullptr;
  /// Resume from the latest golden checkpoint at or before the earliest
  /// injection instead of replaying from reset (see RunOptions::resume).
  /// Ignored when the schedule is empty. Incompatible with trace_activity.
  const GoldenCheckpoints* resume = nullptr;
  /// Use dirty-set eval_incremental() per cycle instead of the full sweep.
  bool incremental_eval = false;
};

/// Reusable wide-pass driver: owns one WideSimulator<W>, so the levelized op
/// list is built once per worker and only reset + replayed per run(). Frames
/// observed on lane L are bit-identical to the scalar ReplayRunner running
/// the same injection in any of its 64 lanes. Not thread-safe; use one
/// runner per worker.
template <std::size_t W>
class WideReplayRunner {
 public:
  using Block = LaneBlock<W>;
  /// Lanes per single block; a run spans lanes() = blocks * kLanes lanes.
  static constexpr std::size_t kLanes = Block::kLanes;

  /// \throws std::invalid_argument when blocks is 0 or exceeds
  /// kMaxLaneBlocksPerPass.
  explicit WideReplayRunner(const CompiledStimulus& stimulus,
                            std::size_t blocks = 1);

  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return sim_.num_blocks();
  }
  [[nodiscard]] std::size_t lanes() const noexcept { return sim_.lanes(); }

  /// Replays the testbench with the given fault schedule (from reset, or
  /// from a golden checkpoint when options.resume is set). The returned
  /// RunResult carries lanes() frame streams, global-lane indexed (lane L
  /// lives in block L / kLanes, in-block lane L % kLanes).
  [[nodiscard]] RunResult run(std::span<const LaneInjection> injections = {},
                              const WideRunOptions& options = {});

  /// The owned simulator, e.g. to inspect flip-flop state after a run.
  [[nodiscard]] const WideSimulator<W>& simulator() const noexcept {
    return sim_;
  }

 private:
  const CompiledStimulus* stim_;
  WideSimulator<W> sim_;
  std::vector<LaneInjection> schedule_;  // scratch, reused across runs
  std::vector<Block> loop_values_;       // scratch, loopback-major
  std::vector<Block> restore_state_;     // scratch for block-splat restores
  std::vector<std::uint8_t> prev_q_;     // scratch for activity tracing
};

extern template class WideReplayRunner<1>;
extern template class WideReplayRunner<4>;
extern template class WideReplayRunner<8>;

}  // namespace ffr::sim
