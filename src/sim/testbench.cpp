#include "sim/testbench.hpp"

#include <stdexcept>

namespace ffr::sim {

namespace {

netlist::NetId map_net(const netlist::Netlist& from, const netlist::Netlist& to,
                       netlist::NetId net, const char* role) {
  if (net == netlist::kNoNet) return netlist::kNoNet;
  if (net >= from.num_nets()) {
    throw std::invalid_argument(std::string("retarget_testbench: ") + role +
                                " net id out of range in the source netlist");
  }
  const std::string& name = from.net(net).name;
  const auto mapped = to.find_net(name);
  if (!mapped.has_value()) {
    throw std::invalid_argument(std::string("retarget_testbench: ") + role +
                                " net '" + name + "' has no counterpart in '" +
                                to.name() + "'");
  }
  return *mapped;
}

}  // namespace

Testbench retarget_testbench(const Testbench& tb, const netlist::Netlist& from,
                             const netlist::Netlist& to) {
  const auto from_pis = from.primary_inputs();
  const auto to_pis = to.primary_inputs();
  if (from_pis.size() != to_pis.size()) {
    throw std::invalid_argument(
        "retarget_testbench: primary input counts differ (" +
        std::to_string(from_pis.size()) + " vs " + std::to_string(to_pis.size()) +
        ")");
  }
  for (std::size_t i = 0; i < from_pis.size(); ++i) {
    if (from.net(from_pis[i]).name != to.net(to_pis[i]).name) {
      throw std::invalid_argument(
          "retarget_testbench: primary input " + std::to_string(i) + " is '" +
          from.net(from_pis[i]).name + "' in '" + from.name() + "' but '" +
          to.net(to_pis[i]).name + "' in '" + to.name() + "'");
    }
  }

  Testbench out = tb;  // stimulus is PI-position indexed, so it carries over
  for (Loopback& loop : out.loopbacks) {
    loop.from_net = map_net(from, to, loop.from_net, "loopback source");
    loop.to_input = map_net(from, to, loop.to_input, "loopback target");
    if (to.net(loop.to_input).pi_index < 0) {
      throw std::invalid_argument("retarget_testbench: loopback target '" +
                                  to.net(loop.to_input).name +
                                  "' is not a primary input of '" + to.name() +
                                  "'");
    }
  }
  out.monitor.valid = map_net(from, to, tb.monitor.valid, "monitor valid");
  out.monitor.sop = map_net(from, to, tb.monitor.sop, "monitor sop");
  out.monitor.eop = map_net(from, to, tb.monitor.eop, "monitor eop");
  out.monitor.err = map_net(from, to, tb.monitor.err, "monitor err");
  for (netlist::NetId& data : out.monitor.data) {
    data = map_net(from, to, data, "monitor data");
  }
  return out;
}

}  // namespace ffr::sim
