#pragma once
/// \file runner.hpp
/// \brief Drives a PackedSimulator through a testbench: applies stimulus, services
/// loopbacks, schedules fault injections, extracts per-lane frames at the
/// monitored packet interface and records per-flip-flop signal activity.

#include <cstdint>
#include <vector>

#include "sim/packed_sim.hpp"
#include "sim/testbench.hpp"

namespace ffr::sim {

/// A scheduled single-event upset: flip `ff_cell` state in `lane_mask` lanes
/// at the start of `cycle` (before combinational evaluation).
struct InjectionEvent {
  netlist::CellId ff_cell = netlist::kNoCell;
  std::uint32_t cycle = 0;
  Lanes lane_mask = 0;
};

/// Per-flip-flop signal activity gathered during a run (lane 0 observed),
/// indexed like Netlist::flip_flops().
struct ActivityTrace {
  std::vector<std::uint64_t> cycles_at_1;
  std::vector<std::uint64_t> state_changes;
  std::uint64_t total_cycles = 0;
};

struct RunResult {
  std::vector<FrameList> lane_frames;  // size kNumLanes
  ActivityTrace activity;              // filled when trace_activity is set
  std::uint64_t eval_count = 0;
};

struct RunOptions {
  bool trace_activity = false;
};

/// Runs the full testbench. `injections` may target any flip-flops/cycles;
/// events outside [0, num_cycles) are rejected with std::invalid_argument.
[[nodiscard]] RunResult run_testbench(const netlist::Netlist& nl,
                                      const Testbench& tb,
                                      std::span<const InjectionEvent> injections = {},
                                      const RunOptions& options = {});

/// Fault-free reference run: frames of lane 0 plus the activity trace.
struct GoldenResult {
  FrameList frames;
  ActivityTrace activity;
  std::uint64_t eval_count = 0;
};

[[nodiscard]] GoldenResult run_golden(const netlist::Netlist& nl, const Testbench& tb);

}  // namespace ffr::sim
