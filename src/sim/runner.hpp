#pragma once
/// \file runner.hpp
/// \brief Drives a PackedSimulator through a testbench: applies stimulus, services
/// loopbacks, schedules fault injections, extracts per-lane frames at the
/// monitored packet interface and records per-flip-flop signal activity.
/// A fault-free run can record golden-state checkpoints; a fault run can
/// restore the latest checkpoint at or before its first injection and
/// fast-forward from there (incremental fault simulation).

#include <cstdint>
#include <vector>

#include "sim/packed_sim.hpp"
#include "sim/testbench.hpp"

namespace ffr::sim {

/// A scheduled single-event upset: flip `ff_cell` state in `lane_mask` lanes
/// at the start of `cycle` (before combinational evaluation).
struct InjectionEvent {
  netlist::CellId ff_cell = netlist::kNoCell;
  std::uint32_t cycle = 0;
  Lanes lane_mask = 0;
};

/// Per-flip-flop signal activity gathered during a run (lane 0 observed),
/// indexed like Netlist::flip_flops().
struct ActivityTrace {
  std::vector<std::uint64_t> cycles_at_1;
  std::vector<std::uint64_t> state_changes;
  std::uint64_t total_cycles = 0;
};

/// Golden-state checkpoints recorded during a fault-free run, shared by
/// every fault pass that replays the same (netlist, testbench) pair. A
/// snapshot at cycle C captures everything a replay runner needs to resume
/// simulation at the top of cycle C: flip-flop state, pending loopback
/// values and the packet monitor's progress (frames completed before C plus
/// the bytes of the frame in flight).
///
/// Golden state is broadcast (every lane computes the identical bit), so
/// storage is bit-packed: one bit per flip-flop / loopback per snapshot in
/// `state_bits` (~64x smaller than the previous one-64-bit-word-per-FF
/// layout, and the natural wire format for shipping checkpoints to campaign
/// shards). Restoring splats each bit back to a full broadcast word — or to
/// a whole LaneBlock, which is how WideReplayRunner (wide_runner.hpp) seeds
/// all W * 64 lanes of a SIMD lane-block pass from the same snapshot.
/// Completed golden frames are likewise stored once (`golden_frames`);
/// each snapshot keeps only the count of frames completed before its cycle.
struct GoldenCheckpoints {
  struct Snapshot {
    std::size_t cycle = 0;                 ///< Resume point.
    std::size_t frames_completed = 0;      ///< golden_frames prefix before `cycle`.
    std::vector<std::uint8_t> open_bytes;  ///< Bytes of the frame in flight.
    bool frame_open = false;               ///< A frame is open mid-stream.
  };

  std::size_t interval = 0;       ///< Cycles between snapshots.
  std::size_t num_ffs = 0;        ///< Flip-flops per snapshot (flip_flops order).
  std::size_t num_loopbacks = 0;  ///< Loopback registers per snapshot.
  FrameList golden_frames;        ///< All golden frames, shared by snapshots.
  std::vector<Snapshot> snapshots;  ///< snapshots[k].cycle == k * interval.
  /// Packed state, snapshot-major: snapshot k occupies words
  /// [k * state_stride(), (k + 1) * state_stride()). Within a snapshot, bit
  /// i is flip-flop i's Q and bit num_ffs + j is loopback j's pending value.
  std::vector<std::uint64_t> state_bits;

  /// 64-bit words per snapshot in `state_bits`.
  [[nodiscard]] std::size_t state_stride() const noexcept {
    return (num_ffs + num_loopbacks + 63) / 64;
  }

  /// Prepares for a fresh recording run: clears prior snapshots/frames and
  /// fixes the packed layout. `interval` is left as configured.
  void begin_recording(std::size_t ffs, std::size_t loopbacks);

  /// Appends the snapshot for `cycle` (zeroed state bits) and returns it.
  Snapshot& add_snapshot(std::size_t cycle);

  /// Sets packed bit `index` of snapshot `snapshot` (recording helper).
  void set_state_bit(std::size_t snapshot, std::size_t index) {
    state_bits[snapshot * state_stride() + index / 64] |=
        std::uint64_t{1} << (index % 64);
  }

  /// Flip-flop i's golden Q bit at snapshot k.
  [[nodiscard]] bool ff_bit(std::size_t snapshot, std::size_t ff) const {
    return (state_bits[snapshot * state_stride() + ff / 64] >> (ff % 64)) & 1u;
  }

  /// Loopback j's pending golden value at snapshot k.
  [[nodiscard]] bool loopback_bit(std::size_t snapshot, std::size_t loopback) const {
    return ff_bit(snapshot, num_ffs + loopback);
  }

  /// Index of the latest snapshot with snapshot.cycle <= `cycle` (the
  /// cycle-0 snapshot always exists after recording).
  /// \throws std::logic_error when empty.
  [[nodiscard]] std::size_t index_at_or_before(std::size_t cycle) const;

  /// Latest snapshot with snapshot.cycle <= `cycle`.
  /// \throws std::logic_error when empty.
  [[nodiscard]] const Snapshot& at_or_before(std::size_t cycle) const {
    return snapshots[index_at_or_before(cycle)];
  }

  /// Actual bytes held by this (packed) representation: packed state words,
  /// snapshot bookkeeping and the shared golden frame stream.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Bytes the same snapshots would occupy in the pre-packed layout (one
  /// broadcast 64-bit word per FF/loopback per snapshot, plus a private
  /// copy of the completed-frame prefix per snapshot). The honest baseline
  /// for the packing ratio reported by the campaign bench.
  [[nodiscard]] std::size_t broadcast_word_bytes() const noexcept;
};

struct RunResult {
  std::vector<FrameList> lane_frames;  // size kNumLanes
  ActivityTrace activity;              // filled when trace_activity is set
  std::uint64_t eval_count = 0;        // evaluation sweeps (== cycles simulated)
  std::uint64_t cycles_simulated = 0;  // cycles actually advanced
  std::uint64_t ops_evaluated = 0;     // individual gate evaluations
  std::uint64_t start_cycle = 0;       // 0 unless resumed from a checkpoint
};

struct RunOptions {
  bool trace_activity = false;
  /// Record golden checkpoints every `record->interval` cycles into
  /// `record` (previous snapshots are cleared). Fault-free runs only;
  /// `record->interval` must be in [1, num_cycles].
  GoldenCheckpoints* record = nullptr;
  /// Resume from the latest checkpoint at or before the earliest injection
  /// instead of replaying from reset; the skipped prefix is bit-identical
  /// to golden by construction. Ignored when the schedule is empty.
  /// Incompatible with trace_activity (the trace would only cover the
  /// simulated suffix) and with record.
  const GoldenCheckpoints* resume = nullptr;
  /// Use dirty-set PackedSimulator::eval_incremental() per cycle instead of
  /// the full-sweep eval(). Bit-identical results, far fewer op evaluations
  /// once lanes have diverged on only a small cone.
  bool incremental_eval = false;
};

/// Runs the full testbench. `injections` may target any flip-flops/cycles;
/// events outside [0, num_cycles) are rejected with std::invalid_argument.
[[nodiscard]] RunResult run_testbench(const netlist::Netlist& nl,
                                      const Testbench& tb,
                                      std::span<const InjectionEvent> injections = {},
                                      const RunOptions& options = {});

/// Precompiled, shareable stimulus for one (netlist, testbench) pair:
/// validates the waveform/PI binding once and pre-broadcasts every input
/// sample into a 64-lane word, so a replay pass skips the per-cycle
/// bool -> Lanes expansion. Holds references; the netlist and testbench must
/// outlive it. Immutable after construction, so one instance can feed many
/// ReplayRunners concurrently. input() takes any cycle in [0, num_cycles),
/// so replays may start mid-stream.
class CompiledStimulus {
 public:
  /// \throws std::invalid_argument on a stimulus/PI count mismatch.
  CompiledStimulus(const netlist::Netlist& nl, const Testbench& tb);

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }
  [[nodiscard]] const Testbench& testbench() const noexcept { return *tb_; }
  [[nodiscard]] std::size_t num_cycles() const noexcept { return num_cycles_; }

  /// Broadcast value of the pi-th primary input at `cycle`.
  [[nodiscard]] Lanes input(std::size_t cycle, std::size_t pi) const noexcept {
    return waves_[cycle * num_pis_ + pi];
  }

  /// Bytes held by the pre-broadcast waveform table — the dominant cost of
  /// keeping a compiled stimulus resident (see CampaignEngine and the
  /// service-layer engine registry's byte budget).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return waves_.size() * sizeof(Lanes);
  }

 private:
  const netlist::Netlist* nl_;
  const Testbench* tb_;
  std::size_t num_pis_ = 0;
  std::size_t num_cycles_ = 0;
  std::vector<Lanes> waves_;  // cycle-major
};

/// Reusable testbench driver for campaign passes: owns one PackedSimulator,
/// so the levelized op list is built once and only reset + replayed per
/// run(). A run's observable behaviour (frames, activity, eval accounting)
/// is bit-identical to a fresh run_testbench() call with the same inputs;
/// resumed / incremental-eval runs are bit-identical in frames and final
/// state to a full replay of the same schedule. Not thread-safe; use one
/// runner per worker.
class ReplayRunner {
 public:
  explicit ReplayRunner(const CompiledStimulus& stimulus);

  /// Replays the testbench with the given fault schedule (from reset, or
  /// from a golden checkpoint when options.resume is set).
  [[nodiscard]] RunResult run(std::span<const InjectionEvent> injections = {},
                              const RunOptions& options = {});

  /// The owned simulator, e.g. to inspect flip-flop state after a run.
  [[nodiscard]] const PackedSimulator& simulator() const noexcept { return sim_; }

 private:
  const CompiledStimulus* stim_;
  PackedSimulator sim_;
  std::vector<InjectionEvent> schedule_;  // scratch, reused across runs
  std::vector<Lanes> loop_values_;        // scratch
  std::vector<Lanes> prev_q_;             // scratch for activity tracing
  std::vector<Lanes> restore_state_;      // scratch for checkpoint restore
};

/// Fault-free reference run: frames of lane 0 plus the activity trace.
struct GoldenResult {
  FrameList frames;
  ActivityTrace activity;
  std::uint64_t eval_count = 0;
};

[[nodiscard]] GoldenResult run_golden(const netlist::Netlist& nl, const Testbench& tb);

}  // namespace ffr::sim
