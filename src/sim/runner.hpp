#pragma once
/// \file runner.hpp
/// \brief Drives a PackedSimulator through a testbench: applies stimulus, services
/// loopbacks, schedules fault injections, extracts per-lane frames at the
/// monitored packet interface and records per-flip-flop signal activity.

#include <cstdint>
#include <vector>

#include "sim/packed_sim.hpp"
#include "sim/testbench.hpp"

namespace ffr::sim {

/// A scheduled single-event upset: flip `ff_cell` state in `lane_mask` lanes
/// at the start of `cycle` (before combinational evaluation).
struct InjectionEvent {
  netlist::CellId ff_cell = netlist::kNoCell;
  std::uint32_t cycle = 0;
  Lanes lane_mask = 0;
};

/// Per-flip-flop signal activity gathered during a run (lane 0 observed),
/// indexed like Netlist::flip_flops().
struct ActivityTrace {
  std::vector<std::uint64_t> cycles_at_1;
  std::vector<std::uint64_t> state_changes;
  std::uint64_t total_cycles = 0;
};

struct RunResult {
  std::vector<FrameList> lane_frames;  // size kNumLanes
  ActivityTrace activity;              // filled when trace_activity is set
  std::uint64_t eval_count = 0;
};

struct RunOptions {
  bool trace_activity = false;
};

/// Runs the full testbench. `injections` may target any flip-flops/cycles;
/// events outside [0, num_cycles) are rejected with std::invalid_argument.
[[nodiscard]] RunResult run_testbench(const netlist::Netlist& nl,
                                      const Testbench& tb,
                                      std::span<const InjectionEvent> injections = {},
                                      const RunOptions& options = {});

/// Precompiled, shareable stimulus for one (netlist, testbench) pair:
/// validates the waveform/PI binding once and pre-broadcasts every input
/// sample into a 64-lane word, so a replay pass skips the per-cycle
/// bool -> Lanes expansion. Holds references; the netlist and testbench must
/// outlive it. Immutable after construction, so one instance can feed many
/// ReplayRunners concurrently.
class CompiledStimulus {
 public:
  /// \throws std::invalid_argument on a stimulus/PI count mismatch.
  CompiledStimulus(const netlist::Netlist& nl, const Testbench& tb);

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }
  [[nodiscard]] const Testbench& testbench() const noexcept { return *tb_; }
  [[nodiscard]] std::size_t num_cycles() const noexcept { return num_cycles_; }

  /// Broadcast value of the pi-th primary input at `cycle`.
  [[nodiscard]] Lanes input(std::size_t cycle, std::size_t pi) const noexcept {
    return waves_[cycle * num_pis_ + pi];
  }

 private:
  const netlist::Netlist* nl_;
  const Testbench* tb_;
  std::size_t num_pis_ = 0;
  std::size_t num_cycles_ = 0;
  std::vector<Lanes> waves_;  // cycle-major
};

/// Reusable testbench driver for campaign passes: owns one PackedSimulator,
/// so the levelized op list is built once and only reset + replayed per
/// run(). A run's observable behaviour (frames, activity, eval accounting)
/// is bit-identical to a fresh run_testbench() call with the same inputs.
/// Not thread-safe; use one runner per worker.
class ReplayRunner {
 public:
  explicit ReplayRunner(const CompiledStimulus& stimulus);

  /// Replays the full testbench with the given fault schedule.
  [[nodiscard]] RunResult run(std::span<const InjectionEvent> injections = {},
                              const RunOptions& options = {});

 private:
  const CompiledStimulus* stim_;
  PackedSimulator sim_;
  std::vector<InjectionEvent> schedule_;  // scratch, reused across runs
  std::vector<Lanes> loop_values_;        // scratch
  std::vector<Lanes> prev_q_;             // scratch for activity tracing
};

/// Fault-free reference run: frames of lane 0 plus the activity trace.
struct GoldenResult {
  FrameList frames;
  ActivityTrace activity;
  std::uint64_t eval_count = 0;
};

[[nodiscard]] GoldenResult run_golden(const netlist::Netlist& nl, const Testbench& tb);

}  // namespace ffr::sim
