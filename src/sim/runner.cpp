#include "sim/runner.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <stdexcept>

namespace ffr::sim {

namespace {

/// Incremental per-lane frame extraction at the monitored packet interface.
class PacketMonitor {
 public:
  explicit PacketMonitor(const PacketMonitorSpec& spec) : spec_(&spec) {
    if (spec.valid == netlist::kNoNet || spec.data.empty()) {
      throw std::invalid_argument("PacketMonitor: incomplete monitor spec");
    }
    lanes_.resize(kNumLanes);
  }

  /// Seeds every lane with the golden progress at a checkpoint: the frames
  /// completed before the resume cycle plus the partially received frame.
  void seed(std::span<const Frame> frames,
            const std::vector<std::uint8_t>& open_bytes, bool frame_open) {
    for (LaneState& state : lanes_) {
      state.frames.assign(frames.begin(), frames.end());
      state.current = Frame{};
      state.current.bytes = open_bytes;
      state.open = frame_open;
    }
  }

  /// Captures lane 0's progress for a golden checkpoint: the count of
  /// frames completed so far (the frames themselves live once in
  /// GoldenCheckpoints::golden_frames) plus the partial frame. While a
  /// frame is in flight only its bytes carry state: err/end_cycle are
  /// assigned at close time.
  void snapshot(std::size_t& frames_completed,
                std::vector<std::uint8_t>& open_bytes, bool& frame_open) const {
    const LaneState& lane0 = lanes_.front();
    frames_completed = lane0.frames.size();
    open_bytes = lane0.current.bytes;
    frame_open = lane0.open;
  }

  void observe(const PackedSimulator& simulator, std::size_t cycle) {
    const Lanes valid = simulator.value(spec_->valid);
    if (valid == 0) return;
    const Lanes sop = simulator.value(spec_->sop);
    const Lanes eop = simulator.value(spec_->eop);
    const Lanes err = simulator.value(spec_->err);
    std::uint64_t data_bits[8] = {};
    const std::size_t width = std::min<std::size_t>(spec_->data.size(), 8);
    for (std::size_t b = 0; b < width; ++b) {
      data_bits[b] = simulator.value(spec_->data[b]);
    }
    Lanes remaining = valid;
    while (remaining != 0) {
      const int lane = std::countr_zero(remaining);
      remaining &= remaining - 1;
      LaneState& state = lanes_[static_cast<std::size_t>(lane)];
      const std::uint64_t bit = Lanes{1} << lane;
      if (eop & bit) {
        // End marker: close the open frame (or record a headless end).
        state.current.err = (err & bit) != 0;
        state.current.end_cycle = cycle;
        state.frames.push_back(std::move(state.current));
        state.current = Frame{};
        state.open = false;
        continue;
      }
      if (sop & bit) {
        if (state.open) {
          // Truncated previous frame (no end marker): emit as errored.
          state.current.err = true;
          state.current.end_cycle = cycle;
          state.frames.push_back(std::move(state.current));
          state.current = Frame{};
        }
        state.open = true;
      }
      std::uint8_t byte = 0;
      for (std::size_t b = 0; b < width; ++b) {
        if (data_bits[b] & bit) byte |= static_cast<std::uint8_t>(1u << b);
      }
      state.current.bytes.push_back(byte);
    }
  }

  [[nodiscard]] std::vector<FrameList> finish() {
    std::vector<FrameList> result;
    result.reserve(kNumLanes);
    for (LaneState& state : lanes_) {
      if (state.open && !state.current.bytes.empty()) {
        // Frame left open at end of simulation: the circuit stopped
        // delivering data mid-frame.
        state.current.err = true;
        state.frames.push_back(std::move(state.current));
      }
      result.push_back(std::move(state.frames));
    }
    return result;
  }

 private:
  struct LaneState {
    FrameList frames;
    Frame current;
    bool open = false;
  };

  const PacketMonitorSpec* spec_;
  std::vector<LaneState> lanes_;
};

}  // namespace

void GoldenCheckpoints::begin_recording(std::size_t ffs, std::size_t loopbacks) {
  num_ffs = ffs;
  num_loopbacks = loopbacks;
  golden_frames.clear();
  snapshots.clear();
  state_bits.clear();
}

GoldenCheckpoints::Snapshot& GoldenCheckpoints::add_snapshot(std::size_t cycle) {
  Snapshot& snap = snapshots.emplace_back();
  snap.cycle = cycle;
  state_bits.resize(state_bits.size() + state_stride(), 0);
  return snap;
}

std::size_t GoldenCheckpoints::index_at_or_before(std::size_t cycle) const {
  if (snapshots.empty() || interval == 0) {
    throw std::logic_error("GoldenCheckpoints: no snapshots recorded");
  }
  // Snapshots sit at k * interval, so the latest one not after `cycle` is
  // directly indexable.
  return std::min(cycle / interval, snapshots.size() - 1);
}

namespace {

/// Heap bytes of a frame stream: per-frame payloads plus Frame bookkeeping.
std::size_t frame_stream_bytes(std::span<const Frame> frames) {
  std::size_t bytes = frames.size() * sizeof(Frame);
  for (const Frame& frame : frames) bytes += frame.bytes.size();
  return bytes;
}

}  // namespace

std::size_t GoldenCheckpoints::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  bytes += state_bits.size() * sizeof(std::uint64_t);
  bytes += snapshots.size() * sizeof(Snapshot);
  for (const Snapshot& snap : snapshots) bytes += snap.open_bytes.size();
  bytes += frame_stream_bytes(golden_frames);
  return bytes;
}

std::size_t GoldenCheckpoints::broadcast_word_bytes() const noexcept {
  // Reconstructs the footprint of the pre-packed layout: each snapshot held
  // one 64-bit broadcast word per FF and per loopback plus a private copy of
  // the frames completed before its cycle.
  std::size_t bytes = sizeof(interval) + sizeof(std::vector<Snapshot>);
  std::size_t prefix_bytes = 0;
  std::size_t frame = 0;
  for (const Snapshot& snap : snapshots) {
    while (frame < snap.frames_completed && frame < golden_frames.size()) {
      prefix_bytes += sizeof(Frame) + golden_frames[frame].bytes.size();
      ++frame;
    }
    bytes += sizeof(Snapshot) + 2 * sizeof(std::vector<Lanes>) + sizeof(FrameList);
    bytes += (num_ffs + num_loopbacks) * sizeof(Lanes);
    bytes += prefix_bytes + snap.open_bytes.size();
  }
  return bytes;
}

CompiledStimulus::CompiledStimulus(const netlist::Netlist& nl, const Testbench& tb)
    : nl_(&nl), tb_(&tb) {
  const Stimulus& stim = tb.stimulus;
  if (stim.num_inputs() != nl.primary_inputs().size()) {
    throw std::invalid_argument("CompiledStimulus: stimulus/PI count mismatch");
  }
  num_pis_ = stim.num_inputs();
  num_cycles_ = stim.num_cycles();
  waves_.resize(num_pis_ * num_cycles_);
  for (std::size_t cycle = 0; cycle < num_cycles_; ++cycle) {
    for (std::size_t i = 0; i < num_pis_; ++i) {
      waves_[cycle * num_pis_ + i] = broadcast(stim.get(i, cycle));
    }
  }
}

ReplayRunner::ReplayRunner(const CompiledStimulus& stimulus)
    : stim_(&stimulus), sim_(stimulus.netlist()) {}

RunResult ReplayRunner::run(std::span<const InjectionEvent> injections,
                            const RunOptions& options) {
  const netlist::Netlist& nl = stim_->netlist();
  const Testbench& tb = stim_->testbench();
  const std::size_t num_cycles = stim_->num_cycles();
  for (const InjectionEvent& ev : injections) {
    if (ev.cycle >= num_cycles) {
      throw std::invalid_argument("ReplayRunner: injection beyond end of run");
    }
  }
  if (options.record != nullptr) {
    if (!injections.empty()) {
      throw std::invalid_argument(
          "ReplayRunner: checkpoint recording requires a fault-free run");
    }
    if (options.resume != nullptr) {
      throw std::invalid_argument(
          "ReplayRunner: cannot record and resume in the same run");
    }
    if (options.record->interval == 0) {
      throw std::invalid_argument(
          "ReplayRunner: checkpoint interval must be >= 1");
    }
    if (options.record->interval > num_cycles) {
      throw std::invalid_argument(
          "ReplayRunner: checkpoint interval exceeds the testbench length");
    }
    options.record->begin_recording(nl.flip_flops().size(), tb.loopbacks.size());
  }
  if (options.resume != nullptr && options.trace_activity) {
    throw std::invalid_argument(
        "ReplayRunner: activity tracing requires a full replay from reset");
  }

  // Injection schedule sorted by cycle for a single sweep.
  schedule_.assign(injections.begin(), injections.end());
  std::sort(schedule_.begin(), schedule_.end(),
            [](const InjectionEvent& a, const InjectionEvent& b) {
              return a.cycle < b.cycle;
            });

  const std::uint64_t evals_before = sim_.eval_count();
  const std::uint64_t ops_before = sim_.ops_evaluated();
  PacketMonitor monitor(tb.monitor);

  // Loopback registers, driven with their idle value on the first cycle.
  loop_values_.resize(tb.loopbacks.size());
  for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
    loop_values_[i] = broadcast(tb.loopbacks[i].initial);
  }

  // Start point: reset, or the latest golden checkpoint not after the first
  // injection. The skipped prefix is bit-identical to golden on every lane,
  // so restoring golden state + monitor progress loses nothing.
  std::size_t start_cycle = 0;
  if (options.resume != nullptr && !schedule_.empty()) {
    const GoldenCheckpoints& ckpts = *options.resume;
    const std::size_t index = ckpts.index_at_or_before(schedule_.front().cycle);
    const GoldenCheckpoints::Snapshot& snap = ckpts.snapshots[index];
    if (ckpts.num_loopbacks != loop_values_.size()) {
      throw std::invalid_argument(
          "ReplayRunner: checkpoint/testbench loopback mismatch");
    }
    start_cycle = snap.cycle;
    // Splat each packed golden bit back to a 64-lane broadcast word.
    restore_state_.resize(ckpts.num_ffs);
    for (std::size_t i = 0; i < ckpts.num_ffs; ++i) {
      restore_state_[i] = broadcast(ckpts.ff_bit(index, i));
    }
    sim_.restore_ff_state(restore_state_);
    for (std::size_t i = 0; i < loop_values_.size(); ++i) {
      loop_values_[i] = broadcast(ckpts.loopback_bit(index, i));
    }
    monitor.seed(std::span<const Frame>(ckpts.golden_frames)
                     .first(std::min(snap.frames_completed,
                                     ckpts.golden_frames.size())),
                 snap.open_bytes, snap.frame_open);
  } else {
    sim_.reset();
  }

  const auto ffs = nl.flip_flops();
  ActivityTrace activity;
  if (options.trace_activity) {
    activity.cycles_at_1.assign(ffs.size(), 0);
    activity.state_changes.assign(ffs.size(), 0);
    prev_q_.resize(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      prev_q_[i] = sim_.ff_state(ffs[i]);
    }
  }

  std::size_t next_event = 0;
  const auto pis = nl.primary_inputs();
  for (std::size_t cycle = start_cycle; cycle < num_cycles; ++cycle) {
    if (options.record != nullptr && cycle % options.record->interval == 0) {
      GoldenCheckpoints& rec = *options.record;
      GoldenCheckpoints::Snapshot& snap = rec.add_snapshot(cycle);
      const std::size_t index = rec.snapshots.size() - 1;
      // Golden state is broadcast, so lane 0's bit is every lane's bit.
      for (std::size_t i = 0; i < ffs.size(); ++i) {
        if (sim_.ff_state(ffs[i]) & 1u) rec.set_state_bit(index, i);
      }
      for (std::size_t i = 0; i < loop_values_.size(); ++i) {
        if (loop_values_[i] & 1u) rec.set_state_bit(index, ffs.size() + i);
      }
      monitor.snapshot(snap.frames_completed, snap.open_bytes, snap.frame_open);
    }
    for (std::size_t i = 0; i < pis.size(); ++i) {
      sim_.set_input(pis[i], stim_->input(cycle, i));
    }
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      sim_.set_input(tb.loopbacks[i].to_input, loop_values_[i]);
    }
    while (next_event < schedule_.size() && schedule_[next_event].cycle == cycle) {
      sim_.inject(schedule_[next_event].ff_cell, schedule_[next_event].lane_mask);
      ++next_event;
    }
    if (options.incremental_eval) {
      sim_.eval_incremental();
    } else {
      sim_.eval();
    }
    monitor.observe(sim_, cycle);
    if (options.trace_activity) {
      for (std::size_t i = 0; i < ffs.size(); ++i) {
        const Lanes q = sim_.ff_state(ffs[i]);
        activity.cycles_at_1[i] += q & 1u;
        activity.state_changes[i] += (q ^ prev_q_[i]) & 1u;
        prev_q_[i] = q;
      }
    }
    for (std::size_t i = 0; i < tb.loopbacks.size(); ++i) {
      loop_values_[i] = sim_.value(tb.loopbacks[i].from_net);
    }
    sim_.tick();
  }
  if (options.trace_activity) activity.total_cycles = num_cycles;

  RunResult result;
  result.lane_frames = monitor.finish();
  if (options.record != nullptr) {
    // The shared frame stream every snapshot's frames_completed indexes into.
    options.record->golden_frames = result.lane_frames[0];
  }
  result.activity = std::move(activity);
  result.eval_count = sim_.eval_count() - evals_before;
  result.cycles_simulated = num_cycles - start_cycle;
  result.ops_evaluated = sim_.ops_evaluated() - ops_before;
  result.start_cycle = start_cycle;
  return result;
}

RunResult run_testbench(const netlist::Netlist& nl, const Testbench& tb,
                        std::span<const InjectionEvent> injections,
                        const RunOptions& options) {
  const CompiledStimulus stimulus(nl, tb);
  ReplayRunner runner(stimulus);
  return runner.run(injections, options);
}

GoldenResult run_golden(const netlist::Netlist& nl, const Testbench& tb) {
  RunOptions options;
  options.trace_activity = true;
  RunResult run = run_testbench(nl, tb, {}, options);
  GoldenResult golden;
  golden.frames = std::move(run.lane_frames[0]);
  golden.activity = std::move(run.activity);
  golden.eval_count = run.eval_count;
  return golden;
}

}  // namespace ffr::sim
