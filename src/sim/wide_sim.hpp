#pragma once
/// \file wide_sim.hpp
/// \brief Block-wide bit-parallel gate simulator: the LaneBlock<W> generalization
/// of PackedSimulator. Every net carries `blocks` LaneBlock<W>s (blocks * W *
/// 64 fault lanes), and the eval / eval_incremental / tick / inject / restore
/// inner loops are written over the block type, so GCC/Clang lower each gate
/// evaluation to one AVX2 (W=4) or AVX-512 (W=8) operation per block where
/// the build architecture allows. Sweeping several blocks per op keeps the
/// vector pipelines busy past the register-width ceiling: the per-op operand
/// pointers are formed once and the block loop runs back-to-back independent
/// SIMD ops on adjacent cache lines (net-major storage: net n's blocks are
/// contiguous at [n * blocks, (n + 1) * blocks)).
///
/// WideSimulator<W> mirrors PackedSimulator exactly — same levelized op
/// list, same fanout-CSR dirty-set machinery (dirty is tracked per net, a
/// net is dirty when any of its blocks changed), same coherence contract
/// after restore_ff_state() — and every lane is bit-identical to the scalar
/// simulator running that lane's scenario (the scalar 64-bit path in
/// packed_sim.hpp is deliberately untouched as the differential reference;
/// see tests/test_lane_width.cpp). Blocks cross this interface by reference
/// only: the SIMD argument ABI of the build flags never leaks between
/// translation units.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/lane_block.hpp"

namespace ffr::sim {

template <std::size_t W>
class WideSimulator {
 public:
  using Block = LaneBlock<W>;
  /// Lanes per single block; total lanes are num_blocks() * kLanes.
  static constexpr std::size_t kLanes = Block::kLanes;

  /// The netlist must be finalized. The simulator keeps a reference; the
  /// netlist must outlive it. `blocks` lane blocks are swept per pass.
  /// \throws std::invalid_argument when blocks is 0 or exceeds
  /// kMaxLaneBlocksPerPass.
  explicit WideSimulator(const netlist::Netlist& nl, std::size_t blocks = 1);

  [[nodiscard]] std::size_t num_blocks() const noexcept { return blocks_; }
  [[nodiscard]] std::size_t lanes() const noexcept { return blocks_ * kLanes; }

  /// Resets every flip-flop to its init value (all lanes) and clears inputs.
  void reset();

  /// Broadcasts `value` to every block of a primary-input net.
  void set_input(netlist::NetId net, const Block& value);

  /// Sets one block of a primary-input net (per-block loopback values).
  void set_input_block(netlist::NetId net, std::size_t block, const Block& value);

  /// Re-evaluates all combinational logic from current inputs + FF states.
  void eval();

  /// Event-driven sweep over the dirty cone; bit-identical to eval(). Falls
  /// back to a full eval() while the stored values are not known to be
  /// coherent (after restore_ff_state()), exactly like the scalar path — a
  /// restored block invalidates every combinational net, including blocks
  /// that were dirtied before the restore and never restored themselves.
  void eval_incremental();

  /// Clock edge: every flip-flop captures its D input. Call eval() first.
  void tick();

  /// Flips the stored state of a flip-flop in the lanes of block `block`
  /// set in `mask`.
  void inject(netlist::CellId ff_cell, const Block& mask, std::size_t block = 0);

  [[nodiscard]] std::size_t num_ffs() const noexcept { return ffs_.size(); }

  /// Copies every flip-flop's Q blocks into `out`, flip-flop-major: FF i's
  /// blocks land at [i * num_blocks(), (i + 1) * num_blocks()).
  void snapshot_ff_state(std::vector<Block>& out) const;

  /// Overwrites every flip-flop's Q blocks from `state` (same order/size as
  /// snapshot_ff_state). Combinational nets become stale: the next
  /// eval_incremental() performs a full sweep to re-establish coherence.
  /// \throws std::invalid_argument on a size mismatch.
  void restore_ff_state(std::span<const Block> state);

  [[nodiscard]] const Block& value(netlist::NetId net, std::size_t block = 0) const {
    return values_[net * blocks_ + block];
  }
  /// Bit of a net in a global lane index in [0, lanes()).
  [[nodiscard]] bool value_in_lane(netlist::NetId net, std::size_t lane) const {
    return values_[net * blocks_ + lane / kLanes].lane(lane % kLanes);
  }

  /// Current Q block of a flip-flop.
  [[nodiscard]] const Block& ff_state(netlist::CellId ff_cell,
                                      std::size_t block = 0) const;

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }

  /// Number of eval()/eval_incremental() sweeps since construction.
  [[nodiscard]] std::uint64_t eval_count() const noexcept { return eval_count_; }

  /// Individual op evaluations since construction (one per op per sweep,
  /// regardless of block width or block count): eval() adds the full op
  /// count, eval_incremental() only the ops it actually visited.
  [[nodiscard]] std::uint64_t ops_evaluated() const noexcept {
    return ops_evaluated_;
  }

 private:
  struct Op {
    netlist::CellFunc func;
    std::uint8_t num_inputs;
    netlist::NetId in[4];
    netlist::NetId out;
  };
  struct FfSlot {
    netlist::NetId d;
    netlist::NetId q;
    Block init;
  };

  void mark_dirty(netlist::NetId net);
  void schedule_fanout(netlist::NetId net);
  void clear_dirty();

  const netlist::Netlist* nl_;
  std::size_t blocks_ = 1;
  std::vector<Op> ops_;              // combinational cells, topo order
  std::vector<FfSlot> ffs_;          // all flip-flops
  std::vector<Block> values_;        // net-major: blocks_ blocks per net
  std::vector<Block> next_state_;    // scratch for tick(), ff-major
  std::vector<std::uint32_t> ff_slot_;  // CellId -> index into ffs_ (or ~0)

  // Dirty-set machinery, identical in structure to PackedSimulator (see
  // packed_sim.hpp for the level-bucket scheduling rationale).
  std::vector<std::uint32_t> fanout_begin_;
  std::vector<std::uint32_t> fanout_ops_;
  std::vector<std::uint32_t> op_level_;
  std::vector<std::vector<std::uint32_t>> level_buckets_;
  std::vector<netlist::NetId> dirty_nets_;
  std::vector<std::uint8_t> net_dirty_;
  std::vector<std::uint8_t> op_pending_;
  bool coherent_ = false;

  std::uint64_t eval_count_ = 0;
  std::uint64_t ops_evaluated_ = 0;
};

extern template class WideSimulator<1>;
extern template class WideSimulator<4>;
extern template class WideSimulator<8>;

}  // namespace ffr::sim
