#include "sim/lane_block.hpp"

#include <atomic>

namespace ffr::sim {

namespace {

[[nodiscard]] LaneWidth detect_native_lane_width() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return LaneWidth::k512;
  if (__builtin_cpu_supports("avx2")) return LaneWidth::k256;
#endif
  return LaneWidth::k64;
}

/// Testing override; kAuto means "no override, use real detection".
std::atomic<LaneWidth> g_forced_width{LaneWidth::kAuto};

}  // namespace

LaneWidth native_lane_width() noexcept {
  const LaneWidth forced = g_forced_width.load(std::memory_order_relaxed);
  if (forced != LaneWidth::kAuto) return forced;
  static const LaneWidth detected = detect_native_lane_width();
  return detected;
}

void force_native_lane_width_for_testing(LaneWidth width) noexcept {
  g_forced_width.store(width, std::memory_order_relaxed);
}

ResolvedLaneWidth resolve_lane_width(LaneWidth requested) {
  const LaneWidth native = native_lane_width();
  if (requested == LaneWidth::kAuto) return {native, {}};
  if (lanes_of(requested) <= lanes_of(native)) return {requested, {}};
  ResolvedLaneWidth resolved;
  resolved.width = native;
  resolved.warning = std::string("lane_width ") + to_string(requested) +
                     " exceeds the host's native SIMD width; falling back to " +
                     to_string(native) + " lanes per pass";
  return resolved;
}

}  // namespace ffr::sim
