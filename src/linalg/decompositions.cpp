#include "linalg/decompositions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ffr::linalg {

QrDecomposition::QrDecomposition(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  const std::size_t k = std::min(m, n);
  tau_.assign(k, 0.0);
  perm_.resize(n);
  for (std::size_t j = 0; j < n; ++j) perm_[j] = j;

  // Column norms for pivoting.
  Vector col_norms(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) col_norms[j] = norm2(qr_.col_copy(j));
  const double total_scale = *std::max_element(col_norms.begin(), col_norms.end());
  const double tol = std::max(m, n) * 1e-13 * std::max(total_scale, 1e-300);

  rank_ = 0;
  for (std::size_t step = 0; step < k; ++step) {
    // Pivot: bring the column with the largest remaining norm to `step`.
    std::size_t pivot = step;
    double best = -1.0;
    for (std::size_t j = step; j < n; ++j) {
      double norm_sq = 0.0;
      for (std::size_t i = step; i < m; ++i) norm_sq += qr_(i, j) * qr_(i, j);
      if (norm_sq > best) {
        best = norm_sq;
        pivot = j;
      }
    }
    if (pivot != step) {
      for (std::size_t i = 0; i < m; ++i) std::swap(qr_(i, step), qr_(i, pivot));
      std::swap(perm_[step], perm_[pivot]);
    }

    // Householder vector for column `step`.
    double alpha = 0.0;
    for (std::size_t i = step; i < m; ++i) alpha += qr_(i, step) * qr_(i, step);
    alpha = std::sqrt(alpha);
    if (alpha <= tol) {
      tau_[step] = 0.0;
      continue;  // remaining block numerically zero
    }
    ++rank_;
    if (qr_(step, step) > 0) alpha = -alpha;
    const double v0 = qr_(step, step) - alpha;
    qr_(step, step) = alpha;  // R diagonal entry
    // Store v (scaled so v[0] = 1) below the diagonal.
    for (std::size_t i = step + 1; i < m; ++i) qr_(i, step) /= v0;
    tau_[step] = -v0 / alpha;

    // Apply H = I - tau v v^T to the trailing columns.
    for (std::size_t j = step + 1; j < n; ++j) {
      double s = qr_(step, j);
      for (std::size_t i = step + 1; i < m; ++i) s += qr_(i, step) * qr_(i, j);
      s *= tau_[step];
      qr_(step, j) -= s;
      for (std::size_t i = step + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, step);
    }
  }
}

Vector QrDecomposition::apply_qt(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  if (b.size() != m) throw std::invalid_argument("apply_qt: size mismatch");
  Vector y(b.begin(), b.end());
  const std::size_t k = tau_.size();
  for (std::size_t step = 0; step < k; ++step) {
    if (tau_[step] == 0.0) continue;
    double s = y[step];
    for (std::size_t i = step + 1; i < m; ++i) s += qr_(i, step) * y[i];
    s *= tau_[step];
    y[step] -= s;
    for (std::size_t i = step + 1; i < m; ++i) y[i] -= s * qr_(i, step);
  }
  return y;
}

Vector QrDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = qr_.cols();
  Vector y = apply_qt(b);

  // Back substitution on the leading rank_ x rank_ block of R.
  Vector z(n, 0.0);
  for (std::size_t ii = rank_; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < rank_; ++j) s -= qr_(ii, j) * z[j];
    z[ii] = s / qr_(ii, ii);
  }

  // Undo the column permutation.
  Vector x(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) x[perm_[j]] = z[j];
  return x;
}

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("Cholesky: non-square");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0) throw std::runtime_error("Cholesky: matrix not SPD");
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vector CholeskyDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) throw std::invalid_argument("Cholesky solve: size mismatch");
  // Forward substitution L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Backward substitution L^T x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector lstsq(const Matrix& a, std::span<const double> b) {
  return QrDecomposition(a).solve(b);
}

Vector ridge_solve(const Matrix& a, std::span<const double> b, double lambda) {
  if (lambda < 0.0) throw std::invalid_argument("ridge_solve: negative lambda");
  const Matrix at = a.transposed();
  Matrix gram = matmul(at, a);
  for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += lambda;
  const Vector rhs = matvec(at, b);
  return CholeskyDecomposition(gram).solve(rhs);
}

}  // namespace ffr::linalg
