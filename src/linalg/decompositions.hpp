#pragma once
/// \file decompositions.hpp
/// \brief Numerical factorizations used by the ML models:
/// - Householder QR with column pivoting -> rank-revealing least squares
/// (backs LinearLeastSquares, matching scipy.linalg.lstsq behaviour on
/// rank-deficient designs closely enough for this problem size)
/// - Cholesky -> ridge normal equations and SPD solves.

#include "linalg/matrix.hpp"

namespace ffr::linalg {

/// Householder QR factorization A = Q R (A is m x n, m >= n not required).
class QrDecomposition {
 public:
  explicit QrDecomposition(Matrix a);

  /// Minimum-norm-ish least squares solution of A x = b using the QR factors.
  /// For rank-deficient A, pivoted columns with |R(i,i)| below tolerance are
  /// zeroed (basic solution). Throws on dimension mismatch.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Numerical rank with the default tolerance.
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// Apply Q^T to a vector of length m.
  [[nodiscard]] Vector apply_qt(std::span<const double> b) const;

  [[nodiscard]] const Matrix& packed_qr() const noexcept { return qr_; }

 private:
  Matrix qr_;                     // Householder vectors below diag, R on/above
  Vector tau_;                    // Householder scalar factors
  std::vector<std::size_t> perm_;  // column pivot permutation
  std::size_t rank_ = 0;
};

/// Cholesky factorization of a symmetric positive definite matrix, A = L L^T.
class CholeskyDecomposition {
 public:
  /// Throws std::runtime_error if the matrix is not SPD (within tolerance).
  explicit CholeskyDecomposition(const Matrix& a);

  [[nodiscard]] Vector solve(std::span<const double> b) const;
  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }

 private:
  Matrix l_;
};

/// Least-squares solve min ||A x - b||_2 via pivoted QR.
[[nodiscard]] Vector lstsq(const Matrix& a, std::span<const double> b);

/// Solve (A^T A + lambda I) x = A^T b (ridge regression normal equations).
[[nodiscard]] Vector ridge_solve(const Matrix& a, std::span<const double> b,
                                 double lambda);

}  // namespace ffr::linalg
