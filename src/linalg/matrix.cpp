#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ffr::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    m.set_row(r, rows[r]);
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Vector Matrix::row_copy(std::size_t r) const {
  const auto view = row(r);
  return Vector(view.begin(), view.end());
}

Vector Matrix::col_copy(std::size_t c) const {
  Vector column(rows_);
  for (std::size_t r = 0; r < rows_; ++r) column[r] = (*this)(r, c);
  return column;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  if (values.size() != cols_) throw std::invalid_argument("Matrix::set_row size");
  std::copy(values.begin(), values.end(), data_.begin() + static_cast<long>(r * cols_));
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("select_rows index");
    out.set_row(i, row(indices[i]));
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t c = 0; c < indices.size(); ++c) {
    if (indices[c] >= cols_) throw std::out_of_range("select_cols index");
    for (std::size_t r = 0; r < rows_; ++r) out(r, c) = (*this)(r, indices[c]);
  }
  return out;
}

Matrix Matrix::with_bias_column() const {
  Matrix out(rows_, cols_ + 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    out(r, 0) = 1.0;
    for (std::size_t c = 0; c < cols_; ++c) out(r, c + 1) = (*this)(r, c);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix +=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix -=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed;
  for (std::size_t r = 0; r < rows_; ++r) {
    out << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) out << ", ";
      out << (*this)(r, c);
    }
    out << "]\n";
  }
  return out.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double scalar) { return lhs *= scalar; }
Matrix operator*(double scalar, Matrix rhs) { return rhs *= scalar; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: shape mismatch");
  Vector out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) out[i] = dot(a.row(i), x);
  return out;
}

Vector vecmat(std::span<const double> x, const Matrix& a) {
  if (a.rows() != x.size()) throw std::invalid_argument("vecmat: shape mismatch");
  Vector out(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += xi * row[j];
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm1(std::span<const double> a) {
  double sum = 0.0;
  for (const double v : a) sum += std::abs(v);
  return sum;
}

double norm_inf(std::span<const double> a) {
  double best = 0.0;
  for (const double v : a) best = std::max(best, std::abs(v));
  return best;
}

Vector axpy(double alpha, std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i] + y[i];
  return out;
}

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean of empty span");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Vector midranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  Vector ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t t = i; t <= j; ++t) ranks[order[t]] = rank;
    i = j + 1;
  }
  return ranks;
}

double variance(std::span<const double> values) {
  const double m = mean(values);
  double sum = 0.0;
  for (const double v : values) sum += (v - m) * (v - m);
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("min of empty span");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("max of empty span");
  return *std::max_element(values.begin(), values.end());
}

}  // namespace ffr::linalg
