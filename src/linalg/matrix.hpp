#pragma once
/// \file matrix.hpp
/// \brief Dense row-major matrix/vector types backing the from-scratch ML library.
/// Deliberately small: the paper's workloads are ~1000 samples x ~25 features,
/// so clarity and correctness beat BLAS-level performance here.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ffr::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix from_rows(const std::vector<Vector>& rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Vector row_copy(std::size_t r) const;
  [[nodiscard]] Vector col_copy(std::size_t c) const;
  void set_row(std::size_t r, std::span<const double> values);

  [[nodiscard]] Matrix transposed() const;

  /// Select a subset of rows (used by train/test splits and CV folds).
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Select a subset of columns (used by feature ablations).
  [[nodiscard]] Matrix select_cols(std::span<const std::size_t> indices) const;

  /// Append a column of ones on the left (bias term for linear models).
  [[nodiscard]] Matrix with_bias_column() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix lhs, double scalar);
[[nodiscard]] Matrix operator*(double scalar, Matrix rhs);

/// Matrix-matrix product. Throws std::invalid_argument on shape mismatch.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// Matrix-vector product.
[[nodiscard]] Vector matvec(const Matrix& a, std::span<const double> x);

/// x^T * A (row vector times matrix).
[[nodiscard]] Vector vecmat(std::span<const double> x, const Matrix& a);

// ----- vector helpers -----------------------------------------------------

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> a);
[[nodiscard]] double norm1(std::span<const double> a);
[[nodiscard]] double norm_inf(std::span<const double> a);
[[nodiscard]] Vector axpy(double alpha, std::span<const double> x,
                          std::span<const double> y);  // alpha*x + y

[[nodiscard]] double mean(std::span<const double> values);
/// 1-based ranks with ties averaged (midranks), the standard convention of
/// Spearman correlation and quantile normalization.
[[nodiscard]] Vector midranks(std::span<const double> values);
/// Population variance (divide by n), matching scikit-learn's
/// explained_variance_score convention.
[[nodiscard]] double variance(std::span<const double> values);
[[nodiscard]] double stddev(std::span<const double> values);
[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

}  // namespace ffr::linalg
