#include "netlist/netlist.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ffr::netlist {

NetId Netlist::add_net(std::string name) {
  const NetId id = static_cast<NetId>(nets_.size());
  Net net;
  net.name = std::move(name);
  auto [it, inserted] = net_by_name_.emplace(net.name, id);
  if (!inserted) {
    throw std::runtime_error("Netlist: duplicate net name '" + net.name + "'");
  }
  nets_.push_back(std::move(net));
  finalized_ = false;
  return id;
}

CellId Netlist::add_cell(Cell cell) {
  if (cell.inputs.size() != num_inputs(cell.func)) {
    throw std::runtime_error("Netlist: cell '" + cell.name + "' has " +
                             std::to_string(cell.inputs.size()) + " inputs, " +
                             std::string(to_string(cell.func)) + " needs " +
                             std::to_string(num_inputs(cell.func)));
  }
  if (cell.output == kNoNet || cell.output >= nets_.size()) {
    throw std::runtime_error("Netlist: cell '" + cell.name + "' has no output net");
  }
  for (const NetId in : cell.inputs) {
    if (in >= nets_.size()) {
      throw std::runtime_error("Netlist: cell '" + cell.name +
                               "' references missing input net");
    }
  }
  const CellId id = static_cast<CellId>(cells_.size());
  Net& out = nets_[cell.output];
  if (out.driver != kNoCell || out.pi_index >= 0) {
    throw std::runtime_error("Netlist: net '" + out.name + "' has multiple drivers");
  }
  out.driver = id;
  auto [it, inserted] = cell_by_name_.emplace(cell.name, id);
  if (!inserted) {
    throw std::runtime_error("Netlist: duplicate cell name '" + cell.name + "'");
  }
  cells_.push_back(std::move(cell));
  finalized_ = false;
  return id;
}

NetId Netlist::add_primary_input(std::string name) {
  const NetId id = add_net(std::move(name));
  nets_[id].pi_index = static_cast<std::int32_t>(primary_inputs_.size());
  primary_inputs_.push_back(id);
  return id;
}

void Netlist::mark_primary_output(NetId net, std::string port_name) {
  if (net >= nets_.size()) throw std::runtime_error("mark_primary_output: bad net");
  primary_outputs_.push_back(net);
  primary_output_names_.push_back(std::move(port_name));
  finalized_ = false;
}

void Netlist::add_register_bus(RegisterBus bus) {
  for (const CellId ff : bus.flip_flops) {
    if (ff >= cells_.size() || !is_sequential(cells_[ff].func)) {
      throw std::runtime_error("add_register_bus: '" + bus.name +
                               "' references a non-flip-flop cell");
    }
  }
  buses_.push_back(std::move(bus));
  finalized_ = false;
}

void Netlist::finalize() {
  // Rebuild reader lists.
  for (Net& net : nets_) net.readers.clear();
  for (CellId id = 0; id < cells_.size(); ++id) {
    for (const NetId in : cells_[id].inputs) nets_[in].readers.push_back(id);
  }
  // Flip-flop index.
  flip_flops_.clear();
  for (CellId id = 0; id < cells_.size(); ++id) {
    if (is_sequential(cells_[id].func)) flip_flops_.push_back(id);
  }
  // Bus membership map.
  ff_bus_.clear();
  for (std::size_t b = 0; b < buses_.size(); ++b) {
    for (std::size_t pos = 0; pos < buses_[b].flip_flops.size(); ++pos) {
      ff_bus_[buses_[b].flip_flops[pos]] = {b, pos};
    }
  }
  check_invariants();
  compute_topo_order();
  finalized_ = true;
}

void Netlist::check_invariants() const {
  for (NetId id = 0; id < nets_.size(); ++id) {
    const Net& net = nets_[id];
    if (net.driver == kNoCell && net.pi_index < 0) {
      throw std::runtime_error("Netlist: net '" + net.name + "' is undriven");
    }
  }
}

void Netlist::compute_topo_order() {
  // Kahn's algorithm over combinational cells only. DFF outputs and primary
  // inputs are sources; a DFF's D input is a sink (no edge out of the DFF
  // through the clock boundary), so sequential loops are legal.
  topo_order_.clear();
  std::vector<std::uint32_t> pending(cells_.size(), 0);
  std::vector<CellId> ready;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& cell = cells_[id];
    if (is_sequential(cell.func)) continue;
    std::uint32_t comb_inputs = 0;
    for (const NetId in : cell.inputs) {
      const Net& net = nets_[in];
      if (net.driver != kNoCell && !is_sequential(cells_[net.driver].func)) {
        ++comb_inputs;
      }
    }
    pending[id] = comb_inputs;
    if (comb_inputs == 0) ready.push_back(id);
  }
  std::size_t num_comb = 0;
  for (const Cell& cell : cells_) {
    if (!is_sequential(cell.func)) ++num_comb;
  }
  topo_order_.reserve(num_comb);
  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    topo_order_.push_back(id);
    for (const CellId reader : nets_[cells_[id].output].readers) {
      if (is_sequential(cells_[reader].func)) continue;
      if (--pending[reader] == 0) ready.push_back(reader);
    }
  }
  if (topo_order_.size() != num_comb) {
    throw std::runtime_error(
        "Netlist: combinational cycle detected (" + std::to_string(num_comb) +
        " combinational cells, only " + std::to_string(topo_order_.size()) +
        " orderable)");
  }
}

std::optional<std::pair<std::size_t, std::size_t>> Netlist::bus_of(CellId ff) const {
  const auto it = ff_bus_.find(ff);
  if (it == ff_bus_.end()) return std::nullopt;
  return it->second;
}

std::optional<CellId> Netlist::find_cell(std::string_view name) const {
  const auto it = cell_by_name_.find(std::string(name));
  if (it == cell_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<NetId> Netlist::find_net(std::string_view name) const {
  const auto it = net_by_name_.find(std::string(name));
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

double Netlist::total_area_um2() const {
  const CellLibrary& lib = default_library();
  double area = 0.0;
  for (const Cell& cell : cells_) area += lib.lookup(cell.func, cell.drive).area_um2;
  return area;
}

std::string Netlist::summary() const {
  std::size_t num_comb = 0;
  std::size_t num_const = 0;
  for (const Cell& cell : cells_) {
    if (is_sequential(cell.func)) continue;
    if (is_constant(cell.func)) {
      ++num_const;
    } else {
      ++num_comb;
    }
  }
  std::ostringstream out;
  out << name_ << ": " << cells_.size() << " cells (" << flip_flops_.size()
      << " FFs, " << num_comb << " comb, " << num_const << " const), "
      << nets_.size() << " nets, " << primary_inputs_.size() << " PIs, "
      << primary_outputs_.size() << " POs, " << buses_.size() << " buses";
  return out.str();
}

namespace {

bool mismatch_at(std::string* out, const std::string& what) {
  if (out != nullptr) *out = what;
  return false;
}

}  // namespace

bool structurally_equal(const Netlist& a, const Netlist& b, std::string* mismatch) {
  if (a.name() != b.name()) {
    return mismatch_at(mismatch, "module name: '" + a.name() + "' vs '" +
                                     b.name() + "'");
  }
  if (a.num_nets() != b.num_nets()) {
    return mismatch_at(mismatch, "net count: " + std::to_string(a.num_nets()) +
                                     " vs " + std::to_string(b.num_nets()));
  }
  for (NetId id = 0; id < a.num_nets(); ++id) {
    const Net& na = a.net(id);
    const Net& nb = b.net(id);
    if (na.name != nb.name || na.pi_index != nb.pi_index) {
      return mismatch_at(mismatch, "net " + std::to_string(id) + ": '" + na.name +
                                       "' (pi " + std::to_string(na.pi_index) +
                                       ") vs '" + nb.name + "' (pi " +
                                       std::to_string(nb.pi_index) + ")");
    }
  }
  if (a.num_cells() != b.num_cells()) {
    return mismatch_at(mismatch, "cell count: " + std::to_string(a.num_cells()) +
                                     " vs " + std::to_string(b.num_cells()));
  }
  for (CellId id = 0; id < a.num_cells(); ++id) {
    const Cell& ca = a.cell(id);
    const Cell& cb = b.cell(id);
    const char* field = nullptr;
    if (ca.name != cb.name) field = "name";
    else if (ca.func != cb.func) field = "func";
    else if (ca.drive != cb.drive) field = "drive";
    else if (ca.init_value != cb.init_value) field = "init_value";
    else if (ca.inputs != cb.inputs) field = "inputs";
    else if (ca.output != cb.output) field = "output";
    if (field != nullptr) {
      return mismatch_at(mismatch, "cell " + std::to_string(id) + " ('" + ca.name +
                                       "' vs '" + cb.name + "'): " + field +
                                       " differs");
    }
  }
  if (a.primary_output_names() != b.primary_output_names()) {
    return mismatch_at(mismatch, "primary output names differ");
  }
  if (!std::equal(a.primary_outputs().begin(), a.primary_outputs().end(),
                  b.primary_outputs().begin(), b.primary_outputs().end())) {
    return mismatch_at(mismatch, "primary output nets differ");
  }
  if (a.register_buses().size() != b.register_buses().size()) {
    return mismatch_at(mismatch,
                       "bus count: " + std::to_string(a.register_buses().size()) +
                           " vs " + std::to_string(b.register_buses().size()));
  }
  for (std::size_t i = 0; i < a.register_buses().size(); ++i) {
    const RegisterBus& ba = a.register_buses()[i];
    const RegisterBus& bb = b.register_buses()[i];
    if (ba.name != bb.name || ba.flip_flops != bb.flip_flops) {
      return mismatch_at(mismatch, "bus " + std::to_string(i) + " ('" + ba.name +
                                       "' vs '" + bb.name + "') differs");
    }
  }
  return true;
}

}  // namespace ffr::netlist
