#include "netlist/builder.hpp"

#include <stdexcept>

namespace ffr::netlist {

std::string NetlistBuilder::fresh_cell_name(std::string_view prefix) {
  return std::string(prefix) + "_U" + std::to_string(next_cell_++);
}

std::string NetlistBuilder::fresh_net_name(std::string_view prefix) {
  return std::string(prefix) + "_n" + std::to_string(next_net_++);
}

NetId NetlistBuilder::input(std::string name) {
  return netlist_.add_primary_input(std::move(name));
}

std::vector<NetId> NetlistBuilder::input_bus(const std::string& name,
                                             std::size_t width) {
  std::vector<NetId> nets;
  nets.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    nets.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return nets;
}

void NetlistBuilder::output(NetId net, std::string name) {
  netlist_.mark_primary_output(net, std::move(name));
}

void NetlistBuilder::output_bus(std::span<const NetId> nets, const std::string& name) {
  for (std::size_t i = 0; i < nets.size(); ++i) {
    output(nets[i], name + "[" + std::to_string(i) + "]");
  }
}

NetId NetlistBuilder::constant(bool value) {
  NetId& cached = value ? const1_ : const0_;
  if (cached == kNoNet) {
    const NetId out = netlist_.add_net(value ? "const1" : "const0");
    Cell cell;
    cell.name = value ? "tie1" : "tie0";
    cell.func = value ? CellFunc::kConst1 : CellFunc::kConst0;
    cell.output = out;
    netlist_.add_cell(std::move(cell));
    cached = out;
  }
  return cached;
}

NetId NetlistBuilder::gate(CellFunc func, std::vector<NetId> inputs,
                           std::string name) {
  if (is_sequential(func)) {
    throw std::invalid_argument("NetlistBuilder::gate: use dff() for sequential");
  }
  if (name.empty()) name = fresh_cell_name(to_string(func));
  const NetId out = netlist_.add_net(fresh_net_name(name));
  Cell cell;
  cell.name = std::move(name);
  cell.func = func;
  cell.inputs = std::move(inputs);
  cell.output = out;
  netlist_.add_cell(std::move(cell));
  return out;
}

namespace {

CellFunc wide(CellFunc two, CellFunc three, CellFunc four, std::size_t n) {
  switch (n) {
    case 2: return two;
    case 3: return three;
    case 4: return four;
    default: throw std::logic_error("wide gate arity");
  }
}

}  // namespace

NetId NetlistBuilder::and_reduce(std::vector<NetId> nets) {
  if (nets.empty()) return constant(true);
  while (nets.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < nets.size()) {
      const std::size_t take = std::min<std::size_t>(4, nets.size() - i);
      if (take == 1) {
        next.push_back(nets[i]);
        ++i;
        continue;
      }
      std::vector<NetId> group(nets.begin() + static_cast<long>(i),
                               nets.begin() + static_cast<long>(i + take));
      next.push_back(gate(
          wide(CellFunc::kAnd2, CellFunc::kAnd3, CellFunc::kAnd4, take), group));
      i += take;
    }
    nets = std::move(next);
  }
  return nets.front();
}

NetId NetlistBuilder::or_reduce(std::vector<NetId> nets) {
  if (nets.empty()) return constant(false);
  while (nets.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < nets.size()) {
      const std::size_t take = std::min<std::size_t>(4, nets.size() - i);
      if (take == 1) {
        next.push_back(nets[i]);
        ++i;
        continue;
      }
      std::vector<NetId> group(nets.begin() + static_cast<long>(i),
                               nets.begin() + static_cast<long>(i + take));
      next.push_back(
          gate(wide(CellFunc::kOr2, CellFunc::kOr3, CellFunc::kOr4, take), group));
      i += take;
    }
    nets = std::move(next);
  }
  return nets.front();
}

NetId NetlistBuilder::xor_reduce(std::vector<NetId> nets) {
  if (nets.empty()) return constant(false);
  while (nets.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i + 1 < nets.size()) {
      next.push_back(xor2(nets[i], nets[i + 1]));
      i += 2;
    }
    if (i < nets.size()) next.push_back(nets[i]);
    nets = std::move(next);
  }
  return nets.front();
}

FlipFlop NetlistBuilder::dff(NetId d, bool init, std::string name) {
  if (name.empty()) name = fresh_cell_name("reg");
  const NetId q = netlist_.add_net(name + "_q");
  Cell cell;
  cell.name = std::move(name);
  cell.func = CellFunc::kDff;
  cell.inputs = {d};
  cell.output = q;
  cell.init_value = init;
  const CellId id = netlist_.add_cell(std::move(cell));
  return FlipFlop{id, q};
}

std::vector<FlipFlop> NetlistBuilder::register_bus(const std::string& name,
                                                   std::span<const NetId> d,
                                                   std::uint64_t init) {
  std::vector<FlipFlop> ffs;
  ffs.reserve(d.size());
  RegisterBus bus;
  bus.name = name;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const bool bit_init = ((init >> (i % 64)) & 1ULL) != 0;
    FlipFlop ff = dff(d[i], bit_init, name + "[" + std::to_string(i) + "]");
    bus.flip_flops.push_back(ff.cell);
    ffs.push_back(ff);
  }
  netlist_.add_register_bus(std::move(bus));
  return ffs;
}

NetId NetlistBuilder::forward_wire(const std::string& name) {
  return netlist_.add_net(fresh_net_name(name));
}

std::vector<NetId> NetlistBuilder::forward_wires(const std::string& name,
                                                 std::size_t count) {
  std::vector<NetId> wires;
  wires.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    wires.push_back(forward_wire(name + "[" + std::to_string(i) + "]"));
  }
  return wires;
}

void NetlistBuilder::bind_forward_wire(NetId wire, NetId source) {
  Cell cell;
  cell.name = fresh_cell_name("fwd");
  cell.func = CellFunc::kBuf;
  cell.inputs = {source};
  cell.output = wire;
  netlist_.add_cell(std::move(cell));
}

std::vector<NetId> NetlistBuilder::q_nets(std::span<const FlipFlop> ffs) {
  std::vector<NetId> nets;
  nets.reserve(ffs.size());
  for (const FlipFlop& ff : ffs) nets.push_back(ff.q);
  return nets;
}

void NetlistBuilder::assign_drive_strengths() {
  // Reader lists are not maintained incrementally, so count fanout here.
  std::vector<std::uint32_t> fanout(netlist_.num_nets(), 0);
  for (const Cell& cell : netlist_.cells()) {
    for (const NetId in : cell.inputs) ++fanout[in];
  }
  for (CellId id = 0; id < netlist_.num_cells(); ++id) {
    Cell& cell = netlist_.mutable_cell(id);
    // Tie cells exist only at X1 in the library (lookup coerces them, and
    // the Verilog round-trip could not represent an upsized constant).
    if (is_constant(cell.func)) continue;
    const std::uint32_t out_fanout = fanout[cell.output];
    if (out_fanout > 8) {
      cell.drive = DriveStrength::kX4;
    } else if (out_fanout > 3) {
      cell.drive = DriveStrength::kX2;
    } else {
      cell.drive = DriveStrength::kX1;
    }
  }
}

Netlist NetlistBuilder::build() {
  assign_drive_strengths();
  netlist_.finalize();
  return std::move(netlist_);
}

}  // namespace ffr::netlist
