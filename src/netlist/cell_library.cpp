#include "netlist/cell_library.hpp"

#include <cassert>
#include <stdexcept>

namespace ffr::netlist {

std::string_view to_string(CellFunc func) noexcept {
  switch (func) {
    case CellFunc::kConst0: return "CONST0";
    case CellFunc::kConst1: return "CONST1";
    case CellFunc::kBuf: return "BUF";
    case CellFunc::kInv: return "INV";
    case CellFunc::kAnd2: return "AND2";
    case CellFunc::kAnd3: return "AND3";
    case CellFunc::kAnd4: return "AND4";
    case CellFunc::kNand2: return "NAND2";
    case CellFunc::kNand3: return "NAND3";
    case CellFunc::kNand4: return "NAND4";
    case CellFunc::kOr2: return "OR2";
    case CellFunc::kOr3: return "OR3";
    case CellFunc::kOr4: return "OR4";
    case CellFunc::kNor2: return "NOR2";
    case CellFunc::kNor3: return "NOR3";
    case CellFunc::kNor4: return "NOR4";
    case CellFunc::kXor2: return "XOR2";
    case CellFunc::kXnor2: return "XNOR2";
    case CellFunc::kMux2: return "MUX2";
    case CellFunc::kAoi21: return "AOI21";
    case CellFunc::kOai21: return "OAI21";
    case CellFunc::kDff: return "DFF";
  }
  return "UNKNOWN";
}

std::string_view to_string(DriveStrength drive) noexcept {
  switch (drive) {
    case DriveStrength::kX1: return "X1";
    case DriveStrength::kX2: return "X2";
    case DriveStrength::kX4: return "X4";
  }
  return "X?";
}

std::size_t num_inputs(CellFunc func) noexcept {
  switch (func) {
    case CellFunc::kConst0:
    case CellFunc::kConst1: return 0;
    case CellFunc::kBuf:
    case CellFunc::kInv:
    case CellFunc::kDff: return 1;
    case CellFunc::kAnd2:
    case CellFunc::kNand2:
    case CellFunc::kOr2:
    case CellFunc::kNor2:
    case CellFunc::kXor2:
    case CellFunc::kXnor2: return 2;
    case CellFunc::kAnd3:
    case CellFunc::kNand3:
    case CellFunc::kOr3:
    case CellFunc::kNor3:
    case CellFunc::kMux2:
    case CellFunc::kAoi21:
    case CellFunc::kOai21: return 3;
    case CellFunc::kAnd4:
    case CellFunc::kNand4:
    case CellFunc::kOr4:
    case CellFunc::kNor4: return 4;
  }
  return 0;
}

bool evaluate(CellFunc func, std::span<const bool> in) {
  assert(in.size() == num_inputs(func));
  switch (func) {
    case CellFunc::kConst0: return false;
    case CellFunc::kConst1: return true;
    case CellFunc::kBuf: return in[0];
    case CellFunc::kInv: return !in[0];
    case CellFunc::kAnd2: return in[0] && in[1];
    case CellFunc::kAnd3: return in[0] && in[1] && in[2];
    case CellFunc::kAnd4: return in[0] && in[1] && in[2] && in[3];
    case CellFunc::kNand2: return !(in[0] && in[1]);
    case CellFunc::kNand3: return !(in[0] && in[1] && in[2]);
    case CellFunc::kNand4: return !(in[0] && in[1] && in[2] && in[3]);
    case CellFunc::kOr2: return in[0] || in[1];
    case CellFunc::kOr3: return in[0] || in[1] || in[2];
    case CellFunc::kOr4: return in[0] || in[1] || in[2] || in[3];
    case CellFunc::kNor2: return !(in[0] || in[1]);
    case CellFunc::kNor3: return !(in[0] || in[1] || in[2]);
    case CellFunc::kNor4: return !(in[0] || in[1] || in[2] || in[3]);
    case CellFunc::kXor2: return in[0] != in[1];
    case CellFunc::kXnor2: return in[0] == in[1];
    case CellFunc::kMux2: return in[2] ? in[1] : in[0];
    case CellFunc::kAoi21: return !((in[0] && in[1]) || in[2]);
    case CellFunc::kOai21: return !((in[0] || in[1]) && in[2]);
    case CellFunc::kDff:
      throw std::logic_error("evaluate() called on sequential cell");
  }
  throw std::logic_error("evaluate(): unknown cell function");
}

std::string_view input_pin_name(CellFunc func, std::size_t index) noexcept {
  if (func == CellFunc::kMux2) {
    constexpr std::string_view kPins[] = {"A", "B", "S"};
    return kPins[index];
  }
  if (func == CellFunc::kAoi21 || func == CellFunc::kOai21) {
    constexpr std::string_view kPins[] = {"A1", "A2", "B"};
    return kPins[index];
  }
  if (func == CellFunc::kDff) return "D";
  if (num_inputs(func) == 1) return "A";  // INV/BUF, as in NanGate45
  constexpr std::string_view kPins[] = {"A1", "A2", "A3", "A4"};
  return kPins[index];
}

std::string_view output_pin_name(CellFunc func) noexcept {
  return is_sequential(func) ? "Q" : "ZN";
}

namespace {

// Representative X1 areas (um^2) in the spirit of NanGate45; scaled by drive.
double base_area(CellFunc func) {
  switch (func) {
    case CellFunc::kConst0:
    case CellFunc::kConst1: return 0.532;
    case CellFunc::kBuf: return 0.798;
    case CellFunc::kInv: return 0.532;
    case CellFunc::kAnd2:
    case CellFunc::kOr2: return 1.064;
    case CellFunc::kNand2:
    case CellFunc::kNor2: return 0.798;
    case CellFunc::kAnd3:
    case CellFunc::kOr3: return 1.330;
    case CellFunc::kNand3:
    case CellFunc::kNor3: return 1.064;
    case CellFunc::kAnd4:
    case CellFunc::kOr4: return 1.596;
    case CellFunc::kNand4:
    case CellFunc::kNor4: return 1.330;
    case CellFunc::kXor2:
    case CellFunc::kXnor2: return 1.596;
    case CellFunc::kMux2: return 1.862;
    case CellFunc::kAoi21:
    case CellFunc::kOai21: return 1.064;
    case CellFunc::kDff: return 4.522;
  }
  return 1.0;
}

}  // namespace

CellLibrary::CellLibrary() {
  constexpr CellFunc kFuncs[] = {
      CellFunc::kConst0, CellFunc::kConst1, CellFunc::kBuf,   CellFunc::kInv,
      CellFunc::kAnd2,   CellFunc::kAnd3,   CellFunc::kAnd4,  CellFunc::kNand2,
      CellFunc::kNand3,  CellFunc::kNand4,  CellFunc::kOr2,   CellFunc::kOr3,
      CellFunc::kOr4,    CellFunc::kNor2,   CellFunc::kNor3,  CellFunc::kNor4,
      CellFunc::kXor2,   CellFunc::kXnor2,  CellFunc::kMux2,  CellFunc::kAoi21,
      CellFunc::kOai21,  CellFunc::kDff,
  };
  constexpr DriveStrength kDrives[] = {DriveStrength::kX1, DriveStrength::kX2,
                                       DriveStrength::kX4};
  for (const CellFunc func : kFuncs) {
    for (const DriveStrength drive : kDrives) {
      // Constants exist only in one variant (tie cells).
      if (is_constant(func) && drive != DriveStrength::kX1) continue;
      LibraryCell cell;
      cell.func = func;
      cell.drive = drive;
      cell.name = std::string(to_string(func)) + "_" + std::string(to_string(drive));
      cell.area_um2 =
          base_area(func) * (1.0 + 0.35 * (static_cast<int>(drive) - 1));
      cells_.push_back(std::move(cell));
    }
  }
}

const LibraryCell& CellLibrary::lookup(CellFunc func, DriveStrength drive) const {
  if (is_constant(func)) drive = DriveStrength::kX1;
  for (const auto& cell : cells_) {
    if (cell.func == func && cell.drive == drive) return cell;
  }
  throw std::out_of_range("CellLibrary::lookup: no such cell");
}

const LibraryCell* CellLibrary::find_by_name(std::string_view name) const noexcept {
  for (const auto& cell : cells_) {
    if (cell.name == name) return &cell;
  }
  return nullptr;
}

const CellLibrary& default_library() {
  static const CellLibrary library;
  return library;
}

}  // namespace ffr::netlist
