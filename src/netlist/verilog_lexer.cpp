#include "netlist/verilog_lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace ffr::netlist {

namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

[[nodiscard]] bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}

constexpr std::string_view kPragmaPrefix = "ffr:";

}  // namespace

std::string_view to_string(VTokenKind kind) noexcept {
  switch (kind) {
    case VTokenKind::kIdentifier: return "identifier";
    case VTokenKind::kEscapedId: return "escaped identifier";
    case VTokenKind::kPunct: return "punctuation";
    case VTokenKind::kLiteral: return "literal";
    case VTokenKind::kNumber: return "number";
    case VTokenKind::kPragma: return "pragma";
    case VTokenKind::kEof: return "end of file";
  }
  return "?";
}

std::string VToken::describe() const {
  switch (kind) {
    case VTokenKind::kIdentifier: return "identifier '" + text + "'";
    case VTokenKind::kEscapedId: return "identifier '" + text + "'";
    case VTokenKind::kPunct: return std::string("'") + punct + "'";
    case VTokenKind::kLiteral: return literal_value ? "1'b1" : "1'b0";
    case VTokenKind::kNumber: return "number '" + std::to_string(number) + "'";
    case VTokenKind::kPragma: return "pragma '// ffr:" + text + "'";
    case VTokenKind::kEof: return "end of file";
  }
  return "?";
}

VerilogLexer::VerilogLexer(std::string_view text, std::string filename)
    : text_(text), filename_(std::move(filename)) {
  advance();
}

void VerilogLexer::bump() {
  if (text_[pos_] == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  ++pos_;
}

VToken VerilogLexer::take() {
  VToken token = current_;
  advance();
  return token;
}

VToken VerilogLexer::expect_ident(std::string_view word, std::string_view context) {
  if (!current_.is_ident(word)) {
    fail(current_, "expected '" + std::string(word) + "' " + std::string(context) +
                       ", got " + current_.describe());
  }
  return take();
}

VToken VerilogLexer::expect_punct(char c, std::string_view context) {
  if (!current_.is_punct(c)) {
    fail(current_, std::string("expected '") + c + "' " + std::string(context) +
                       ", got " + current_.describe());
  }
  return take();
}

VToken VerilogLexer::expect_any_ident(std::string_view context) {
  if (current_.kind != VTokenKind::kIdentifier &&
      current_.kind != VTokenKind::kEscapedId) {
    fail(current_, "expected identifier " + std::string(context) + ", got " +
                       current_.describe());
  }
  return take();
}

VToken VerilogLexer::expect_number(std::string_view context) {
  if (current_.kind != VTokenKind::kNumber) {
    fail(current_, "expected number " + std::string(context) + ", got " +
                       current_.describe());
  }
  return take();
}

void VerilogLexer::fail(const VToken& at, const std::string& message) const {
  throw std::runtime_error(filename_ + ":" + std::to_string(at.line) + ":" +
                           std::to_string(at.column) + ": error: " + message);
}

void VerilogLexer::fail_here(const std::string& message) const {
  throw std::runtime_error(filename_ + ":" + std::to_string(line_) + ":" +
                           std::to_string(column_) + ": error: " + message);
}

void VerilogLexer::advance() {
  // Skip whitespace and ordinary comments; stop at a pragma comment.
  for (;;) {
    while (pos_ < text_.size() && is_space(text_[pos_])) bump();
    if (at(0) == '/' && at(1) == '/') {
      const std::size_t comment_line = line_;
      const std::size_t comment_column = column_;
      bump();
      bump();
      std::size_t body_begin = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\n') bump();
      std::string_view body = text_.substr(body_begin, pos_ - body_begin);
      while (!body.empty() && is_space(body.front())) body.remove_prefix(1);
      if (body.starts_with(kPragmaPrefix)) {
        current_ = VToken{};
        current_.kind = VTokenKind::kPragma;
        current_.text = std::string(body.substr(kPragmaPrefix.size()));
        current_.line = comment_line;
        current_.column = comment_column;
        return;
      }
      continue;
    }
    if (at(0) == '/' && at(1) == '*') {
      const std::size_t open_line = line_;
      const std::size_t open_column = column_;
      bump();
      bump();
      while (pos_ < text_.size() && !(at(0) == '*' && at(1) == '/')) bump();
      if (pos_ >= text_.size()) {
        throw std::runtime_error(filename_ + ":" + std::to_string(open_line) + ":" +
                                 std::to_string(open_column) +
                                 ": error: unterminated block comment");
      }
      bump();
      bump();
      continue;
    }
    break;
  }

  current_ = VToken{};
  current_.line = line_;
  current_.column = column_;
  if (pos_ >= text_.size()) {
    current_.kind = VTokenKind::kEof;
    return;
  }

  const char c = text_[pos_];
  if (is_ident_start(c)) {
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) bump();
    current_.kind = VTokenKind::kIdentifier;
    current_.text = std::string(text_.substr(begin, pos_ - begin));
    return;
  }
  if (c == '\\') {
    // Escaped identifier: backslash through the next whitespace (exclusive).
    bump();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && !is_space(text_[pos_])) bump();
    if (pos_ == begin) fail_here("empty escaped identifier");
    current_.kind = VTokenKind::kEscapedId;
    current_.text = std::string(text_.substr(begin, pos_ - begin));
    return;
  }
  if (c == '1' && at(1) == '\'') {
    const char base = at(2);
    const char digit = at(3);
    if ((base != 'b' && base != 'B') || (digit != '0' && digit != '1')) {
      fail_here("malformed literal: only 1'b0 and 1'b1 are supported");
    }
    bump();
    bump();
    bump();
    bump();
    current_.kind = VTokenKind::kLiteral;
    current_.literal_value = digit == '1';
    return;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    // A standalone digit run is an unsized decimal number (range bounds and
    // bit indices). Digits running into a base quote (`12'h`, `1'hF`) or an
    // identifier character (`2bad`) are still the historical lexical error.
    std::size_t len = 0;
    while (std::isdigit(static_cast<unsigned char>(at(len)))) ++len;
    if (at(len) == '\'' || is_ident_char(at(len))) {
      fail_here("malformed literal: only 1'b0 and 1'b1 are supported");
    }
    if (len > 9) fail_here("number literal too large");
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < len; ++i) {
      value = value * 10 + static_cast<std::uint64_t>(at(i) - '0');
    }
    for (std::size_t i = 0; i < len; ++i) bump();
    current_.kind = VTokenKind::kNumber;
    current_.number = value;
    return;
  }
  switch (c) {
    case '(':
    case ')':
    case ';':
    case ',':
    case '.':
    case '=':
    case '*':
    case '[':
    case ']':
    case ':':
      bump();
      current_.kind = VTokenKind::kPunct;
      current_.punct = c;
      return;
    default:
      fail_here(std::string("unexpected character '") + c + "'");
  }
}

std::vector<std::string> split_pragma_fields(std::string_view body) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < body.size()) {
    while (i < body.size() && is_space(body[i])) ++i;
    if (i >= body.size()) break;
    std::size_t begin = i;
    while (i < body.size() && !is_space(body[i])) ++i;
    std::string_view field = body.substr(begin, i - begin);
    if (field.front() == '\\') field.remove_prefix(1);
    if (!field.empty()) fields.emplace_back(field);
  }
  return fields;
}

}  // namespace ffr::netlist
