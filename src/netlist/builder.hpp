#pragma once
/// \file builder.hpp
/// \brief Fluent construction API for gate-level netlists. The RTL lowering library
/// (src/rtl) and circuit generators (src/circuits) are written against this.

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace ffr::netlist {

/// Handle to a created flip-flop: the cell (for bus registration and fault
/// injection targeting) and its Q output net (for wiring).
struct FlipFlop {
  CellId cell = kNoCell;
  NetId q = kNoNet;
};

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string top_name) : netlist_(std::move(top_name)) {}

  // ---- ports ---------------------------------------------------------------

  [[nodiscard]] NetId input(std::string name);
  [[nodiscard]] std::vector<NetId> input_bus(const std::string& name,
                                             std::size_t width);
  void output(NetId net, std::string name);
  void output_bus(std::span<const NetId> nets, const std::string& name);

  // ---- constants (tie cells; each call reuses one driver per polarity) -----

  [[nodiscard]] NetId constant(bool value);

  // ---- combinational gates --------------------------------------------------

  /// Generic gate; `name` may be empty for an auto-generated instance name.
  [[nodiscard]] NetId gate(CellFunc func, std::vector<NetId> inputs,
                           std::string name = {});

  [[nodiscard]] NetId buf(NetId a) { return gate(CellFunc::kBuf, {a}); }
  [[nodiscard]] NetId inv(NetId a) { return gate(CellFunc::kInv, {a}); }
  [[nodiscard]] NetId and2(NetId a, NetId b) { return gate(CellFunc::kAnd2, {a, b}); }
  [[nodiscard]] NetId or2(NetId a, NetId b) { return gate(CellFunc::kOr2, {a, b}); }
  [[nodiscard]] NetId nand2(NetId a, NetId b) {
    return gate(CellFunc::kNand2, {a, b});
  }
  [[nodiscard]] NetId nor2(NetId a, NetId b) { return gate(CellFunc::kNor2, {a, b}); }
  [[nodiscard]] NetId xor2(NetId a, NetId b) { return gate(CellFunc::kXor2, {a, b}); }
  [[nodiscard]] NetId xnor2(NetId a, NetId b) {
    return gate(CellFunc::kXnor2, {a, b});
  }
  /// out = sel ? b : a
  [[nodiscard]] NetId mux2(NetId a, NetId b, NetId sel) {
    return gate(CellFunc::kMux2, {a, b, sel});
  }

  /// Balanced reduction trees built from 2/3/4-input gates.
  [[nodiscard]] NetId and_reduce(std::vector<NetId> nets);
  [[nodiscard]] NetId or_reduce(std::vector<NetId> nets);
  [[nodiscard]] NetId xor_reduce(std::vector<NetId> nets);

  // ---- sequential ------------------------------------------------------------

  /// Single flip-flop. `name` may be empty for auto-naming.
  [[nodiscard]] FlipFlop dff(NetId d, bool init = false, std::string name = {});

  /// A register bus of `width` flip-flops named "<name>[i]", registered in the
  /// netlist's bus table. d[i] feeds bit i.
  [[nodiscard]] std::vector<FlipFlop> register_bus(const std::string& name,
                                                   std::span<const NetId> d,
                                                   std::uint64_t init = 0);

  /// Q nets of a flip-flop vector.
  [[nodiscard]] static std::vector<NetId> q_nets(std::span<const FlipFlop> ffs);

  /// Register a bus over already-created flip-flops (sequential helpers that
  /// create FFs bit-by-bit use this).
  void add_register_bus(RegisterBus bus) {
    netlist_.add_register_bus(std::move(bus));
  }

  // ---- forward wires (for feedback loops through registers) -----------------

  /// Allocates a net with no driver yet; must be bound exactly once with
  /// bind_forward_wire() before build().
  [[nodiscard]] NetId forward_wire(const std::string& name);
  [[nodiscard]] std::vector<NetId> forward_wires(const std::string& name,
                                                 std::size_t count);

  /// Drives a forward wire from `source` (inserts a BUF cell).
  void bind_forward_wire(NetId wire, NetId source);

  /// Flip-flop whose D input is computed from its own Q output:
  /// q <= make_d(q). Used for enable-muxed registers, counters, FSM state.
  template <typename MakeD>
  [[nodiscard]] FlipFlop dff_loop(MakeD&& make_d, bool init = false,
                                  std::string name = {}) {
    if (name.empty()) name = fresh_cell_name("reg");
    const NetId d_wire = forward_wire(name + "_din");
    FlipFlop ff = dff(d_wire, init, name);
    bind_forward_wire(d_wire, make_d(ff.q));
    return ff;
  }

  // ---- finalization -----------------------------------------------------------

  /// Mimics a synthesis drive-strength pass: cells with large fanout are
  /// upsized (fanout > 8 -> X4, > 3 -> X2, else X1).
  void assign_drive_strengths();

  /// Runs assign_drive_strengths(), finalizes invariants and returns the
  /// completed netlist. The builder is left empty.
  [[nodiscard]] Netlist build();

  /// Access during construction (e.g. for stats).
  [[nodiscard]] const Netlist& peek() const noexcept { return netlist_; }

 private:
  [[nodiscard]] std::string fresh_cell_name(std::string_view prefix);
  [[nodiscard]] std::string fresh_net_name(std::string_view prefix);

  Netlist netlist_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
  std::uint64_t next_cell_ = 0;
  std::uint64_t next_net_ = 0;
};

}  // namespace ffr::netlist
