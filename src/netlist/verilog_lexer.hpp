#pragma once
/// \file verilog_lexer.hpp
/// \brief Tokenizer for the structural Verilog subset the netlist layer speaks.
/// Shared lexical ground for the reader (and any future netlist-format
/// tooling): plain and escaped identifiers, the `1'b0`/`1'b1` tie-off
/// literals, single-character punctuation, line/block comments and the
/// `// ffr:` metadata pragmas the writer emits for register buses. Every
/// token carries its 1-based line/column so diagnostics can point at the
/// offending character.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ffr::netlist {

enum class VTokenKind : std::uint8_t {
  kIdentifier,  ///< Plain identifier or keyword (`module`, `wire`, `nand2_q`).
  kEscapedId,   ///< `\any-chars ` escaped identifier; text excludes backslash.
  kPunct,       ///< One of `( ) ; , . = * [ ] :`.
  kLiteral,     ///< `1'b0` or `1'b1`; value in `literal_value`.
  kNumber,      ///< Unsized decimal number (range bounds, indices); in `number`.
  kPragma,      ///< `// ffr:<body>` comment; text is `<body>` (trimmed head).
  kEof,         ///< End of input.
};

[[nodiscard]] std::string_view to_string(VTokenKind kind) noexcept;

struct VToken {
  VTokenKind kind = VTokenKind::kEof;
  std::string text;          ///< Identifier/pragma body text.
  char punct = '\0';         ///< Set for kPunct.
  bool literal_value = false;  ///< Set for kLiteral.
  std::uint64_t number = 0;  ///< Set for kNumber.
  std::size_t line = 1;      ///< 1-based source line.
  std::size_t column = 1;    ///< 1-based source column.

  /// Keyword / punctuation convenience matchers.
  [[nodiscard]] bool is_ident(std::string_view word) const noexcept {
    return kind == VTokenKind::kIdentifier && text == word;
  }
  [[nodiscard]] bool is_punct(char c) const noexcept {
    return kind == VTokenKind::kPunct && punct == c;
  }
  /// Human-readable description for diagnostics ("identifier 'wire'", "';'").
  [[nodiscard]] std::string describe() const;
};

/// One-token-lookahead lexer. Whitespace and ordinary comments are skipped;
/// `// ffr:` pragma comments are surfaced as kPragma tokens in stream order
/// so the parser can consume writer-emitted metadata (register buses) at the
/// position it occurs. Lexical errors (unterminated block comment, stray
/// character, malformed literal, empty escaped identifier) throw
/// std::runtime_error with a `<file>:<line>:<col>: error: ...` message.
class VerilogLexer {
 public:
  /// `text` must outlive the lexer. `filename` is used in diagnostics only.
  VerilogLexer(std::string_view text, std::string filename);

  /// Current token without consuming it.
  [[nodiscard]] const VToken& peek() const noexcept { return current_; }

  /// Consumes and returns the current token.
  VToken take();

  /// Consumes the current token, requiring identifier `word`; throws a
  /// positioned std::runtime_error mentioning `context` otherwise.
  VToken expect_ident(std::string_view word, std::string_view context);

  /// Consumes the current token, requiring punctuation `c`.
  VToken expect_punct(char c, std::string_view context);

  /// Consumes the current token, requiring a (plain or escaped) identifier.
  VToken expect_any_ident(std::string_view context);

  /// Consumes the current token, requiring an unsized decimal number.
  VToken expect_number(std::string_view context);

  /// Positioned diagnostic: "<file>:<line>:<col>: error: <message>".
  [[noreturn]] void fail(const VToken& at, const std::string& message) const;
  [[noreturn]] void fail_here(const std::string& message) const;

  [[nodiscard]] const std::string& filename() const noexcept { return filename_; }

 private:
  void advance();
  [[nodiscard]] char at(std::size_t offset) const noexcept {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  void bump();  // consume one character, tracking line/column

  std::string_view text_;
  std::string filename_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
  VToken current_;
};

/// Splits a pragma body into whitespace-separated fields, stripping the
/// leading backslash of escaped identifiers (writer-emitted pragmas reuse
/// the same identifier escaping as the surrounding Verilog). Shared by the
/// reader's `ffr:bus` handling.
[[nodiscard]] std::vector<std::string> split_pragma_fields(std::string_view body);

}  // namespace ffr::netlist
