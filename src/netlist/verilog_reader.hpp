#pragma once
/// \file verilog_reader.hpp
/// \brief Structural Verilog frontend: parses the gate-level subset that
/// netlist::to_verilog emits and elaborates it into a finalized Netlist, so
/// campaigns can run against externally supplied designs instead of only the
/// in-tree C++ generators.
///
/// Supported subset (see docs/ARCHITECTURE.md "Verilog frontend" for the
/// grammar): one module with a port-name header; `input` / `output` / `wire`
/// declarations (single names or comma lists), scalar or vectored
/// (`input [7:0] d;` — expanded into scalar nets `d[7]` ... `d[0]` in
/// declared range order, referenced as `d[3]` or the writer's escaped
/// `\d[3]` form interchangeably); `assign <output> = <net>;`
/// output bindings; cell instances of default_library() primitives with
/// named port connections (any order); `1'b0` / `1'b1` tie-off literals on
/// input pins (elaborated into shared CONST cells); `(* init = 1'b1 *)`
/// power-on-state attributes on DFF instances; `// ffr:bus` register-bus
/// metadata pragmas; plain and escaped identifiers; line and block comments.
/// `clk` is the implicit single clock: it must feed every DFF's CK pin and
/// nothing else.
///
/// Round-trip contract with the writer (the reader's differential oracle,
/// tests/test_verilog_reader.cpp):
///  - write -> read -> write is byte-identical for every netlist, and
///  - read -> write -> read is structurally equal for every accepted file.
///
/// Every rejection is a std::runtime_error whose message starts with
/// `<file>:<line>:<column>: error:` — truncated input, lexical errors,
/// unknown cell types, undeclared or multiply-driven nets, duplicate
/// instance/wire names, pin arity mismatches, unassigned outputs and
/// undriven wires are all diagnosed, never crashes or silent acceptance.

#include <filesystem>
#include <string_view>

#include "netlist/netlist.hpp"

namespace ffr::netlist {

/// Parses and elaborates one structural Verilog module. The returned netlist
/// is finalized. `filename` only labels diagnostics.
/// \throws std::runtime_error with a `<file>:<line>:<col>: error:` message
///         on any lexical, syntactic or elaboration failure.
[[nodiscard]] Netlist read_verilog(std::string_view text,
                                   std::string_view filename = "<string>");

/// Reads `path` and parses it with read_verilog().
/// \throws std::runtime_error on I/O failure or any parse/elaboration error.
[[nodiscard]] Netlist read_verilog_file(const std::filesystem::path& path);

}  // namespace ffr::netlist
