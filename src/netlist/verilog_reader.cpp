#include "netlist/verilog_reader.hpp"

#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/verilog_lexer.hpp"

namespace ffr::netlist {

namespace {

// Names of the CONST cells synthesized for 1'b0/1'b1 tie-off literals. The
// '$' prefix keeps them out of the plain-identifier namespace (they re-emit
// as escaped identifiers) and away from builder-generated names.
constexpr std::string_view kTieCellName[2] = {"$ffr_tie0", "$ffr_tie1"};
constexpr std::string_view kTieNetName[2] = {"$ffr_tie0_zn", "$ffr_tie1_zn"};

// Widest accepted `[msb:lsb]` declaration. Far above any register bus the
// tool flow produces; the cap turns a typo'd bound into a diagnostic instead
// of a million-net elaboration.
constexpr std::uint64_t kMaxVectorWidth = 4096;

/// An `[msb:lsb]` range as written (either direction).
struct VectorRange {
  std::uint64_t msb = 0;  ///< Left bound.
  std::uint64_t lsb = 0;  ///< Right bound.

  [[nodiscard]] std::uint64_t width() const noexcept {
    return (msb >= lsb ? msb - lsb : lsb - msb) + 1;
  }
  [[nodiscard]] bool contains(std::uint64_t bit) const noexcept {
    return msb >= lsb ? (bit >= lsb && bit <= msb) : (bit >= msb && bit <= lsb);
  }
};

/// Parser + elaborator for one module. Single pass: declarations must
/// precede use, which every writer-emitted file satisfies by construction.
class Parser {
 public:
  Parser(std::string_view text, std::string_view filename)
      : lexer_(text, std::string(filename)) {}

  Netlist run() {
    const VToken module_kw = lexer_.expect_ident("module", "to open the netlist");
    const VToken name_tok = lexer_.expect_any_ident("as the module name");
    netlist_.emplace(name_tok.text);
    parse_header();
    while (!lexer_.peek().is_ident("endmodule")) parse_statement();
    lexer_.expect_ident("endmodule", "to close the module");
    if (lexer_.peek().kind != VTokenKind::kEof) {
      lexer_.fail(lexer_.peek(), "expected end of file after 'endmodule', got " +
                                     lexer_.peek().describe());
    }
    check_ports_complete();
    check_wires_driven();
    try {
      netlist_->finalize();
    } catch (const std::exception& e) {
      lexer_.fail(module_kw, std::string("module failed elaboration: ") + e.what());
    }
    return std::move(*netlist_);
  }

 private:
  struct NetInfo {
    NetId id = kNoNet;
    bool driven = false;  // by an instance output (inputs are driven implicitly)
    VToken decl;          // declaration site, for undriven-wire diagnostics
  };

  struct OutputPort {
    std::string name;
    VToken decl;
    bool assigned = false;
  };

  void parse_header() {
    lexer_.expect_punct('(', "after the module name");
    if (!lexer_.peek().is_punct(')')) {
      for (;;) {
        const VToken port = lexer_.expect_any_ident("in the module port list");
        if (!header_port_names_.insert(port.text).second) {
          lexer_.fail(port, "port '" + port.text + "' listed twice in the header");
        }
        header_ports_.push_back(port);
        if (!lexer_.peek().is_punct(',')) break;
        lexer_.take();
      }
    }
    lexer_.expect_punct(')', "to close the module port list");
    lexer_.expect_punct(';', "after the module header");
  }

  void parse_statement() {
    const VToken& tok = lexer_.peek();
    if (tok.kind == VTokenKind::kEof) {
      lexer_.fail(tok, "unexpected end of file: missing 'endmodule'");
    }
    if (tok.kind == VTokenKind::kPragma) {
      parse_pragma(lexer_.take());
      return;
    }
    if (tok.is_punct('(')) {
      parse_instance(parse_init_attribute());
      return;
    }
    if (tok.is_ident("input")) {
      parse_port_decl(/*is_input=*/true);
      return;
    }
    if (tok.is_ident("output")) {
      parse_port_decl(/*is_input=*/false);
      return;
    }
    if (tok.is_ident("wire")) {
      parse_wire_decl();
      return;
    }
    if (tok.is_ident("assign")) {
      parse_assign();
      return;
    }
    parse_instance(/*init=*/std::nullopt);
  }

  /// Optional `[msb:lsb]` vector range after an input/output/wire keyword.
  std::optional<VectorRange> parse_range() {
    if (!lexer_.peek().is_punct('[')) return std::nullopt;
    const VToken open = lexer_.take();
    VectorRange range;
    range.msb = lexer_.expect_number("as the vector msb").number;
    lexer_.expect_punct(':', "between the vector bounds");
    range.lsb = lexer_.expect_number("as the vector lsb").number;
    lexer_.expect_punct(']', "to close the vector range");
    if (range.width() > kMaxVectorWidth) {
      lexer_.fail(open, "vector range [" + std::to_string(range.msb) + ":" +
                            std::to_string(range.lsb) + "] is wider than " +
                            std::to_string(kMaxVectorWidth) + " bits");
    }
    return range;
  }

  /// Registers `base` as a vector and declares its scalar bit nets
  /// `base[i]`, in declared range order (left bound first).
  void declare_vector(const VToken& base, const VectorRange& range,
                      bool is_primary_input, bool is_output) {
    if (base.text == "clk") {
      lexer_.fail(base, "'clk' is the implicit clock and cannot be a vector");
    }
    if (vectors_.contains(base.text)) {
      lexer_.fail(base, "vector '" + base.text + "' declared twice");
    }
    vectors_.emplace(base.text, range);
    const std::int64_t step = range.msb >= range.lsb ? -1 : 1;
    std::int64_t bit = static_cast<std::int64_t>(range.msb);
    for (std::uint64_t i = 0; i < range.width(); ++i, bit += step) {
      VToken scalar = base;
      scalar.text = base.text;
      scalar.text.push_back('[');
      scalar.text.append(std::to_string(bit));
      scalar.text.push_back(']');
      if (is_output) {
        for (const OutputPort& port : outputs_) {
          if (port.name == scalar.text) {
            lexer_.fail(base, "output '" + scalar.text + "' declared twice");
          }
        }
        outputs_.push_back(OutputPort{scalar.text, scalar, false});
      } else {
        declare_net(scalar, is_primary_input);
      }
    }
  }

  void parse_port_decl(bool is_input) {
    lexer_.take();  // 'input' / 'output'
    const std::optional<VectorRange> range = parse_range();
    for (;;) {
      const VToken name = lexer_.expect_any_ident("in the port declaration");
      if (range.has_value()) {
        if (is_input && name.text == "clk") {
          lexer_.fail(name, "'clk' is the implicit clock and cannot be a vector");
        }
        declare_vector(name, *range, /*is_primary_input=*/is_input,
                       /*is_output=*/!is_input);
      } else if (is_input && name.text == "clk") {
        if (clk_declared_) lexer_.fail(name, "clock 'clk' declared twice");
        clk_declared_ = true;
      } else if (is_input) {
        declare_net(name, /*is_primary_input=*/true);
      } else {
        if (name.text == "clk") {
          lexer_.fail(name, "'clk' is the implicit clock, not an output");
        }
        for (const OutputPort& port : outputs_) {
          if (port.name == name.text) {
            lexer_.fail(name, "output '" + name.text + "' declared twice");
          }
        }
        outputs_.push_back(OutputPort{name.text, name, false});
      }
      declared_ports_.push_back(name);
      if (!lexer_.peek().is_punct(',')) break;
      lexer_.take();
    }
    lexer_.expect_punct(';', "after the port declaration");
  }

  void parse_wire_decl() {
    lexer_.take();  // 'wire'
    const std::optional<VectorRange> range = parse_range();
    for (;;) {
      const VToken name = lexer_.expect_any_ident("in the wire declaration");
      if (range.has_value()) {
        declare_vector(name, *range, /*is_primary_input=*/false,
                       /*is_output=*/false);
      } else {
        declare_net(name, /*is_primary_input=*/false);
      }
      if (!lexer_.peek().is_punct(',')) break;
      lexer_.take();
    }
    lexer_.expect_punct(';', "after the wire declaration");
  }

  /// A net reference: an identifier optionally followed by a `[bit]` select
  /// on a declared vector. Returns a token whose text is the full scalar net
  /// name (`d[3]`), interchangeable with the writer's escaped `\d[3]` form.
  VToken parse_net_ref(std::string_view context) {
    VToken name = lexer_.expect_any_ident(context);
    if (name.kind != VTokenKind::kEscapedId && lexer_.peek().is_punct('[')) {
      lexer_.take();
      const VToken index = lexer_.expect_number("as the bit select");
      lexer_.expect_punct(']', "to close the bit select");
      const auto vector = vectors_.find(name.text);
      if (vector == vectors_.end()) {
        lexer_.fail(name, "'" + name.text + "' is not a declared vector");
      }
      if (!vector->second.contains(index.number)) {
        lexer_.fail(index, "bit " + std::to_string(index.number) +
                               " is outside vector '" + name.text + "[" +
                               std::to_string(vector->second.msb) + ":" +
                               std::to_string(vector->second.lsb) + "]'");
      }
      name.text.push_back('[');
      name.text.append(std::to_string(index.number));
      name.text.push_back(']');
    }
    return name;
  }

  void declare_net(const VToken& name, bool is_primary_input) {
    if (name.text == "clk") {
      lexer_.fail(name, "'clk' is the implicit clock and cannot be a net");
    }
    if (nets_.contains(name.text)) {
      lexer_.fail(name, "net '" + name.text + "' declared twice");
    }
    NetInfo info;
    info.id = is_primary_input ? netlist_->add_primary_input(name.text)
                               : netlist_->add_net(name.text);
    info.driven = is_primary_input;
    info.decl = name;
    nets_.emplace(name.text, info);
  }

  void parse_assign() {
    lexer_.take();  // 'assign'
    const VToken lhs = parse_net_ref("as the assign target");
    OutputPort* port = nullptr;
    for (OutputPort& candidate : outputs_) {
      if (candidate.name == lhs.text) {
        port = &candidate;
        break;
      }
    }
    if (port == nullptr) {
      lexer_.fail(lhs, "assign target '" + lhs.text +
                           "' is not a declared output port (only output-port "
                           "bindings are supported)");
    }
    if (port->assigned) {
      lexer_.fail(lhs, "output '" + lhs.text + "' assigned twice");
    }
    lexer_.expect_punct('=', "in the assign statement");
    NetId source = kNoNet;
    if (lexer_.peek().kind == VTokenKind::kLiteral) {
      const VToken literal = lexer_.take();
      source = tie_net(literal.literal_value, literal);
    } else {
      const VToken rhs = parse_net_ref("as the assign source");
      source = resolve_net(rhs);
    }
    lexer_.expect_punct(';', "after the assign statement");
    port->assigned = true;
    netlist_->mark_primary_output(source, port->name);
  }

  /// `(* init = 1'b0|1'b1 *)` prefix of a DFF instance; nullopt when absent.
  std::optional<bool> parse_init_attribute() {
    lexer_.expect_punct('(', "to open an attribute");
    lexer_.expect_punct('*', "to open an attribute");
    const VToken name = lexer_.expect_any_ident("as the attribute name");
    if (name.text != "init") {
      lexer_.fail(name, "unknown attribute '" + name.text +
                            "' (only (* init = 1'b0|1'b1 *) is supported)");
    }
    lexer_.expect_punct('=', "in the init attribute");
    if (lexer_.peek().kind != VTokenKind::kLiteral) {
      lexer_.fail(lexer_.peek(), "init attribute value must be 1'b0 or 1'b1, got " +
                                     lexer_.peek().describe());
    }
    const bool value = lexer_.take().literal_value;
    lexer_.expect_punct('*', "to close the attribute");
    lexer_.expect_punct(')', "to close the attribute");
    return value;
  }

  void parse_instance(std::optional<bool> init) {
    const VToken type_tok = lexer_.expect_any_ident("as a cell type");
    const LibraryCell* lib_cell = default_library().find_by_name(type_tok.text);
    if (lib_cell == nullptr) {
      lexer_.fail(type_tok, "unknown cell type '" + type_tok.text +
                                "' (not in the NanGate45-style default library)");
    }
    const VToken name_tok = lexer_.expect_any_ident("as the instance name");
    if (netlist_->find_cell(name_tok.text).has_value()) {
      lexer_.fail(name_tok, "duplicate instance name '" + name_tok.text + "'");
    }
    if (init.has_value() && !is_sequential(lib_cell->func)) {
      lexer_.fail(type_tok, "(* init *) attribute on non-sequential cell type '" +
                                type_tok.text + "'");
    }

    const std::size_t arity = num_inputs(lib_cell->func);
    std::vector<NetId> inputs(arity, kNoNet);
    NetId output = kNoNet;
    bool clock_connected = false;

    lexer_.expect_punct('(', "to open the port connections");
    if (!lexer_.peek().is_punct(')')) {
      for (;;) {
        parse_connection(*lib_cell, name_tok, inputs, output, clock_connected);
        if (!lexer_.peek().is_punct(',')) break;
        lexer_.take();
      }
    }
    const VToken close = lexer_.expect_punct(')', "to close the port connections");
    lexer_.expect_punct(';', "after the instance");

    for (std::size_t i = 0; i < arity; ++i) {
      if (inputs[i] == kNoNet) {
        lexer_.fail(close, "pin '" +
                               std::string(input_pin_name(lib_cell->func, i)) +
                               "' of " + lib_cell->name + " instance '" +
                               name_tok.text + "' is unconnected");
      }
    }
    if (output == kNoNet) {
      lexer_.fail(close, "output pin '" +
                             std::string(output_pin_name(lib_cell->func)) +
                             "' of instance '" + name_tok.text + "' is unconnected");
    }
    if (is_sequential(lib_cell->func) && !clock_connected) {
      lexer_.fail(close, "DFF instance '" + name_tok.text +
                             "' has no .CK(clk) connection");
    }

    Cell cell;
    cell.name = name_tok.text;
    cell.func = lib_cell->func;
    cell.drive = lib_cell->drive;
    cell.inputs = std::move(inputs);
    cell.output = output;
    cell.init_value = init.value_or(false);
    netlist_->add_cell(std::move(cell));
  }

  void parse_connection(const LibraryCell& lib_cell, const VToken& inst_name,
                        std::vector<NetId>& inputs, NetId& output,
                        bool& clock_connected) {
    lexer_.expect_punct('.', "to start a named port connection");
    const VToken pin = lexer_.expect_any_ident("as a pin name");
    lexer_.expect_punct('(', "after the pin name");

    if (is_sequential(lib_cell.func) && pin.text == "CK") {
      const VToken value = lexer_.expect_any_ident("as the clock connection");
      if (value.text != "clk") {
        lexer_.fail(value, "pin 'CK' must connect to the clock port 'clk'");
      }
      if (!clk_declared_) {
        lexer_.fail(value, "clock 'clk' is not declared as an input");
      }
      if (clock_connected) {
        lexer_.fail(pin, "pin 'CK' connected twice on instance '" +
                             inst_name.text + "'");
      }
      clock_connected = true;
      lexer_.expect_punct(')', "to close the port connection");
      return;
    }

    if (pin.text == output_pin_name(lib_cell.func)) {
      const VToken value = parse_net_ref("as the output connection");
      const NetId net = resolve_net(value);
      NetInfo& info = nets_.at(value.text);
      if (netlist_->net(net).pi_index >= 0) {
        lexer_.fail(value, "primary input '" + value.text +
                               "' cannot be driven by an instance output");
      }
      if (info.driven) {
        lexer_.fail(value, "net '" + value.text + "' is driven more than once");
      }
      if (output != kNoNet) {
        lexer_.fail(pin, "output pin '" + pin.text + "' connected twice on "
                             "instance '" + inst_name.text + "'");
      }
      info.driven = true;
      output = net;
      lexer_.expect_punct(')', "to close the port connection");
      return;
    }

    // Input pin.
    std::size_t index = num_inputs(lib_cell.func);
    for (std::size_t i = 0; i < num_inputs(lib_cell.func); ++i) {
      if (pin.text == input_pin_name(lib_cell.func, i)) {
        index = i;
        break;
      }
    }
    if (index == num_inputs(lib_cell.func)) {
      lexer_.fail(pin, "cell " + lib_cell.name + " has no pin '" + pin.text + "'");
    }
    if (inputs[index] != kNoNet) {
      lexer_.fail(pin, "pin '" + pin.text + "' connected twice on instance '" +
                           inst_name.text + "'");
    }
    if (lexer_.peek().kind == VTokenKind::kLiteral) {
      const VToken literal = lexer_.take();
      inputs[index] = tie_net(literal.literal_value, literal);
    } else {
      const VToken value = parse_net_ref("as the pin connection");
      inputs[index] = resolve_net(value);
    }
    lexer_.expect_punct(')', "to close the port connection");
  }

  NetId resolve_net(const VToken& name) {
    const auto it = nets_.find(name.text);
    if (it == nets_.end()) {
      if (name.text == "clk") {
        lexer_.fail(name,
                    "'clk' is the implicit clock and cannot drive a data pin");
      }
      lexer_.fail(name, "undeclared net '" + name.text + "'");
    }
    return it->second.id;
  }

  /// Shared CONST0/CONST1 driver for tie-off literals, created on demand.
  NetId tie_net(bool value, const VToken& at) {
    NetId& cached = tie_nets_[value ? 1 : 0];
    if (cached != kNoNet) return cached;
    const std::string cell_name(kTieCellName[value ? 1 : 0]);
    const std::string net_name(kTieNetName[value ? 1 : 0]);
    if (nets_.contains(net_name) || netlist_->find_cell(cell_name).has_value()) {
      lexer_.fail(at, "cannot synthesize tie cell '" + cell_name +
                          "': the name is already in use");
    }
    NetInfo info;
    info.id = netlist_->add_net(net_name);
    info.driven = true;
    info.decl = at;
    nets_.emplace(net_name, info);
    Cell cell;
    cell.name = cell_name;
    cell.func = value ? CellFunc::kConst1 : CellFunc::kConst0;
    cell.output = info.id;
    netlist_->add_cell(std::move(cell));
    cached = info.id;
    return cached;
  }

  void parse_pragma(const VToken& pragma) {
    const std::vector<std::string> fields = split_pragma_fields(pragma.text);
    if (fields.empty() || fields[0] != "bus") {
      lexer_.fail(pragma, "unknown pragma '// ffr:" + pragma.text +
                              "' (only '// ffr:bus' is supported)");
    }
    if (fields.size() < 2) {
      lexer_.fail(pragma, "'// ffr:bus' needs a bus name");
    }
    RegisterBus bus;
    bus.name = fields[1];
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto cell = netlist_->find_cell(fields[i]);
      if (!cell.has_value()) {
        lexer_.fail(pragma, "bus '" + bus.name + "' references unknown flip-flop '" +
                                fields[i] + "'");
      }
      if (!is_sequential(netlist_->cell(*cell).func)) {
        lexer_.fail(pragma, "bus '" + bus.name + "' references non-flip-flop '" +
                                fields[i] + "'");
      }
      bus.flip_flops.push_back(*cell);
    }
    netlist_->add_register_bus(std::move(bus));
  }

  void check_ports_complete() {
    for (const VToken& port : declared_ports_) {
      if (!header_port_names_.contains(port.text)) {
        lexer_.fail(port, "port '" + port.text +
                              "' is declared but missing from the module header");
      }
    }
    std::unordered_set<std::string> declared;
    for (const VToken& port : declared_ports_) declared.insert(port.text);
    for (const VToken& port : header_ports_) {
      if (!declared.contains(port.text)) {
        lexer_.fail(port, "header port '" + port.text +
                              "' is never declared as input or output");
      }
    }
    for (const OutputPort& port : outputs_) {
      if (!port.assigned) {
        lexer_.fail(port.decl, "output '" + port.name +
                                   "' is never assigned (expected 'assign " +
                                   port.name + " = <net>;')");
      }
    }
  }

  void check_wires_driven() {
    // Report the first undriven wire in declaration order for determinism.
    const NetInfo* undriven = nullptr;
    for (const auto& [name, info] : nets_) {
      if (info.driven) continue;
      if (undriven == nullptr || info.id < undriven->id) undriven = &info;
    }
    if (undriven != nullptr) {
      lexer_.fail(undriven->decl, "wire '" + netlist_->net(undriven->id).name +
                                      "' is never driven");
    }
  }

  VerilogLexer lexer_;
  std::optional<Netlist> netlist_;
  std::vector<VToken> header_ports_;
  std::unordered_set<std::string> header_port_names_;
  std::vector<VToken> declared_ports_;
  std::vector<OutputPort> outputs_;
  std::unordered_map<std::string, NetInfo> nets_;
  std::unordered_map<std::string, VectorRange> vectors_;
  bool clk_declared_ = false;
  NetId tie_nets_[2] = {kNoNet, kNoNet};
};

}  // namespace

Netlist read_verilog(std::string_view text, std::string_view filename) {
  return Parser(text, filename).run();
}

Netlist read_verilog_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("read_verilog_file: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!file) {
    throw std::runtime_error("read_verilog_file: read failed on " + path.string());
  }
  return read_verilog(buffer.str(), path.string());
}

}  // namespace ffr::netlist
