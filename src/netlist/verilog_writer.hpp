#pragma once
/// \file verilog_writer.hpp
/// \brief Structural Verilog export of a netlist (NanGate45-style instance names).
/// Useful for inspecting generated designs with external tools, for
/// documenting exactly what circuit a campaign ran against, and as one half
/// of the round-trip pair with netlist::read_verilog (verilog_reader.hpp).

#include <filesystem>
#include <string>

#include "netlist/netlist.hpp"

namespace ffr::netlist {

/// Render the netlist as a structural Verilog module in canonical order
/// (ports/wires/instances/bus pragmas in creation order), deterministically:
/// the same netlist always yields the same bytes, and
/// `to_verilog(read_verilog(to_verilog(n)))` is byte-identical to
/// `to_verilog(n)`. DFF power-on state is emitted as `(* init = 1'b1 *)`
/// attributes and register buses as `// ffr:bus` pragma comments so the
/// reader can rebuild the full in-memory representation.
/// \throws std::invalid_argument when a name cannot be expressed as a
///         (possibly escaped) Verilog identifier (empty, or containing
///         whitespace / a backslash).
[[nodiscard]] std::string to_verilog(const Netlist& netlist);

/// Write to a file; throws std::runtime_error on I/O failure.
void write_verilog_file(const std::filesystem::path& path, const Netlist& netlist);

}  // namespace ffr::netlist
