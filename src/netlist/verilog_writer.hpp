#pragma once
/// \file verilog_writer.hpp
/// \brief Structural Verilog export of a netlist (NanGate45-style instance names).
/// Useful for inspecting generated designs with external tools and for
/// documenting exactly what circuit a campaign ran against.

#include <filesystem>
#include <string>

#include "netlist/netlist.hpp"

namespace ffr::netlist {

/// Render the netlist as a structural Verilog module.
[[nodiscard]] std::string to_verilog(const Netlist& netlist);

/// Write to a file; throws std::runtime_error on I/O failure.
void write_verilog_file(const std::filesystem::path& path, const Netlist& netlist);

}  // namespace ffr::netlist
