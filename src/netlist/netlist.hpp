#pragma once
/// \file netlist.hpp
/// \brief Gate-level netlist representation: cells connected by single-driver nets,
/// with primary I/O ports, register buses and a single implicit clock domain.
/// This is the substrate everything else operates on — simulation, fault
/// injection and feature extraction.

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.hpp"

namespace ffr::netlist {

using NetId = std::uint32_t;
using CellId = std::uint32_t;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();
inline constexpr CellId kNoCell = std::numeric_limits<CellId>::max();

/// A cell instance. Sequential cells (DFF) have one input (D) and their
/// output is the register state Q; `init_value` is the power-on state.
struct Cell {
  std::string name;
  CellFunc func = CellFunc::kBuf;
  DriveStrength drive = DriveStrength::kX1;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
  bool init_value = false;  // DFF only
};

/// A net has exactly one driver: either a cell output or a primary input.
struct Net {
  std::string name;
  CellId driver = kNoCell;       // kNoCell if driven by a primary input
  std::int32_t pi_index = -1;    // >=0 if this net is a primary input port
  std::vector<CellId> readers;   // cells with this net on an input pin
};

/// A named group of flip-flops forming a register bus (e.g. "tx_data[7:0]").
struct RegisterBus {
  std::string name;
  std::vector<CellId> flip_flops;  // position i == bit i
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  // ---- construction (used by NetlistBuilder) ------------------------------

  NetId add_net(std::string name);
  /// Adds a cell driving a fresh net; returns the cell id.
  CellId add_cell(Cell cell);
  NetId add_primary_input(std::string name);
  void mark_primary_output(NetId net, std::string port_name);
  void add_register_bus(RegisterBus bus);

  /// Mutable cell access for construction-time passes (drive sizing).
  [[nodiscard]] Cell& mutable_cell(CellId id) {
    finalized_ = false;
    return cells_.at(id);
  }

  /// Recomputes reader lists and the flip-flop index, checks single-driver
  /// and connectivity invariants, and verifies combinational acyclicity.
  /// Throws std::runtime_error with a diagnostic on violation.
  void finalize();

  // ---- queries -------------------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const noexcept { return nets_.size(); }

  [[nodiscard]] const Cell& cell(CellId id) const { return cells_.at(id); }
  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id); }
  [[nodiscard]] std::span<const Cell> cells() const noexcept { return cells_; }
  [[nodiscard]] std::span<const Net> nets() const noexcept { return nets_; }

  [[nodiscard]] std::span<const NetId> primary_inputs() const noexcept {
    return primary_inputs_;
  }
  [[nodiscard]] std::span<const NetId> primary_outputs() const noexcept {
    return primary_outputs_;
  }
  [[nodiscard]] const std::vector<std::string>& primary_output_names() const noexcept {
    return primary_output_names_;
  }

  /// All sequential cells, in creation order. Valid after finalize().
  [[nodiscard]] std::span<const CellId> flip_flops() const noexcept {
    return flip_flops_;
  }
  [[nodiscard]] std::size_t num_flip_flops() const noexcept {
    return flip_flops_.size();
  }

  /// Combinational cells in topological order (inputs before readers),
  /// suitable for single-pass evaluation. Valid after finalize().
  [[nodiscard]] std::span<const CellId> topo_order() const noexcept {
    return topo_order_;
  }

  [[nodiscard]] std::span<const RegisterBus> register_buses() const noexcept {
    return buses_;
  }

  /// Bus membership of a flip-flop: (bus index, bit position), if any.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> bus_of(
      CellId ff) const;

  [[nodiscard]] std::optional<CellId> find_cell(std::string_view name) const;
  [[nodiscard]] std::optional<NetId> find_net(std::string_view name) const;

  /// Total cell area (library estimate), for reporting.
  [[nodiscard]] double total_area_um2() const;

  /// Human-readable one-line summary (#cells, #FFs, #nets, #PIs, #POs).
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

 private:
  void check_invariants() const;
  void compute_topo_order();

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::vector<std::string> primary_output_names_;
  std::vector<CellId> flip_flops_;
  std::vector<CellId> topo_order_;
  std::vector<RegisterBus> buses_;
  std::unordered_map<std::string, CellId> cell_by_name_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unordered_map<CellId, std::pair<std::size_t, std::size_t>> ff_bus_;
  bool finalized_ = false;
};

/// Deep structural comparison in creation order: module name, nets (name,
/// PI position), cells (name, function, drive, init value, connections by
/// net name), primary outputs (port name, source net) and register buses
/// must all match index for index. This is the read -> write -> read oracle
/// of the Verilog round-trip tests; it is stricter than graph isomorphism
/// (a reordered but isomorphic netlist compares unequal). When `mismatch`
/// is non-null the first difference is described into it.
[[nodiscard]] bool structurally_equal(const Netlist& a, const Netlist& b,
                                      std::string* mismatch = nullptr);

}  // namespace ffr::netlist
