#pragma once
/// \file cell_library.hpp
/// \brief Standard-cell library modelled on the NanGate FreePDK45 Open Cell Library
/// (the library the paper synthesizes the 10GE MAC against). Only the
/// properties the methodology consumes are modelled: the boolean function,
/// pin count, drive strength and a representative area.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ffr::netlist {

/// Boolean function of a cell. Combinational functions evaluate via
/// `evaluate()`; DFF is the single sequential primitive (single global
/// clock, cycle-based semantics).
enum class CellFunc : std::uint8_t {
  kConst0,
  kConst1,
  kBuf,
  kInv,
  kAnd2,
  kAnd3,
  kAnd4,
  kNand2,
  kNand3,
  kNand4,
  kOr2,
  kOr3,
  kOr4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  kMux2,   // inputs {A, B, S}: out = S ? B : A
  kAoi21,  // inputs {A1, A2, B}: out = !((A1 & A2) | B)
  kOai21,  // inputs {A1, A2, B}: out = !((A1 | A2) & B)
  kDff,    // input {D}: Q <= D at clock edge
};

/// Synthesis-assigned drive strength (NanGate45 offers X1/X2/X4 variants of
/// most cells; the paper extracts this attribute from Design Compiler).
enum class DriveStrength : std::uint8_t { kX1 = 1, kX2 = 2, kX4 = 4 };

[[nodiscard]] std::string_view to_string(CellFunc func) noexcept;
[[nodiscard]] std::string_view to_string(DriveStrength drive) noexcept;

/// Number of input pins of a cell function.
[[nodiscard]] std::size_t num_inputs(CellFunc func) noexcept;

[[nodiscard]] constexpr bool is_sequential(CellFunc func) noexcept {
  return func == CellFunc::kDff;
}

[[nodiscard]] constexpr bool is_constant(CellFunc func) noexcept {
  return func == CellFunc::kConst0 || func == CellFunc::kConst1;
}

/// Evaluate a combinational function over its input values.
/// Precondition: inputs.size() == num_inputs(func) and func is combinational.
[[nodiscard]] bool evaluate(CellFunc func, std::span<const bool> inputs);

/// Verilog pin name of the `index`-th input of a cell (NanGate45-style:
/// A for INV/BUF, A1..A4 for multi-input gates, A/B/S for MUX2, A1/A2/B for
/// AOI21/OAI21, D for DFF). Shared by the Verilog writer and reader so
/// emitted and elaborated connections agree by construction.
/// Precondition: index < num_inputs(func).
[[nodiscard]] std::string_view input_pin_name(CellFunc func,
                                              std::size_t index) noexcept;

/// Verilog pin name of a cell's output: "Q" for the DFF, "ZN" otherwise.
[[nodiscard]] std::string_view output_pin_name(CellFunc func) noexcept;

/// One selectable cell of the library (function + drive variant).
struct LibraryCell {
  CellFunc func;
  DriveStrength drive;
  std::string name;    // e.g. "NAND2_X1", NanGate45 style
  double area_um2;     // representative area, used for reporting only
};

/// The library: NanGate45-style combinational cells in X1/X2/X4 plus DFF.
class CellLibrary {
 public:
  /// Builds the default NanGate45-like library.
  CellLibrary();

  [[nodiscard]] const LibraryCell& lookup(CellFunc func, DriveStrength drive) const;
  [[nodiscard]] const LibraryCell* find_by_name(std::string_view name) const noexcept;
  [[nodiscard]] std::span<const LibraryCell> cells() const noexcept { return cells_; }

 private:
  std::vector<LibraryCell> cells_;
};

/// Process-wide default library instance.
[[nodiscard]] const CellLibrary& default_library();

}  // namespace ffr::netlist
