#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ffr::util {

std::size_t CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + std::string(name) + "'");
}

std::vector<double> CsvTable::column_as_doubles(std::string_view name) const {
  const std::size_t col = column_index(name);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) {
    if (col >= row.size()) {
      throw std::runtime_error("CsvTable: short row while reading column");
    }
    const std::string& cell = row[col];
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(cell.data(), cell.data() + cell.size(), parsed);
    if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
      throw std::runtime_error("CsvTable: cannot parse '" + cell + "' as double");
    }
    values.push_back(parsed);
  }
  return values;
}

std::string CsvWriter::escape(std::string_view field, char separator) {
  const bool needs_quoting =
      field.find_first_of("\"\r\n") != std::string_view::npos ||
      field.find(separator) != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (const char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

std::string CsvWriter::format_double(double value) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) throw std::runtime_error("format_double failed");
  return std::string(buffer, ptr);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << separator_;
    *out_ << escape(fields[i], separator_);
  }
  *out_ << '\n';
}

void CsvWriter::write_doubles(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_double(v));
  write_row(fields);
}

namespace {

// Split one logical CSV record, honouring quotes. `pos` is advanced past the
// record's trailing newline.
std::vector<std::string> parse_record(std::string_view text, std::size_t& pos,
                                      char separator) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          current.push_back('"');
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == separator) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(current));
      return fields;
    } else {
      current.push_back(c);
    }
    ++pos;
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

CsvTable parse_csv(std::string_view text, char separator) {
  CsvTable table;
  std::size_t pos = 0;
  if (pos < text.size()) table.header = parse_record(text, pos, separator);
  while (pos < text.size()) {
    auto record = parse_record(text, pos, separator);
    // Skip completely empty trailing lines.
    if (record.size() == 1 && record[0].empty()) continue;
    table.rows.push_back(std::move(record));
  }
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path, char separator) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("read_csv_file: cannot open " + path.string());
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return parse_csv(contents.str(), separator);
}

void write_csv_file(const std::filesystem::path& path, const CsvTable& table,
                    char separator) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("write_csv_file: cannot open " + path.string());
  }
  CsvWriter writer(file, separator);
  writer.write_row(table.header);
  for (const auto& row : table.rows) writer.write_row(row);
  if (!file) {
    throw std::runtime_error("write_csv_file: write failed for " + path.string());
  }
}

}  // namespace ffr::util
