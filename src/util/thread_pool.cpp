#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace ffr::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(count, 1,
                       [&body](std::size_t begin, std::size_t end, std::size_t) {
                         for (std::size_t i = begin; i < end; ++i) body(i);
                       });
}

void ThreadPool::parallel_for_chunked(
    std::size_t count, std::size_t chunk_size,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (chunk_size == 0) chunk_size = std::max<std::size_t>(1, count / (size() * 8));
  const std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t lanes = std::min(num_chunks, size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&, lane] {
      for (;;) {
        const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= num_chunks) return;
        const std::size_t begin = chunk * chunk_size;
        const std::size_t end = std::min(count, begin + chunk_size);
        try {
          body(begin, end, lane);
        } catch (...) {
          const std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool(num_threads);
  pool.parallel_for(count, body);
}

}  // namespace ffr::util
