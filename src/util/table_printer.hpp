#pragma once
// Aligned ASCII table printing used by the benchmark harnesses to emit the
// paper's tables and figure series in a readable form.

#include <string>
#include <vector>

namespace ffr::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with `precision` decimal places.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 3);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string to_string() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] static std::string format(double value, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ffr::util
