#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable random number generation for the whole library.
///
/// Every stochastic component (fault-injection schedules, train/test splits,
/// random hyperparameter search, workload generation) takes an explicit
/// `Rng&` or a seed; there is no global RNG state, so campaigns and
/// experiments are reproducible bit-for-bit given a seed.

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace ffr::util {

/// SplitMix64: used to expand a single 64-bit seed into a full state.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, high quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Log-uniform double in [lo, hi); lo and hi must be positive.
  [[nodiscard]] double log_uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>{items});
  }

  /// A random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) without replacement.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

  /// Split off an independent child generator (for per-thread streams).
  [[nodiscard]] Rng split() noexcept { return Rng{(*this)()}; }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ffr::util
