#pragma once
// Minimal CSV reading/writing used to persist feature matrices, campaign
// results and benchmark series. Supports quoting, embedded separators and
// round-tripping of doubles at full precision.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ffr::util {

/// A parsed CSV table: a header row plus data rows of strings.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header.size(); }

  /// Index of a column by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;

  /// Entire column converted to double; throws on parse failure.
  [[nodiscard]] std::vector<double> column_as_doubles(std::string_view name) const;
};

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char separator = ',')
      : out_(&out), separator_(separator) {}

  void write_row(const std::vector<std::string>& fields);
  void write_doubles(const std::vector<double>& values);

  /// Escape a single field according to RFC 4180 quoting rules.
  [[nodiscard]] static std::string escape(std::string_view field, char separator = ',');

  /// Format a double with enough digits to round-trip.
  [[nodiscard]] static std::string format_double(double value);

 private:
  std::ostream* out_;
  char separator_;
};

/// Parse CSV text (first row is the header).
[[nodiscard]] CsvTable parse_csv(std::string_view text, char separator = ',');

/// Read and parse a CSV file; throws std::runtime_error on I/O failure.
[[nodiscard]] CsvTable read_csv_file(const std::filesystem::path& path,
                                     char separator = ',');

/// Write a table to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const std::filesystem::path& path, const CsvTable& table,
                    char separator = ',');

}  // namespace ffr::util
