#pragma once
// Wall-clock stopwatch for harness timing reports.

#include <chrono>

namespace ffr::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ffr::util
