#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ffr::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::format(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void TablePrinter::add_row_numeric(const std::string& label,
                                   const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(format(v, precision));
  add_row(std::move(row));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace ffr::util
