#include "util/rng.hpp"

#include <cmath>

namespace ffr::util {

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("Rng::log_uniform requires 0 < lo < hi");
  }
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::below(0)");
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(width));
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  shuffle(perm);
  return perm;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n) time.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace ffr::util
