#pragma once
/// \file thread_pool.hpp
/// \brief A small fixed-size thread pool with a parallel-for helper, used to run
/// fault-injection campaigns and cross-validation folds concurrently.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ffr::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Run body(i) for i in [0, count) across the pool and wait for completion.
  /// Exceptions thrown by `body` are rethrown (first one wins) on the caller.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Chunked work-stealing variant: items [0, count) are claimed in chunks of
  /// `chunk_size` (0 = auto: ~8 chunks per worker) from a shared atomic
  /// counter, and body(begin, end, worker) is invoked once per claimed chunk.
  /// `worker` is a stable slot index in [0, size()), so callers can keep
  /// per-worker state (e.g. a reusable simulator) without locking.
  /// Exceptions thrown by `body` are rethrown (first one wins) on the caller.
  void parallel_for_chunked(
      std::size_t count, std::size_t chunk_size,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Convenience: one-shot parallel for over [0, count) using `num_threads`.
void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace ffr::util
