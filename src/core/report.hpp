#pragma once
/// \file report.hpp
/// \brief Markdown report generation for estimation-flow results: the artefact a
/// safety engineer files after running the analysis — circuit census, cost
/// accounting, FDR distribution, most-vulnerable instances and per-block
/// rollups.

#include <filesystem>
#include <string>

#include "core/estimation_flow.hpp"

namespace ffr::core {

struct ReportOptions {
  std::size_t top_k = 15;          // most vulnerable instances to list
  std::size_t histogram_bins = 10;
};

/// Renders a markdown report for a completed flow on its netlist.
[[nodiscard]] std::string render_report(const netlist::Netlist& nl,
                                        const FlowResult& flow,
                                        const ReportOptions& options = {});

/// Renders and writes to a file; throws std::runtime_error on I/O failure.
void write_report(const std::filesystem::path& path, const netlist::Netlist& nl,
                  const FlowResult& flow, const ReportOptions& options = {});

}  // namespace ffr::core
