#include "core/report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <numeric>
#include <sstream>

namespace ffr::core {

namespace {

std::string block_of(std::string name) {
  if (const auto bracket = name.find('['); bracket != std::string::npos) {
    name.resize(bracket);
  }
  while (!name.empty() && std::isdigit(static_cast<unsigned char>(name.back()))) {
    name.pop_back();
  }
  return name;
}

}  // namespace

std::string render_report(const netlist::Netlist& nl, const FlowResult& flow,
                          const ReportOptions& options) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  const std::size_t n = flow.fdr.size();

  out << "# Functional De-Rating report: " << nl.name() << "\n\n";
  out << "- circuit: " << nl.summary() << "\n";
  out << "- flip-flops measured by fault injection: " << flow.train_indices.size()
      << " / " << n << "\n";
  out << "- injections spent: " << flow.injections_spent << " (flat campaign: "
      << flow.injections_full << ", saving " << flow.cost_reduction() << "x)\n";
  out << "- estimated circuit mean FDR: " << flow.mean_fdr() << "\n\n";

  if (!flow.warnings.empty()) {
    out << "## Warnings\n\n";
    for (const std::string& warning : flow.warnings) {
      out << "- " << warning << "\n";
    }
    out << "\n";
  }

  // FDR histogram.
  out << "## FDR distribution\n\n";
  std::vector<std::size_t> hist(options.histogram_bins, 0);
  for (const double v : flow.fdr) {
    auto bin = static_cast<std::size_t>(v * static_cast<double>(hist.size()));
    if (bin >= hist.size()) bin = hist.size() - 1;
    ++hist[bin];
  }
  const std::size_t peak = std::max<std::size_t>(
      1, *std::max_element(hist.begin(), hist.end()));
  for (std::size_t b = 0; b < hist.size(); ++b) {
    const double lo = static_cast<double>(b) / static_cast<double>(hist.size());
    const double hi = static_cast<double>(b + 1) / static_cast<double>(hist.size());
    out << "    [" << lo << ", " << hi << ")  " << hist[b] << "  "
        << std::string(40 * hist[b] / peak, '#') << "\n";
  }

  // Top-k vulnerable instances.
  out << "\n## Most vulnerable instances\n\n";
  out << "| rank | instance | FDR | source |\n|---|---|---|---|\n";
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return flow.fdr[a] > flow.fdr[b]; });
  const auto ffs = nl.flip_flops();
  for (std::size_t rank = 0; rank < std::min(options.top_k, n); ++rank) {
    const std::size_t i = order[rank];
    out << "| " << rank + 1 << " | `" << nl.cell(ffs[i]).name << "` | "
        << flow.fdr[i] << " | " << (flow.is_train[i] ? "measured" : "predicted")
        << " |\n";
  }

  // Per-block rollup.
  out << "\n## Per-block mean FDR\n\n";
  out << "| block | #FFs | mean FDR |\n|---|---|---|\n";
  std::map<std::string, std::pair<double, std::size_t>> blocks;
  for (std::size_t i = 0; i < n; ++i) {
    auto& [sum, count] = blocks[block_of(nl.cell(ffs[i]).name)];
    sum += flow.fdr[i];
    ++count;
  }
  for (const auto& [name, agg] : blocks) {
    out << "| `" << name << "` | " << agg.second << " | "
        << agg.first / static_cast<double>(agg.second) << " |\n";
  }
  return out.str();
}

void write_report(const std::filesystem::path& path, const netlist::Netlist& nl,
                  const FlowResult& flow, const ReportOptions& options) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("write_report: cannot open " + path.string());
  file << render_report(nl, flow, options);
  if (!file) throw std::runtime_error("write_report: write failed");
}

}  // namespace ffr::core
