#include "core/estimation_flow.hpp"

#include <algorithm>
#include <cmath>

#include "ml/model_zoo.hpp"
#include "service/engine_registry.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace ffr::core {

double FlowResult::mean_fdr() const {
  if (fdr.empty()) return 0.0;
  return linalg::mean(fdr);
}

FlowResult run_estimation_flow(const netlist::Netlist& nl, const sim::Testbench& tb,
                               const FlowConfig& config) {
  // Keep this overload's golden_seconds semantics: the golden run happens
  // inside the engine build (on a registry miss), so time the acquire and
  // fold it back in. On a hit the golden run is already paid for and
  // golden_seconds shrinks to feature extraction plus the cache lookup.
  util::Stopwatch stopwatch;
  const std::shared_ptr<const fault::CampaignEngine> engine =
      service::default_engine_registry().acquire(nl, tb);
  const double golden_seconds = stopwatch.elapsed_seconds();
  FlowResult result = run_estimation_flow(*engine, config);
  result.golden_seconds += golden_seconds;
  return result;
}

FlowResult run_estimation_flow(const fault::CampaignEngine& engine,
                               const FlowConfig& config) {
  if (config.training_size <= 0.0 || config.training_size > 1.0) {
    throw std::invalid_argument("run_estimation_flow: training_size in (0, 1]");
  }
  const netlist::Netlist& nl = engine.netlist();
  const std::size_t n = nl.num_flip_flops();
  if (n == 0) throw std::invalid_argument("run_estimation_flow: no flip-flops");

  FlowResult result;
  util::Stopwatch stopwatch;

  // (1) Golden run: reference frames + signal activity (cached on the
  // engine — free after the first flow invocation); then features.
  const sim::GoldenResult& golden = engine.golden();
  result.features = features::extract_features(nl, golden.activity);
  result.golden_seconds = stopwatch.elapsed_seconds();

  // (2) Statistical fault injection on a random training subset.
  util::Rng rng(config.seed);
  const auto n_train = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::round(config.training_size * static_cast<double>(n))));
  result.train_indices = rng.sample_without_replacement(n, std::min(n_train, n));
  std::sort(result.train_indices.begin(), result.train_indices.end());
  result.is_train.assign(n, false);
  for (const std::size_t i : result.train_indices) result.is_train[i] = true;

  stopwatch.reset();
  fault::CampaignConfig campaign_config;
  campaign_config.injections_per_ff = config.injections_per_ff;
  campaign_config.seed = config.seed;
  campaign_config.num_threads = config.num_threads;
  campaign_config.batch_size = config.batch_size;
  campaign_config.ff_subset = result.train_indices;
  const fault::CampaignResult campaign = engine.run(campaign_config);
  result.campaign_seconds = stopwatch.elapsed_seconds();
  result.train_fdr = campaign.fdr_vector();
  result.injections_spent = campaign.total_injections;
  result.warnings = campaign.warnings;
  result.injections_full =
      static_cast<std::uint64_t>(n) * config.injections_per_ff;

  // (3) Train the regression model on (features, measured FDR).
  stopwatch.reset();
  const linalg::Matrix x_train =
      result.features.values.select_rows(result.train_indices);
  std::unique_ptr<ml::Regressor> model = ml::make_model(config.model);
  model->fit(x_train, result.train_fdr);

  // (4) Predict every flip-flop; splice measured values for the train set.
  result.predicted_fdr = model->predict(result.features.values);
  result.fdr = result.predicted_fdr;
  for (std::size_t t = 0; t < result.train_indices.size(); ++t) {
    result.fdr[result.train_indices[t]] = result.train_fdr[t];
  }
  // FDR is a probability: clamp model extrapolations into [0, 1].
  for (double& v : result.fdr) v = std::clamp(v, 0.0, 1.0);
  result.training_seconds = stopwatch.elapsed_seconds();
  return result;
}

ml::RegressionMetrics score_against_campaign(const FlowResult& flow,
                                             const fault::CampaignResult& reference) {
  if (reference.per_ff.size() != flow.is_train.size()) {
    throw std::invalid_argument(
        "score_against_campaign: reference must cover all flip-flops");
  }
  const linalg::Vector reference_fdr = reference.fdr_vector();
  linalg::Vector y_true;
  linalg::Vector y_pred;
  for (std::size_t i = 0; i < flow.is_train.size(); ++i) {
    if (flow.is_train[i]) continue;
    y_true.push_back(reference_fdr[i]);
    y_pred.push_back(flow.fdr[i]);
  }
  if (y_true.empty()) {
    throw std::invalid_argument("score_against_campaign: nothing held out");
  }
  return ml::compute_metrics(y_true, y_pred);
}

}  // namespace ffr::core
