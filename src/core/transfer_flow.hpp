#pragma once
/// \file transfer_flow.hpp
/// \brief Cross-circuit transfer serving: train once on N (netlist,
/// testbench) pairs, persist the model, predict any unseen circuit.
///
/// The estimation flow (estimation_flow.hpp) amortizes fault injection
/// *within* one circuit; the transfer flow amortizes it *across* circuits.
/// Training fault-injects each training circuit once, normalizes each
/// circuit's feature matrix against its own statistics
/// (features::DomainScaler — the step that makes feature scales comparable
/// across designs), stacks the rows and fits one regression model. The
/// resulting TransferModel predicts the per-flip-flop FDR of a circuit it
/// has never seen from a golden simulation alone — no fault injection on
/// the target — and persists to disk in a versioned text format, so the
/// expensive training campaigns run once while the model serves many
/// designs (see examples/cross_circuit and bench/bench_transfer.cpp).

#include <filesystem>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "features/domain_scaler.hpp"
#include "features/extractor.hpp"
#include "ml/model.hpp"
#include "netlist/netlist.hpp"
#include "sim/testbench.hpp"

namespace ffr::core {

/// One training design: a finalized netlist plus the workload testbench
/// that drives its golden run and fault-injection campaign. Both must
/// outlive the train_transfer_model() call.
struct TransferCircuit {
  const netlist::Netlist* netlist = nullptr;
  const sim::Testbench* testbench = nullptr;
};

/// One training circuit's gathered data, for callers that already ran the
/// campaign (benches reuse one campaign as both training labels and ground
/// truth). `features` holds raw, un-normalized values; the trainer applies
/// the domain scaler.
struct TransferSample {
  std::string name;                   ///< Circuit name (provenance only).
  features::FeatureMatrix features;   ///< Raw per-flip-flop features.
  linalg::Vector fdr;                 ///< Measured FDR, one per flip-flop.
};

/// Tunables of transfer training. Defaults: the paper's tuned k-NN and its
/// 170 injections per flip-flop, the default transfer normalizations.
struct TransferConfig {
  /// Zoo name of the regression model (see ml::make_model).
  std::string model = "knn_paper";
  /// Single-event upsets per flip-flop in each training campaign.
  std::size_t injections_per_ff = 170;
  /// Seed for the training campaigns' injection schedules.
  std::uint64_t seed = 0xF10F;
  /// Worker threads for the campaigns; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Per-feature normalization (empty = features::default_transfer_norms()).
  features::DomainScalerConfig norms;
};

/// Per-circuit accounting of one transfer training run.
struct TransferTrainStats {
  std::string circuit;                 ///< Netlist name.
  std::size_t rows = 0;                ///< Flip-flops contributed.
  std::uint64_t injections = 0;        ///< Upsets spent on this circuit.
  double campaign_seconds = 0.0;       ///< Campaign wall-clock time.
};

/// A trained, serializable cross-circuit FDR predictor: the fitted
/// regression model plus the domain-scaler configuration every prediction
/// must replicate. Obtain one from train_transfer_model() or load().
class TransferModel {
 public:
  /// Predicts per-flip-flop FDR for an unseen circuit from a golden
  /// simulation alone (no fault injection): runs the testbench, extracts
  /// features, normalizes them against this circuit's own statistics and
  /// applies the model. Order follows Netlist::flip_flops().
  [[nodiscard]] linalg::Vector predict(const netlist::Netlist& nl,
                                       const sim::Testbench& tb) const;

  /// Predicts from an already-extracted raw feature matrix (normalization
  /// still happens here — pass raw features, not standardized ones).
  [[nodiscard]] linalg::Vector predict(
      const features::FeatureMatrix& features) const;

  /// Writes the model in the versioned `ffr-transfer` text format: a header,
  /// provenance, the per-column normalization modes, and the nested fitted
  /// model block (serialize.hpp format).
  void save(std::ostream& os) const;
  /// save() into a new file at `path`.
  /// \throws std::runtime_error when the file cannot be opened.
  void save(const std::filesystem::path& path) const;

  /// Reads a model written by save().
  /// \throws std::runtime_error on bad magic/version or a corrupt body.
  [[nodiscard]] static TransferModel load(std::istream& is);
  /// load() from the file at `path`.
  /// \throws std::runtime_error when the file cannot be opened or is corrupt.
  [[nodiscard]] static TransferModel load(const std::filesystem::path& path);

  /// \return The fitted regression model.
  [[nodiscard]] const ml::Regressor& model() const noexcept { return *model_; }
  /// \return The zoo name the model was built from (e.g. "knn_paper").
  [[nodiscard]] const std::string& model_name() const noexcept {
    return model_name_;
  }
  /// \return Names of the circuits the model was trained on.
  [[nodiscard]] const std::vector<std::string>& train_circuits() const noexcept {
    return train_circuits_;
  }
  /// \return Total training rows (flip-flops) across all circuits.
  [[nodiscard]] std::size_t train_rows() const noexcept { return train_rows_; }
  /// \return The per-column normalizations applied before fit and predict.
  [[nodiscard]] const features::DomainScalerConfig& norms() const noexcept {
    return norms_;
  }

 private:
  friend TransferModel train_transfer_model(
      std::span<const TransferSample> samples, const TransferConfig& config);

  TransferModel() = default;

  std::unique_ptr<ml::Regressor> model_;
  features::DomainScalerConfig norms_;
  std::string model_name_;
  std::vector<std::string> train_circuits_;
  std::size_t train_rows_ = 0;
};

/// Gathers one circuit's transfer-training data: runs the golden simulation
/// and one batched campaign (fault::CampaignEngine) with the config's
/// injection knobs, and extracts the raw feature matrix. This is the
/// per-circuit building block of the circuit-based train_transfer_model
/// overload, exposed so examples, benches and tests measure exactly the
/// pipeline the flow trains on. `stats`, when non-null, receives the cost
/// accounting.
[[nodiscard]] TransferSample gather_transfer_sample(
    const netlist::Netlist& nl, const sim::Testbench& tb,
    const TransferConfig& config = {}, TransferTrainStats* stats = nullptr);

/// Trains a TransferModel from pre-gathered per-circuit samples: each
/// circuit's features are domain-normalized against that circuit's own
/// statistics, rows are stacked and the configured model is fitted once.
/// \throws std::invalid_argument on empty input, an unknown model name, a
///         feature/label row mismatch, or inconsistent feature counts.
[[nodiscard]] TransferModel train_transfer_model(
    std::span<const TransferSample> samples, const TransferConfig& config = {});

/// End-to-end training: for every circuit, runs the golden simulation and a
/// full fault-injection campaign (the batched CampaignEngine), extracts
/// features, then delegates to the sample-based overload. `stats`, when
/// non-null, receives per-circuit cost accounting.
/// \throws std::invalid_argument on empty input, null pointers, zero
///         injections, or an unknown model name.
[[nodiscard]] TransferModel train_transfer_model(
    std::span<const TransferCircuit> circuits, const TransferConfig& config = {},
    std::vector<TransferTrainStats>* stats = nullptr);

}  // namespace ffr::core
