#pragma once
/// \file estimation_flow.hpp
/// \brief The paper's methodology end-to-end (Fig. 1).
///
/// From a gate-level netlist and its workload testbench: (1) run the golden
/// simulation and extract per-flip-flop features, (2) fault-inject only a
/// *training fraction* of the flip-flops to measure their Functional
/// De-Rating (FDR), (3) train a regression model on (features -> FDR),
/// (4) predict the FDR of every remaining flip-flop. The expensive flat
/// campaign over all flip-flops is what the flow avoids;
/// FlowResult::cost_reduction() quantifies the saving.

#include <cstdint>
#include <filesystem>
#include <string>

#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "features/extractor.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "netlist/netlist.hpp"
#include "sim/runner.hpp"

namespace ffr::core {

/// Tunables of one estimation-flow run. The defaults reproduce the paper's
/// headline configuration (50% training fraction, 170 injections per
/// flip-flop, the tuned k-NN model).
struct FlowConfig {
  /// Fraction of flip-flops that receive fault injection (paper: 0.2-0.5).
  double training_size = 0.5;
  /// Single-event upsets injected per training flip-flop (paper: 170).
  std::size_t injections_per_ff = 170;
  /// Zoo name of the regression model (see ml::make_model).
  std::string model = "knn_paper";
  /// Seed for the train/predict split and injection schedules; the flow is
  /// fully deterministic for a fixed config.
  std::uint64_t seed = 0xF10F;
  /// Worker threads for the campaign; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Campaign work-stealing granularity (see CampaignConfig::batch_size);
  /// 0 = auto. Never affects the numerical results.
  std::size_t batch_size = 0;
};

/// Everything a flow run produces: the feature matrix, the train/predict
/// partition, measured and predicted FDR vectors, and cost/time accounting.
struct FlowResult {
  features::FeatureMatrix features;
  /// Flip-flop indices (into Netlist::flip_flops()) that were fault-injected.
  std::vector<std::size_t> train_indices;
  std::vector<bool> is_train;  // per flip-flop
  /// Measured FDR for the training subset (aligned with train_indices).
  linalg::Vector train_fdr;
  /// Final per-flip-flop FDR: measured where injected, predicted elsewhere.
  linalg::Vector fdr;
  /// Raw model predictions for all flip-flops (diagnostics).
  linalg::Vector predicted_fdr;

  /// Non-fatal diagnostics surfaced from the training campaign (see
  /// CampaignResult::warnings), e.g. a lane-width fallback on this host.
  std::vector<std::string> warnings;

  std::uint64_t injections_spent = 0;
  double golden_seconds = 0.0;
  double campaign_seconds = 0.0;
  double training_seconds = 0.0;

  /// \return Injections a full flat campaign would have needed divided by
  ///         injections actually spent (the paper's cost-saving headline);
  ///         0 when nothing was injected.
  [[nodiscard]] double cost_reduction() const noexcept {
    return injections_spent == 0
               ? 0.0
               : static_cast<double>(injections_full) /
                     static_cast<double>(injections_spent);
  }
  std::uint64_t injections_full = 0;

  /// \return Circuit-level mean FDR estimate (unweighted over flip-flops).
  [[nodiscard]] double mean_fdr() const;
};

/// Runs the flow end-to-end. Deterministic for a given config.
///
/// The engine behind this overload comes from the process-wide
/// service::default_engine_registry(): repeated calls on content-identical
/// (netlist, testbench) pairs — even distinct copies, from any thread —
/// share one golden run, checkpoint set and compiled stimulus. Results are
/// unaffected (the cached engine is built from a structurally identical
/// copy); only golden_seconds shrinks on a cache hit.
///
/// \param nl     Finalized gate-level netlist to analyse.
/// \param tb     Workload testbench driving the golden run and campaign.
/// \param config Flow tunables; defaults reproduce the paper's setup.
/// \return Per-flip-flop FDR estimates plus cost/time accounting.
/// \throws std::invalid_argument on an empty netlist, a training fraction
///         outside (0, 1], or an unknown model name.
[[nodiscard]] FlowResult run_estimation_flow(const netlist::Netlist& nl,
                                             const sim::Testbench& tb,
                                             const FlowConfig& config = {});

/// Runs the flow on a prebuilt CampaignEngine, reusing its cached golden run
/// (frames + activity trace) and compiled stimulus across invocations —
/// sweeping flow configurations on one (netlist, testbench) pair pays the
/// golden-simulation cost once instead of once per call. The campaign itself
/// uses the engine's batched path. Numerically identical to the
/// (netlist, testbench) overload for the same config; with a prebuilt engine
/// golden_seconds covers only feature extraction, since the golden run is
/// amortized.
[[nodiscard]] FlowResult run_estimation_flow(const fault::CampaignEngine& engine,
                                             const FlowConfig& config = {});

/// Scores a flow result against a reference full campaign.
///
/// Metrics are computed only on the flip-flops the flow did NOT inject
/// (i.e. its actual predictions), matching the paper's evaluation protocol.
///
/// \param flow      Result of run_estimation_flow().
/// \param reference A full-circuit campaign in Netlist::flip_flops() order.
/// \return The paper's regression metrics (MAE, MAX, RMSE, EV, R²).
[[nodiscard]] ml::RegressionMetrics score_against_campaign(
    const FlowResult& flow, const fault::CampaignResult& reference);

}  // namespace ffr::core
