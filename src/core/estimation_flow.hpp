#pragma once
// The paper's methodology end-to-end (Fig. 1): from a gate-level netlist and
// its workload testbench, (1) run the golden simulation and extract per-
// flip-flop features, (2) fault-inject only a *training fraction* of the
// flip-flops to measure their Functional De-Rating, (3) train a regression
// model on (features -> FDR), (4) predict the FDR of every remaining
// flip-flop. The expensive flat campaign over all flip-flops is what the
// flow avoids; `cost_reduction()` quantifies the saving.

#include <cstdint>
#include <filesystem>
#include <string>

#include "fault/campaign.hpp"
#include "features/extractor.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "netlist/netlist.hpp"
#include "sim/runner.hpp"

namespace ffr::core {

struct FlowConfig {
  /// Fraction of flip-flops that receive fault injection (paper: 0.2-0.5).
  double training_size = 0.5;
  std::size_t injections_per_ff = 170;
  /// Zoo name of the regression model (see ml::make_model).
  std::string model = "knn_paper";
  std::uint64_t seed = 0xF10F;
  std::size_t num_threads = 0;
};

struct FlowResult {
  features::FeatureMatrix features;
  /// Flip-flop indices (into Netlist::flip_flops()) that were fault-injected.
  std::vector<std::size_t> train_indices;
  std::vector<bool> is_train;  // per flip-flop
  /// Measured FDR for the training subset (aligned with train_indices).
  linalg::Vector train_fdr;
  /// Final per-flip-flop FDR: measured where injected, predicted elsewhere.
  linalg::Vector fdr;
  /// Raw model predictions for all flip-flops (diagnostics).
  linalg::Vector predicted_fdr;

  std::uint64_t injections_spent = 0;
  double golden_seconds = 0.0;
  double campaign_seconds = 0.0;
  double training_seconds = 0.0;

  /// Injections a full flat campaign would have needed / injections spent.
  [[nodiscard]] double cost_reduction() const noexcept {
    return injections_spent == 0
               ? 0.0
               : static_cast<double>(injections_full) /
                     static_cast<double>(injections_spent);
  }
  std::uint64_t injections_full = 0;

  /// Circuit-level mean FDR estimate.
  [[nodiscard]] double mean_fdr() const;
};

/// Runs the flow. Deterministic for a given config.
[[nodiscard]] FlowResult run_estimation_flow(const netlist::Netlist& nl,
                                             const sim::Testbench& tb,
                                             const FlowConfig& config = {});

/// Scores a flow result against a reference full campaign: metrics are
/// computed on the flip-flops the flow did NOT inject (its actual
/// predictions). `reference` must be a full-circuit campaign in
/// Netlist::flip_flops() order.
[[nodiscard]] ml::RegressionMetrics score_against_campaign(
    const FlowResult& flow, const fault::CampaignResult& reference);

}  // namespace ffr::core
