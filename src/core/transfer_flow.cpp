#include "core/transfer_flow.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "fault/engine.hpp"
#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "sim/runner.hpp"

namespace ffr::core {

linalg::Vector TransferModel::predict(const netlist::Netlist& nl,
                                      const sim::Testbench& tb) const {
  const sim::GoldenResult golden = sim::run_golden(nl, tb);
  return predict(features::extract_features(nl, golden.activity));
}

linalg::Vector TransferModel::predict(
    const features::FeatureMatrix& features) const {
  const features::DomainScaler scaler(norms_);
  return model_->predict(scaler.standardize(features.values));
}

namespace {

// The format is whitespace-tokenized, so names must be single tokens.
void check_token_name(const std::string& name, const char* field) {
  if (name.empty() || name.find_first_of(" \t\n\r") != std::string::npos) {
    throw std::invalid_argument("TransferModel::save: " + std::string(field) +
                                " '" + name +
                                "' must be non-empty and whitespace-free");
  }
}

}  // namespace

void TransferModel::save(std::ostream& os) const {
  check_token_name(model_name_, "model name");
  for (const std::string& name : train_circuits_) {
    check_token_name(name, "circuit name");
  }
  os << "ffr-transfer 1\nmodel_name " << model_name_ << "\ncircuits "
     << train_circuits_.size();
  for (const std::string& name : train_circuits_) os << ' ' << name;
  os << "\nrows " << train_rows_ << '\n';
  const features::DomainScaler scaler(norms_);
  os << "norms " << scaler.norms().size();
  for (const features::ColumnNorm norm : scaler.norms()) {
    os << ' ' << static_cast<int>(norm);
  }
  os << '\n';
  model_->save(os);
  os << "end\n";
}

void TransferModel::save(const std::filesystem::path& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("TransferModel::save: cannot open " +
                             path.string());
  }
  save(os);
  if (!os.flush()) {
    throw std::runtime_error("TransferModel::save: write failed for " +
                             path.string());
  }
}

TransferModel TransferModel::load(std::istream& is) {
  namespace io = ml::io;
  const std::string magic = io::read_token(is);
  if (magic != "ffr-transfer") {
    throw std::runtime_error("TransferModel::load: bad magic '" + magic +
                             "' (not an ffr transfer-model file)");
  }
  const std::uint64_t version = io::read_size(is);
  if (version != 1) {
    throw std::runtime_error(
        "TransferModel::load: unsupported format version " +
        std::to_string(version) + " (expected 1)");
  }
  TransferModel model;
  io::expect_token(is, "model_name");
  model.model_name_ = io::read_token(is);
  io::expect_token(is, "circuits");
  const auto num_circuits = static_cast<std::size_t>(io::read_size(is));
  model.train_circuits_.reserve(num_circuits);
  for (std::size_t i = 0; i < num_circuits; ++i) {
    model.train_circuits_.push_back(io::read_token(is));
  }
  io::expect_token(is, "rows");
  model.train_rows_ = static_cast<std::size_t>(io::read_size(is));
  io::expect_token(is, "norms");
  const auto num_norms = static_cast<std::size_t>(io::read_size(is));
  model.norms_.norms.reserve(num_norms);
  for (std::size_t i = 0; i < num_norms; ++i) {
    const std::uint64_t value = io::read_size(is);
    if (value > 2) {
      throw std::runtime_error("TransferModel::load: invalid ColumnNorm " +
                               std::to_string(value));
    }
    model.norms_.norms.push_back(
        static_cast<features::ColumnNorm>(static_cast<int>(value)));
  }
  model.model_ = ml::load_model(is);
  io::expect_token(is, "end");
  return model;
}

TransferModel TransferModel::load(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("TransferModel::load: cannot open " +
                             path.string());
  }
  return load(is);
}

TransferModel train_transfer_model(std::span<const TransferSample> samples,
                                   const TransferConfig& config) {
  if (samples.empty()) {
    throw std::invalid_argument("train_transfer_model: no training circuits");
  }
  const features::DomainScaler scaler(config.norms);
  std::size_t total_rows = 0;
  const std::size_t cols = samples.front().features.values.cols();
  for (const TransferSample& sample : samples) {
    if (sample.features.values.rows() != sample.fdr.size()) {
      throw std::invalid_argument(
          "train_transfer_model: circuit '" + sample.name + "' has " +
          std::to_string(sample.features.values.rows()) +
          " feature rows but " + std::to_string(sample.fdr.size()) +
          " FDR labels");
    }
    if (sample.features.values.cols() != cols) {
      throw std::invalid_argument(
          "train_transfer_model: circuit '" + sample.name + "' has " +
          std::to_string(sample.features.values.cols()) +
          " feature columns, expected " + std::to_string(cols));
    }
    total_rows += sample.features.values.rows();
  }

  // Normalize each circuit against itself, then stack.
  linalg::Matrix x(total_rows, cols);
  linalg::Vector y;
  y.reserve(total_rows);
  std::size_t row = 0;
  for (const TransferSample& sample : samples) {
    const linalg::Matrix standardized = scaler.standardize(sample.features.values);
    for (std::size_t r = 0; r < standardized.rows(); ++r) {
      x.set_row(row++, standardized.row(r));
    }
    y.insert(y.end(), sample.fdr.begin(), sample.fdr.end());
  }

  TransferModel model;
  model.model_ = ml::make_model(config.model);
  model.model_->fit(x, y);
  model.model_name_ = config.model;
  model.norms_.norms = scaler.norms();
  model.train_rows_ = total_rows;
  for (const TransferSample& sample : samples) {
    model.train_circuits_.push_back(sample.name);
  }
  return model;
}

TransferSample gather_transfer_sample(const netlist::Netlist& nl,
                                      const sim::Testbench& tb,
                                      const TransferConfig& config,
                                      TransferTrainStats* stats) {
  if (config.injections_per_ff == 0) {
    throw std::invalid_argument(
        "gather_transfer_sample: injections_per_ff must be >= 1");
  }
  const fault::CampaignEngine engine(nl, tb);
  fault::CampaignConfig campaign_config;
  campaign_config.injections_per_ff = config.injections_per_ff;
  campaign_config.seed = config.seed;
  campaign_config.num_threads = config.num_threads;
  const fault::CampaignResult campaign = engine.run(campaign_config);

  TransferSample sample;
  sample.name = nl.name();
  sample.features = features::extract_features(nl, engine.golden().activity);
  sample.fdr = campaign.fdr_vector();
  if (stats != nullptr) {
    *stats = {sample.name, sample.fdr.size(), campaign.total_injections,
              campaign.wall_seconds};
  }
  return sample;
}

TransferModel train_transfer_model(std::span<const TransferCircuit> circuits,
                                   const TransferConfig& config,
                                   std::vector<TransferTrainStats>* stats) {
  if (circuits.empty()) {
    throw std::invalid_argument("train_transfer_model: no training circuits");
  }
  std::vector<TransferSample> samples;
  samples.reserve(circuits.size());
  for (const TransferCircuit& circuit : circuits) {
    if (circuit.netlist == nullptr || circuit.testbench == nullptr) {
      throw std::invalid_argument(
          "train_transfer_model: null netlist or testbench");
    }
    TransferTrainStats circuit_stats;
    samples.push_back(gather_transfer_sample(*circuit.netlist,
                                             *circuit.testbench, config,
                                             &circuit_stats));
    if (stats != nullptr) stats->push_back(circuit_stats);
  }
  return train_transfer_model(samples, config);
}

}  // namespace ffr::core
