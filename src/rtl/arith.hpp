#pragma once
// Arithmetic and comparison blocks lowered to gates: ripple-carry adder,
// incrementer, equality/magnitude comparators and binary decoders.

#include "rtl/word.hpp"

namespace ffr::rtl {

struct AdderResult {
  Word sum;
  NetId carry_out;
};

/// Ripple-carry adder: sum = a + b + cin.
[[nodiscard]] AdderResult adder(NetlistBuilder& bld, std::span<const NetId> a,
                                std::span<const NetId> b, NetId cin);

/// a + 1 (wrapping), optimized half-adder chain.
[[nodiscard]] AdderResult incrementer(NetlistBuilder& bld, std::span<const NetId> a);

/// a - b via two's complement; `borrow_out` is 1 when a < b (unsigned).
[[nodiscard]] AdderResult subtractor(NetlistBuilder& bld, std::span<const NetId> a,
                                     std::span<const NetId> b);

/// Single-net equality: 1 iff a == b.
[[nodiscard]] NetId equals(NetlistBuilder& bld, std::span<const NetId> a,
                           std::span<const NetId> b);

/// 1 iff a == constant value.
[[nodiscard]] NetId equals_const(NetlistBuilder& bld, std::span<const NetId> a,
                                 std::uint64_t value);

/// 1 iff a < b (unsigned).
[[nodiscard]] NetId less_than(NetlistBuilder& bld, std::span<const NetId> a,
                              std::span<const NetId> b);

/// Binary decoder: output[i] = (a == i), for i in [0, 2^width).
[[nodiscard]] Word decoder(NetlistBuilder& bld, std::span<const NetId> a);

/// One-hot multiplexer: out = OR_i (words[i] AND select[i]).
/// Exactly one select line is expected to be high.
[[nodiscard]] Word onehot_mux(NetlistBuilder& bld,
                              std::span<const Word> words,
                              std::span<const NetId> select);

}  // namespace ffr::rtl
