#pragma once
// Synchronous FIFO lowered to gates: register-file storage, gray-free
// binary read/write pointers with an extra wrap bit, one-hot read mux.
// Mirrors the transmit/receive FIFOs of the 10GE MAC core.

#include "rtl/sequential.hpp"

namespace ffr::rtl {

struct Fifo {
  Word dout;          // read data (combinational from storage + read pointer)
  NetId full;         // storage full (writes ignored while high)
  NetId empty;        // storage empty (reads ignored while high)
  Word occupancy;     // current element count, depth_log2+1 bits
  // All storage/pointer flip-flops, for campaign bookkeeping.
  std::vector<FlipFlop> storage_ffs;
  std::vector<FlipFlop> pointer_ffs;
};

/// Builds a FIFO with 2^depth_log2 entries of `din.size()` bits.
/// Writes happen when wr_en && !full; reads advance when rd_en && !empty.
/// `dout` always shows the head entry.
[[nodiscard]] Fifo make_fifo(NetlistBuilder& bld, const std::string& name,
                             std::span<const NetId> din, std::size_t depth_log2,
                             NetId wr_en, NetId rd_en);

}  // namespace ffr::rtl
