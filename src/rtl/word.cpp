#include "rtl/word.hpp"

#include <stdexcept>

namespace ffr::rtl {

namespace {

void check_same_width(std::span<const NetId> a, std::span<const NetId> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("rtl word op: width mismatch");
  }
}

}  // namespace

Word constant_word(NetlistBuilder& b, std::uint64_t value, std::size_t width) {
  Word out;
  out.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back(b.constant(((value >> (i % 64)) & 1ULL) != 0 && i < 64));
  }
  return out;
}

Word word_not(NetlistBuilder& b, std::span<const NetId> a) {
  Word out;
  out.reserve(a.size());
  for (const NetId bit : a) out.push_back(b.inv(bit));
  return out;
}

Word word_and(NetlistBuilder& b, std::span<const NetId> a,
              std::span<const NetId> y) {
  check_same_width(a, y);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.and2(a[i], y[i]));
  return out;
}

Word word_or(NetlistBuilder& b, std::span<const NetId> a, std::span<const NetId> y) {
  check_same_width(a, y);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.or2(a[i], y[i]));
  return out;
}

Word word_xor(NetlistBuilder& b, std::span<const NetId> a,
              std::span<const NetId> y) {
  check_same_width(a, y);
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.xor2(a[i], y[i]));
  return out;
}

Word word_mux(NetlistBuilder& b, std::span<const NetId> a_word,
              std::span<const NetId> b_word, NetId sel) {
  check_same_width(a_word, b_word);
  Word out;
  out.reserve(a_word.size());
  for (std::size_t i = 0; i < a_word.size(); ++i) {
    out.push_back(b.mux2(a_word[i], b_word[i], sel));
  }
  return out;
}

Word word_gate(NetlistBuilder& b, std::span<const NetId> a, NetId en) {
  Word out;
  out.reserve(a.size());
  for (const NetId bit : a) out.push_back(b.and2(bit, en));
  return out;
}

Word word_shl(NetlistBuilder& b, std::span<const NetId> a, std::size_t amount) {
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(i < amount ? b.constant(false) : a[i - amount]);
  }
  return out;
}

Word word_shr(NetlistBuilder& b, std::span<const NetId> a, std::size_t amount) {
  Word out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(i + amount < a.size() ? a[i + amount] : b.constant(false));
  }
  return out;
}

Word word_concat(std::span<const NetId> lo, std::span<const NetId> hi) {
  Word out;
  out.reserve(lo.size() + hi.size());
  out.insert(out.end(), lo.begin(), lo.end());
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

Word word_slice(std::span<const NetId> a, std::size_t from, std::size_t len) {
  if (from + len > a.size()) throw std::out_of_range("word_slice");
  return Word(a.begin() + static_cast<long>(from),
              a.begin() + static_cast<long>(from + len));
}

}  // namespace ffr::rtl
