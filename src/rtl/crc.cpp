#include "rtl/crc.hpp"

#include <stdexcept>

namespace ffr::rtl {

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t state = kCrc32Init;
  for (const std::uint8_t byte : data) state = crc32_update(state, byte);
  return state ^ kCrc32FinalXor;
}

std::uint32_t crc32_residue() noexcept {
  // Residue is message-independent; derive it from the empty message.
  std::uint32_t state = kCrc32Init;
  const std::uint32_t fcs = state ^ kCrc32FinalXor;
  for (int i = 0; i < 4; ++i) {
    state = crc32_update(state, static_cast<std::uint8_t>(fcs >> (8 * i)));
  }
  return state;
}

Word crc32_byte_next(NetlistBuilder& bld, std::span<const NetId> crc_state,
                     std::span<const NetId> data_byte) {
  if (crc_state.size() != 32 || data_byte.size() != 8) {
    throw std::invalid_argument("crc32_byte_next: need 32-bit state, 8-bit data");
  }
  Word state(crc_state.begin(), crc_state.end());
  // Eight unrolled single-bit steps of the reflected LFSR. Per step:
  //   feedback = state[0] ^ data_bit
  //   state'   = (state >> 1) ^ (feedback ? 0xEDB88320 : 0)
  for (std::size_t bit = 0; bit < 8; ++bit) {
    const NetId feedback = bld.xor2(state[0], data_byte[bit]);
    Word next(32, netlist::kNoNet);
    for (std::size_t i = 0; i < 32; ++i) {
      const NetId shifted = (i + 1 < 32) ? state[i + 1] : bld.constant(false);
      if ((kCrc32PolyReflected >> i) & 1u) {
        next[i] = bld.xor2(shifted, feedback);
      } else {
        next[i] = shifted;
      }
    }
    state = std::move(next);
  }
  return state;
}

}  // namespace ffr::rtl
