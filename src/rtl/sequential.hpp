#pragma once
// Sequential building blocks: registers with enable, counters, shift
// registers and LFSRs. Each returns both the flip-flop handles (for bus
// registration / fault targeting) and the Q word (for wiring).

#include "rtl/word.hpp"

namespace ffr::rtl {

using netlist::FlipFlop;

struct Register {
  std::vector<FlipFlop> ffs;
  Word q;
};

/// Plain register: q <= d every cycle.
[[nodiscard]] Register make_register(NetlistBuilder& bld, const std::string& name,
                                     std::span<const NetId> d, std::uint64_t init = 0);

/// Register with write enable: q <= en ? d : q (mux feedback).
[[nodiscard]] Register make_register_en(NetlistBuilder& bld, const std::string& name,
                                        std::span<const NetId> d, NetId en,
                                        std::uint64_t init = 0);

struct Counter {
  Register reg;
  NetId wrap;  // carry out of the increment (high on overflow when enabled)
};

/// Up-counter with enable; wraps at 2^width.
[[nodiscard]] Counter make_counter(NetlistBuilder& bld, const std::string& name,
                                   std::size_t width, NetId enable,
                                   std::uint64_t init = 0);

/// Counter with synchronous clear-to-zero (clear wins over enable).
[[nodiscard]] Counter make_counter_clear(NetlistBuilder& bld, const std::string& name,
                                         std::size_t width, NetId enable, NetId clear,
                                         std::uint64_t init = 0);

/// Shift register: shifts in `serial_in` at bit 0 when enabled.
[[nodiscard]] Register make_shift_register(NetlistBuilder& bld,
                                           const std::string& name, std::size_t width,
                                           NetId serial_in, NetId enable,
                                           std::uint64_t init = 0);

/// Fibonacci LFSR over the given tap positions (XOR feedback into bit
/// width-1, shifting toward bit 0). Init must be non-zero to avoid lock-up.
[[nodiscard]] Register make_lfsr(NetlistBuilder& bld, const std::string& name,
                                 std::size_t width, std::span<const std::size_t> taps,
                                 NetId enable, std::uint64_t init = 1);

}  // namespace ffr::rtl
