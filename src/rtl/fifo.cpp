#include "rtl/fifo.hpp"

#include <stdexcept>

#include "rtl/arith.hpp"

namespace ffr::rtl {

Fifo make_fifo(NetlistBuilder& bld, const std::string& name,
               std::span<const NetId> din, std::size_t depth_log2, NetId wr_en,
               NetId rd_en) {
  if (depth_log2 == 0 || depth_log2 > 8) {
    throw std::invalid_argument("make_fifo: depth_log2 must be in [1, 8]");
  }
  const std::size_t depth = std::size_t{1} << depth_log2;
  const std::size_t ptr_bits = depth_log2 + 1;  // extra wrap bit

  Fifo fifo;

  // Pointers as enabled counters. Enables depend on full/empty, which depend
  // on the pointers, so allocate pointer state via forward wires.
  std::vector<NetId> wptr_d = bld.forward_wires(name + "_wptr_d", ptr_bits);
  std::vector<NetId> rptr_d = bld.forward_wires(name + "_rptr_d", ptr_bits);
  Register wptr;
  Register rptr;
  {
    netlist::RegisterBus wbus;
    wbus.name = name + "_wptr";
    netlist::RegisterBus rbus;
    rbus.name = name + "_rptr";
    for (std::size_t i = 0; i < ptr_bits; ++i) {
      FlipFlop wff = bld.dff(wptr_d[i], false, wbus.name + "[" + std::to_string(i) + "]");
      FlipFlop rff = bld.dff(rptr_d[i], false, rbus.name + "[" + std::to_string(i) + "]");
      wbus.flip_flops.push_back(wff.cell);
      rbus.flip_flops.push_back(rff.cell);
      wptr.ffs.push_back(wff);
      rptr.ffs.push_back(rff);
      wptr.q.push_back(wff.q);
      rptr.q.push_back(rff.q);
    }
    bld.add_register_bus(std::move(wbus));
    bld.add_register_bus(std::move(rbus));
  }

  // Status flags. empty: pointers identical. full: same index bits, opposite
  // wrap bits.
  fifo.empty = equals(bld, wptr.q, rptr.q);
  const Word w_index = word_slice(wptr.q, 0, depth_log2);
  const Word r_index = word_slice(rptr.q, 0, depth_log2);
  const NetId same_index = equals(bld, w_index, r_index);
  const NetId wrap_differs = bld.xor2(wptr.q[depth_log2], rptr.q[depth_log2]);
  fifo.full = bld.and2(same_index, wrap_differs);

  const NetId do_write = bld.and2(wr_en, bld.inv(fifo.full));
  const NetId do_read = bld.and2(rd_en, bld.inv(fifo.empty));

  // Pointer next-state.
  {
    const AdderResult winc = incrementer(bld, wptr.q);
    const Word wnext = word_mux(bld, wptr.q, winc.sum, do_write);
    const AdderResult rinc = incrementer(bld, rptr.q);
    const Word rnext = word_mux(bld, rptr.q, rinc.sum, do_read);
    for (std::size_t i = 0; i < ptr_bits; ++i) {
      bld.bind_forward_wire(wptr_d[i], wnext[i]);
      bld.bind_forward_wire(rptr_d[i], rnext[i]);
    }
  }
  fifo.pointer_ffs.insert(fifo.pointer_ffs.end(), wptr.ffs.begin(), wptr.ffs.end());
  fifo.pointer_ffs.insert(fifo.pointer_ffs.end(), rptr.ffs.begin(), rptr.ffs.end());

  // Storage slots with write-decode enables.
  const Word w_decode = decoder(bld, w_index);
  std::vector<Word> slot_outputs;
  slot_outputs.reserve(depth);
  for (std::size_t slot = 0; slot < depth; ++slot) {
    const NetId slot_en = bld.and2(do_write, w_decode[slot]);
    Register slot_reg = make_register_en(
        bld, name + "_mem" + std::to_string(slot), din, slot_en);
    slot_outputs.push_back(slot_reg.q);
    fifo.storage_ffs.insert(fifo.storage_ffs.end(), slot_reg.ffs.begin(),
                            slot_reg.ffs.end());
  }

  // Read mux.
  const Word r_decode = decoder(bld, r_index);
  fifo.dout = onehot_mux(bld, slot_outputs, r_decode);

  // Occupancy = wptr - rptr (modular arithmetic handles the wrap bit).
  fifo.occupancy = subtractor(bld, wptr.q, rptr.q).sum;
  return fifo;
}

}  // namespace ffr::rtl
