#pragma once
/// \file word.hpp
/// \brief Word-level combinational helpers: a Word is an LSB-first vector of nets.
/// These lower multi-bit RTL operators onto the gate-level builder, playing
/// the role logic synthesis plays in the paper's flow.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/builder.hpp"

namespace ffr::rtl {

using netlist::NetId;
using netlist::NetlistBuilder;
using Word = std::vector<NetId>;

/// Constant word of `width` bits with the given value (LSB first).
[[nodiscard]] Word constant_word(NetlistBuilder& b, std::uint64_t value,
                                 std::size_t width);

[[nodiscard]] Word word_not(NetlistBuilder& b, std::span<const NetId> a);
[[nodiscard]] Word word_and(NetlistBuilder& b, std::span<const NetId> a,
                            std::span<const NetId> y);
[[nodiscard]] Word word_or(NetlistBuilder& b, std::span<const NetId> a,
                           std::span<const NetId> y);
[[nodiscard]] Word word_xor(NetlistBuilder& b, std::span<const NetId> a,
                            std::span<const NetId> y);

/// Per-bit 2:1 mux: out = sel ? b_word : a_word.
[[nodiscard]] Word word_mux(NetlistBuilder& b, std::span<const NetId> a_word,
                            std::span<const NetId> b_word, NetId sel);

/// AND every bit with a single enable signal.
[[nodiscard]] Word word_gate(NetlistBuilder& b, std::span<const NetId> a, NetId en);

/// Static shifts; vacated positions filled with constant zero.
[[nodiscard]] Word word_shl(NetlistBuilder& b, std::span<const NetId> a,
                            std::size_t amount);
[[nodiscard]] Word word_shr(NetlistBuilder& b, std::span<const NetId> a,
                            std::size_t amount);

/// Concatenate words ({lo, hi} -> lo bits first).
[[nodiscard]] Word word_concat(std::span<const NetId> lo, std::span<const NetId> hi);

/// Slice bits [from, from+len).
[[nodiscard]] Word word_slice(std::span<const NetId> a, std::size_t from,
                              std::size_t len);

}  // namespace ffr::rtl
