#include "rtl/fsm.hpp"

#include <stdexcept>

namespace ffr::rtl {

FsmBuilder::FsmBuilder(NetlistBuilder& bld, std::string name, std::size_t num_states,
                       std::size_t initial_state)
    : bld_(bld),
      name_(std::move(name)),
      num_states_(num_states),
      initial_state_(initial_state) {
  if (num_states == 0) throw std::invalid_argument("FsmBuilder: zero states");
  if (initial_state >= num_states) {
    throw std::invalid_argument("FsmBuilder: initial state out of range");
  }
}

void FsmBuilder::transition(std::size_t from, std::size_t to, NetId condition) {
  if (from >= num_states_ || to >= num_states_) {
    throw std::out_of_range("FsmBuilder::transition: state out of range");
  }
  transitions_.push_back({from, to, condition});
}

Fsm FsmBuilder::build() {
  if (built_) throw std::logic_error("FsmBuilder::build called twice");
  built_ = true;

  Fsm fsm;
  std::vector<NetId> d_wires = bld_.forward_wires(name_ + "_state_d", num_states_);
  netlist::RegisterBus bus;
  bus.name = name_ + "_state";
  for (std::size_t s = 0; s < num_states_; ++s) {
    netlist::FlipFlop ff = bld_.dff(d_wires[s], s == initial_state_,
                                    bus.name + "[" + std::to_string(s) + "]");
    bus.flip_flops.push_back(ff.cell);
    fsm.state_ffs.push_back(ff);
    fsm.state.push_back(ff.q);
  }
  bld_.add_register_bus(std::move(bus));

  // Effective firing condition per transition: condition AND in-state AND not
  // preempted by an earlier transition from the same state.
  std::vector<NetId> fire(transitions_.size(), netlist::kNoNet);
  std::vector<std::vector<std::size_t>> outgoing(num_states_);
  for (std::size_t t = 0; t < transitions_.size(); ++t) {
    outgoing[transitions_[t].from].push_back(t);
  }
  for (std::size_t s = 0; s < num_states_; ++s) {
    NetId preempted = bld_.constant(false);
    for (const std::size_t t : outgoing[s]) {
      const NetId want = bld_.and2(fsm.state[s], transitions_[t].condition);
      fire[t] = bld_.and2(want, bld_.inv(preempted));
      preempted = bld_.or2(preempted, want);
    }
  }

  // next[s] = OR(fire into s) OR (state[s] AND no outgoing transition fired).
  for (std::size_t s = 0; s < num_states_; ++s) {
    std::vector<NetId> sources;
    for (std::size_t t = 0; t < transitions_.size(); ++t) {
      if (transitions_[t].to == s) sources.push_back(fire[t]);
    }
    std::vector<NetId> fired_out;
    for (const std::size_t t : outgoing[s]) fired_out.push_back(fire[t]);
    const NetId any_out = bld_.or_reduce(std::move(fired_out));
    sources.push_back(bld_.and2(fsm.state[s], bld_.inv(any_out)));
    bld_.bind_forward_wire(d_wires[s], bld_.or_reduce(std::move(sources)));
  }
  return fsm;
}

}  // namespace ffr::rtl
