#pragma once
// CRC-32 (IEEE 802.3 / Ethernet FCS) in two forms:
//  - a software reference used by testbenches to build golden frames, and
//  - combinational gate logic computing the next CRC state for one data
//    byte, used by the MAC circuit's datapath (unrolled 8-bit LFSR step of
//    the reflected polynomial 0xEDB88320).

#include <cstdint>
#include <span>

#include "rtl/word.hpp"

namespace ffr::rtl {

inline constexpr std::uint32_t kCrc32PolyReflected = 0xEDB88320u;
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
inline constexpr std::uint32_t kCrc32FinalXor = 0xFFFFFFFFu;

/// One-byte update of the reflected CRC-32 state (no init/final xor applied).
[[nodiscard]] constexpr std::uint32_t crc32_update(std::uint32_t state,
                                                   std::uint8_t byte) noexcept {
  state ^= byte;
  for (int i = 0; i < 8; ++i) {
    state = (state >> 1) ^ ((state & 1u) ? kCrc32PolyReflected : 0u);
  }
  return state;
}

/// Full-message CRC-32 as transmitted in an Ethernet FCS field.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// The CRC register value left after processing any message followed by its
/// own little-endian FCS; receivers compare against this to validate frames.
[[nodiscard]] std::uint32_t crc32_residue() noexcept;

/// Gate-level combinational next-state for one byte: given the 32-bit CRC
/// register value and an 8-bit data byte (both LSB-first words), returns the
/// 32 next-state nets. The caller registers the result.
[[nodiscard]] Word crc32_byte_next(NetlistBuilder& bld,
                                   std::span<const NetId> crc_state,
                                   std::span<const NetId> data_byte);

}  // namespace ffr::rtl
