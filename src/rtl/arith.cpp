#include "rtl/arith.hpp"

#include <stdexcept>

namespace ffr::rtl {

AdderResult adder(NetlistBuilder& bld, std::span<const NetId> a,
                  std::span<const NetId> b, NetId cin) {
  if (a.size() != b.size()) throw std::invalid_argument("adder: width mismatch");
  AdderResult result;
  result.sum.reserve(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = bld.xor2(a[i], b[i]);
    result.sum.push_back(bld.xor2(axb, carry));
    // carry = (a & b) | (carry & (a ^ b))
    carry = bld.or2(bld.and2(a[i], b[i]), bld.and2(carry, axb));
  }
  result.carry_out = carry;
  return result;
}

AdderResult incrementer(NetlistBuilder& bld, std::span<const NetId> a) {
  AdderResult result;
  result.sum.reserve(a.size());
  NetId carry = bld.constant(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    result.sum.push_back(bld.xor2(a[i], carry));
    carry = bld.and2(a[i], carry);
  }
  result.carry_out = carry;
  return result;
}

AdderResult subtractor(NetlistBuilder& bld, std::span<const NetId> a,
                       std::span<const NetId> b) {
  const Word not_b = word_not(bld, b);
  AdderResult diff = adder(bld, a, not_b, bld.constant(true));
  // carry_out == 1 means no borrow; expose borrow = !carry.
  diff.carry_out = bld.inv(diff.carry_out);
  return diff;
}

NetId equals(NetlistBuilder& bld, std::span<const NetId> a,
             std::span<const NetId> b) {
  if (a.size() != b.size()) throw std::invalid_argument("equals: width mismatch");
  std::vector<NetId> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bits.push_back(bld.xnor2(a[i], b[i]));
  return bld.and_reduce(std::move(bits));
}

NetId equals_const(NetlistBuilder& bld, std::span<const NetId> a,
                   std::uint64_t value) {
  std::vector<NetId> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = i < 64 && ((value >> i) & 1ULL) != 0;
    bits.push_back(bit ? a[i] : bld.inv(a[i]));
  }
  return bld.and_reduce(std::move(bits));
}

NetId less_than(NetlistBuilder& bld, std::span<const NetId> a,
                std::span<const NetId> b) {
  return subtractor(bld, a, b).carry_out;  // borrow set iff a < b
}

Word decoder(NetlistBuilder& bld, std::span<const NetId> a) {
  if (a.size() > 16) throw std::invalid_argument("decoder: too wide");
  const std::size_t entries = std::size_t{1} << a.size();
  Word out;
  out.reserve(entries);
  for (std::size_t value = 0; value < entries; ++value) {
    out.push_back(equals_const(bld, a, value));
  }
  return out;
}

Word onehot_mux(NetlistBuilder& bld, std::span<const Word> words,
                std::span<const NetId> select) {
  if (words.empty() || words.size() != select.size()) {
    throw std::invalid_argument("onehot_mux: arity mismatch");
  }
  const std::size_t width = words.front().size();
  Word out;
  out.reserve(width);
  for (std::size_t bit = 0; bit < width; ++bit) {
    std::vector<NetId> terms;
    terms.reserve(words.size());
    for (std::size_t w = 0; w < words.size(); ++w) {
      if (words[w].size() != width) {
        throw std::invalid_argument("onehot_mux: ragged words");
      }
      terms.push_back(bld.and2(words[w][bit], select[w]));
    }
    out.push_back(bld.or_reduce(std::move(terms)));
  }
  return out;
}

}  // namespace ffr::rtl
