#include "rtl/sequential.hpp"

#include <stdexcept>

#include "rtl/arith.hpp"

namespace ffr::rtl {

Register make_register(NetlistBuilder& bld, const std::string& name,
                       std::span<const NetId> d, std::uint64_t init) {
  Register reg;
  reg.ffs = bld.register_bus(name, d, init);
  reg.q = NetlistBuilder::q_nets(reg.ffs);
  return reg;
}

Register make_register_en(NetlistBuilder& bld, const std::string& name,
                          std::span<const NetId> d, NetId en, std::uint64_t init) {
  // q <= en ? d : q (mux feedback through the flip-flop's own Q).
  Register reg;
  reg.ffs.reserve(d.size());
  reg.q.reserve(d.size());
  netlist::RegisterBus bus;
  bus.name = name;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const bool bit_init = ((init >> (i % 64)) & 1ULL) != 0;
    FlipFlop ff = bld.dff_loop(
        [&](NetId q) { return bld.mux2(q, d[i], en); },
        bit_init, name + "[" + std::to_string(i) + "]");
    bus.flip_flops.push_back(ff.cell);
    reg.ffs.push_back(ff);
    reg.q.push_back(ff.q);
  }
  bld.add_register_bus(std::move(bus));
  return reg;
}

Counter make_counter(NetlistBuilder& bld, const std::string& name, std::size_t width,
                     NetId enable, std::uint64_t init) {
  return make_counter_clear(bld, name, width, enable, bld.constant(false), init);
}

Counter make_counter_clear(NetlistBuilder& bld, const std::string& name,
                           std::size_t width, NetId enable, NetId clear,
                           std::uint64_t init) {
  // Two-phase: create FFs with self-loops, then the increment logic reads Q.
  Counter counter;
  netlist::RegisterBus bus;
  bus.name = name;
  std::vector<NetId> q;
  std::vector<FlipFlop> ffs;
  // First create the state bits with deferred D via dff_loop over the whole
  // word: we need all Q bits before building the incrementer, so allocate
  // forward wires.
  std::vector<NetId> d_wires = bld.forward_wires(name + "_d", width);
  for (std::size_t i = 0; i < width; ++i) {
    const bool bit_init = ((init >> (i % 64)) & 1ULL) != 0;
    FlipFlop ff = bld.dff(d_wires[i], bit_init, name + "[" + std::to_string(i) + "]");
    bus.flip_flops.push_back(ff.cell);
    ffs.push_back(ff);
    q.push_back(ff.q);
  }
  const AdderResult inc = incrementer(bld, q);
  const Word kept = word_mux(bld, q, inc.sum, enable);
  const NetId nclear = bld.inv(clear);
  for (std::size_t i = 0; i < width; ++i) {
    bld.bind_forward_wire(d_wires[i], bld.and2(kept[i], nclear));
  }
  counter.wrap = bld.and2(inc.carry_out, enable);
  counter.reg.ffs = std::move(ffs);
  counter.reg.q = std::move(q);
  bld.add_register_bus(std::move(bus));
  return counter;
}

Register make_shift_register(NetlistBuilder& bld, const std::string& name,
                             std::size_t width, NetId serial_in, NetId enable,
                             std::uint64_t init) {
  Register reg;
  netlist::RegisterBus bus;
  bus.name = name;
  std::vector<NetId> d_wires = bld.forward_wires(name + "_d", width);
  for (std::size_t i = 0; i < width; ++i) {
    const bool bit_init = ((init >> (i % 64)) & 1ULL) != 0;
    FlipFlop ff = bld.dff(d_wires[i], bit_init, name + "[" + std::to_string(i) + "]");
    bus.flip_flops.push_back(ff.cell);
    reg.ffs.push_back(ff);
    reg.q.push_back(ff.q);
  }
  for (std::size_t i = 0; i < width; ++i) {
    const NetId shifted_in = (i + 1 < width) ? reg.q[i + 1] : serial_in;
    bld.bind_forward_wire(d_wires[i], bld.mux2(reg.q[i], shifted_in, enable));
  }
  bld.add_register_bus(std::move(bus));
  return reg;
}

Register make_lfsr(NetlistBuilder& bld, const std::string& name, std::size_t width,
                   std::span<const std::size_t> taps, NetId enable,
                   std::uint64_t init) {
  if (init == 0) throw std::invalid_argument("make_lfsr: zero init locks up");
  Register reg;
  netlist::RegisterBus bus;
  bus.name = name;
  std::vector<NetId> d_wires = bld.forward_wires(name + "_d", width);
  for (std::size_t i = 0; i < width; ++i) {
    const bool bit_init = ((init >> (i % 64)) & 1ULL) != 0;
    FlipFlop ff = bld.dff(d_wires[i], bit_init, name + "[" + std::to_string(i) + "]");
    bus.flip_flops.push_back(ff.cell);
    reg.ffs.push_back(ff);
    reg.q.push_back(ff.q);
  }
  std::vector<NetId> tap_bits;
  tap_bits.reserve(taps.size());
  for (const std::size_t tap : taps) {
    if (tap >= width) throw std::out_of_range("make_lfsr: tap out of range");
    tap_bits.push_back(reg.q[tap]);
  }
  const NetId feedback = bld.xor_reduce(std::move(tap_bits));
  for (std::size_t i = 0; i < width; ++i) {
    const NetId next = (i + 1 < width) ? reg.q[i + 1] : feedback;
    bld.bind_forward_wire(d_wires[i], bld.mux2(reg.q[i], next, enable));
  }
  bld.add_register_bus(std::move(bus));
  return reg;
}

}  // namespace ffr::rtl
