#pragma once
// One-hot finite-state-machine lowering. States become one flip-flop each;
// transitions are (from, to, condition-net) triples with declaration-order
// priority among transitions leaving the same state. A state with no firing
// outgoing transition holds itself.

#include <cstddef>
#include <string>
#include <vector>

#include "rtl/word.hpp"

namespace ffr::rtl {

struct Fsm {
  std::vector<netlist::FlipFlop> state_ffs;  // one per state, one-hot
  Word state;                                // state[i] == 1 iff in state i

  [[nodiscard]] NetId in_state(std::size_t s) const { return state.at(s); }
};

class FsmBuilder {
 public:
  FsmBuilder(NetlistBuilder& bld, std::string name, std::size_t num_states,
             std::size_t initial_state = 0);

  /// Adds a transition; earlier-declared transitions from the same state win
  /// when several conditions are simultaneously true.
  void transition(std::size_t from, std::size_t to, NetId condition);

  /// Lower to gates. Call exactly once.
  [[nodiscard]] Fsm build();

 private:
  struct Transition {
    std::size_t from;
    std::size_t to;
    NetId condition;
  };

  NetlistBuilder& bld_;
  std::string name_;
  std::size_t num_states_;
  std::size_t initial_state_;
  std::vector<Transition> transitions_;
  bool built_ = false;
};

}  // namespace ffr::rtl
