#include "features/extractor.hpp"

#include <stdexcept>

#include "util/csv.hpp"

namespace ffr::features {

void FeatureMatrix::save_csv(const std::filesystem::path& path) const {
  util::CsvTable table;
  table.header.push_back("name");
  for (const auto feature_name : feature_names()) {
    table.header.emplace_back(feature_name);
  }
  for (std::size_t r = 0; r < values.rows(); ++r) {
    std::vector<std::string> row;
    row.push_back(ff_names.at(r));
    for (std::size_t c = 0; c < values.cols(); ++c) {
      row.push_back(util::CsvWriter::format_double(values(r, c)));
    }
    table.rows.push_back(std::move(row));
  }
  util::write_csv_file(path, table);
}

FeatureMatrix FeatureMatrix::load_csv(const std::filesystem::path& path) {
  const util::CsvTable table = util::read_csv_file(path);
  FeatureMatrix fm;
  fm.values = linalg::Matrix(table.num_rows(), kNumFeatures);
  const std::size_t name_col = table.column_index("name");
  std::vector<std::size_t> cols;
  for (const auto feature_name : feature_names()) {
    cols.push_back(table.column_index(feature_name));
  }
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    fm.ff_names.push_back(table.rows[r].at(name_col));
    for (std::size_t c = 0; c < kNumFeatures; ++c) {
      fm.values(r, c) = std::stod(table.rows[r].at(cols[c]));
    }
  }
  return fm;
}

namespace {

FeatureMatrix extract_impl(const netlist::Netlist& nl,
                           const sim::ActivityTrace* activity) {
  const auto ffs = nl.flip_flops();
  if (activity != nullptr && activity->cycles_at_1.size() != ffs.size()) {
    throw std::invalid_argument("extract_features: activity/FF count mismatch");
  }
  const FfGraph graph = build_ff_graph(nl);

  FeatureMatrix fm;
  fm.values = linalg::Matrix(ffs.size(), kNumFeatures);
  fm.ff_names.reserve(ffs.size());

  // Per-PI and per-PO distance fields over the FF graph (unit weights, via
  // Dijkstra per the paper). Distances from a PI start at 1 for directly-fed
  // flip-flops; symmetrically for POs on the reversed graph.
  std::vector<std::vector<std::uint32_t>> dist_from_pi;
  dist_from_pi.reserve(graph.pi_to_ffs.size());
  for (const auto& fed : graph.pi_to_ffs) {
    dist_from_pi.push_back(dijkstra_unit(graph.successors, fed, 1));
  }
  std::vector<std::vector<std::uint32_t>> dist_to_po;
  dist_to_po.reserve(graph.po_from_ffs.size());
  for (const auto& feeders : graph.po_from_ffs) {
    dist_to_po.push_back(dijkstra_unit(graph.predecessors, feeders, 1));
  }

  for (std::size_t i = 0; i < ffs.size(); ++i) {
    const netlist::Cell& cell = nl.cell(ffs[i]);
    fm.ff_names.push_back(cell.name);
    auto set = [&](Feature f, double v) { fm.values(i, index_of(f)) = v; };

    // Structural.
    set(Feature::kFfFanIn, static_cast<double>(graph.predecessors[i].size()));
    set(Feature::kFfFanOut, static_cast<double>(graph.successors[i].size()));
    set(Feature::kTotalFfsFrom,
        static_cast<double>(count_reachable(graph.predecessors, static_cast<std::uint32_t>(i))));
    set(Feature::kTotalFfsTo,
        static_cast<double>(count_reachable(graph.successors, static_cast<std::uint32_t>(i))));
    set(Feature::kConnFromPrimaryInput, static_cast<double>(graph.pis_in_cone[i]));
    set(Feature::kConnToPrimaryOutput, static_cast<double>(graph.ff_to_pos[i].size()));

    // Proximity: min/avg/max over the PIs (POs) that actually reach the FF.
    {
      double min_d = kNoValue;
      double max_d = kNoValue;
      double sum = 0.0;
      std::size_t reached = 0;
      for (const auto& dist : dist_from_pi) {
        const std::uint32_t d = dist[i];
        if (d == kUnreachable) continue;
        ++reached;
        sum += d;
        if (min_d < 0 || d < min_d) min_d = d;
        if (d > max_d) max_d = d;
      }
      set(Feature::kProximityFromPiMin, min_d);
      set(Feature::kProximityFromPiAvg,
          reached == 0 ? kNoValue : sum / static_cast<double>(reached));
      set(Feature::kProximityFromPiMax, max_d);
    }
    {
      double min_d = kNoValue;
      double max_d = kNoValue;
      double sum = 0.0;
      std::size_t reached = 0;
      for (const auto& dist : dist_to_po) {
        const std::uint32_t d = dist[i];
        if (d == kUnreachable) continue;
        ++reached;
        sum += d;
        if (min_d < 0 || d < min_d) min_d = d;
        if (d > max_d) max_d = d;
      }
      set(Feature::kProximityToPoMin, min_d);
      set(Feature::kProximityToPoAvg,
          reached == 0 ? kNoValue : sum / static_cast<double>(reached));
      set(Feature::kProximityToPoMax, max_d);
    }

    // Bus membership.
    const auto bus = nl.bus_of(ffs[i]);
    set(Feature::kPartOfBus, bus.has_value() ? 1.0 : 0.0);
    set(Feature::kBusPosition,
        bus.has_value() ? static_cast<double>(bus->second) : kNoValue);
    set(Feature::kBusLength,
        bus.has_value()
            ? static_cast<double>(nl.register_buses()[bus->first].flip_flops.size())
            : 0.0);

    set(Feature::kConnConstantDrivers,
        static_cast<double>(graph.const_drivers_in[i]));

    const std::uint32_t loop =
        shortest_cycle_through(graph.successors, static_cast<std::uint32_t>(i));
    set(Feature::kHasFeedbackLoop, loop == kUnreachable ? 0.0 : 1.0);
    set(Feature::kFeedbackLoopDepth,
        loop == kUnreachable ? kNoValue : static_cast<double>(loop));

    // Synthesis attributes.
    set(Feature::kDriveStrength, static_cast<double>(static_cast<int>(cell.drive)));
    set(Feature::kCombFanIn, static_cast<double>(graph.comb_fan_in[i]));
    set(Feature::kCombFanOut, static_cast<double>(graph.comb_fan_out[i]));
    set(Feature::kCombPathDepth, static_cast<double>(graph.comb_path_depth[i]));

    // Dynamic.
    if (activity != nullptr && activity->total_cycles > 0) {
      const double total = static_cast<double>(activity->total_cycles);
      const double at1 = static_cast<double>(activity->cycles_at_1[i]) / total;
      set(Feature::kAt0Ratio, 1.0 - at1);
      set(Feature::kAt1Ratio, at1);
      set(Feature::kStateChanges,
          static_cast<double>(activity->state_changes[i]));
    } else {
      set(Feature::kAt0Ratio, 0.0);
      set(Feature::kAt1Ratio, 0.0);
      set(Feature::kStateChanges, 0.0);
    }
  }
  return fm;
}

}  // namespace

FeatureMatrix extract_features(const netlist::Netlist& nl,
                               const sim::ActivityTrace& activity) {
  return extract_impl(nl, &activity);
}

FeatureMatrix extract_static_features(const netlist::Netlist& nl) {
  return extract_impl(nl, nullptr);
}

}  // namespace ffr::features
