#pragma once
/// \file graph.hpp
/// \brief Flip-flop-level graph view of a netlist plus the shortest-path machinery
/// (the paper converts the gate-level netlist into a graph and runs graph
/// algorithms such as Dijkstra's on it, §III-B).
///
/// Nodes are flip-flops; an edge A -> B exists when A's Q reaches B's D
/// through combinational logic only (one sequential "stage"). Primary inputs
/// and outputs attach as source/sink adjacency lists.

#include <cstdint>
#include <limits>
#include <vector>

#include "netlist/netlist.hpp"

namespace ffr::features {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

struct FfGraph {
  std::size_t num_ffs = 0;
  /// ff -> directly-reached ffs (deduplicated, sorted).
  std::vector<std::vector<std::uint32_t>> successors;
  std::vector<std::vector<std::uint32_t>> predecessors;
  /// pi index -> directly-fed ffs.
  std::vector<std::vector<std::uint32_t>> pi_to_ffs;
  /// ff -> directly-reached po indices.
  std::vector<std::vector<std::uint32_t>> ff_to_pos;
  /// po index -> ffs with a direct combinational path to it (reverse view).
  std::vector<std::vector<std::uint32_t>> po_from_ffs;
  /// Per-ff counts over the *input cone* (combinational backward traversal
  /// from D to the previous sequential/PI boundary).
  std::vector<std::uint32_t> comb_fan_in;        // comb cells in the cone
  std::vector<std::uint32_t> const_drivers_in;   // tie cells in the cone
  std::vector<std::uint32_t> pis_in_cone;        // distinct PIs feeding the cone
  /// Per-ff counts over the *output cone* (forward from Q).
  std::vector<std::uint32_t> comb_fan_out;
  /// Longest combinational gate path leaving Q.
  std::vector<std::uint32_t> comb_path_depth;
};

/// Builds the graph; the netlist must be finalized.
[[nodiscard]] FfGraph build_ff_graph(const netlist::Netlist& nl);

/// Dijkstra over an adjacency list with unit edge weights from a (multi-)
/// source set. Returns per-node distance, kUnreachable where unreached.
/// Source nodes get distance `source_distance` (default 0).
[[nodiscard]] std::vector<std::uint32_t> dijkstra_unit(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::uint32_t>& sources, std::uint32_t source_distance = 0);

/// Number of nodes reachable from `source` (excluding the source itself
/// unless it lies on a cycle back to itself).
[[nodiscard]] std::size_t count_reachable(
    const std::vector<std::vector<std::uint32_t>>& adjacency, std::uint32_t source);

/// Length (in edges) of the shortest cycle through `node`, or kUnreachable
/// if the node is not on any cycle.
[[nodiscard]] std::uint32_t shortest_cycle_through(
    const std::vector<std::vector<std::uint32_t>>& adjacency, std::uint32_t node);

}  // namespace ffr::features
