#pragma once
/// \file feature_set.hpp
/// \brief The per-flip-flop feature set of paper §III-B: structural features from
/// the netlist graph, synthesis attributes, and dynamic signal activity.

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

namespace ffr::features {

/// Feature indices; the order defines FeatureMatrix columns.
enum class Feature : std::size_t {
  // Structural (gate-level netlist graph).
  kFfFanIn = 0,          // FFs directly feeding the D cone
  kFfFanOut,             // FFs directly fed from Q
  kTotalFfsFrom,         // transitive FF predecessors
  kTotalFfsTo,           // transitive FF successors
  kConnFromPrimaryInput,   // PIs directly feeding the D cone
  kConnToPrimaryOutput,    // POs directly reachable from Q
  kProximityFromPiMin,   // sequential stages from nearest reachable PI
  kProximityFromPiAvg,
  kProximityFromPiMax,
  kProximityToPoMin,     // sequential stages to nearest reachable PO
  kProximityToPoAvg,
  kProximityToPoMax,
  kPartOfBus,            // 1 if the FF belongs to a register bus
  kBusPosition,          // bit index within the bus, -1 if none
  kBusLength,            // bus width, 0 if none
  kConnConstantDrivers,  // tie cells in the D cone
  kHasFeedbackLoop,      // Q reaches own D through >= 1 sequential stage
  kFeedbackLoopDepth,    // minimum loop length in stages, -1 if none
  // Synthesis attributes.
  kDriveStrength,        // X1/X2/X4 as 1/2/4
  kCombFanIn,            // combinational cells in the D cone
  kCombFanOut,           // combinational cells in the Q cone
  kCombPathDepth,        // longest gate path leaving Q
  // Dynamic (signal activity under the workload).
  kAt0Ratio,             // fraction of cycles at logic 0
  kAt1Ratio,             // fraction of cycles at logic 1
  kStateChanges,         // number of output transitions
  kNumFeatures,
};

inline constexpr std::size_t kNumFeatures =
    static_cast<std::size_t>(Feature::kNumFeatures);

[[nodiscard]] std::string_view to_string(Feature feature) noexcept;

/// All feature names, in column order.
[[nodiscard]] std::vector<std::string_view> feature_names();

/// Column index helper.
[[nodiscard]] constexpr std::size_t index_of(Feature feature) noexcept {
  return static_cast<std::size_t>(feature);
}

/// Feature groups for the ablation study (DESIGN.md: structural-only vs
/// +synthesis vs +dynamic).
[[nodiscard]] std::vector<std::size_t> structural_feature_indices();
[[nodiscard]] std::vector<std::size_t> synthesis_feature_indices();
[[nodiscard]] std::vector<std::size_t> dynamic_feature_indices();

}  // namespace ffr::features
