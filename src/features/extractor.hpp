#pragma once
/// \file extractor.hpp
/// \brief Assembles the per-flip-flop feature matrix (paper §III-B) from the netlist
/// graph (structural), cell attributes (synthesis) and the golden-run
/// activity trace (dynamic).

#include <filesystem>

#include "features/feature_set.hpp"
#include "features/graph.hpp"
#include "linalg/matrix.hpp"
#include "sim/runner.hpp"

namespace ffr::features {

struct FeatureMatrix {
  /// rows = flip-flops in Netlist::flip_flops() order, cols = kNumFeatures.
  linalg::Matrix values;
  std::vector<std::string> ff_names;

  [[nodiscard]] std::size_t num_ffs() const noexcept { return values.rows(); }

  /// Column vector of one feature.
  [[nodiscard]] linalg::Vector column(Feature feature) const {
    return values.col_copy(index_of(feature));
  }

  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static FeatureMatrix load_csv(const std::filesystem::path& path);
};

/// Sentinel used for "no value" features (bus position without a bus,
/// feedback depth without a loop, proximity when unreachable), matching the
/// paper's -1 convention.
inline constexpr double kNoValue = -1.0;

/// Extracts every feature. `activity` must come from a golden run of the
/// same netlist (sim::run_golden).
[[nodiscard]] FeatureMatrix extract_features(const netlist::Netlist& nl,
                                             const sim::ActivityTrace& activity);

/// Structural + synthesis features only (activity columns filled with 0);
/// useful when no testbench is available.
[[nodiscard]] FeatureMatrix extract_static_features(const netlist::Netlist& nl);

}  // namespace ffr::features
