#include "features/graph.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <stdexcept>

namespace ffr::features {

namespace {

using netlist::CellId;
using netlist::Netlist;
using netlist::NetId;

// Sort + dedupe an adjacency list in place.
void dedupe(std::vector<std::uint32_t>& list) {
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
}

}  // namespace

FfGraph build_ff_graph(const Netlist& nl) {
  if (!nl.finalized()) throw std::invalid_argument("build_ff_graph: not finalized");
  FfGraph graph;
  const auto ffs = nl.flip_flops();
  graph.num_ffs = ffs.size();

  // Cell -> ff index map.
  std::vector<std::uint32_t> ff_index(nl.num_cells(), kUnreachable);
  for (std::uint32_t i = 0; i < ffs.size(); ++i) ff_index[ffs[i]] = i;

  // Net -> po indices (a net may back several output ports).
  std::vector<std::vector<std::uint32_t>> po_of_net(nl.num_nets());
  const auto pos = nl.primary_outputs();
  for (std::uint32_t p = 0; p < pos.size(); ++p) po_of_net[pos[p]].push_back(p);

  graph.successors.resize(ffs.size());
  graph.predecessors.resize(ffs.size());
  graph.pi_to_ffs.resize(nl.primary_inputs().size());
  graph.ff_to_pos.resize(ffs.size());
  graph.po_from_ffs.resize(pos.size());
  graph.comb_fan_in.assign(ffs.size(), 0);
  graph.const_drivers_in.assign(ffs.size(), 0);
  graph.pis_in_cone.assign(ffs.size(), 0);
  graph.comb_fan_out.assign(ffs.size(), 0);
  graph.comb_path_depth.assign(ffs.size(), 0);

  // ---- forward sweep from every source (FF Q / PI) --------------------------
  // BFS through combinational cells, collecting reached FF sinks and POs.
  std::vector<std::uint32_t> net_mark(nl.num_nets(), kUnreachable);
  std::vector<std::uint32_t> cell_mark(nl.num_cells(), kUnreachable);
  std::uint32_t sweep = 0;
  std::size_t comb_cells_seen = 0;

  const auto forward_sweep = [&](NetId source_net,
                                 std::vector<std::uint32_t>& ff_sinks,
                                 std::vector<std::uint32_t>& po_sinks) {
    ++sweep;
    comb_cells_seen = 0;
    std::deque<NetId> frontier{source_net};
    net_mark[source_net] = sweep;
    while (!frontier.empty()) {
      const NetId net = frontier.front();
      frontier.pop_front();
      for (const std::uint32_t po : po_of_net[net]) po_sinks.push_back(po);
      for (const CellId reader : nl.net(net).readers) {
        const netlist::Cell& cell = nl.cell(reader);
        if (netlist::is_sequential(cell.func)) {
          ff_sinks.push_back(ff_index[reader]);
          continue;
        }
        if (cell_mark[reader] == sweep) continue;
        cell_mark[reader] = sweep;
        ++comb_cells_seen;
        if (net_mark[cell.output] != sweep) {
          net_mark[cell.output] = sweep;
          frontier.push_back(cell.output);
        }
      }
    }
    dedupe(ff_sinks);
    dedupe(po_sinks);
  };

  for (std::uint32_t i = 0; i < ffs.size(); ++i) {
    forward_sweep(nl.cell(ffs[i]).output, graph.successors[i], graph.ff_to_pos[i]);
    graph.comb_fan_out[i] = static_cast<std::uint32_t>(comb_cells_seen);
    for (const std::uint32_t succ : graph.successors[i]) {
      graph.predecessors[succ].push_back(i);
    }
    for (const std::uint32_t po : graph.ff_to_pos[i]) {
      graph.po_from_ffs[po].push_back(i);
    }
  }
  const auto pis = nl.primary_inputs();
  for (std::uint32_t p = 0; p < pis.size(); ++p) {
    std::vector<std::uint32_t> po_sinks;  // PI->PO paths not needed, discarded
    forward_sweep(pis[p], graph.pi_to_ffs[p], po_sinks);
  }
  for (auto& preds : graph.predecessors) dedupe(preds);
  for (auto& froms : graph.po_from_ffs) dedupe(froms);

  // ---- backward input cones --------------------------------------------------
  for (std::uint32_t i = 0; i < ffs.size(); ++i) {
    ++sweep;
    std::uint32_t comb_count = 0;
    std::uint32_t const_count = 0;
    std::uint32_t pi_count = 0;
    std::deque<NetId> frontier{nl.cell(ffs[i]).inputs[0]};
    net_mark[frontier.front()] = sweep;
    while (!frontier.empty()) {
      const NetId net = frontier.front();
      frontier.pop_front();
      const netlist::Net& net_obj = nl.net(net);
      if (net_obj.pi_index >= 0) {
        ++pi_count;
        continue;
      }
      const netlist::Cell& driver = nl.cell(net_obj.driver);
      if (netlist::is_sequential(driver.func)) continue;  // stage boundary
      if (cell_mark[net_obj.driver] == sweep) continue;
      cell_mark[net_obj.driver] = sweep;
      if (netlist::is_constant(driver.func)) {
        ++const_count;
        continue;
      }
      ++comb_count;
      for (const NetId in : driver.inputs) {
        if (net_mark[in] != sweep) {
          net_mark[in] = sweep;
          frontier.push_back(in);
        }
      }
    }
    graph.comb_fan_in[i] = comb_count;
    graph.const_drivers_in[i] = const_count;
    graph.pis_in_cone[i] = pi_count;
  }

  // ---- longest combinational path from each Q ---------------------------------
  // DP over the reversed topological order: depth_after(cell) = 1 + longest
  // chain of combinational readers of its output.
  {
    std::vector<std::uint32_t> cell_depth(nl.num_cells(), 0);
    const auto topo = nl.topo_order();
    const auto net_forward_depth = [&](NetId net) {
      std::uint32_t best = 0;
      for (const CellId reader : nl.net(net).readers) {
        if (netlist::is_sequential(nl.cell(reader).func)) continue;
        best = std::max(best, cell_depth[reader]);
      }
      return best;
    };
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const CellId id = *it;
      cell_depth[id] = 1 + net_forward_depth(nl.cell(id).output);
    }
    for (std::uint32_t i = 0; i < ffs.size(); ++i) {
      graph.comb_path_depth[i] = net_forward_depth(nl.cell(ffs[i]).output);
    }
  }

  return graph;
}

std::vector<std::uint32_t> dijkstra_unit(
    const std::vector<std::vector<std::uint32_t>>& adjacency,
    const std::vector<std::uint32_t>& sources, std::uint32_t source_distance) {
  std::vector<std::uint32_t> dist(adjacency.size(), kUnreachable);
  // Unit weights: Dijkstra's priority queue degenerates to BFS order, but we
  // keep the PQ formulation to mirror the paper's algorithm choice.
  using Entry = std::pair<std::uint32_t, std::uint32_t>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (const std::uint32_t s : sources) {
    if (s >= adjacency.size()) throw std::out_of_range("dijkstra_unit: source");
    if (source_distance < dist[s]) {
      dist[s] = source_distance;
      queue.push({source_distance, s});
    }
  }
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d != dist[node]) continue;  // stale entry
    for (const std::uint32_t next : adjacency[node]) {
      if (d + 1 < dist[next]) {
        dist[next] = d + 1;
        queue.push({d + 1, next});
      }
    }
  }
  return dist;
}

std::size_t count_reachable(
    const std::vector<std::vector<std::uint32_t>>& adjacency, std::uint32_t source) {
  std::vector<bool> visited(adjacency.size(), false);
  std::vector<std::uint32_t> stack;
  std::size_t count = 0;
  for (const std::uint32_t next : adjacency[source]) {
    if (!visited[next]) {
      visited[next] = true;
      stack.push_back(next);
      ++count;
    }
  }
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    for (const std::uint32_t next : adjacency[node]) {
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
        ++count;
      }
    }
  }
  return count;
}

std::uint32_t shortest_cycle_through(
    const std::vector<std::vector<std::uint32_t>>& adjacency, std::uint32_t node) {
  // BFS from the node's successors back to the node.
  const std::vector<std::uint32_t> dist =
      dijkstra_unit(adjacency, adjacency[node], 1);
  return dist[node];
}

}  // namespace ffr::features
