#include "features/domain_scaler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "features/extractor.hpp"

namespace ffr::features {

std::vector<ColumnNorm> default_transfer_norms() {
  // z-score removes each circuit's linear feature scale (fan-in counts,
  // cone sizes, proximity depths); it measurably beats rank normalization
  // for those columns on the mac+pipeline -> relay benchmark because the
  // relative magnitudes it preserves carry signal. Rank is kept for the
  // state-change count, whose heavy-tailed shape differs per workload, so
  // only its order transfers.
  std::vector<ColumnNorm> norms(kNumFeatures, ColumnNorm::kZScore);
  const auto identity = [&](Feature f) {
    norms[index_of(f)] = ColumnNorm::kIdentity;
  };
  // Flags and 0-1 ratios are already comparable across circuits; drive
  // strength comes from one shared cell library.
  identity(Feature::kPartOfBus);
  identity(Feature::kHasFeedbackLoop);
  identity(Feature::kDriveStrength);
  identity(Feature::kAt0Ratio);
  identity(Feature::kAt1Ratio);
  norms[index_of(Feature::kStateChanges)] = ColumnNorm::kRank;
  return norms;
}

DomainScaler::DomainScaler(DomainScalerConfig config)
    : norms_(config.norms.empty() ? default_transfer_norms()
                                  : std::move(config.norms)) {
  for (const ColumnNorm norm : norms_) {
    const int value = static_cast<int>(norm);
    if (value < 0 || value > 2) {
      throw std::invalid_argument("DomainScaler: invalid ColumnNorm value " +
                                  std::to_string(value));
    }
  }
}

namespace {

void zscore_column(linalg::Matrix& out, const linalg::Matrix& x, std::size_t c) {
  // Statistics over real values only; -1 sentinels would otherwise drag the
  // mean of sparse columns (e.g. feedback depth) toward the sentinel.
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t count = 0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double v = x(r, c);
    if (v == kNoValue) continue;
    sum += v;
    sum_sq += v * v;
    ++count;
  }
  const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  const double var =
      count > 0 ? std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean)
                : 0.0;
  const double std = var > 0.0 ? std::sqrt(var) : 1.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out(r, c) = (x(r, c) - mean) / std;
  }
}

void rank_column(linalg::Matrix& out, const linalg::Matrix& x, std::size_t c) {
  const linalg::Vector ranks = linalg::midranks(x.col_copy(c));
  // Midrank fraction (midrank - 0.5) / n: invariant under duplication of
  // the whole circuit and under any monotone rescaling of the column.
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out(r, c) = (ranks[r] - 0.5) / static_cast<double>(x.rows());
  }
}

}  // namespace

linalg::Matrix DomainScaler::standardize(const linalg::Matrix& x) const {
  if (x.rows() == 0) {
    throw std::invalid_argument("DomainScaler: empty feature matrix");
  }
  if (x.cols() != norms_.size()) {
    throw std::invalid_argument(
        "DomainScaler: configured for " + std::to_string(norms_.size()) +
        " columns but X is " + std::to_string(x.rows()) + "x" +
        std::to_string(x.cols()));
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    switch (norms_[c]) {
      case ColumnNorm::kIdentity:
        for (std::size_t r = 0; r < x.rows(); ++r) out(r, c) = x(r, c);
        break;
      case ColumnNorm::kZScore:
        zscore_column(out, x, c);
        break;
      case ColumnNorm::kRank:
        rank_column(out, x, c);
        break;
    }
  }
  return out;
}

}  // namespace ffr::features
