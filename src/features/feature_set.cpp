#include "features/feature_set.hpp"

namespace ffr::features {

std::string_view to_string(Feature feature) noexcept {
  switch (feature) {
    case Feature::kFfFanIn: return "ff_fan_in";
    case Feature::kFfFanOut: return "ff_fan_out";
    case Feature::kTotalFfsFrom: return "total_ffs_from";
    case Feature::kTotalFfsTo: return "total_ffs_to";
    case Feature::kConnFromPrimaryInput: return "conn_from_pi";
    case Feature::kConnToPrimaryOutput: return "conn_to_po";
    case Feature::kProximityFromPiMin: return "prox_from_pi_min";
    case Feature::kProximityFromPiAvg: return "prox_from_pi_avg";
    case Feature::kProximityFromPiMax: return "prox_from_pi_max";
    case Feature::kProximityToPoMin: return "prox_to_po_min";
    case Feature::kProximityToPoAvg: return "prox_to_po_avg";
    case Feature::kProximityToPoMax: return "prox_to_po_max";
    case Feature::kPartOfBus: return "part_of_bus";
    case Feature::kBusPosition: return "bus_position";
    case Feature::kBusLength: return "bus_length";
    case Feature::kConnConstantDrivers: return "conn_const_drivers";
    case Feature::kHasFeedbackLoop: return "has_feedback_loop";
    case Feature::kFeedbackLoopDepth: return "feedback_loop_depth";
    case Feature::kDriveStrength: return "drive_strength";
    case Feature::kCombFanIn: return "comb_fan_in";
    case Feature::kCombFanOut: return "comb_fan_out";
    case Feature::kCombPathDepth: return "comb_path_depth";
    case Feature::kAt0Ratio: return "at0_ratio";
    case Feature::kAt1Ratio: return "at1_ratio";
    case Feature::kStateChanges: return "state_changes";
    case Feature::kNumFeatures: break;
  }
  return "unknown";
}

std::vector<std::string_view> feature_names() {
  std::vector<std::string_view> names;
  names.reserve(kNumFeatures);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    names.push_back(to_string(static_cast<Feature>(i)));
  }
  return names;
}

std::vector<std::size_t> structural_feature_indices() {
  std::vector<std::size_t> idx;
  for (std::size_t i = index_of(Feature::kFfFanIn);
       i <= index_of(Feature::kFeedbackLoopDepth); ++i) {
    idx.push_back(i);
  }
  return idx;
}

std::vector<std::size_t> synthesis_feature_indices() {
  std::vector<std::size_t> idx;
  for (std::size_t i = index_of(Feature::kDriveStrength);
       i <= index_of(Feature::kCombPathDepth); ++i) {
    idx.push_back(i);
  }
  return idx;
}

std::vector<std::size_t> dynamic_feature_indices() {
  std::vector<std::size_t> idx;
  for (std::size_t i = index_of(Feature::kAt0Ratio);
       i <= index_of(Feature::kStateChanges); ++i) {
    idx.push_back(i);
  }
  return idx;
}

}  // namespace ffr::features
