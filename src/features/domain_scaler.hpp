#pragma once
/// \file domain_scaler.hpp
/// \brief Per-circuit feature standardization for cross-circuit transfer.
///
/// The paper trains and predicts within one circuit, where a model (or an
/// ml::ScaledPipeline) can standardize features against the *training set's*
/// statistics. Across circuits that breaks down: fan-in counts, proximity
/// depths and state-change counts live on scales set by each design's
/// topology and testbench length, so a model fitted on one circuit's raw
/// scales extrapolates wildly on another (examples/cross_circuit
/// demonstrates the failure). The DomainScaler removes the per-design scale
/// by normalizing every feature column against the statistics of the
/// circuit it came from — the target's own feature matrix, never the
/// training circuit's — which is what lets one trained model serve many
/// designs (core/transfer_flow.hpp).
///
/// Two normalizations are available per column:
/// - **z-score** within the circuit, with the paper's -1 "no value"
///   sentinels excluded from the statistics (they are transformed with the
///   same affine map afterwards, so they stay distinguishably low);
/// - **rank** (quantile) normalization: each value maps to its midrank
///   fraction `(midrank - 0.5) / n` in (0, 1). This is invariant to any
///   monotone per-circuit rescaling and to circuit size, which suits
///   topology-dependent counts (fan-in/out, cone sizes, depths) whose
///   absolute magnitudes mean nothing outside their design.
///
/// default_transfer_norms() z-scores the topology-scaled counts and depths,
/// rank-normalizes the heavy-tailed state-change count, and keeps
/// already-comparable columns (flags, 0-1 activity ratios, drive strength)
/// identity.

#include <vector>

#include "features/feature_set.hpp"
#include "linalg/matrix.hpp"

namespace ffr::features {

/// Normalization applied to one feature column by DomainScaler.
enum class ColumnNorm : int {
  kIdentity = 0,  ///< Pass through (already comparable across circuits).
  kZScore = 1,    ///< Standardize against the circuit's own mean/std.
  kRank = 2,      ///< Midrank fraction in (0, 1) within the circuit.
};

/// \return The per-column default for cross-circuit transfer, in
/// FeatureMatrix column order (size kNumFeatures): z-score for
/// topology-scaled counts and depths, rank for the state-change count,
/// identity for flags, 0-1 ratios and drive strength.
[[nodiscard]] std::vector<ColumnNorm> default_transfer_norms();

/// DomainScaler configuration: one ColumnNorm per feature column.
struct DomainScalerConfig {
  /// Per-column normalization; empty means default_transfer_norms().
  std::vector<ColumnNorm> norms;
};

/// Standardizes a circuit's feature matrix against that circuit's own
/// statistics. Unlike ml::StandardScaler the DomainScaler is deliberately
/// stateless across calls: statistics are recomputed per matrix, because
/// using any *other* circuit's statistics is exactly the transfer failure
/// this class exists to remove.
class DomainScaler {
 public:
  /// \param config Per-column normalization modes; an empty `config.norms`
  ///        selects default_transfer_norms().
  /// \throws std::invalid_argument on an out-of-range ColumnNorm value.
  explicit DomainScaler(DomainScalerConfig config = {});

  /// Normalizes every column of `x` per its configured mode, using
  /// statistics computed from `x` itself.
  /// \throws std::invalid_argument when `x` is empty or its column count
  ///         differs from the configured norms (message names both).
  [[nodiscard]] linalg::Matrix standardize(const linalg::Matrix& x) const;

  /// \return The per-column normalization modes in effect.
  [[nodiscard]] const std::vector<ColumnNorm>& norms() const noexcept {
    return norms_;
  }

 private:
  std::vector<ColumnNorm> norms_;
};

}  // namespace ffr::features
