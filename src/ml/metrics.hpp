#pragma once
/// \file metrics.hpp
/// \brief The paper's five regression evaluation metrics (§III-C): MAE, MAX, RMSE,
/// Explained Variance and R². Definitions match scikit-learn.

#include <span>
#include <string>

namespace ffr::ml {

/// Mean absolute error; closer to 0 is better.
[[nodiscard]] double mean_absolute_error(std::span<const double> y_true,
                                         std::span<const double> y_pred);

/// Maximum absolute error; closer to 0 is better.
[[nodiscard]] double max_absolute_error(std::span<const double> y_true,
                                        std::span<const double> y_pred);

/// Root mean squared error; closer to 0 is better.
[[nodiscard]] double root_mean_squared_error(std::span<const double> y_true,
                                             std::span<const double> y_pred);

/// Explained variance: 1 - Var(y - yhat) / Var(y); best value 1.
[[nodiscard]] double explained_variance(std::span<const double> y_true,
                                        std::span<const double> y_pred);

/// Coefficient of determination R^2; best value 1.
[[nodiscard]] double r2_score(std::span<const double> y_true,
                              std::span<const double> y_pred);

/// Spearman rank correlation in [-1, 1]: the Pearson correlation of the two
/// inputs' midranks (ties averaged). Scale-free, so it is the natural score
/// for cross-circuit transfer, where a model can rank flip-flop
/// vulnerability correctly even when its absolute FDR estimates are off.
/// Returns 0 when either input is constant.
[[nodiscard]] double spearman_rho(std::span<const double> y_true,
                                  std::span<const double> y_pred);

/// All five metrics of Table I.
struct RegressionMetrics {
  double mae = 0.0;
  double max = 0.0;
  double rmse = 0.0;
  double ev = 0.0;
  double r2 = 0.0;

  RegressionMetrics& operator+=(const RegressionMetrics& other) noexcept;
  RegressionMetrics& operator/=(double divisor) noexcept;
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] RegressionMetrics compute_metrics(std::span<const double> y_true,
                                                std::span<const double> y_pred);

}  // namespace ffr::ml
