#pragma once
// Hyperparameter search, following the paper's §III-A recipe: first a random
// search over given distributions, then a finer grid search around the best
// random configuration. Scoring = mean test R^2 under cross validation.

#include <functional>

#include "ml/model_selection.hpp"

namespace ffr::ml {

/// A searchable hyperparameter dimension.
struct ParamRange {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;  // sample log-uniform (C, gamma, ...)
  bool integer = false;    // round samples to integers (k, depth, ...)
};

struct SearchCandidate {
  ParamMap params;
  double score = 0.0;  // mean test R^2
};

struct SearchResult {
  SearchCandidate best;
  std::vector<SearchCandidate> evaluated;
};

/// Draw `n_iter` random configurations and cross-validate each.
[[nodiscard]] SearchResult random_search(const Regressor& prototype,
                                         const Matrix& x, std::span<const double> y,
                                         std::span<const ParamRange> ranges,
                                         std::size_t n_iter,
                                         std::span<const Split> splits,
                                         double train_fraction = 1.0,
                                         std::uint64_t seed = 99);

/// Exhaustive grid over explicit per-parameter value lists.
struct GridAxis {
  std::string name;
  std::vector<double> values;
};

[[nodiscard]] SearchResult grid_search(const Regressor& prototype, const Matrix& x,
                                       std::span<const double> y,
                                       std::span<const GridAxis> grid,
                                       std::span<const Split> splits,
                                       double train_fraction = 1.0,
                                       std::uint64_t seed = 99);

/// The paper's two-stage recipe: random search, then a grid refined around
/// the best random configuration (each numeric axis re-sampled in a
/// +/- refine_factor neighbourhood with `grid_points` points).
[[nodiscard]] SearchResult random_then_grid_search(
    const Regressor& prototype, const Matrix& x, std::span<const double> y,
    std::span<const ParamRange> ranges, std::size_t n_random,
    std::size_t grid_points, std::span<const Split> splits,
    double train_fraction = 1.0, double refine_factor = 2.0,
    std::uint64_t seed = 99);

}  // namespace ffr::ml
