#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "ml/serialize.hpp"

namespace ffr::ml {

KnnRegressor::KnnRegressor(std::size_t k, double minkowski_p, KnnWeights weights)
    : k_(k), p_(minkowski_p), weights_(weights) {
  if (k == 0) throw std::invalid_argument("knn: k must be >= 1");
  if (minkowski_p < 1.0) throw std::invalid_argument("knn: p must be >= 1");
}

void KnnRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "k") {
      if (value < 1.0) throw std::invalid_argument("knn: k must be >= 1");
      k_ = static_cast<std::size_t>(value);
    } else if (key == "p") {
      if (value < 1.0) throw std::invalid_argument("knn: p must be >= 1");
      p_ = value;
    } else if (key == "weights") {
      weights_ = value != 0.0 ? KnnWeights::kDistance : KnnWeights::kUniform;
    } else {
      throw std::invalid_argument("knn: unknown parameter '" + key + "'");
    }
  }
}

ParamMap KnnRegressor::get_params() const {
  return {{"k", static_cast<double>(k_)},
          {"p", p_},
          {"weights", static_cast<double>(static_cast<int>(weights_))}};
}

double KnnRegressor::distance(std::span<const double> a,
                              std::span<const double> b) const {
  double acc = 0.0;
  if (p_ == 1.0) {
    for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
    return acc;
  }
  if (p_ == 2.0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::pow(std::abs(a[i] - b[i]), p_);
  }
  return std::pow(acc, 1.0 / p_);
}

void KnnRegressor::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  train_x_ = x;
  train_y_.assign(y.begin(), y.end());
}

void KnnRegressor::save(std::ostream& os) const {
  if (!is_fitted()) throw std::logic_error("knn save: not fitted");
  io::write_header(os, "knn");
  os << "k " << k_ << "\np ";
  io::write_double(os, p_);
  os << "\nweights " << static_cast<int>(weights_) << '\n';
  io::write_matrix(os, "train_x", train_x_);
  io::write_vector(os, "train_y", train_y_);
  os << "end\n";
}

std::unique_ptr<KnnRegressor> KnnRegressor::load_body(std::istream& is) {
  io::expect_token(is, "k");
  const auto k = static_cast<std::size_t>(io::read_size(is));
  io::expect_token(is, "p");
  const double p = io::read_double(is);
  io::expect_token(is, "weights");
  const std::uint64_t weights = io::read_size(is);
  if (weights > 1) {
    throw std::runtime_error("load_model: knn weights must be 0 or 1, got " +
                             std::to_string(weights));
  }
  auto model = std::make_unique<KnnRegressor>(
      k, p, weights != 0 ? KnnWeights::kDistance : KnnWeights::kUniform);
  model->train_x_ = io::read_matrix(is, "train_x");
  model->train_y_ = io::read_vector(is, "train_y");
  if (model->train_y_.size() != model->train_x_.rows()) {
    throw std::runtime_error("load_model: knn train_x/train_y row mismatch");
  }
  io::expect_token(is, "end");
  return model;
}

Vector KnnRegressor::predict(const Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("knn: not fitted");
  check_predict_args(name(), train_x_.cols(), x);
  const std::size_t n_train = train_x_.rows();
  const std::size_t k = std::min(k_, n_train);

  Vector out(x.rows());
  std::vector<std::pair<double, std::size_t>> dist(n_train);
  for (std::size_t q = 0; q < x.rows(); ++q) {
    const auto query = x.row(q);
    for (std::size_t t = 0; t < n_train; ++t) {
      dist[t] = {distance(query, train_x_.row(t)), t};
    }
    std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                      dist.end());
    if (weights_ == KnnWeights::kUniform) {
      double sum = 0.0;
      for (std::size_t i = 0; i < k; ++i) sum += train_y_[dist[i].second];
      out[q] = sum / static_cast<double>(k);
      continue;
    }
    // Inverse-distance weights; an exact match dominates (scikit-learn
    // returns the exact neighbours' mean in that case).
    bool exact = false;
    double exact_sum = 0.0;
    std::size_t exact_count = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (dist[i].first == 0.0) {
        exact = true;
        exact_sum += train_y_[dist[i].second];
        ++exact_count;
      }
    }
    if (exact) {
      out[q] = exact_sum / static_cast<double>(exact_count);
      continue;
    }
    double weight_sum = 0.0;
    double value_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double w = 1.0 / dist[i].first;
      weight_sum += w;
      value_sum += w * train_y_[dist[i].second];
    }
    out[q] = value_sum / weight_sum;
  }
  return out;
}

}  // namespace ffr::ml
