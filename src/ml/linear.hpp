#pragma once
// Linear Least Squares regressor (paper §IV-B.1): fits y ~ w·x + b by
// minimizing the residual sum of squares, solved with rank-revealing
// pivoted QR. Also a ridge variant for the extension benches.

#include "ml/model.hpp"

namespace ffr::ml {

class LinearLeastSquares final : public Regressor {
 public:
  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<LinearLeastSquares>(*this);
  }
  [[nodiscard]] std::string name() const override { return "linear_least_squares"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return fitted_; }

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed by
  /// ml::load_model).
  [[nodiscard]] static std::unique_ptr<LinearLeastSquares> load_body(
      std::istream& is);

  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] const Vector& coefficients() const noexcept { return coef_; }

 private:
  Vector coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// Ridge regression: minimizes ||y - Xw - b||^2 + alpha ||w||^2
/// (the intercept is not penalized; columns are centred internally).
class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(double alpha = 1.0) : alpha_(alpha) {}

  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<RidgeRegression>(*this);
  }
  [[nodiscard]] std::string name() const override { return "ridge"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return fitted_; }

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed).
  [[nodiscard]] static std::unique_ptr<RidgeRegression> load_body(
      std::istream& is);

  void set_params(const ParamMap& params) override;
  [[nodiscard]] ParamMap get_params() const override { return {{"alpha", alpha_}}; }

 private:
  double alpha_;
  Vector coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace ffr::ml
