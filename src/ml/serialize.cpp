#include "ml/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/pipeline.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"

namespace ffr::ml {

namespace io {

void write_double(std::ostream& os, double value) {
  // 17 significant digits round-trip IEEE-754 binary64 exactly; inf/nan
  // print as "inf"/"nan", which read_double() parses back via strtod.
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

void write_size(std::ostream& os, std::uint64_t value) { os << value; }

void write_vector(std::ostream& os, std::string_view key,
                  const linalg::Vector& values) {
  os << key << ' ' << values.size();
  for (const double v : values) {
    os << ' ';
    write_double(os, v);
  }
  os << '\n';
}

void write_matrix(std::ostream& os, std::string_view key,
                  const linalg::Matrix& matrix) {
  os << key << ' ' << matrix.rows() << ' ' << matrix.cols();
  for (const double v : matrix.data()) {
    os << ' ';
    write_double(os, v);
  }
  os << '\n';
}

std::string read_token(std::istream& is) {
  std::string token;
  if (!(is >> token)) {
    throw std::runtime_error("load_model: unexpected end of stream");
  }
  return token;
}

void expect_token(std::istream& is, std::string_view expected) {
  const std::string token = read_token(is);
  if (token != expected) {
    throw std::runtime_error("load_model: expected '" + std::string(expected) +
                             "', got '" + token + "'");
  }
}

double read_double(std::istream& is) {
  const std::string token = read_token(is);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    throw std::runtime_error("load_model: malformed number '" + token + "'");
  }
  return value;
}

std::uint64_t read_size(std::istream& is, std::uint64_t max) {
  const std::string token = read_token(is);
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || token.empty() || token[0] == '-') {
    throw std::runtime_error("load_model: malformed count '" + token + "'");
  }
  if (value > max) {
    throw std::runtime_error("load_model: count " + token +
                             " exceeds the sanity limit " + std::to_string(max));
  }
  return value;
}

linalg::Vector read_vector(std::istream& is, std::string_view key) {
  expect_token(is, key);
  const std::uint64_t n = read_size(is);
  linalg::Vector values(static_cast<std::size_t>(n));
  for (auto& v : values) v = read_double(is);
  return values;
}

linalg::Matrix read_matrix(std::istream& is, std::string_view key) {
  expect_token(is, key);
  const std::uint64_t rows = read_size(is);
  const std::uint64_t cols = read_size(is);
  if (rows != 0 && cols > (std::uint64_t{1} << 32) / rows) {
    throw std::runtime_error("load_model: matrix " + std::to_string(rows) + "x" +
                             std::to_string(cols) + " exceeds the sanity limit");
  }
  linalg::Matrix matrix(static_cast<std::size_t>(rows),
                        static_cast<std::size_t>(cols));
  for (auto& v : matrix.data()) v = read_double(is);
  return matrix;
}

void write_header(std::ostream& os, std::string_view tag) {
  os << "ffr-model " << kModelFormatVersion << ' ' << tag << '\n';
}

}  // namespace io

void ScaledPipeline::save(std::ostream& os) const {
  if (!is_fitted()) throw std::logic_error("scaled_pipeline save: not fitted");
  io::write_header(os, "scaled_pipeline");
  scaler_.save(os);
  inner_->save(os);
  os << "end\n";
}

void save_model(std::ostream& os, const Regressor& model) { model.save(os); }

std::unique_ptr<Regressor> load_model(std::istream& is) {
  const std::string magic = io::read_token(is);
  if (magic != "ffr-model") {
    throw std::runtime_error("load_model: bad magic '" + magic +
                             "' (not an ffr model file)");
  }
  const std::uint64_t version = io::read_size(is);
  if (version != static_cast<std::uint64_t>(kModelFormatVersion)) {
    throw std::runtime_error("load_model: unsupported format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kModelFormatVersion) + ")");
  }
  const std::string tag = io::read_token(is);
  if (tag == "linear_least_squares") return LinearLeastSquares::load_body(is);
  if (tag == "ridge") return RidgeRegression::load_body(is);
  if (tag == "knn") return KnnRegressor::load_body(is);
  if (tag == "svr") return SvrRegressor::load_body(is);
  if (tag == "decision_tree") return DecisionTreeRegressor::load_body(is);
  if (tag == "random_forest") return RandomForestRegressor::load_body(is);
  if (tag == "gradient_boosting") return GradientBoostingRegressor::load_body(is);
  if (tag == "scaled_pipeline") {
    StandardScaler scaler = StandardScaler::load(is);
    std::unique_ptr<Regressor> inner = load_model(is);
    io::expect_token(is, "end");
    return std::make_unique<ScaledPipeline>(std::move(scaler), std::move(inner));
  }
  throw std::runtime_error("load_model: unknown model tag '" + tag + "'");
}

void save_model_file(const std::filesystem::path& path, const Regressor& model) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("save_model_file: cannot open " + path.string());
  }
  model.save(os);
  if (!os.flush()) {
    throw std::runtime_error("save_model_file: write failed for " +
                             path.string());
  }
}

std::unique_ptr<Regressor> load_model_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("load_model_file: cannot open " + path.string());
  }
  return load_model(is);
}

}  // namespace ffr::ml
