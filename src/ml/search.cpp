#include "ml/search.hpp"

#include <algorithm>
#include <cmath>

namespace ffr::ml {

namespace {

double evaluate(const Regressor& prototype, const ParamMap& params, const Matrix& x,
                std::span<const double> y, std::span<const Split> splits,
                double train_fraction, std::uint64_t seed) {
  std::unique_ptr<Regressor> model = prototype.clone();
  model->set_params(params);
  const CrossValidationResult cv =
      cross_validate(*model, x, y, splits, train_fraction, seed);
  return cv.mean_test.r2;
}

}  // namespace

SearchResult random_search(const Regressor& prototype, const Matrix& x,
                           std::span<const double> y,
                           std::span<const ParamRange> ranges, std::size_t n_iter,
                           std::span<const Split> splits, double train_fraction,
                           std::uint64_t seed) {
  if (ranges.empty() || n_iter == 0) {
    throw std::invalid_argument("random_search: nothing to search");
  }
  util::Rng rng(seed);
  SearchResult result;
  result.best.score = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < n_iter; ++iter) {
    ParamMap params;
    for (const ParamRange& range : ranges) {
      double value = range.log_scale ? rng.log_uniform(range.lo, range.hi)
                                     : rng.uniform(range.lo, range.hi);
      if (range.integer) value = std::round(value);
      params[range.name] = value;
    }
    SearchCandidate candidate;
    candidate.params = params;
    candidate.score =
        evaluate(prototype, params, x, y, splits, train_fraction, seed);
    if (candidate.score > result.best.score) result.best = candidate;
    result.evaluated.push_back(std::move(candidate));
  }
  return result;
}

SearchResult grid_search(const Regressor& prototype, const Matrix& x,
                         std::span<const double> y, std::span<const GridAxis> grid,
                         std::span<const Split> splits, double train_fraction,
                         std::uint64_t seed) {
  if (grid.empty()) throw std::invalid_argument("grid_search: empty grid");
  for (const GridAxis& axis : grid) {
    if (axis.values.empty()) {
      throw std::invalid_argument("grid_search: empty axis '" + axis.name + "'");
    }
  }
  SearchResult result;
  result.best.score = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> cursor(grid.size(), 0);
  for (;;) {
    ParamMap params;
    for (std::size_t a = 0; a < grid.size(); ++a) {
      params[grid[a].name] = grid[a].values[cursor[a]];
    }
    SearchCandidate candidate;
    candidate.params = params;
    candidate.score =
        evaluate(prototype, params, x, y, splits, train_fraction, seed);
    if (candidate.score > result.best.score) result.best = candidate;
    result.evaluated.push_back(std::move(candidate));
    // Odometer increment.
    std::size_t axis = 0;
    while (axis < grid.size()) {
      if (++cursor[axis] < grid[axis].values.size()) break;
      cursor[axis] = 0;
      ++axis;
    }
    if (axis == grid.size()) break;
  }
  return result;
}

SearchResult random_then_grid_search(const Regressor& prototype, const Matrix& x,
                                     std::span<const double> y,
                                     std::span<const ParamRange> ranges,
                                     std::size_t n_random, std::size_t grid_points,
                                     std::span<const Split> splits,
                                     double train_fraction, double refine_factor,
                                     std::uint64_t seed) {
  SearchResult coarse = random_search(prototype, x, y, ranges, n_random, splits,
                                      train_fraction, seed);
  if (grid_points < 2) return coarse;

  // Grid around the best random draw, clamped to the original ranges.
  std::vector<GridAxis> grid;
  for (const ParamRange& range : ranges) {
    const double centre = coarse.best.params.at(range.name);
    GridAxis axis;
    axis.name = range.name;
    if (range.integer) {
      const auto c = static_cast<long>(centre);
      const long radius = std::max<long>(1, static_cast<long>(grid_points) / 2);
      for (long v = c - radius; v <= c + radius; ++v) {
        const double clamped =
            std::clamp(static_cast<double>(v), range.lo, range.hi);
        if (axis.values.empty() || axis.values.back() != clamped) {
          axis.values.push_back(clamped);
        }
      }
    } else if (range.log_scale) {
      const double lo = std::max(range.lo, centre / refine_factor);
      const double hi = std::min(range.hi, centre * refine_factor);
      for (std::size_t i = 0; i < grid_points; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(grid_points - 1);
        axis.values.push_back(lo * std::pow(hi / lo, t));
      }
    } else {
      const double span = (range.hi - range.lo) / refine_factor / 2.0;
      const double lo = std::max(range.lo, centre - span);
      const double hi = std::min(range.hi, centre + span);
      for (std::size_t i = 0; i < grid_points; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(grid_points - 1);
        axis.values.push_back(lo + t * (hi - lo));
      }
    }
    grid.push_back(std::move(axis));
  }
  SearchResult fine =
      grid_search(prototype, x, y, grid, splits, train_fraction, seed);
  // Merge: keep the better of the two stages plus the full history.
  SearchResult result;
  result.best = fine.best.score >= coarse.best.score ? fine.best : coarse.best;
  result.evaluated = std::move(coarse.evaluated);
  result.evaluated.insert(result.evaluated.end(), fine.evaluated.begin(),
                          fine.evaluated.end());
  return result;
}

}  // namespace ffr::ml
