#pragma once
// k-Nearest Neighbors regressor (paper §IV-B.2): predicts the (optionally
// inverse-distance-weighted) average of the k closest training points under
// a Minkowski metric. The paper's tuned configuration is k=3 with the
// Manhattan distance and distance weighting.

#include "ml/model.hpp"

namespace ffr::ml {

enum class KnnWeights : int { kUniform = 0, kDistance = 1 };

class KnnRegressor final : public Regressor {
 public:
  /// `minkowski_p`: 1 = Manhattan, 2 = Euclidean, other p >= 1 supported.
  explicit KnnRegressor(std::size_t k = 5, double minkowski_p = 2.0,
                        KnnWeights weights = KnnWeights::kDistance);

  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<KnnRegressor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "knn"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !train_y_.empty(); }

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed).
  [[nodiscard]] static std::unique_ptr<KnnRegressor> load_body(std::istream& is);

  /// Parameters: "k" (>=1), "p" (Minkowski exponent), "weights" (0 uniform,
  /// 1 inverse distance).
  void set_params(const ParamMap& params) override;
  [[nodiscard]] ParamMap get_params() const override;

  [[nodiscard]] double distance(std::span<const double> a,
                                std::span<const double> b) const;

 private:
  std::size_t k_;
  double p_;
  KnnWeights weights_;
  Matrix train_x_;
  Vector train_y_;
};

}  // namespace ffr::ml
