#include "ml/linear.hpp"

#include <istream>
#include <ostream>

#include "linalg/decompositions.hpp"
#include "ml/serialize.hpp"

namespace ffr::ml {

void LinearLeastSquares::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  const Matrix design = x.with_bias_column();
  const Vector beta = linalg::lstsq(design, y);
  intercept_ = beta[0];
  coef_.assign(beta.begin() + 1, beta.end());
  fitted_ = true;
}

Vector LinearLeastSquares::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("LinearLeastSquares: not fitted");
  check_predict_args(name(), coef_.size(), x);
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = intercept_ + linalg::dot(x.row(r), coef_);
  }
  return out;
}

void LinearLeastSquares::save(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("linear_least_squares save: not fitted");
  io::write_header(os, "linear_least_squares");
  os << "intercept ";
  io::write_double(os, intercept_);
  os << '\n';
  io::write_vector(os, "coef", coef_);
  os << "end\n";
}

std::unique_ptr<LinearLeastSquares> LinearLeastSquares::load_body(
    std::istream& is) {
  auto model = std::make_unique<LinearLeastSquares>();
  io::expect_token(is, "intercept");
  model->intercept_ = io::read_double(is);
  model->coef_ = io::read_vector(is, "coef");
  io::expect_token(is, "end");
  model->fitted_ = true;
  return model;
}

void RidgeRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "alpha") {
      alpha_ = value;
    } else {
      throw std::invalid_argument("ridge: unknown parameter '" + key + "'");
    }
  }
}

void RidgeRegression::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  // Centre columns and target so the intercept is unpenalized.
  Vector col_mean(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    col_mean[c] = linalg::mean(x.col_copy(c));
  }
  const double y_mean = linalg::mean(y);
  Matrix centred(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      centred(r, c) = x(r, c) - col_mean[c];
    }
  }
  Vector y_centred(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_centred[i] = y[i] - y_mean;
  coef_ = linalg::ridge_solve(centred, y_centred, alpha_);
  intercept_ = y_mean - linalg::dot(col_mean, coef_);
  fitted_ = true;
}

Vector RidgeRegression::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("ridge: not fitted");
  check_predict_args(name(), coef_.size(), x);
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = intercept_ + linalg::dot(x.row(r), coef_);
  }
  return out;
}

void RidgeRegression::save(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("ridge save: not fitted");
  io::write_header(os, "ridge");
  os << "alpha ";
  io::write_double(os, alpha_);
  os << "\nintercept ";
  io::write_double(os, intercept_);
  os << '\n';
  io::write_vector(os, "coef", coef_);
  os << "end\n";
}

std::unique_ptr<RidgeRegression> RidgeRegression::load_body(std::istream& is) {
  io::expect_token(is, "alpha");
  auto model = std::make_unique<RidgeRegression>(io::read_double(is));
  io::expect_token(is, "intercept");
  model->intercept_ = io::read_double(is);
  model->coef_ = io::read_vector(is, "coef");
  io::expect_token(is, "end");
  model->fitted_ = true;
  return model;
}

}  // namespace ffr::ml
