#include "ml/linear.hpp"

#include "linalg/decompositions.hpp"

namespace ffr::ml {

void LinearLeastSquares::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  const Matrix design = x.with_bias_column();
  const Vector beta = linalg::lstsq(design, y);
  intercept_ = beta[0];
  coef_.assign(beta.begin() + 1, beta.end());
  fitted_ = true;
}

Vector LinearLeastSquares::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("LinearLeastSquares: not fitted");
  if (x.cols() != coef_.size()) {
    throw std::invalid_argument("predict: feature count mismatch");
  }
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = intercept_ + linalg::dot(x.row(r), coef_);
  }
  return out;
}

void RidgeRegression::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "alpha") {
      alpha_ = value;
    } else {
      throw std::invalid_argument("ridge: unknown parameter '" + key + "'");
    }
  }
}

void RidgeRegression::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  // Centre columns and target so the intercept is unpenalized.
  Vector col_mean(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    col_mean[c] = linalg::mean(x.col_copy(c));
  }
  const double y_mean = linalg::mean(y);
  Matrix centred(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      centred(r, c) = x(r, c) - col_mean[c];
    }
  }
  Vector y_centred(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_centred[i] = y[i] - y_mean;
  coef_ = linalg::ridge_solve(centred, y_centred, alpha_);
  intercept_ = y_mean - linalg::dot(col_mean, coef_);
  fitted_ = true;
}

Vector RidgeRegression::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("ridge: not fitted");
  if (x.cols() != coef_.size()) {
    throw std::invalid_argument("predict: feature count mismatch");
  }
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out[r] = intercept_ + linalg::dot(x.row(r), coef_);
  }
  return out;
}

}  // namespace ffr::ml
