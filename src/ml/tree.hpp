#pragma once
// CART regression tree (variance-reduction splits) plus the ensemble models
// the paper's future-work section calls for: random forest (bagging +
// feature subsampling) and gradient boosting (shrunken residual fitting).

#include <cstdint>

#include "ml/model.hpp"
#include "util/rng.hpp"

namespace ffr::ml {

struct TreeConfig {
  std::size_t max_depth = 10;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 = all.
  std::size_t max_features = 0;
  std::uint64_t seed = 1;  // used only when max_features > 0
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<DecisionTreeRegressor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "decision_tree"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !nodes_.empty(); }

  /// Parameters: "max_depth", "min_samples_split", "min_samples_leaf",
  /// "max_features", "seed".
  void set_params(const ParamMap& params) override;
  [[nodiscard]] ParamMap get_params() const override;

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed).
  [[nodiscard]] static std::unique_ptr<DecisionTreeRegressor> load_body(
      std::istream& is);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return n_features_; }

  /// Fit against sample weights implied by an index multiset (bootstrap).
  void fit_on_indices(const Matrix& x, std::span<const double> y,
                      std::span<const std::size_t> indices);

 private:
  struct Node {
    // Leaf when feature == kLeaf.
    static constexpr std::uint32_t kLeaf = ~std::uint32_t{0};
    std::uint32_t feature = kLeaf;
    double threshold = 0.0;  // go left when x[feature] <= threshold
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;  // leaf prediction
  };

  std::uint32_t build(const Matrix& x, std::span<const double> y,
                      std::vector<std::size_t>& indices, std::size_t begin,
                      std::size_t end, std::size_t depth, util::Rng& rng);
  [[nodiscard]] double predict_row(std::span<const double> row) const;

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  std::size_t n_features_ = 0;
};

struct ForestConfig {
  std::size_t n_estimators = 50;
  TreeConfig tree{};           // per-tree limits
  double max_features_frac = 0.6;  // features per split
  std::uint64_t seed = 7;
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestConfig config = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<RandomForestRegressor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "random_forest"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return !trees_.empty(); }

  /// Parameters: "n_estimators", "max_depth", "max_features_frac", "seed".
  void set_params(const ParamMap& params) override;
  [[nodiscard]] ParamMap get_params() const override;

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed).
  [[nodiscard]] static std::unique_ptr<RandomForestRegressor> load_body(
      std::istream& is);

 private:
  ForestConfig config_;
  std::vector<DecisionTreeRegressor> trees_;
};

struct BoostingConfig {
  std::size_t n_estimators = 200;
  double learning_rate = 0.1;
  TreeConfig tree{.max_depth = 3};
  std::uint64_t seed = 11;
};

class GradientBoostingRegressor final : public Regressor {
 public:
  explicit GradientBoostingRegressor(BoostingConfig config = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<GradientBoostingRegressor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "gradient_boosting"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return fitted_; }

  /// Parameters: "n_estimators", "learning_rate", "max_depth".
  void set_params(const ParamMap& params) override;
  [[nodiscard]] ParamMap get_params() const override;

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed).
  [[nodiscard]] static std::unique_ptr<GradientBoostingRegressor> load_body(
      std::istream& is);

 private:
  BoostingConfig config_;
  double base_prediction_ = 0.0;
  std::vector<DecisionTreeRegressor> trees_;
  bool fitted_ = false;
};

}  // namespace ffr::ml
