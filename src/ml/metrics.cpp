#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "linalg/matrix.hpp"

namespace ffr::ml {

namespace {

void check(std::span<const double> y_true, std::span<const double> y_pred) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    throw std::invalid_argument("metrics: size mismatch or empty input");
  }
}

}  // namespace

double mean_absolute_error(std::span<const double> y_true,
                           std::span<const double> y_pred) {
  check(y_true, y_pred);
  double sum = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    sum += std::abs(y_true[i] - y_pred[i]);
  }
  return sum / static_cast<double>(y_true.size());
}

double max_absolute_error(std::span<const double> y_true,
                          std::span<const double> y_pred) {
  check(y_true, y_pred);
  double best = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    best = std::max(best, std::abs(y_true[i] - y_pred[i]));
  }
  return best;
}

double root_mean_squared_error(std::span<const double> y_true,
                               std::span<const double> y_pred) {
  check(y_true, y_pred);
  double sum = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(y_true.size()));
}

double explained_variance(std::span<const double> y_true,
                          std::span<const double> y_pred) {
  check(y_true, y_pred);
  std::vector<double> residual(y_true.size());
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    residual[i] = y_true[i] - y_pred[i];
  }
  const double var_y = linalg::variance(y_true);
  if (var_y == 0.0) {
    // Degenerate target: perfect prediction scores 1, anything else 0
    // (scikit-learn convention).
    return linalg::variance(residual) == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - linalg::variance(residual) / var_y;
}

double r2_score(std::span<const double> y_true, std::span<const double> y_pred) {
  check(y_true, y_pred);
  const double y_mean = linalg::mean(y_true);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double r = y_true[i] - y_pred[i];
    const double t = y_true[i] - y_mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double spearman_rho(std::span<const double> y_true,
                    std::span<const double> y_pred) {
  check(y_true, y_pred);
  const linalg::Vector ra = linalg::midranks(y_true);
  const linalg::Vector rb = linalg::midranks(y_pred);
  const double mean_a = linalg::mean(ra);
  const double mean_b = linalg::mean(rb);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

RegressionMetrics& RegressionMetrics::operator+=(
    const RegressionMetrics& other) noexcept {
  mae += other.mae;
  max += other.max;
  rmse += other.rmse;
  ev += other.ev;
  r2 += other.r2;
  return *this;
}

RegressionMetrics& RegressionMetrics::operator/=(double divisor) noexcept {
  mae /= divisor;
  max /= divisor;
  rmse /= divisor;
  ev /= divisor;
  r2 /= divisor;
  return *this;
}

std::string RegressionMetrics::to_string() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "MAE=%.3f MAX=%.3f RMSE=%.3f EV=%.3f R2=%.3f", mae, max, rmse, ev,
                r2);
  return buffer;
}

RegressionMetrics compute_metrics(std::span<const double> y_true,
                                  std::span<const double> y_pred) {
  RegressionMetrics m;
  m.mae = mean_absolute_error(y_true, y_pred);
  m.max = max_absolute_error(y_true, y_pred);
  m.rmse = root_mean_squared_error(y_true, y_pred);
  m.ev = explained_variance(y_true, y_pred);
  m.r2 = r2_score(y_true, y_pred);
  return m;
}

}  // namespace ffr::ml
