#pragma once
/// \file model_selection.hpp
/// \brief Train/test splitting, (stratified) K-fold cross validation, the paper's
/// evaluation protocol (train on a fraction, evaluate on the rest, averaged
/// over folds) and learning curves (Figs. 2b/3b/4b).

#include <cstdint>

#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace ffr::ml {

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random shuffled split with `train_fraction` of the rows in train.
[[nodiscard]] Split train_test_split(std::size_t n, double train_fraction,
                                     std::uint64_t seed);

/// Shuffled K-fold: every row appears in exactly one test fold.
[[nodiscard]] std::vector<Split> k_fold(std::size_t n, std::size_t folds,
                                        std::uint64_t seed);

/// Stratified K-fold for regression: rows are binned by target quantiles and
/// each bin is spread round-robin over the folds, so every fold sees the
/// full FDR range (the paper uses "ten fold stratified cross validation").
[[nodiscard]] std::vector<Split> stratified_k_fold(std::span<const double> y,
                                                   std::size_t folds,
                                                   std::uint64_t seed,
                                                   std::size_t bins = 10);

/// Rows of X / entries of y selected by index.
[[nodiscard]] Matrix take_rows(const Matrix& x, std::span<const std::size_t> idx);
[[nodiscard]] Vector take(std::span<const double> y,
                          std::span<const std::size_t> idx);

struct FoldScore {
  RegressionMetrics train;
  RegressionMetrics test;
};

struct CrossValidationResult {
  std::vector<FoldScore> folds;
  RegressionMetrics mean_train;
  RegressionMetrics mean_test;
  double r2_test_stddev = 0.0;
};

/// The paper's protocol: within each CV fold, train on `train_fraction` of
/// the fold's training side (the "training size", i.e. the share of flip-
/// flops that get fault-injected) and evaluate on the fold's test side.
/// With train_fraction = 1.0 this is plain K-fold CV.
[[nodiscard]] CrossValidationResult cross_validate(
    const Regressor& prototype, const Matrix& x, std::span<const double> y,
    std::span<const Split> splits, double train_fraction = 1.0,
    std::uint64_t seed = 1);

struct LearningCurvePoint {
  double train_fraction = 0.0;
  std::size_t train_samples = 0;
  double train_r2_mean = 0.0;
  double train_r2_stddev = 0.0;
  double test_r2_mean = 0.0;
  double test_r2_stddev = 0.0;
};

/// R^2 learning curve over training sizes, evaluated with the given CV
/// splits (Figs. 2b/3b/4b).
[[nodiscard]] std::vector<LearningCurvePoint> learning_curve(
    const Regressor& prototype, const Matrix& x, std::span<const double> y,
    std::span<const double> train_fractions, std::span<const Split> splits,
    std::uint64_t seed = 1);

}  // namespace ffr::ml
