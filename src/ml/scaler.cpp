#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace ffr::ml {

void StandardScaler::fit(const linalg::Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler::fit: empty");
  mean_.assign(x.cols(), 0.0);
  std_.assign(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const linalg::Vector col = x.col_copy(c);
    mean_[c] = linalg::mean(col);
    const double sd = linalg::stddev(col);
    std_[c] = sd > 0.0 ? sd : 1.0;  // constant column: centre only
  }
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (x.cols() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

void MinMaxScaler::fit(const linalg::Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("MinMaxScaler::fit: empty");
  min_.assign(x.cols(), 0.0);
  range_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const linalg::Vector col = x.col_copy(c);
    min_[c] = linalg::min_value(col);
    const double range = linalg::max_value(col) - min_[c];
    range_[c] = range > 0.0 ? range : 1.0;
  }
}

linalg::Matrix MinMaxScaler::transform(const linalg::Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("MinMaxScaler: not fitted");
  if (x.cols() != min_.size()) {
    throw std::invalid_argument("MinMaxScaler: column count mismatch");
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - min_[c]) / range_[c];
    }
  }
  return out;
}

}  // namespace ffr::ml
