#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "ml/serialize.hpp"

namespace ffr::ml {

void StandardScaler::fit(const linalg::Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler::fit: empty");
  mean_.assign(x.cols(), 0.0);
  std_.assign(x.cols(), 0.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const linalg::Vector col = x.col_copy(c);
    mean_[c] = linalg::mean(col);
    const double sd = linalg::stddev(col);
    std_[c] = sd > 0.0 ? sd : 1.0;  // constant column: centre only
  }
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (x.cols() != mean_.size()) {
    throw std::invalid_argument(
        "StandardScaler: fitted on " + std::to_string(mean_.size()) +
        " columns but X is " + std::to_string(x.rows()) + "x" +
        std::to_string(x.cols()));
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

void StandardScaler::save(std::ostream& os) const {
  if (!is_fitted()) throw std::logic_error("StandardScaler::save: not fitted");
  io::write_vector(os, "scaler_mean", mean_);
  io::write_vector(os, "scaler_std", std_);
}

StandardScaler StandardScaler::load(std::istream& is) {
  StandardScaler scaler;
  scaler.mean_ = io::read_vector(is, "scaler_mean");
  scaler.std_ = io::read_vector(is, "scaler_std");
  if (scaler.std_.size() != scaler.mean_.size()) {
    throw std::runtime_error("StandardScaler::load: mean/std size mismatch");
  }
  return scaler;
}

void MinMaxScaler::fit(const linalg::Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("MinMaxScaler::fit: empty");
  min_.assign(x.cols(), 0.0);
  range_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const linalg::Vector col = x.col_copy(c);
    min_[c] = linalg::min_value(col);
    const double range = linalg::max_value(col) - min_[c];
    range_[c] = range > 0.0 ? range : 1.0;
  }
}

linalg::Matrix MinMaxScaler::transform(const linalg::Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("MinMaxScaler: not fitted");
  if (x.cols() != min_.size()) {
    throw std::invalid_argument(
        "MinMaxScaler: fitted on " + std::to_string(min_.size()) +
        " columns but X is " + std::to_string(x.rows()) + "x" +
        std::to_string(x.cols()));
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - min_[c]) / range_[c];
    }
  }
  return out;
}

}  // namespace ffr::ml
