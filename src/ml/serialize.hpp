#pragma once
/// \file serialize.hpp
/// \brief Model persistence: a versioned text format shared by every model in
/// the zoo, so a model trained once can be saved, shipped, and reloaded to
/// serve predictions on circuits it has never seen (see core/transfer_flow.hpp).
///
/// ## Format
///
/// A model file is whitespace-separated tokens. It opens with a header
///
///     ffr-model <version> <tag>
///
/// where `<version>` is currently 1 and `<tag>` names the concrete class
/// (`linear_least_squares`, `ridge`, `knn`, `svr`, `decision_tree`,
/// `random_forest`, `gradient_boosting`, `scaled_pipeline`). The body is a
/// sequence of `key value...` fields specific to the tag, and every block
/// closes with the sentinel token `end` so truncation is always detected.
/// Doubles are written with 17 significant digits (`%.17g`), which
/// round-trips IEEE-754 binary64 exactly — a reloaded model predicts
/// bit-identically to the one that was saved. Ensemble and pipeline models
/// nest complete sub-model blocks (header included), so the format is
/// recursive and `load_model()` needs no out-of-band type information.
///
/// Loading is strict: a bad magic token, an unsupported version, an unknown
/// tag, a malformed number, an out-of-range enum, or a truncated stream all
/// raise `std::runtime_error` with a message naming what was expected and
/// what was found.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>

#include "ml/model.hpp"

namespace ffr::ml {

/// Current (and only) version of the model text format.
inline constexpr int kModelFormatVersion = 1;

/// Writes `model` to `os` in the versioned text format. Equivalent to
/// `model.save(os)`; provided for symmetry with load_model().
/// \throws std::logic_error when the model is not fitted.
void save_model(std::ostream& os, const Regressor& model);

/// Reads one model block (header + body) from `is` and reconstructs the
/// concrete model, fitted state included. The stream may hold further data
/// after the block (ensembles rely on this).
/// \throws std::runtime_error on bad magic/version/tag or a corrupt body.
[[nodiscard]] std::unique_ptr<Regressor> load_model(std::istream& is);

/// Convenience: save_model() into a new file at `path`.
/// \throws std::runtime_error when the file cannot be opened.
void save_model_file(const std::filesystem::path& path, const Regressor& model);

/// Convenience: load_model() from the file at `path`.
/// \throws std::runtime_error when the file cannot be opened or is corrupt.
[[nodiscard]] std::unique_ptr<Regressor> load_model_file(
    const std::filesystem::path& path);

/// Low-level token I/O shared by the per-model save()/load bodies and by
/// core/transfer_flow.cpp. Every reader throws `std::runtime_error` naming
/// the expected and the found token on any mismatch or stream exhaustion.
namespace io {

/// Writes a double with 17 significant digits (exact binary64 round-trip).
void write_double(std::ostream& os, double value);

/// Writes an unsigned integer field.
void write_size(std::ostream& os, std::uint64_t value);

/// Writes `key` followed by the vector size and its elements.
void write_vector(std::ostream& os, std::string_view key,
                  const linalg::Vector& values);

/// Writes `key`, the dimensions, and the row-major elements.
void write_matrix(std::ostream& os, std::string_view key,
                  const linalg::Matrix& matrix);

/// Reads one whitespace-separated token. \throws std::runtime_error at EOF.
[[nodiscard]] std::string read_token(std::istream& is);

/// Reads a token and requires it to equal `expected`.
void expect_token(std::istream& is, std::string_view expected);

/// Reads a double (decimal, inf and nan accepted).
[[nodiscard]] double read_double(std::istream& is);

/// Reads a non-negative integer; rejects values above `max`.
[[nodiscard]] std::uint64_t read_size(
    std::istream& is, std::uint64_t max = std::uint64_t{1} << 32);

/// Reads the `key <n> <values...>` block written by write_vector().
[[nodiscard]] linalg::Vector read_vector(std::istream& is, std::string_view key);

/// Reads the `key <rows> <cols> <values...>` block written by write_matrix().
[[nodiscard]] linalg::Matrix read_matrix(std::istream& is, std::string_view key);

/// Writes the `ffr-model <version> <tag>` header.
void write_header(std::ostream& os, std::string_view tag);

}  // namespace io

}  // namespace ffr::ml
