#pragma once
/// \file model.hpp
/// \brief Regressor interface for the from-scratch ML library.
///
/// Mirrors the slice of scikit-learn the paper uses: fit/predict plus
/// uniform hyperparameter access so random/grid search can drive any model
/// generically. Concrete models: LinearLeastSquares (linear.hpp),
/// KnnRegressor (knn.hpp), SvrRegressor (svr.hpp), the tree ensembles
/// (tree.hpp) and the scaler+model Pipeline (pipeline.hpp); the model zoo
/// (model_zoo.hpp) constructs them by name with the paper's tuned
/// configurations.

#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "linalg/matrix.hpp"

namespace ffr::ml {

using linalg::Matrix;
using linalg::Vector;

/// Hyperparameters are name -> double; categorical choices are encoded as
/// small integers (documented per model).
using ParamMap = std::map<std::string, double, std::less<>>;

/// Abstract base class of every regression model in the library.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model on rows of \p x against targets \p y.
  /// \param x Design matrix, one sample per row.
  /// \param y Targets, one per row of \p x.
  /// \throws std::invalid_argument on shape mismatch or empty data.
  virtual void fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predicts one value per row of \p x.
  /// \pre fit() has been called (see is_fitted()).
  [[nodiscard]] virtual Vector predict(const Matrix& x) const = 0;

  /// \return A deep copy, fitted state included.
  [[nodiscard]] virtual std::unique_ptr<Regressor> clone() const = 0;

  /// \return A short human-readable model name (e.g. "knn", "svr").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Sets hyperparameters by name (see ParamMap for the encoding).
  /// \throws std::invalid_argument on unknown keys.
  virtual void set_params(const ParamMap& params) {
    if (!params.empty()) {
      throw std::invalid_argument(name() + " has no hyperparameters");
    }
  }

  /// \return The current hyperparameter values, by name.
  [[nodiscard]] virtual ParamMap get_params() const { return {}; }

  /// \return Whether fit() has completed, i.e. predict() may be called.
  [[nodiscard]] virtual bool is_fitted() const noexcept = 0;

  /// Serializes hyperparameters plus the complete fitted state in the
  /// versioned text format of serialize.hpp; ml::load_model() reconstructs
  /// the model and its predictions bit-identically.
  /// \throws std::logic_error when the model is not fitted.
  virtual void save(std::ostream& os) const = 0;

 protected:
  /// Validates fit() inputs; the error names both shapes.
  /// \throws std::invalid_argument on an empty matrix or a row/label mismatch.
  static void check_fit_args(const Matrix& x, std::span<const double> y) {
    if (x.rows() == 0 || x.cols() == 0) {
      throw std::invalid_argument("fit: empty design matrix (X is " +
                                  std::to_string(x.rows()) + "x" +
                                  std::to_string(x.cols()) + ")");
    }
    if (x.rows() != y.size()) {
      throw std::invalid_argument(
          "fit: X has " + std::to_string(x.rows()) + " rows but y has " +
          std::to_string(y.size()) + " labels");
    }
  }

  /// Validates that predict() sees the feature count the model was fitted
  /// on; the error names the model and both shapes.
  /// \throws std::invalid_argument on feature-count drift.
  static void check_predict_args(std::string_view model,
                                 std::size_t fitted_features, const Matrix& x) {
    if (x.cols() != fitted_features) {
      throw std::invalid_argument(
          std::string(model) + " predict: model was fitted on " +
          std::to_string(fitted_features) + " features but X is " +
          std::to_string(x.rows()) + "x" + std::to_string(x.cols()));
    }
  }
};

}  // namespace ffr::ml
