#pragma once
/// \file model.hpp
/// \brief Regressor interface for the from-scratch ML library.
///
/// Mirrors the slice of scikit-learn the paper uses: fit/predict plus
/// uniform hyperparameter access so random/grid search can drive any model
/// generically. Concrete models: LinearLeastSquares (linear.hpp),
/// KnnRegressor (knn.hpp), SvrRegressor (svr.hpp), the tree ensembles
/// (tree.hpp) and the scaler+model Pipeline (pipeline.hpp); the model zoo
/// (model_zoo.hpp) constructs them by name with the paper's tuned
/// configurations.

#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "linalg/matrix.hpp"

namespace ffr::ml {

using linalg::Matrix;
using linalg::Vector;

/// Hyperparameters are name -> double; categorical choices are encoded as
/// small integers (documented per model).
using ParamMap = std::map<std::string, double, std::less<>>;

/// Abstract base class of every regression model in the library.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model on rows of \p x against targets \p y.
  /// \param x Design matrix, one sample per row.
  /// \param y Targets, one per row of \p x.
  /// \throws std::invalid_argument on shape mismatch or empty data.
  virtual void fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predicts one value per row of \p x.
  /// \pre fit() has been called (see is_fitted()).
  [[nodiscard]] virtual Vector predict(const Matrix& x) const = 0;

  /// \return A deep copy, fitted state included.
  [[nodiscard]] virtual std::unique_ptr<Regressor> clone() const = 0;

  /// \return A short human-readable model name (e.g. "knn", "svr").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Sets hyperparameters by name (see ParamMap for the encoding).
  /// \throws std::invalid_argument on unknown keys.
  virtual void set_params(const ParamMap& params) {
    if (!params.empty()) {
      throw std::invalid_argument(name() + " has no hyperparameters");
    }
  }

  /// \return The current hyperparameter values, by name.
  [[nodiscard]] virtual ParamMap get_params() const { return {}; }

  /// \return Whether fit() has completed, i.e. predict() may be called.
  [[nodiscard]] virtual bool is_fitted() const noexcept = 0;

 protected:
  static void check_fit_args(const Matrix& x, std::span<const double> y) {
    if (x.rows() == 0 || x.cols() == 0) {
      throw std::invalid_argument("fit: empty design matrix");
    }
    if (x.rows() != y.size()) {
      throw std::invalid_argument("fit: X/y row mismatch");
    }
  }
};

}  // namespace ffr::ml
