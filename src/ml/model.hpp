#pragma once
// Regressor interface for the from-scratch ML library. Mirrors the slice of
// scikit-learn the paper uses: fit/predict plus uniform hyperparameter
// access so random/grid search can drive any model generically.

#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "linalg/matrix.hpp"

namespace ffr::ml {

using linalg::Matrix;
using linalg::Vector;

/// Hyperparameters are name -> double; categorical choices are encoded as
/// small integers (documented per model).
using ParamMap = std::map<std::string, double, std::less<>>;

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit on rows of X against targets y. Throws std::invalid_argument on
  /// shape mismatch or empty data.
  virtual void fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predict one value per row of X. Requires a prior fit().
  [[nodiscard]] virtual Vector predict(const Matrix& x) const = 0;

  /// Deep copy (fitted state included).
  [[nodiscard]] virtual std::unique_ptr<Regressor> clone() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Set hyperparameters; unknown keys throw std::invalid_argument.
  virtual void set_params(const ParamMap& params) {
    if (!params.empty()) {
      throw std::invalid_argument(name() + " has no hyperparameters");
    }
  }

  [[nodiscard]] virtual ParamMap get_params() const { return {}; }

  [[nodiscard]] virtual bool is_fitted() const noexcept = 0;

 protected:
  static void check_fit_args(const Matrix& x, std::span<const double> y) {
    if (x.rows() == 0 || x.cols() == 0) {
      throw std::invalid_argument("fit: empty design matrix");
    }
    if (x.rows() != y.size()) {
      throw std::invalid_argument("fit: X/y row mismatch");
    }
  }
};

}  // namespace ffr::ml
