#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "ml/serialize.hpp"

namespace ffr::ml {

namespace {

void write_tree_config(std::ostream& os, const TreeConfig& config) {
  os << "tree_config " << config.max_depth << ' ' << config.min_samples_split
     << ' ' << config.min_samples_leaf << ' ' << config.max_features << ' '
     << config.seed << '\n';
}

TreeConfig read_tree_config(std::istream& is) {
  io::expect_token(is, "tree_config");
  TreeConfig config;
  config.max_depth = static_cast<std::size_t>(io::read_size(is));
  config.min_samples_split = static_cast<std::size_t>(io::read_size(is));
  config.min_samples_leaf = static_cast<std::size_t>(io::read_size(is));
  config.max_features = static_cast<std::size_t>(io::read_size(is));
  config.seed = io::read_size(is, ~std::uint64_t{0});
  return config;
}

/// Reads a nested full model block and requires it to be a decision tree.
DecisionTreeRegressor load_nested_tree(std::istream& is) {
  io::expect_token(is, "ffr-model");
  const std::uint64_t version = io::read_size(is);
  if (version != static_cast<std::uint64_t>(kModelFormatVersion)) {
    throw std::runtime_error("load_model: unsupported format version " +
                             std::to_string(version) + " in nested tree");
  }
  io::expect_token(is, "decision_tree");
  return std::move(*DecisionTreeRegressor::load_body(is));
}

}  // namespace

// ---- DecisionTreeRegressor ---------------------------------------------------

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config) : config_(config) {
  if (config.max_depth == 0) throw std::invalid_argument("tree: max_depth >= 1");
  if (config.min_samples_leaf == 0) {
    throw std::invalid_argument("tree: min_samples_leaf >= 1");
  }
}

void DecisionTreeRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "max_depth") {
      config_.max_depth = static_cast<std::size_t>(value);
    } else if (key == "min_samples_split") {
      config_.min_samples_split = static_cast<std::size_t>(value);
    } else if (key == "min_samples_leaf") {
      config_.min_samples_leaf = static_cast<std::size_t>(value);
    } else if (key == "max_features") {
      config_.max_features = static_cast<std::size_t>(value);
    } else if (key == "seed") {
      config_.seed = static_cast<std::uint64_t>(value);
    } else {
      throw std::invalid_argument("tree: unknown parameter '" + key + "'");
    }
  }
}

ParamMap DecisionTreeRegressor::get_params() const {
  return {{"max_depth", static_cast<double>(config_.max_depth)},
          {"min_samples_split", static_cast<double>(config_.min_samples_split)},
          {"min_samples_leaf", static_cast<double>(config_.min_samples_leaf)},
          {"max_features", static_cast<double>(config_.max_features)},
          {"seed", static_cast<double>(config_.seed)}};
}

void DecisionTreeRegressor::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  fit_on_indices(x, y, indices);
}

void DecisionTreeRegressor::fit_on_indices(const Matrix& x,
                                           std::span<const double> y,
                                           std::span<const std::size_t> indices) {
  if (indices.empty()) throw std::invalid_argument("tree: empty index set");
  nodes_.clear();
  depth_ = 0;
  n_features_ = x.cols();
  std::vector<std::size_t> work(indices.begin(), indices.end());
  util::Rng rng(config_.seed);
  (void)build(x, y, work, 0, work.size(), 1, rng);
}

std::uint32_t DecisionTreeRegressor::build(const Matrix& x,
                                           std::span<const double> y,
                                           std::vector<std::size_t>& indices,
                                           std::size_t begin, std::size_t end,
                                           std::size_t depth, util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t count = end - begin;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double v = y[indices[i]];
    sum += v;
    sum_sq += v * v;
  }
  const double node_mean = sum / static_cast<double>(count);
  const double node_sse = sum_sq - sum * node_mean;

  const auto make_leaf = [&] {
    Node leaf;
    leaf.value = node_mean;
    nodes_.push_back(leaf);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  };
  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      count < 2 * config_.min_samples_leaf || node_sse <= 1e-12) {
    return make_leaf();
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> features(n_features_);
  std::iota(features.begin(), features.end(), 0);
  if (config_.max_features != 0 && config_.max_features < n_features_) {
    rng.shuffle(features);
    features.resize(config_.max_features);
  }

  // Best split = max SSE reduction, found by sorting per candidate feature.
  double best_gain = 1e-12;
  std::size_t best_feature = n_features_;
  double best_threshold = 0.0;
  std::vector<std::pair<double, double>> sorted(count);  // (x_f, y)
  for (const std::size_t f : features) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      sorted[i] = {x(row, f), y[row]};
    }
    std::sort(sorted.begin(), sorted.end());
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      left_sum += sorted[i].second;
      left_sq += sorted[i].second * sorted[i].second;
      if (sorted[i].first == sorted[i + 1].first) continue;  // no cut here
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_sse = left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }
  if (best_feature == n_features_) return make_leaf();

  // Partition indices in place.
  const auto middle = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end),
      [&](std::size_t row) { return x(row, best_feature) <= best_threshold; });
  const std::size_t split =
      static_cast<std::size_t>(middle - indices.begin());
  if (split == begin || split == end) return make_leaf();  // numeric safety

  Node node;
  node.feature = static_cast<std::uint32_t>(best_feature);
  node.threshold = best_threshold;
  nodes_.push_back(node);
  const auto node_id = static_cast<std::uint32_t>(nodes_.size() - 1);
  const std::uint32_t left = build(x, y, indices, begin, split, depth + 1, rng);
  const std::uint32_t right = build(x, y, indices, split, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTreeRegressor::predict_row(std::span<const double> row) const {
  std::uint32_t node_id = 0;
  for (;;) {
    const Node& node = nodes_[node_id];
    if (node.feature == Node::kLeaf) return node.value;
    node_id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
}

Vector DecisionTreeRegressor::predict(const Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("tree: not fitted");
  check_predict_args(name(), n_features_, x);
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_row(x.row(r));
  return out;
}

void DecisionTreeRegressor::save(std::ostream& os) const {
  if (!is_fitted()) throw std::logic_error("decision_tree save: not fitted");
  io::write_header(os, "decision_tree");
  write_tree_config(os, config_);
  os << "n_features " << n_features_ << "\ndepth " << depth_ << "\nnodes "
     << nodes_.size() << '\n';
  for (const Node& node : nodes_) {
    os << node.feature << ' ';
    io::write_double(os, node.threshold);
    os << ' ' << node.left << ' ' << node.right << ' ';
    io::write_double(os, node.value);
    os << '\n';
  }
  os << "end\n";
}

std::unique_ptr<DecisionTreeRegressor> DecisionTreeRegressor::load_body(
    std::istream& is) {
  auto model = std::make_unique<DecisionTreeRegressor>(read_tree_config(is));
  io::expect_token(is, "n_features");
  model->n_features_ = static_cast<std::size_t>(io::read_size(is));
  io::expect_token(is, "depth");
  model->depth_ = static_cast<std::size_t>(io::read_size(is));
  io::expect_token(is, "nodes");
  const auto count = static_cast<std::size_t>(io::read_size(is));
  model->nodes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node node;
    node.feature = static_cast<std::uint32_t>(io::read_size(is, ~std::uint32_t{0}));
    node.threshold = io::read_double(is);
    node.left = static_cast<std::uint32_t>(io::read_size(is, ~std::uint32_t{0}));
    node.right = static_cast<std::uint32_t>(io::read_size(is, ~std::uint32_t{0}));
    node.value = io::read_double(is);
    // build() always emits children after their parent, so forward-only
    // child links also guarantee predict() terminates on any loaded file.
    if (node.feature != Node::kLeaf &&
        (node.feature >= model->n_features_ || node.left <= i ||
         node.left >= count || node.right <= i || node.right >= count)) {
      throw std::runtime_error(
          "load_model: decision_tree node " + std::to_string(i) +
          " references an out-of-range feature or child");
    }
    model->nodes_.push_back(node);
  }
  io::expect_token(is, "end");
  return model;
}

// ---- RandomForestRegressor ---------------------------------------------------

RandomForestRegressor::RandomForestRegressor(ForestConfig config)
    : config_(config) {
  if (config.n_estimators == 0) {
    throw std::invalid_argument("forest: n_estimators >= 1");
  }
}

void RandomForestRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "n_estimators") {
      config_.n_estimators = static_cast<std::size_t>(value);
    } else if (key == "max_depth") {
      config_.tree.max_depth = static_cast<std::size_t>(value);
    } else if (key == "max_features_frac") {
      config_.max_features_frac = value;
    } else if (key == "seed") {
      config_.seed = static_cast<std::uint64_t>(value);
    } else {
      throw std::invalid_argument("forest: unknown parameter '" + key + "'");
    }
  }
}

ParamMap RandomForestRegressor::get_params() const {
  return {{"n_estimators", static_cast<double>(config_.n_estimators)},
          {"max_depth", static_cast<double>(config_.tree.max_depth)},
          {"max_features_frac", config_.max_features_frac},
          {"seed", static_cast<double>(config_.seed)}};
}

void RandomForestRegressor::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  trees_.clear();
  util::Rng rng(config_.seed);
  const auto max_features = static_cast<std::size_t>(
      std::max(1.0, std::round(config_.max_features_frac *
                               static_cast<double>(x.cols()))));
  for (std::size_t t = 0; t < config_.n_estimators; ++t) {
    TreeConfig tree_config = config_.tree;
    tree_config.max_features = std::min(max_features, x.cols());
    tree_config.seed = rng();
    DecisionTreeRegressor tree(tree_config);
    // Bootstrap sample.
    std::vector<std::size_t> sample(x.rows());
    for (auto& s : sample) s = static_cast<std::size_t>(rng.below(x.rows()));
    tree.fit_on_indices(x, y, sample);
    trees_.push_back(std::move(tree));
  }
}

void RandomForestRegressor::save(std::ostream& os) const {
  if (!is_fitted()) throw std::logic_error("random_forest save: not fitted");
  io::write_header(os, "random_forest");
  os << "config " << config_.n_estimators << ' ';
  io::write_double(os, config_.max_features_frac);
  os << ' ' << config_.seed << '\n';
  write_tree_config(os, config_.tree);
  os << "trees " << trees_.size() << '\n';
  for (const auto& tree : trees_) tree.save(os);
  os << "end\n";
}

std::unique_ptr<RandomForestRegressor> RandomForestRegressor::load_body(
    std::istream& is) {
  io::expect_token(is, "config");
  ForestConfig config;
  config.n_estimators = static_cast<std::size_t>(io::read_size(is));
  config.max_features_frac = io::read_double(is);
  config.seed = io::read_size(is, ~std::uint64_t{0});
  config.tree = read_tree_config(is);
  auto model = std::make_unique<RandomForestRegressor>(config);
  io::expect_token(is, "trees");
  const auto count = static_cast<std::size_t>(io::read_size(is));
  if (count == 0) {
    throw std::runtime_error("load_model: random_forest with no trees");
  }
  model->trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    model->trees_.push_back(load_nested_tree(is));
  }
  io::expect_token(is, "end");
  return model;
}

Vector RandomForestRegressor::predict(const Matrix& x) const {
  if (!is_fitted()) throw std::logic_error("forest: not fitted");
  check_predict_args(name(), trees_.front().num_features(), x);
  Vector out(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    const Vector pred = tree.predict(x);
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] += pred[r];
  }
  for (auto& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

// ---- GradientBoostingRegressor ------------------------------------------------

GradientBoostingRegressor::GradientBoostingRegressor(BoostingConfig config)
    : config_(config) {
  if (config.n_estimators == 0) {
    throw std::invalid_argument("gbr: n_estimators >= 1");
  }
  if (config.learning_rate <= 0.0 || config.learning_rate > 1.0) {
    throw std::invalid_argument("gbr: learning_rate in (0, 1]");
  }
}

void GradientBoostingRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "n_estimators") {
      config_.n_estimators = static_cast<std::size_t>(value);
    } else if (key == "learning_rate") {
      config_.learning_rate = value;
    } else if (key == "max_depth") {
      config_.tree.max_depth = static_cast<std::size_t>(value);
    } else {
      throw std::invalid_argument("gbr: unknown parameter '" + key + "'");
    }
  }
}

ParamMap GradientBoostingRegressor::get_params() const {
  return {{"n_estimators", static_cast<double>(config_.n_estimators)},
          {"learning_rate", config_.learning_rate},
          {"max_depth", static_cast<double>(config_.tree.max_depth)}};
}

void GradientBoostingRegressor::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  trees_.clear();
  base_prediction_ = linalg::mean(y);
  Vector residual(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - base_prediction_;
  for (std::size_t t = 0; t < config_.n_estimators; ++t) {
    DecisionTreeRegressor tree(config_.tree);
    tree.fit(x, residual);
    const Vector step = tree.predict(x);
    for (std::size_t i = 0; i < residual.size(); ++i) {
      residual[i] -= config_.learning_rate * step[i];
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

void GradientBoostingRegressor::save(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("gradient_boosting save: not fitted");
  io::write_header(os, "gradient_boosting");
  os << "config " << config_.n_estimators << ' ';
  io::write_double(os, config_.learning_rate);
  os << ' ' << config_.seed << '\n';
  write_tree_config(os, config_.tree);
  os << "base ";
  io::write_double(os, base_prediction_);
  os << "\ntrees " << trees_.size() << '\n';
  for (const auto& tree : trees_) tree.save(os);
  os << "end\n";
}

std::unique_ptr<GradientBoostingRegressor> GradientBoostingRegressor::load_body(
    std::istream& is) {
  io::expect_token(is, "config");
  BoostingConfig config;
  config.n_estimators = static_cast<std::size_t>(io::read_size(is));
  config.learning_rate = io::read_double(is);
  config.seed = io::read_size(is, ~std::uint64_t{0});
  config.tree = read_tree_config(is);
  auto model = std::make_unique<GradientBoostingRegressor>(config);
  io::expect_token(is, "base");
  model->base_prediction_ = io::read_double(is);
  io::expect_token(is, "trees");
  const auto count = static_cast<std::size_t>(io::read_size(is));
  if (count == 0) {
    throw std::runtime_error("load_model: gradient_boosting with no trees");
  }
  model->trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    model->trees_.push_back(load_nested_tree(is));
  }
  io::expect_token(is, "end");
  model->fitted_ = true;
  return model;
}

Vector GradientBoostingRegressor::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("gbr: not fitted");
  // fitted_ implies >= 1 trees: the constructor requires n_estimators >= 1
  // and load_body rejects zero-tree files.
  check_predict_args(name(), trees_.front().num_features(), x);
  Vector out(x.rows(), base_prediction_);
  for (const auto& tree : trees_) {
    const Vector step = tree.predict(x);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      out[r] += config_.learning_rate * step[r];
    }
  }
  return out;
}

}  // namespace ffr::ml
