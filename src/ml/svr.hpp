#pragma once
// epsilon-Support Vector Regression (paper §IV-B.3), trained by Sequential
// Minimal Optimization on the dual
//
//   min_beta  1/2 beta^T K beta - y^T beta + eps * ||beta||_1
//   s.t.      sum(beta) = 0,  -C <= beta_i <= C
//
// where beta_i = alpha_i - alpha_i^* (Smola & Schoelkopf formulation).
// Kernels: RBF exp(-gamma ||x-z||^2), linear, polynomial.

#include "ml/model.hpp"

namespace ffr::ml {

enum class SvrKernel : int { kRbf = 0, kLinear = 1, kPoly = 2 };

struct SvrConfig {
  double c = 1.0;            // box constraint
  double epsilon = 0.1;      // insensitive-tube half width
  double gamma = 0.1;        // RBF width / poly scale
  SvrKernel kernel = SvrKernel::kRbf;
  int poly_degree = 3;
  double tol = 1e-3;         // KKT feasibility-gap tolerance
  std::size_t max_passes = 200000;  // SMO pair-update budget
};

class SvrRegressor final : public Regressor {
 public:
  explicit SvrRegressor(SvrConfig config = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  [[nodiscard]] Vector predict(const Matrix& x) const override;
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<SvrRegressor>(*this);
  }
  [[nodiscard]] std::string name() const override { return "svr"; }
  [[nodiscard]] bool is_fitted() const noexcept override { return fitted_; }

  void save(std::ostream& os) const override;
  /// Reads the body written by save() (header already consumed). final_gap()
  /// is a training diagnostic and is not persisted; it reloads as 0.
  [[nodiscard]] static std::unique_ptr<SvrRegressor> load_body(std::istream& is);

  /// Parameters: "C", "epsilon", "gamma", "kernel" (0 rbf / 1 linear /
  /// 2 poly), "degree".
  void set_params(const ParamMap& params) override;
  [[nodiscard]] ParamMap get_params() const override;

  [[nodiscard]] double kernel(std::span<const double> a,
                              std::span<const double> b) const;

  /// Number of support vectors (|beta_i| > 0 after training).
  [[nodiscard]] std::size_t num_support_vectors() const noexcept {
    return support_x_.rows();
  }
  [[nodiscard]] double bias() const noexcept { return bias_; }
  /// Final KKT feasibility gap (diagnostics; <= tol on clean convergence).
  [[nodiscard]] double final_gap() const noexcept { return final_gap_; }

 private:
  SvrConfig config_;
  Matrix support_x_;
  Vector support_beta_;
  double bias_ = 0.0;
  double final_gap_ = 0.0;
  std::size_t n_features_ = 0;
  bool fitted_ = false;
};

}  // namespace ffr::ml
