#include "ml/model_zoo.hpp"

#include <stdexcept>
#include <string>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/pipeline.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"

namespace ffr::ml {

std::unique_ptr<Regressor> make_model(std::string_view name) {
  if (name == "linear") {
    return std::make_unique<LinearLeastSquares>();
  }
  if (name == "ridge") {
    return make_scaled<RidgeRegression>(1.0);
  }
  if (name == "knn_paper") {
    // Paper §IV-B.2: k = 3, Manhattan distance, inverse-distance weights.
    return make_scaled<KnnRegressor>(3, 1.0, KnnWeights::kDistance);
  }
  if (name == "knn") {
    return make_scaled<KnnRegressor>();
  }
  if (name == "svr_paper") {
    // Paper §IV-B.3: RBF kernel, C = 3.5, gamma = 0.055, epsilon = 0.025.
    SvrConfig config;
    config.c = 3.5;
    config.gamma = 0.055;
    config.epsilon = 0.025;
    config.kernel = SvrKernel::kRbf;
    return make_scaled<SvrRegressor>(config);
  }
  if (name == "svr") {
    return make_scaled<SvrRegressor>();
  }
  if (name == "decision_tree") {
    return std::make_unique<DecisionTreeRegressor>();
  }
  if (name == "random_forest") {
    return std::make_unique<RandomForestRegressor>();
  }
  if (name == "gradient_boosting") {
    return std::make_unique<GradientBoostingRegressor>();
  }
  throw std::invalid_argument("make_model: unknown model '" + std::string(name) +
                              "'");
}

std::vector<std::string_view> model_zoo_names() {
  return {"linear",    "ridge",         "knn_paper",
          "knn",       "svr_paper",     "svr",
          "decision_tree", "random_forest", "gradient_boosting"};
}

}  // namespace ffr::ml
