#include "ml/model_selection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ffr::ml {

Split train_test_split(std::size_t n, double train_fraction, std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction in (0, 1)");
  }
  util::Rng rng(seed);
  std::vector<std::size_t> perm = rng.permutation(n);
  const auto n_train = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(n)));
  Split split;
  split.train.assign(perm.begin(), perm.begin() + static_cast<long>(n_train));
  split.test.assign(perm.begin() + static_cast<long>(n_train), perm.end());
  return split;
}

std::vector<Split> k_fold(std::size_t n, std::size_t folds, std::uint64_t seed) {
  if (folds < 2 || folds > n) throw std::invalid_argument("k_fold: bad fold count");
  util::Rng rng(seed);
  const std::vector<std::size_t> perm = rng.permutation(n);
  std::vector<Split> splits(folds);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t fold = i % folds;
    for (std::size_t f = 0; f < folds; ++f) {
      (f == fold ? splits[f].test : splits[f].train).push_back(perm[i]);
    }
  }
  return splits;
}

std::vector<Split> stratified_k_fold(std::span<const double> y, std::size_t folds,
                                     std::uint64_t seed, std::size_t bins) {
  const std::size_t n = y.size();
  if (folds < 2 || folds > n) {
    throw std::invalid_argument("stratified_k_fold: bad fold count");
  }
  if (bins == 0) throw std::invalid_argument("stratified_k_fold: bins >= 1");
  util::Rng rng(seed);

  // Order rows by target, walk that order in quantile blocks and deal each
  // block's (shuffled) rows round-robin over folds.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return y[a] < y[b]; });

  std::vector<Split> splits(folds);
  std::size_t dealt = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t begin = b * n / bins;
    const std::size_t end = (b + 1) * n / bins;
    std::vector<std::size_t> block(order.begin() + static_cast<long>(begin),
                                   order.begin() + static_cast<long>(end));
    rng.shuffle(block);
    for (const std::size_t row : block) {
      const std::size_t fold = dealt % folds;
      for (std::size_t f = 0; f < folds; ++f) {
        (f == fold ? splits[f].test : splits[f].train).push_back(row);
      }
      ++dealt;
    }
  }
  return splits;
}

Matrix take_rows(const Matrix& x, std::span<const std::size_t> idx) {
  return x.select_rows(idx);
}

Vector take(std::span<const double> y, std::span<const std::size_t> idx) {
  Vector out;
  out.reserve(idx.size());
  for (const std::size_t i : idx) out.push_back(y[i]);
  return out;
}

namespace {

// `fraction` is relative to the FULL dataset size (the paper's "training
// size": the share of all flip-flops that receive fault injection), capped
// by what the fold's training side can provide.
std::vector<std::size_t> subsample(const std::vector<std::size_t>& pool,
                                   double fraction, std::size_t total,
                                   util::Rng& rng) {
  const auto want = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::round(fraction * static_cast<double>(total))));
  if (want >= pool.size()) return pool;
  std::vector<std::size_t> copy = pool;
  rng.shuffle(copy);
  copy.resize(want);
  return copy;
}

}  // namespace

CrossValidationResult cross_validate(const Regressor& prototype, const Matrix& x,
                                     std::span<const double> y,
                                     std::span<const Split> splits,
                                     double train_fraction, std::uint64_t seed) {
  if (splits.empty()) throw std::invalid_argument("cross_validate: no splits");
  util::Rng rng(seed);
  CrossValidationResult result;
  std::vector<double> test_r2;
  for (const Split& split : splits) {
    const std::vector<std::size_t> train_idx =
        subsample(split.train, train_fraction, x.rows(), rng);
    const Matrix x_train = take_rows(x, train_idx);
    const Vector y_train = take(y, train_idx);
    const Matrix x_test = take_rows(x, split.test);
    const Vector y_test = take(y, split.test);

    std::unique_ptr<Regressor> model = prototype.clone();
    model->fit(x_train, y_train);

    FoldScore score;
    score.train = compute_metrics(y_train, model->predict(x_train));
    score.test = compute_metrics(y_test, model->predict(x_test));
    test_r2.push_back(score.test.r2);
    result.mean_train += score.train;
    result.mean_test += score.test;
    result.folds.push_back(score);
  }
  const auto folds = static_cast<double>(result.folds.size());
  result.mean_train /= folds;
  result.mean_test /= folds;
  result.r2_test_stddev = linalg::stddev(test_r2);
  return result;
}

std::vector<LearningCurvePoint> learning_curve(const Regressor& prototype,
                                               const Matrix& x,
                                               std::span<const double> y,
                                               std::span<const double> train_fractions,
                                               std::span<const Split> splits,
                                               std::uint64_t seed) {
  std::vector<LearningCurvePoint> curve;
  curve.reserve(train_fractions.size());
  for (const double fraction : train_fractions) {
    util::Rng rng(seed);
    std::vector<double> train_scores;
    std::vector<double> test_scores;
    std::size_t train_samples = 0;
    for (const Split& split : splits) {
      const std::vector<std::size_t> train_idx =
          subsample(split.train, fraction, x.rows(), rng);
      train_samples = train_idx.size();
      const Matrix x_train = take_rows(x, train_idx);
      const Vector y_train = take(y, train_idx);
      std::unique_ptr<Regressor> model = prototype.clone();
      model->fit(x_train, y_train);
      train_scores.push_back(r2_score(y_train, model->predict(x_train)));
      const Vector y_test = take(y, split.test);
      test_scores.push_back(
          r2_score(y_test, model->predict(take_rows(x, split.test))));
    }
    LearningCurvePoint point;
    point.train_fraction = fraction;
    point.train_samples = train_samples;
    point.train_r2_mean = linalg::mean(train_scores);
    point.train_r2_stddev = linalg::stddev(train_scores);
    point.test_r2_mean = linalg::mean(test_scores);
    point.test_r2_stddev = linalg::stddev(test_scores);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace ffr::ml
