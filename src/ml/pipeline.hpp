#pragma once
/// \file pipeline.hpp
/// \brief Scaler + model pipeline, so distance/kernel models always see
/// standardized features — the moral equivalent of scikit-learn's
/// `make_pipeline(StandardScaler(), model)`. The zoo (model_zoo.hpp) wraps
/// every distance/kernel model this way.

#include "ml/model.hpp"
#include "ml/scaler.hpp"

namespace ffr::ml {

/// A Regressor that standardizes features (StandardScaler, fitted on the
/// training matrix) before delegating to an inner model. Hyperparameter
/// access forwards to the inner model, so search/CV drive the pipeline
/// exactly like a bare model.
class ScaledPipeline final : public Regressor {
 public:
  /// Wraps `inner`; the scaler is fitted later, during fit().
  /// \throws std::invalid_argument when `inner` is null.
  explicit ScaledPipeline(std::unique_ptr<Regressor> inner)
      : inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("pipeline: null model");
  }

  /// Reassembles a pipeline from an already-fitted scaler and inner model;
  /// used by model loading (serialize.hpp).
  /// \throws std::invalid_argument when `inner` is null.
  ScaledPipeline(StandardScaler scaler, std::unique_ptr<Regressor> inner)
      : scaler_(std::move(scaler)), inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("pipeline: null model");
  }

  /// Deep copy, fitted scaler and inner model included.
  ScaledPipeline(const ScaledPipeline& other)
      : scaler_(other.scaler_), inner_(other.inner_->clone()) {}
  ScaledPipeline& operator=(const ScaledPipeline&) = delete;

  /// Fits the scaler on `x`, then the inner model on the scaled features.
  void fit(const Matrix& x, std::span<const double> y) override {
    scaler_.fit(x);
    inner_->fit(scaler_.transform(x), y);
  }

  /// Scales `x` with the fitted statistics and delegates to the inner model.
  [[nodiscard]] Vector predict(const Matrix& x) const override {
    return inner_->predict(scaler_.transform(x));
  }

  /// \return A deep copy, fitted state included.
  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<ScaledPipeline>(*this);
  }

  /// \return "scaled_" + the inner model's name.
  [[nodiscard]] std::string name() const override {
    return "scaled_" + inner_->name();
  }

  /// Forwards to the inner model.
  void set_params(const ParamMap& params) override { inner_->set_params(params); }
  /// Forwards to the inner model.
  [[nodiscard]] ParamMap get_params() const override { return inner_->get_params(); }
  /// \return Whether both the scaler and the inner model are fitted.
  [[nodiscard]] bool is_fitted() const noexcept override {
    return scaler_.is_fitted() && inner_->is_fitted();
  }

  /// Writes a `scaled_pipeline` block nesting the inner model's own block
  /// (see serialize.hpp). \throws std::logic_error when not fitted.
  void save(std::ostream& os) const override;

  /// \return The wrapped model (for diagnostics, e.g. support-vector counts).
  [[nodiscard]] const Regressor& inner() const noexcept { return *inner_; }

 private:
  StandardScaler scaler_;
  std::unique_ptr<Regressor> inner_;
};

/// Convenience: wrap a model in a standardizing pipeline.
template <typename Model, typename... Args>
[[nodiscard]] std::unique_ptr<Regressor> make_scaled(Args&&... args) {
  return std::make_unique<ScaledPipeline>(
      std::make_unique<Model>(std::forward<Args>(args)...));
}

}  // namespace ffr::ml
