#pragma once
// Scaler + model pipeline, so distance/kernel models always see
// standardized features (scikit-learn make_pipeline(StandardScaler(), ...)).

#include "ml/model.hpp"
#include "ml/scaler.hpp"

namespace ffr::ml {

class ScaledPipeline final : public Regressor {
 public:
  explicit ScaledPipeline(std::unique_ptr<Regressor> inner)
      : inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("pipeline: null model");
  }

  ScaledPipeline(const ScaledPipeline& other)
      : scaler_(other.scaler_), inner_(other.inner_->clone()) {}
  ScaledPipeline& operator=(const ScaledPipeline&) = delete;

  void fit(const Matrix& x, std::span<const double> y) override {
    scaler_.fit(x);
    inner_->fit(scaler_.transform(x), y);
  }

  [[nodiscard]] Vector predict(const Matrix& x) const override {
    return inner_->predict(scaler_.transform(x));
  }

  [[nodiscard]] std::unique_ptr<Regressor> clone() const override {
    return std::make_unique<ScaledPipeline>(*this);
  }

  [[nodiscard]] std::string name() const override {
    return "scaled_" + inner_->name();
  }

  void set_params(const ParamMap& params) override { inner_->set_params(params); }
  [[nodiscard]] ParamMap get_params() const override { return inner_->get_params(); }
  [[nodiscard]] bool is_fitted() const noexcept override {
    return scaler_.is_fitted() && inner_->is_fitted();
  }

  [[nodiscard]] const Regressor& inner() const noexcept { return *inner_; }

 private:
  StandardScaler scaler_;
  std::unique_ptr<Regressor> inner_;
};

/// Convenience: wrap a model in a standardizing pipeline.
template <typename Model, typename... Args>
[[nodiscard]] std::unique_ptr<Regressor> make_scaled(Args&&... args) {
  return std::make_unique<ScaledPipeline>(
      std::make_unique<Model>(std::forward<Args>(args)...));
}

}  // namespace ffr::ml
