#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "ml/serialize.hpp"

namespace ffr::ml {

SvrRegressor::SvrRegressor(SvrConfig config) : config_(config) {
  if (config.c <= 0.0) throw std::invalid_argument("svr: C must be > 0");
  if (config.epsilon < 0.0) throw std::invalid_argument("svr: epsilon >= 0");
  if (config.gamma <= 0.0) throw std::invalid_argument("svr: gamma must be > 0");
}

void SvrRegressor::set_params(const ParamMap& params) {
  for (const auto& [key, value] : params) {
    if (key == "C") {
      if (value <= 0) throw std::invalid_argument("svr: C must be > 0");
      config_.c = value;
    } else if (key == "epsilon") {
      if (value < 0) throw std::invalid_argument("svr: epsilon >= 0");
      config_.epsilon = value;
    } else if (key == "gamma") {
      if (value <= 0) throw std::invalid_argument("svr: gamma must be > 0");
      config_.gamma = value;
    } else if (key == "kernel") {
      config_.kernel = static_cast<SvrKernel>(static_cast<int>(value));
    } else if (key == "degree") {
      config_.poly_degree = static_cast<int>(value);
    } else {
      throw std::invalid_argument("svr: unknown parameter '" + key + "'");
    }
  }
}

ParamMap SvrRegressor::get_params() const {
  return {{"C", config_.c},
          {"epsilon", config_.epsilon},
          {"gamma", config_.gamma},
          {"kernel", static_cast<double>(static_cast<int>(config_.kernel))},
          {"degree", static_cast<double>(config_.poly_degree)}};
}

double SvrRegressor::kernel(std::span<const double> a,
                            std::span<const double> b) const {
  switch (config_.kernel) {
    case SvrKernel::kRbf: {
      double sq = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sq += d * d;
      }
      return std::exp(-config_.gamma * sq);
    }
    case SvrKernel::kLinear:
      return linalg::dot(a, b);
    case SvrKernel::kPoly:
      return std::pow(config_.gamma * linalg::dot(a, b) + 1.0,
                      config_.poly_degree);
  }
  throw std::logic_error("svr: unknown kernel");
}

void SvrRegressor::save(std::ostream& os) const {
  if (!fitted_) throw std::logic_error("svr save: not fitted");
  io::write_header(os, "svr");
  os << "config ";
  io::write_double(os, config_.c);
  os << ' ';
  io::write_double(os, config_.epsilon);
  os << ' ';
  io::write_double(os, config_.gamma);
  os << ' ' << static_cast<int>(config_.kernel) << ' ' << config_.poly_degree
     << ' ';
  io::write_double(os, config_.tol);
  os << ' ' << config_.max_passes << '\n';
  os << "n_features " << n_features_ << "\nbias ";
  io::write_double(os, bias_);
  os << '\n';
  io::write_matrix(os, "support_x", support_x_);
  io::write_vector(os, "support_beta", support_beta_);
  os << "end\n";
}

std::unique_ptr<SvrRegressor> SvrRegressor::load_body(std::istream& is) {
  io::expect_token(is, "config");
  SvrConfig config;
  config.c = io::read_double(is);
  config.epsilon = io::read_double(is);
  config.gamma = io::read_double(is);
  const std::uint64_t kernel = io::read_size(is);
  if (kernel > 2) {
    throw std::runtime_error("load_model: svr kernel must be 0..2, got " +
                             std::to_string(kernel));
  }
  config.kernel = static_cast<SvrKernel>(static_cast<int>(kernel));
  config.poly_degree = static_cast<int>(io::read_size(is));
  config.tol = io::read_double(is);
  config.max_passes = static_cast<std::size_t>(io::read_size(is));
  auto model = std::make_unique<SvrRegressor>(config);
  io::expect_token(is, "n_features");
  model->n_features_ = static_cast<std::size_t>(io::read_size(is));
  io::expect_token(is, "bias");
  model->bias_ = io::read_double(is);
  model->support_x_ = io::read_matrix(is, "support_x");
  model->support_beta_ = io::read_vector(is, "support_beta");
  if (model->support_beta_.size() != model->support_x_.rows()) {
    throw std::runtime_error(
        "load_model: svr support_x/support_beta row mismatch");
  }
  if (model->support_x_.rows() > 0 &&
      model->support_x_.cols() != model->n_features_) {
    throw std::runtime_error(
        "load_model: svr n_features " + std::to_string(model->n_features_) +
        " does not match support_x with " +
        std::to_string(model->support_x_.cols()) + " columns");
  }
  io::expect_token(is, "end");
  model->fitted_ = true;
  return model;
}

void SvrRegressor::fit(const Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  n_features_ = x.cols();
  const std::size_t n = x.rows();
  const double c = config_.c;
  const double eps = config_.epsilon;

  // Kernel matrix cache (n is ~1k at most in our workloads: fine).
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double kij = kernel(x.row(i), x.row(j));
      k(i, j) = kij;
      k(j, i) = kij;
    }
  }

  Vector beta(n, 0.0);
  Vector f(n, 0.0);  // f_i = sum_j beta_j K_ij (bias-free prediction)

  // Feasible-b interval per point, given beta_i's status (see DESIGN notes):
  // the optimum requires max_i low_i <= min_i up_i.
  const auto b_bounds = [&](std::size_t i) {
    const double e_i = y[i] - f[i];
    double low = -std::numeric_limits<double>::infinity();
    double up = std::numeric_limits<double>::infinity();
    const double margin = 1e-12 * std::max(1.0, c);
    if (beta[i] > margin && beta[i] < c - margin) {
      low = up = e_i - eps;
    } else if (beta[i] < -margin && beta[i] > -c + margin) {
      low = up = e_i + eps;
    } else if (std::abs(beta[i]) <= margin) {
      low = e_i - eps;
      up = e_i + eps;
    } else if (beta[i] >= c - margin) {
      up = e_i - eps;  // b can be anything <= E_i - eps
    } else {           // beta_i <= -c + margin
      low = e_i + eps;
    }
    return std::pair{low, up};
  };

  // Exact change of the dual objective when beta_i += delta, beta_j -= delta.
  const auto delta_objective = [&](std::size_t i, std::size_t j, double delta,
                                   double eta) {
    const double smooth =
        0.5 * eta * delta * delta + delta * ((f[i] - y[i]) - (f[j] - y[j]));
    const double l1 = eps * (std::abs(beta[i] + delta) - std::abs(beta[i]) +
                             std::abs(beta[j] - delta) - std::abs(beta[j]));
    return smooth + l1;
  };

  std::size_t passes = 0;
  double gap = std::numeric_limits<double>::infinity();
  while (passes < config_.max_passes) {
    // Most-violating pair: i maximizing low_i, j minimizing up_j.
    double max_low = -std::numeric_limits<double>::infinity();
    double min_up = std::numeric_limits<double>::infinity();
    std::size_t i_low = 0;
    std::size_t j_up = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const auto [low, up] = b_bounds(t);
      if (low > max_low) {
        max_low = low;
        i_low = t;
      }
      if (up < min_up) {
        min_up = up;
        j_up = t;
      }
    }
    gap = max_low - min_up;
    if (gap <= config_.tol) break;

    const std::size_t i = i_low;
    const std::size_t j = j_up;
    const double eta = k(i, i) + k(j, j) - 2.0 * k(i, j);

    // Candidate deltas: box ends, sign breakpoints, and the stationary
    // points of the four smooth branches; the exact 1-D objective picks.
    const double lo = std::max(-c - beta[i], beta[j] - c);
    const double hi = std::min(c - beta[i], beta[j] + c);
    if (hi <= lo) {
      ++passes;
      continue;
    }
    std::vector<double> candidates{lo, hi};
    const auto add_candidate = [&](double d) {
      if (d > lo && d < hi) candidates.push_back(d);
    };
    add_candidate(-beta[i]);
    add_candidate(beta[j]);
    if (eta > 1e-12) {
      const double base = -((f[i] - y[i]) - (f[j] - y[j]));
      for (const double si : {-1.0, 1.0}) {
        for (const double sj : {-1.0, 1.0}) {
          add_candidate((base - eps * si + eps * sj) / eta);
        }
      }
    }
    double best_delta = 0.0;
    double best_obj = 0.0;  // objective change of delta = 0
    for (const double d : candidates) {
      const double obj = delta_objective(i, j, d, eta);
      if (obj < best_obj - 1e-15) {
        best_obj = obj;
        best_delta = d;
      }
    }
    if (best_delta == 0.0) {
      // Numerically stuck on this pair; nudge the gap check forward.
      ++passes;
      continue;
    }
    beta[i] += best_delta;
    beta[j] -= best_delta;
    for (std::size_t t = 0; t < n; ++t) {
      f[t] += best_delta * (k(i, t) - k(j, t));
    }
    ++passes;
  }
  final_gap_ = gap;

  // Bias: midpoint of the residual feasible-b interval.
  {
    double max_low = -std::numeric_limits<double>::infinity();
    double min_up = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      const auto [low, up] = b_bounds(t);
      max_low = std::max(max_low, low);
      min_up = std::min(min_up, up);
    }
    if (std::isfinite(max_low) && std::isfinite(min_up)) {
      bias_ = 0.5 * (max_low + min_up);
    } else if (std::isfinite(max_low)) {
      bias_ = max_low;
    } else if (std::isfinite(min_up)) {
      bias_ = min_up;
    } else {
      bias_ = linalg::mean(y);
    }
  }

  // Keep only support vectors.
  std::vector<std::size_t> support;
  for (std::size_t t = 0; t < n; ++t) {
    if (std::abs(beta[t]) > 1e-10) support.push_back(t);
  }
  support_x_ = x.select_rows(support);
  support_beta_.clear();
  support_beta_.reserve(support.size());
  for (const std::size_t t : support) support_beta_.push_back(beta[t]);
  fitted_ = true;
}

Vector SvrRegressor::predict(const Matrix& x) const {
  if (!fitted_) throw std::logic_error("svr: not fitted");
  check_predict_args(name(), n_features_, x);
  Vector out(x.rows(), bias_);
  for (std::size_t q = 0; q < x.rows(); ++q) {
    const auto query = x.row(q);
    double acc = 0.0;
    for (std::size_t s = 0; s < support_x_.rows(); ++s) {
      acc += support_beta_[s] * kernel(support_x_.row(s), query);
    }
    out[q] += acc;
  }
  return out;
}

}  // namespace ffr::ml
