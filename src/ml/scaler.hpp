#pragma once
/// \file scaler.hpp
/// \brief Feature scaling. k-NN and SVR are distance/kernel based, so features
/// with large ranges (state-change counts in the thousands vs. 0-1 activity
/// ratios) must be standardized before training, exactly as a scikit-learn
/// pipeline would. For *cross-circuit* scaling — where the statistics must
/// come from each circuit's own feature matrix rather than the training
/// set — see features::DomainScaler (features/domain_scaler.hpp).

#include <iosfwd>

#include "linalg/matrix.hpp"

namespace ffr::ml {

/// Column-wise standardization: z = (x - mean) / std. Constant columns pass
/// through centred (their std is treated as 1). Fitted statistics persist
/// with the owning model via save()/load() (see serialize.hpp).
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation from `x`.
  /// \throws std::invalid_argument when `x` has no rows.
  void fit(const linalg::Matrix& x);

  /// Applies the fitted affine map column-wise.
  /// \throws std::logic_error before fit(); std::invalid_argument when the
  ///         column count differs from the fitted one (message names both).
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;

  /// fit() then transform() on the same matrix.
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x) {
    fit(x);
    return transform(x);
  }

  /// \return Whether fit() has been called.
  [[nodiscard]] bool is_fitted() const noexcept { return !mean_.empty(); }

  /// \return The fitted per-column means.
  [[nodiscard]] const linalg::Vector& means() const noexcept { return mean_; }

  /// \return The fitted per-column standard deviations (1 for constant columns).
  [[nodiscard]] const linalg::Vector& stddevs() const noexcept { return std_; }

  /// Writes the fitted statistics as a `scaler` block (serialize.hpp format).
  /// \throws std::logic_error before fit().
  void save(std::ostream& os) const;

  /// Reads a block written by save().
  /// \throws std::runtime_error on a malformed or truncated block.
  [[nodiscard]] static StandardScaler load(std::istream& is);

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
};

/// Column-wise range scaling: x' = (x - min) / (max - min), mapping every
/// column into [0, 1]. Constant columns map to 0.
class MinMaxScaler {
 public:
  /// Learns per-column min and range from `x`.
  /// \throws std::invalid_argument when `x` has no rows.
  void fit(const linalg::Matrix& x);

  /// Applies the fitted range map column-wise.
  /// \throws std::logic_error before fit(); std::invalid_argument when the
  ///         column count differs from the fitted one (message names both).
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;

  /// fit() then transform() on the same matrix.
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x) {
    fit(x);
    return transform(x);
  }

  /// \return Whether fit() has been called.
  [[nodiscard]] bool is_fitted() const noexcept { return !min_.empty(); }

 private:
  linalg::Vector min_;
  linalg::Vector range_;
};

}  // namespace ffr::ml
