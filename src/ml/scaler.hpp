#pragma once
// Feature scaling. k-NN and SVR are distance/kernel based, so features with
// large ranges (state-change counts in the thousands vs. 0-1 activity
// ratios) must be standardized before training, exactly as a scikit-learn
// pipeline would.

#include "linalg/matrix.hpp"

namespace ffr::ml {

/// z = (x - mean) / std, per column. Constant columns pass through centred.
class StandardScaler {
 public:
  void fit(const linalg::Matrix& x);
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x) {
    fit(x);
    return transform(x);
  }
  [[nodiscard]] bool is_fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] const linalg::Vector& means() const noexcept { return mean_; }
  [[nodiscard]] const linalg::Vector& stddevs() const noexcept { return std_; }

 private:
  linalg::Vector mean_;
  linalg::Vector std_;
};

/// x' = (x - min) / (max - min), per column, mapping into [0, 1].
class MinMaxScaler {
 public:
  void fit(const linalg::Matrix& x);
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x) {
    fit(x);
    return transform(x);
  }
  [[nodiscard]] bool is_fitted() const noexcept { return !min_.empty(); }

 private:
  linalg::Vector min_;
  linalg::Vector range_;
};

}  // namespace ffr::ml
