#pragma once
/// \file model_zoo.hpp
/// \brief Named model factory with the paper's tuned configurations, so benches,
/// examples and the estimation/transfer flows can request models uniformly.
/// Every zoo model is serializable: fit it, persist with Regressor::save()
/// (or save_model_file()), and reconstruct it — bit-identical predictions
/// included — with ml::load_model() (see serialize.hpp).

#include <memory>
#include <string_view>
#include <vector>

#include "ml/model.hpp"

namespace ffr::ml {

/// Constructs a zoo model by name. "paper" variants use the hyperparameters
/// the paper reports after its random+grid search (k-NN: k=3, Manhattan,
/// distance weights; SVR: RBF, C=3.5, gamma=0.055, epsilon=0.025). All
/// distance/kernel models are wrapped in a standardizing pipeline.
///
/// Names: "linear", "ridge", "knn_paper", "knn", "svr_paper", "svr",
/// "decision_tree", "random_forest", "gradient_boosting".
/// \throws std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<Regressor> make_model(std::string_view name);

/// All zoo names (for iteration in benches/tests).
[[nodiscard]] std::vector<std::string_view> model_zoo_names();

}  // namespace ffr::ml
