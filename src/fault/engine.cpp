#include "fault/engine.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "sim/wide_runner.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ffr::fault {

namespace {

void validate_checkpoint_interval(std::size_t interval, std::size_t num_cycles) {
  if (interval == 0) {
    throw std::invalid_argument(
        "CampaignEngine: checkpoint_interval must be >= 1");
  }
  if (interval > num_cycles) {
    throw std::invalid_argument(
        "CampaignEngine: checkpoint_interval (" + std::to_string(interval) +
        ") exceeds the " + std::to_string(num_cycles) + "-cycle testbench");
  }
}

/// One injection of the flat campaign-wide job list; job j is lane
/// j % block_lanes of pass j / block_lanes.
struct Job {
  std::uint32_t task;
  std::uint32_t cycle;
};

struct WorkerCost {
  std::uint64_t cycles = 0;
  std::uint64_t ops = 0;
  std::uint64_t restores = 0;
};

/// SIMD lane-block pass executor: slices the job list into W * 64-lane
/// blocks and replays each block on a per-worker WideReplayRunner<W>. The
/// per-job outcomes are written disjointly, exactly like the scalar path —
/// science output can never depend on scheduling or block width.
template <std::size_t W>
void run_wide_passes(const sim::CompiledStimulus& stimulus,
                     std::span<const netlist::CellId> ffs,
                     const std::vector<std::size_t>& subset,
                     const std::vector<Job>& jobs,
                     const sim::FrameList& golden_frames,
                     const sim::GoldenCheckpoints* ckpts,
                     const CampaignConfig& config,
                     util::ThreadPool& pool,
                     std::vector<FailureClass>& outcome,
                     std::vector<WorkerCost>& costs) {
  constexpr std::size_t kBlockLanes = sim::LaneBlock<W>::kLanes;
  const std::size_t num_passes = (jobs.size() + kBlockLanes - 1) / kBlockLanes;
  std::vector<std::unique_ptr<sim::WideReplayRunner<W>>> runners(pool.size());
  pool.parallel_for_chunked(
      num_passes, config.batch_size,
      [&](std::size_t pass_begin, std::size_t pass_end, std::size_t worker) {
        if (!runners[worker]) {
          runners[worker] = std::make_unique<sim::WideReplayRunner<W>>(stimulus);
        }
        sim::WideReplayRunner<W>& runner = *runners[worker];
        sim::WideRunOptions options;
        options.resume = ckpts;
        options.incremental_eval =
            config.replay_mode == ReplayMode::kIncremental;
        std::vector<sim::LaneInjection> events;
        events.reserve(kBlockLanes);
        for (std::size_t pass = pass_begin; pass < pass_end; ++pass) {
          const std::size_t job_begin = pass * kBlockLanes;
          const std::size_t job_end =
              std::min(jobs.size(), job_begin + kBlockLanes);
          events.clear();
          for (std::size_t j = job_begin; j < job_end; ++j) {
            sim::LaneInjection ev;
            ev.ff_cell = ffs[subset[jobs[j].task]];
            ev.cycle = jobs[j].cycle;
            ev.lane = static_cast<std::uint32_t>(j - job_begin);
            events.push_back(ev);
          }
          const sim::RunResult run = runner.run(events, options);
          for (std::size_t j = job_begin; j < job_end; ++j) {
            outcome[j] = classify(golden_frames, run.lane_frames[j - job_begin]);
          }
          costs[worker].cycles += run.cycles_simulated;
          costs[worker].ops += run.ops_evaluated;
          if (run.start_cycle > 0) ++costs[worker].restores;
        }
      });
}

}  // namespace

CampaignEngine::CampaignEngine(const netlist::Netlist& nl, const sim::Testbench& tb)
    : nl_(&nl), tb_(&tb), stimulus_(nl, tb) {
  sim::ReplayRunner runner(stimulus_);
  sim::RunOptions options;
  options.trace_activity = true;
  // Record checkpoints during the one golden run the engine pays anyway.
  // Short testbenches clamp the default interval; run() still validates the
  // caller's interval strictly.
  auto checkpoints = std::make_shared<sim::GoldenCheckpoints>();
  const std::size_t num_cycles = stimulus_.num_cycles();
  if (num_cycles > 0) {
    checkpoints->interval =
        std::min(CampaignConfig{}.checkpoint_interval, num_cycles);
    options.record = checkpoints.get();
  }
  sim::RunResult run = runner.run({}, options);
  golden_.frames = std::move(run.lane_frames[0]);
  golden_.activity = std::move(run.activity);
  golden_.eval_count = run.eval_count;
  if (options.record != nullptr) {
    checkpoints_by_interval_[checkpoints->interval] = std::move(checkpoints);
  }
}

std::shared_ptr<const sim::GoldenCheckpoints> CampaignEngine::checkpoints(
    std::size_t interval) const {
  validate_checkpoint_interval(interval, stimulus_.num_cycles());
  {
    std::lock_guard<std::mutex> lock(checkpoints_mutex_);
    auto it = checkpoints_by_interval_.find(interval);
    if (it != checkpoints_by_interval_.end()) return it->second;
  }
  // Record outside the lock: a golden replay takes a while at paper scale
  // and must not serialize concurrent run() calls. If two threads race on
  // the same interval, one recording wins and the other is dropped —
  // snapshots for a given interval are identical either way.
  auto fresh = std::make_shared<sim::GoldenCheckpoints>();
  fresh->interval = interval;
  sim::ReplayRunner runner(stimulus_);
  sim::RunOptions options;
  options.record = fresh.get();
  (void)runner.run({}, options);
  std::lock_guard<std::mutex> lock(checkpoints_mutex_);
  return checkpoints_by_interval_.emplace(interval, std::move(fresh))
      .first->second;
}

CampaignResult CampaignEngine::run(const CampaignConfig& config) const {
  if (tb_->inject_end <= tb_->inject_begin) {
    throw std::invalid_argument("CampaignEngine::run: empty injection window");
  }
  validate_checkpoint_interval(config.checkpoint_interval,
                               stimulus_.num_cycles());
  const auto ffs = nl_->flip_flops();
  const std::vector<std::size_t> subset = resolve_ff_subset(config, ffs.size());

  // Resolve the SIMD block width up front: kAuto picks the host's native
  // width, explicit requests wider than the host falls back with a warning.
  const sim::ResolvedLaneWidth resolved = sim::resolve_lane_width(config.lane_width);
  const std::size_t block_lanes = sim::lanes_of(resolved.width);

  util::Stopwatch stopwatch;
  CampaignResult result;
  result.per_ff.resize(subset.size());
  result.lanes_per_pass = block_lanes;
  if (!resolved.warning.empty()) result.warnings.push_back(resolved.warning);

  // Flat job list in deterministic (task-major, schedule-order) order: job j
  // is one injection. Slicing it into block_lanes-lane passes packs lanes
  // across flip-flop boundaries, which is where the pass saving over the
  // flat campaign comes from.
  std::vector<Job> jobs;
  jobs.reserve(subset.size() * config.injections_per_ff);
  for (std::size_t task = 0; task < subset.size(); ++task) {
    const std::size_t ff_index = subset[task];
    FfResult& ff_result = result.per_ff[task];
    ff_result.ff_index = ff_index;
    ff_result.name = nl_->cell(ffs[ff_index]).name;
    ff_result.injections = config.injections_per_ff;
    for (const std::size_t cycle : injection_cycles(config, *tb_, ff_index)) {
      jobs.push_back(Job{static_cast<std::uint32_t>(task),
                         static_cast<std::uint32_t>(cycle)});
    }
  }

  // Checkpointed replay starts each pass at the latest checkpoint before its
  // EARLIEST injection, so the saving is governed by the slowest lane:
  // sorting jobs by injection cycle makes the lanes of one pass share a
  // late start. The stable sort keeps job order deterministic; per-job
  // outcomes are lane-independent, so sorting can never change the science.
  const bool checkpointed = config.replay_mode != ReplayMode::kFull;
  if (checkpointed) {
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) { return a.cycle < b.cycle; });
  }
  const std::shared_ptr<const sim::GoldenCheckpoints> ckpts =
      checkpointed ? checkpoints(config.checkpoint_interval) : nullptr;

  const std::size_t num_passes = (jobs.size() + block_lanes - 1) / block_lanes;
  // Per-job outcome, written disjointly by the workers and reduced serially
  // afterwards — science output can never depend on scheduling.
  std::vector<FailureClass> outcome(jobs.size(), FailureClass::kOk);

  util::ThreadPool pool(config.num_threads);
  std::vector<WorkerCost> costs(pool.size());
  if (resolved.width == sim::LaneWidth::k256) {
    run_wide_passes<4>(stimulus_, ffs, subset, jobs, golden_.frames,
                       ckpts.get(), config, pool, outcome, costs);
  } else if (resolved.width == sim::LaneWidth::k512) {
    run_wide_passes<8>(stimulus_, ffs, subset, jobs, golden_.frames,
                       ckpts.get(), config, pool, outcome, costs);
  } else {
    // Scalar 64-lane path — byte-for-byte the pre-SIMD engine behaviour and
    // the reference every wider block width is differentially tested against.
    std::vector<std::unique_ptr<sim::ReplayRunner>> runners(pool.size());
    pool.parallel_for_chunked(
        num_passes, config.batch_size,
        [&](std::size_t pass_begin, std::size_t pass_end, std::size_t worker) {
          if (!runners[worker]) {
            runners[worker] = std::make_unique<sim::ReplayRunner>(stimulus_);
          }
          sim::ReplayRunner& runner = *runners[worker];
          sim::RunOptions options;
          options.resume = ckpts.get();
          options.incremental_eval =
              config.replay_mode == ReplayMode::kIncremental;
          std::vector<sim::InjectionEvent> events;
          events.reserve(sim::kNumLanes);
          for (std::size_t pass = pass_begin; pass < pass_end; ++pass) {
            const std::size_t job_begin = pass * sim::kNumLanes;
            const std::size_t job_end =
                std::min(jobs.size(), job_begin + sim::kNumLanes);
            events.clear();
            for (std::size_t j = job_begin; j < job_end; ++j) {
              sim::InjectionEvent ev;
              ev.ff_cell = ffs[subset[jobs[j].task]];
              ev.cycle = jobs[j].cycle;
              ev.lane_mask = sim::Lanes{1} << (j - job_begin);
              events.push_back(ev);
            }
            const sim::RunResult run = runner.run(events, options);
            for (std::size_t j = job_begin; j < job_end; ++j) {
              outcome[j] =
                  classify(golden_.frames, run.lane_frames[j - job_begin]);
            }
            costs[worker].cycles += run.cycles_simulated;
            costs[worker].ops += run.ops_evaluated;
            if (run.start_cycle > 0) ++costs[worker].restores;
          }
        });
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    result.per_ff[jobs[j].task].classes.add(outcome[j]);
  }
  result.total_sim_passes = num_passes;
  result.total_injections = jobs.size();
  for (const WorkerCost& cost : costs) {
    result.cycles_simulated += cost.cycles;
    result.ops_evaluated += cost.ops;
    result.checkpoint_restores += cost.restores;
  }
  result.wall_seconds = stopwatch.elapsed_seconds();
  return result;
}

CampaignResult CampaignEngine::run_cached(
    const CampaignConfig& config, const std::filesystem::path& cache_path) const {
  if (auto cached = load_campaign_cache(*nl_, config, cache_path)) {
    return *std::move(cached);
  }
  CampaignResult fresh = run(config);
  if (!cache_path.empty()) {
    std::filesystem::create_directories(cache_path.parent_path());
    fresh.save_csv(cache_path);
  }
  return fresh;
}

}  // namespace ffr::fault
