#include "fault/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ffr::fault {

CampaignEngine::CampaignEngine(const netlist::Netlist& nl, const sim::Testbench& tb)
    : nl_(&nl), tb_(&tb), stimulus_(nl, tb) {
  sim::ReplayRunner runner(stimulus_);
  sim::RunOptions options;
  options.trace_activity = true;
  sim::RunResult run = runner.run({}, options);
  golden_.frames = std::move(run.lane_frames[0]);
  golden_.activity = std::move(run.activity);
  golden_.eval_count = run.eval_count;
}

CampaignResult CampaignEngine::run(const CampaignConfig& config) const {
  if (tb_->inject_end <= tb_->inject_begin) {
    throw std::invalid_argument("CampaignEngine::run: empty injection window");
  }
  const auto ffs = nl_->flip_flops();
  const std::vector<std::size_t> subset = resolve_ff_subset(config, ffs.size());

  util::Stopwatch stopwatch;
  CampaignResult result;
  result.per_ff.resize(subset.size());

  // Flat job list in deterministic (task-major, schedule-order) order: job j
  // is one injection. Slicing it into 64-lane passes packs lanes across
  // flip-flop boundaries, which is where the pass saving over the flat
  // campaign comes from.
  struct Job {
    std::uint32_t task;
    std::uint32_t cycle;
  };
  std::vector<Job> jobs;
  jobs.reserve(subset.size() * config.injections_per_ff);
  for (std::size_t task = 0; task < subset.size(); ++task) {
    const std::size_t ff_index = subset[task];
    FfResult& ff_result = result.per_ff[task];
    ff_result.ff_index = ff_index;
    ff_result.name = nl_->cell(ffs[ff_index]).name;
    ff_result.injections = config.injections_per_ff;
    for (const std::size_t cycle : injection_cycles(config, *tb_, ff_index)) {
      jobs.push_back(Job{static_cast<std::uint32_t>(task),
                         static_cast<std::uint32_t>(cycle)});
    }
  }

  const std::size_t num_passes =
      (jobs.size() + sim::kNumLanes - 1) / sim::kNumLanes;
  // Per-job outcome, written disjointly by the workers and reduced serially
  // afterwards — science output can never depend on scheduling.
  std::vector<FailureClass> outcome(jobs.size(), FailureClass::kOk);

  util::ThreadPool pool(config.num_threads);
  std::vector<std::unique_ptr<sim::ReplayRunner>> runners(pool.size());
  pool.parallel_for_chunked(
      num_passes, config.batch_size,
      [&](std::size_t pass_begin, std::size_t pass_end, std::size_t worker) {
        if (!runners[worker]) {
          runners[worker] = std::make_unique<sim::ReplayRunner>(stimulus_);
        }
        sim::ReplayRunner& runner = *runners[worker];
        std::vector<sim::InjectionEvent> events;
        events.reserve(sim::kNumLanes);
        for (std::size_t pass = pass_begin; pass < pass_end; ++pass) {
          const std::size_t job_begin = pass * sim::kNumLanes;
          const std::size_t job_end =
              std::min(jobs.size(), job_begin + sim::kNumLanes);
          events.clear();
          for (std::size_t j = job_begin; j < job_end; ++j) {
            sim::InjectionEvent ev;
            ev.ff_cell = ffs[subset[jobs[j].task]];
            ev.cycle = jobs[j].cycle;
            ev.lane_mask = sim::Lanes{1} << (j - job_begin);
            events.push_back(ev);
          }
          const sim::RunResult run = runner.run(events);
          for (std::size_t j = job_begin; j < job_end; ++j) {
            outcome[j] =
                classify(golden_.frames, run.lane_frames[j - job_begin]);
          }
        }
      });

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    result.per_ff[jobs[j].task].classes.add(outcome[j]);
  }
  result.total_sim_passes = num_passes;
  result.total_injections = jobs.size();
  result.wall_seconds = stopwatch.elapsed_seconds();
  return result;
}

CampaignResult CampaignEngine::run_cached(
    const CampaignConfig& config, const std::filesystem::path& cache_path) const {
  if (auto cached = load_campaign_cache(*nl_, config, cache_path)) {
    return *std::move(cached);
  }
  CampaignResult fresh = run(config);
  if (!cache_path.empty()) {
    std::filesystem::create_directories(cache_path.parent_path());
    fresh.save_csv(cache_path);
  }
  return fresh;
}

}  // namespace ffr::fault
