#include "fault/engine.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "sim/wide_runner.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ffr::fault {

namespace {

/// Per-pass net-state footprint budget for auto blocks_per_pass: one block
/// of a W-lane pass costs num_nets * W / 8 bytes of hot value storage, and
/// sweeping more blocks only helps while the working set stays cache-class.
/// 1 MB lands relay_core (5739 nets, 359 KB per 512-lane block) on 2 blocks
/// per pass — the fastest measured shape (bench_sfi_campaign: 2 blocks beat
/// 1/4/8 at 512 lanes; 4 blocks already spill mid-level cache). A fixed
/// constant (not a host probe) keeps schedules and deterministic counters
/// machine-independent.
constexpr std::size_t kAutoBlockFootprintBytes = std::size_t{1} << 20;

void validate_checkpoint_interval(std::size_t interval, std::size_t num_cycles) {
  if (interval == 0) {
    throw std::invalid_argument(
        "CampaignEngine: checkpoint_interval must be >= 1");
  }
  if (interval > num_cycles) {
    throw std::invalid_argument(
        "CampaignEngine: checkpoint_interval (" + std::to_string(interval) +
        ") exceeds the " + std::to_string(num_cycles) + "-cycle testbench");
  }
}

/// One injection of the flat campaign-wide job list; the pass schedule
/// (build_pass_schedule) slices this list into contiguous job ranges.
struct Job {
  std::uint32_t task;
  std::uint32_t cycle;
};

struct WorkerCost {
  std::uint64_t cycles = 0;
  std::uint64_t ops = 0;
  std::uint64_t restores = 0;
};

/// SIMD lane-block pass executor for every scheduled pass of one block
/// width W: replays each planned pass on a per-worker WideReplayRunner<W>
/// sized to that pass's block count. The per-job outcomes are written
/// disjointly, exactly like the scalar path — science output can never
/// depend on scheduling, block width or block count.
template <std::size_t W>
void run_wide_group(const sim::CompiledStimulus& stimulus,
                    std::span<const netlist::CellId> ffs,
                    const std::vector<std::size_t>& subset,
                    const std::vector<Job>& jobs,
                    const std::vector<PlannedPass>& schedule,
                    const std::vector<std::size_t>& pass_indices,
                    const sim::FrameList& golden_frames,
                    const sim::GoldenCheckpoints* ckpts,
                    const CampaignConfig& config,
                    util::ThreadPool& pool,
                    std::vector<FailureClass>& outcome,
                    std::vector<WorkerCost>& costs) {
  // One runner per (worker, block count): the levelized op list is rebuilt
  // only when a worker first sees a block count, not per pass.
  std::vector<std::array<std::unique_ptr<sim::WideReplayRunner<W>>,
                         sim::kMaxLaneBlocksPerPass + 1>>
      runners(pool.size());
  pool.parallel_for_chunked(
      pass_indices.size(), config.batch_size,
      [&](std::size_t begin, std::size_t end, std::size_t worker) {
        sim::WideRunOptions options;
        options.resume = ckpts;
        options.incremental_eval =
            config.replay_mode == ReplayMode::kIncremental;
        std::vector<sim::LaneInjection> events;
        for (std::size_t i = begin; i < end; ++i) {
          const PlannedPass& pass = schedule[pass_indices[i]];
          auto& slot = runners[worker][pass.blocks];
          if (!slot) {
            slot = std::make_unique<sim::WideReplayRunner<W>>(stimulus,
                                                              pass.blocks);
          }
          sim::WideReplayRunner<W>& runner = *slot;
          events.clear();
          events.reserve(pass.job_end - pass.job_begin);
          for (std::size_t j = pass.job_begin; j < pass.job_end; ++j) {
            sim::LaneInjection ev;
            ev.ff_cell = ffs[subset[jobs[j].task]];
            ev.cycle = jobs[j].cycle;
            ev.lane = static_cast<std::uint32_t>(j - pass.job_begin);
            events.push_back(ev);
          }
          const sim::RunResult run = runner.run(events, options);
          for (std::size_t j = pass.job_begin; j < pass.job_end; ++j) {
            outcome[j] =
                classify(golden_frames, run.lane_frames[j - pass.job_begin]);
          }
          costs[worker].cycles += run.cycles_simulated;
          costs[worker].ops += run.ops_evaluated;
          if (run.start_cycle > 0) ++costs[worker].restores;
        }
      });
}

}  // namespace

std::vector<PlannedPass> build_pass_schedule(std::size_t num_jobs,
                                             std::size_t full_width,
                                             std::size_t full_blocks) {
  std::vector<PlannedPass> schedule;
  if (num_jobs == 0) return schedule;
  std::size_t cursor = 0;
  const auto emit = [&](std::size_t width, std::size_t blocks) {
    PlannedPass pass;
    pass.width = width;
    pass.blocks = blocks;
    pass.job_begin = cursor;
    pass.job_end = std::min(num_jobs, cursor + width * blocks);
    cursor = pass.job_end;
    schedule.push_back(pass);
  };

  // Full-shape passes while whole ones fit.
  const std::size_t capacity = full_width * full_blocks;
  while (num_jobs - cursor >= capacity) emit(full_width, full_blocks);

  // Re-slice the ragged tail widest-first over the shapes the campaign may
  // use (never wider than the full shape): r remaining 64-lane words are
  // packed into as few, as-wide-as-useful passes as possible. Cost per pass
  // grows with width (wider SIMD kernels touch more state), so a tail that
  // fits narrower shapes exactly beats one mostly-masked full-width pass.
  std::size_t r = (num_jobs - cursor + 63) / 64;
  for (const std::size_t width : {std::size_t{512}, std::size_t{256}}) {
    if (width > full_width) continue;
    const std::size_t words = width / 64;
    while (r >= words) {
      const std::size_t blocks = std::min(full_blocks, r / words);
      emit(width, blocks);
      r -= words * blocks;
    }
  }
  if (full_width == 64) {
    // Scalar-width campaigns: multi-block 64-lane passes until the tail is
    // gone. With full_blocks == 1 this degenerates to ceil(num_jobs / 64)
    // scalar passes — the reference path, byte-identical to the pre-adaptive
    // engine.
    while (r > 0) {
      const std::size_t blocks = std::min(full_blocks, r);
      emit(64, blocks);
      r -= blocks;
    }
  } else if (r > 0) {
    // Residual words (r in [1, 3]) below the narrowest SIMD shape used.
    if (r <= full_blocks) {
      emit(64, r);  // exact multi-block scalar-width pass
    } else if (r == 2) {
      emit(64, 1);  // 64+64 beats one mostly-masked 256
      emit(64, 1);
    } else {
      emit(256, 1);  // r == 3 with full_blocks < 3: one masked 256 pass
    }
  }
  return schedule;
}

std::size_t resolve_blocks_per_pass(std::size_t requested,
                                    std::size_t width_lanes,
                                    std::size_t num_nets,
                                    std::string* warning) {
  if (requested == 0) {
    // The 64-lane reference path is never widened implicitly: adaptive
    // block selection must not change the pinned scalar pass counts.
    if (width_lanes <= sim::kNumLanes) return 1;
    const std::size_t bytes_per_block =
        std::max<std::size_t>(1, num_nets) * (width_lanes / 8);
    std::size_t blocks = sim::kMaxLaneBlocksPerPass;
    while (blocks > 1 && blocks * bytes_per_block > kAutoBlockFootprintBytes) {
      blocks /= 2;
    }
    return blocks;
  }
  if (requested > sim::kMaxLaneBlocksPerPass) {
    if (warning != nullptr) {
      *warning = "blocks_per_pass " + std::to_string(requested) +
                 " exceeds the supported maximum; clamped to " +
                 std::to_string(sim::kMaxLaneBlocksPerPass) + " blocks";
    }
    return sim::kMaxLaneBlocksPerPass;
  }
  return requested;
}

CampaignEngine::CampaignEngine(const netlist::Netlist& nl, const sim::Testbench& tb)
    : nl_(&nl), tb_(&tb), stimulus_(nl, tb) {
  // The golden run rides the wide path (single block, W = 1): golden state
  // is broadcast on every lane, so frames, activity and packed checkpoints
  // are bit-identical to a scalar ReplayRunner run — which the differential
  // suite verifies against sim::run_golden.
  sim::WideReplayRunner<1> runner(stimulus_);
  sim::WideRunOptions options;
  options.trace_activity = true;
  // Record checkpoints during the one golden run the engine pays anyway.
  // Short testbenches clamp the default interval; run() still validates the
  // caller's interval strictly.
  auto checkpoints = std::make_shared<sim::GoldenCheckpoints>();
  const std::size_t num_cycles = stimulus_.num_cycles();
  if (num_cycles > 0) {
    checkpoints->interval =
        std::min(CampaignConfig{}.checkpoint_interval, num_cycles);
    options.record = checkpoints.get();
  }
  sim::RunResult run = runner.run({}, options);
  golden_.frames = std::move(run.lane_frames[0]);
  golden_.activity = std::move(run.activity);
  golden_.eval_count = run.eval_count;
  if (options.record != nullptr) {
    checkpoints_by_interval_[checkpoints->interval] = std::move(checkpoints);
  }
}

std::shared_ptr<const sim::GoldenCheckpoints> CampaignEngine::checkpoints(
    std::size_t interval) const {
  validate_checkpoint_interval(interval, stimulus_.num_cycles());
  {
    std::lock_guard<std::mutex> lock(checkpoints_mutex_);
    auto it = checkpoints_by_interval_.find(interval);
    if (it != checkpoints_by_interval_.end()) return it->second;
  }
  // Record outside the lock: a golden replay takes a while at paper scale
  // and must not serialize concurrent run() calls. If two threads race on
  // the same interval, one recording wins and the other is dropped —
  // snapshots for a given interval are identical either way.
  auto fresh = std::make_shared<sim::GoldenCheckpoints>();
  fresh->interval = interval;
  sim::WideReplayRunner<1> runner(stimulus_);
  sim::WideRunOptions options;
  options.record = fresh.get();
  (void)runner.run({}, options);
  std::lock_guard<std::mutex> lock(checkpoints_mutex_);
  return checkpoints_by_interval_.emplace(interval, std::move(fresh))
      .first->second;
}

std::size_t CampaignEngine::resident_bytes() const {
  std::size_t bytes = sizeof(*this) + stimulus_.memory_bytes();
  for (const sim::Frame& frame : golden_.frames) {
    bytes += sizeof(sim::Frame) + frame.bytes.size();
  }
  bytes += golden_.activity.cycles_at_1.size() * sizeof(std::uint64_t);
  bytes += golden_.activity.state_changes.size() * sizeof(std::uint64_t);
  std::lock_guard<std::mutex> lock(checkpoints_mutex_);
  for (const auto& [interval, checkpoints] : checkpoints_by_interval_) {
    bytes += checkpoints->memory_bytes();
  }
  return bytes;
}

CampaignResult CampaignEngine::run(const CampaignConfig& config) const {
  if (tb_->inject_end <= tb_->inject_begin) {
    throw std::invalid_argument("CampaignEngine::run: empty injection window");
  }
  if (config.shard.count == 0) {
    throw std::invalid_argument("CampaignEngine::run: shard count must be >= 1");
  }
  if (config.shard.index >= config.shard.count) {
    throw std::invalid_argument(
        "CampaignEngine::run: shard index " +
        std::to_string(config.shard.index) + " out of range for " +
        std::to_string(config.shard.count) + " shards");
  }
  validate_checkpoint_interval(config.checkpoint_interval,
                               stimulus_.num_cycles());
  const auto ffs = nl_->flip_flops();
  const std::vector<std::size_t> subset = resolve_ff_subset(config, ffs.size());

  // Resolve the SIMD block width and block count up front: kAuto width picks
  // the host's native width (explicit requests wider than the host fall back
  // with a warning); blocks_per_pass = 0 auto-sizes against the fixed cache
  // budget at the resolved width.
  const sim::ResolvedLaneWidth resolved = sim::resolve_lane_width(config.lane_width);
  const std::size_t block_lanes = sim::lanes_of(resolved.width);
  std::string blocks_warning;
  const std::size_t blocks = resolve_blocks_per_pass(
      config.blocks_per_pass, block_lanes, nl_->num_nets(), &blocks_warning);

  util::Stopwatch stopwatch;
  CampaignResult result;
  result.per_ff.resize(subset.size());
  result.lanes_per_pass = block_lanes * blocks;
  result.blocks_per_pass = blocks;
  if (!resolved.warning.empty()) result.warnings.push_back(resolved.warning);
  if (!blocks_warning.empty()) result.warnings.push_back(blocks_warning);

  // Flat job list in deterministic (task-major, schedule-order) order: job j
  // is one injection. Slicing it into lane-block passes packs lanes across
  // flip-flop boundaries, which is where the pass saving over the flat
  // campaign comes from.
  std::vector<Job> jobs;
  jobs.reserve(subset.size() * config.injections_per_ff);
  for (std::size_t task = 0; task < subset.size(); ++task) {
    const std::size_t ff_index = subset[task];
    FfResult& ff_result = result.per_ff[task];
    ff_result.ff_index = ff_index;
    ff_result.name = nl_->cell(ffs[ff_index]).name;
    for (const std::size_t cycle : injection_cycles(config, *tb_, ff_index)) {
      jobs.push_back(Job{static_cast<std::uint32_t>(task),
                         static_cast<std::uint32_t>(cycle)});
    }
  }

  // Checkpointed replay starts each pass at the latest checkpoint before its
  // EARLIEST injection, so the saving is governed by the slowest lane:
  // sorting jobs by injection cycle makes the lanes of one pass share a
  // late start. The stable sort keeps job order deterministic; per-job
  // outcomes are lane-independent, so sorting can never change the science.
  const bool checkpointed = config.replay_mode != ReplayMode::kFull;
  if (checkpointed) {
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) { return a.cycle < b.cycle; });
  }
  const std::shared_ptr<const sim::GoldenCheckpoints> ckpts =
      checkpointed ? checkpoints(config.checkpoint_interval) : nullptr;
  if (ckpts) {
    result.checkpoint_bytes = ckpts->memory_bytes();
    result.checkpoint_bytes_unpacked = ckpts->broadcast_word_bytes();
  }

  // Adaptive pass schedule: full (width x blocks) passes plus a re-sliced
  // tail. Deterministic given (jobs, width, blocks), so pass counts are
  // exact regression-guard counters. The schedule is always planned over the
  // FULL job list — a k-of-N shard then owns every N-th pass (round-robin,
  // so the expensive early-injection passes of checkpointed replay spread
  // evenly). Each pass's outcomes and cost counters depend only on its own
  // job range, never on which other passes run in the same process, which is
  // what makes merged shard partials bit-identical to an unsharded run.
  const std::vector<PlannedPass> schedule =
      build_pass_schedule(jobs.size(), block_lanes, blocks);
  std::vector<std::size_t> owned;
  owned.reserve(schedule.size() / config.shard.count + 1);
  for (std::size_t p = config.shard.index; p < schedule.size();
       p += config.shard.count) {
    owned.push_back(p);
  }
  for (const std::size_t p : owned) {
    const PlannedPass& pass = schedule[p];
    auto it = std::find_if(result.pass_histogram.begin(),
                           result.pass_histogram.end(),
                           [&](const PassShapeCount& shape) {
                             return shape.width == pass.width &&
                                    shape.blocks == pass.blocks;
                           });
    if (it == result.pass_histogram.end()) {
      result.pass_histogram.push_back(PassShapeCount{pass.width, pass.blocks, 1});
    } else {
      ++it->passes;
    }
  }

  // Per-job outcome, written disjointly by the workers and reduced serially
  // afterwards — science output can never depend on scheduling. Jobs outside
  // this shard's passes stay untouched and are never accumulated.
  std::vector<FailureClass> outcome(jobs.size(), FailureClass::kOk);

  util::ThreadPool pool(config.num_threads);
  std::vector<WorkerCost> costs(pool.size());
  if (block_lanes == sim::kNumLanes && blocks == 1) {
    // Scalar 64-lane path — byte-for-byte the pre-SIMD engine behaviour and
    // the reference every wider shape is differentially tested against. The
    // schedule is exactly ceil(jobs / 64) single-block passes here.
    std::vector<std::unique_ptr<sim::ReplayRunner>> runners(pool.size());
    pool.parallel_for_chunked(
        owned.size(), config.batch_size,
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          if (!runners[worker]) {
            runners[worker] = std::make_unique<sim::ReplayRunner>(stimulus_);
          }
          sim::ReplayRunner& runner = *runners[worker];
          sim::RunOptions options;
          options.resume = ckpts.get();
          options.incremental_eval =
              config.replay_mode == ReplayMode::kIncremental;
          std::vector<sim::InjectionEvent> events;
          events.reserve(sim::kNumLanes);
          for (std::size_t i = begin; i < end; ++i) {
            const PlannedPass& pass = schedule[owned[i]];
            events.clear();
            for (std::size_t j = pass.job_begin; j < pass.job_end; ++j) {
              sim::InjectionEvent ev;
              ev.ff_cell = ffs[subset[jobs[j].task]];
              ev.cycle = jobs[j].cycle;
              ev.lane_mask = sim::Lanes{1} << (j - pass.job_begin);
              events.push_back(ev);
            }
            const sim::RunResult run = runner.run(events, options);
            for (std::size_t j = pass.job_begin; j < pass.job_end; ++j) {
              outcome[j] =
                  classify(golden_.frames, run.lane_frames[j - pass.job_begin]);
            }
            costs[worker].cycles += run.cycles_simulated;
            costs[worker].ops += run.ops_evaluated;
            if (run.start_cycle > 0) ++costs[worker].restores;
          }
        });
  } else {
    // Group the owned passes by block width and dispatch each group to its
    // templated executor; a narrower-tail pass of a 512-lane campaign runs
    // on the narrow kernel it was planned for.
    std::vector<std::size_t> by_width[3];  // 64, 256, 512
    for (const std::size_t p : owned) {
      switch (schedule[p].width) {
        case 64: by_width[0].push_back(p); break;
        case 256: by_width[1].push_back(p); break;
        default: by_width[2].push_back(p); break;
      }
    }
    if (!by_width[0].empty()) {
      run_wide_group<1>(stimulus_, ffs, subset, jobs, schedule, by_width[0],
                        golden_.frames, ckpts.get(), config, pool, outcome,
                        costs);
    }
    if (!by_width[1].empty()) {
      run_wide_group<4>(stimulus_, ffs, subset, jobs, schedule, by_width[1],
                        golden_.frames, ckpts.get(), config, pool, outcome,
                        costs);
    }
    if (!by_width[2].empty()) {
      run_wide_group<8>(stimulus_, ffs, subset, jobs, schedule, by_width[2],
                        golden_.frames, ckpts.get(), config, pool, outcome,
                        costs);
    }
  }

  for (const std::size_t p : owned) {
    const PlannedPass& pass = schedule[p];
    for (std::size_t j = pass.job_begin; j < pass.job_end; ++j) {
      result.per_ff[jobs[j].task].classes.add(outcome[j]);
      ++result.per_ff[jobs[j].task].injections;
      ++result.total_injections;
    }
  }
  result.total_sim_passes = owned.size();
  for (const WorkerCost& cost : costs) {
    result.cycles_simulated += cost.cycles;
    result.ops_evaluated += cost.ops;
    result.checkpoint_restores += cost.restores;
  }
  result.wall_seconds = stopwatch.elapsed_seconds();
  return result;
}

CampaignResult CampaignEngine::run_cached(
    const CampaignConfig& config, const std::filesystem::path& cache_path) const {
  if (auto cached = load_campaign_cache(*nl_, config, cache_path)) {
    return *std::move(cached);
  }
  CampaignResult fresh = run(config);
  // Shard runs produce partial accumulators (fault/shard.hpp persists those
  // with their merge fingerprint); never write one as an unsharded CSV cache.
  if (!cache_path.empty() && !config.shard.is_sharded()) {
    std::filesystem::create_directories(cache_path.parent_path());
    fresh.save_csv(cache_path);
  }
  return fresh;
}

}  // namespace ffr::fault
