#pragma once
/// \file classification.hpp
/// \brief Failure classification for fault-injection runs: compares the frame stream
/// observed at the packet interface against the golden reference and assigns
/// one of the paper's fault classes. The Functional De-Rating criterion
/// (§IV-A) counts a run as a functional failure "when the final received
/// packages contained payload corruption or the circuit stopped sending or
/// receiving data"; every class except kOk meets it.

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/testbench.hpp"

namespace ffr::fault {

enum class FailureClass : std::uint8_t {
  kOk = 0,             // frame stream identical to golden (timing ignored)
  kFrameLoss,          // fewer frames delivered (stopped sending/receiving)
  kSpuriousFrame,      // more frames than golden (phantom traffic)
  kPayloadCorruption,  // silent data corruption: bytes differ, no error flag
  kDetectedError,      // frame flagged bad by the hardware (dropped at user)
  kNumClasses,
};

inline constexpr std::size_t kNumFailureClasses =
    static_cast<std::size_t>(FailureClass::kNumClasses);

[[nodiscard]] std::string_view to_string(FailureClass cls) noexcept;

[[nodiscard]] constexpr bool is_functional_failure(FailureClass cls) noexcept {
  return cls != FailureClass::kOk;
}

/// Classify one lane's observed frames against the golden frames.
[[nodiscard]] FailureClass classify(const sim::FrameList& golden,
                                    const sim::FrameList& observed);

/// Per-class tally.
struct ClassCounts {
  std::array<std::uint64_t, kNumFailureClasses> counts{};

  void add(FailureClass cls) noexcept {
    ++counts[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto c : counts) sum += c;
    return sum;
  }
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return total() - counts[0];
  }
};

}  // namespace ffr::fault
