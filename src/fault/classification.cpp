#include "fault/classification.hpp"

namespace ffr::fault {

std::string_view to_string(FailureClass cls) noexcept {
  switch (cls) {
    case FailureClass::kOk: return "ok";
    case FailureClass::kFrameLoss: return "frame_loss";
    case FailureClass::kSpuriousFrame: return "spurious_frame";
    case FailureClass::kPayloadCorruption: return "payload_corruption";
    case FailureClass::kDetectedError: return "detected_error";
    case FailureClass::kNumClasses: break;
  }
  return "unknown";
}

FailureClass classify(const sim::FrameList& golden, const sim::FrameList& observed) {
  if (observed.size() < golden.size()) return FailureClass::kFrameLoss;
  if (observed.size() > golden.size()) return FailureClass::kSpuriousFrame;
  bool any_silent_corruption = false;
  bool any_detected = false;
  for (std::size_t f = 0; f < golden.size(); ++f) {
    const sim::Frame& want = golden[f];
    const sim::Frame& got = observed[f];
    if (got.err && !want.err) {
      any_detected = true;
    } else if (got.err == want.err && got.bytes != want.bytes) {
      any_silent_corruption = true;
    } else if (!got.err && want.err) {
      // A frame golden flagged bad arrives "clean": treat as corruption of
      // the expected stream (the golden bench never produces this).
      any_silent_corruption = true;
    }
  }
  if (any_silent_corruption) return FailureClass::kPayloadCorruption;
  if (any_detected) return FailureClass::kDetectedError;
  return FailureClass::kOk;
}

}  // namespace ffr::fault
