#pragma once
/// \file engine.hpp
/// \brief Batched SFI campaign engine (paper §IV-A at scale).
///
/// CampaignEngine precomputes everything that is invariant across a
/// campaign's simulation passes — the compiled stimulus (waveforms validated
/// once and pre-broadcast to 64-lane words), the golden frame stream /
/// activity trace (run on the wide path: golden state is broadcast, so the
/// wide golden run is bit-identical to the scalar one), and bit-packed
/// golden-state checkpoints (sim::GoldenCheckpoints at 1 bit per FF,
/// snapshotted during the one-time golden run) — and keeps one replay
/// runner per worker thread so the levelized evaluation order is built once
/// per worker instead of once per pass. run() packs injection windows
/// across flip-flops: the whole campaign's injections form one flat job
/// list planned into an adaptive pass schedule (build_pass_schedule). Full
/// passes carry lane_width * blocks_per_pass fault lanes — lane_width picks
/// the SIMD block (64 scalar, 256 AVX2, 512 AVX-512; kAuto dispatches via
/// CPUID) and blocks_per_pass sweeps several blocks per op to keep the
/// vector pipelines busy past the register width — and the ragged job tail
/// is re-sliced widest-first into narrower passes instead of running one
/// mostly-masked full pass. Under the checkpointed replay modes the job
/// list is additionally sorted by injection cycle, so the lanes of one pass
/// share a late start point: each pass restores the latest golden
/// checkpoint at or before its earliest injection (splatting each packed
/// golden bit across whole blocks) and fast-forwards from there, and (in
/// kIncremental mode) evaluates only the dirty cone per cycle. Passes are
/// distributed over a work-stealing pool in chunks of
/// CampaignConfig::batch_size.
///
/// Guarantee: for the same CampaignConfig seed/injection knobs, run() is
/// bit-identical to run_campaign() — same per-flip-flop class counts and
/// FDR vector — for every thread count, batch size, replay mode, checkpoint
/// interval and lane width (see tests/test_campaign_engine.cpp,
/// tests/test_incremental_replay.cpp and tests/test_lane_width.cpp).

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/campaign.hpp"
#include "netlist/netlist.hpp"
#include "sim/runner.hpp"

namespace ffr::fault {

/// One planned pass of the engine's adaptive schedule: jobs
/// [job_begin, job_end) run as `blocks` SIMD lane blocks of `width` fault
/// lanes each. Only the final pass of a schedule may be masked
/// (job_end - job_begin < width * blocks).
struct PlannedPass {
  std::size_t width = sim::kNumLanes;  ///< Fault lanes per block (64/256/512).
  std::size_t blocks = 1;              ///< Lane blocks swept in this pass.
  std::size_t job_begin = 0;           ///< First job (inclusive).
  std::size_t job_end = 0;             ///< Last job (exclusive).
};

/// Plans the engine's passes over a `num_jobs`-injection job list whose full
/// shape is `full_blocks` blocks of `full_width` lanes. Full-shape passes
/// are emitted while whole ones fit; the remaining tail is re-sliced
/// widest-first into narrower shapes (a 70-job tail at 512 lanes runs as
/// two 64-lane passes instead of one mostly-masked 512-lane pass — narrower
/// SIMD kernels are cheaper per pass, and empty lanes still pay full cost).
/// With full_width == 64 and full_blocks == 1 the schedule degenerates to
/// exactly ceil(num_jobs / 64) scalar passes: the reference path is never
/// re-shaped. Deterministic — depends only on the arguments, never the host.
[[nodiscard]] std::vector<PlannedPass> build_pass_schedule(std::size_t num_jobs,
                                                           std::size_t full_width,
                                                           std::size_t full_blocks);

/// Resolves CampaignConfig::blocks_per_pass for a campaign at `width_lanes`
/// over a `num_nets`-net circuit. 0 = auto: 1 at the 64-lane reference width
/// (the scalar differential path is never widened implicitly), otherwise the
/// largest power-of-two block count whose per-pass net-state footprint
/// (num_nets * width_lanes / 8 bytes per block) stays within a fixed
/// cache-class budget — a deterministic rule, so schedules and counters are
/// machine-independent. Explicit requests above sim::kMaxLaneBlocksPerPass
/// are clamped with a warning written to `*warning` (when non-null).
[[nodiscard]] std::size_t resolve_blocks_per_pass(std::size_t requested,
                                                  std::size_t width_lanes,
                                                  std::size_t num_nets,
                                                  std::string* warning = nullptr);

class CampaignEngine {
 public:
  /// Compiles the stimulus and runs the golden simulation once, recording
  /// golden-state checkpoints at the default CampaignConfig interval. The
  /// netlist and testbench must outlive the engine.
  CampaignEngine(const netlist::Netlist& nl, const sim::Testbench& tb);

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }
  [[nodiscard]] const sim::Testbench& testbench() const noexcept { return *tb_; }

  /// The golden run shared by every campaign and estimation-flow invocation
  /// on this engine (frames, per-FF activity trace, eval accounting).
  [[nodiscard]] const sim::GoldenResult& golden() const noexcept { return golden_; }

  /// Golden checkpoints for the given snapshot interval. The constructor
  /// pre-records the default interval; other intervals are recorded on
  /// first use (one extra fault-free replay) and cached. Thread-safe.
  /// \throws std::invalid_argument when `interval` is 0 or exceeds the
  ///         testbench length.
  [[nodiscard]] std::shared_ptr<const sim::GoldenCheckpoints> checkpoints(
      std::size_t interval) const;

  /// Batched campaign over the configured flip-flop subset. Bit-identical to
  /// run_campaign(netlist(), testbench(), golden(), config) in every replay
  /// mode, but with cross-flip-flop lane packing, checkpointed mid-stream
  /// starts, dirty-set evaluation and chunked work-stealing scheduling.
  /// With config.shard.count > 1 only the shard's round-robin share of the
  /// full pass schedule runs (see ShardSpec / fault/shard.hpp); merging all
  /// N shards' results reconstructs the unsharded run bit-identically.
  /// const because every precomputed member is read-only here (the
  /// checkpoint cache is internally synchronized) — concurrent run() calls
  /// on one engine are safe (each brings its own worker pool).
  [[nodiscard]] CampaignResult run(const CampaignConfig& config = {}) const;

  /// Disk-cached variant of run(): loads `cache_path` when it matches the
  /// netlist census + config (see load_campaign_cache), otherwise runs the
  /// batched campaign and saves. Pass an empty path to always run.
  [[nodiscard]] CampaignResult run_cached(
      const CampaignConfig& config,
      const std::filesystem::path& cache_path) const;

  /// Approximate bytes this engine keeps resident across campaigns: the
  /// pre-broadcast compiled stimulus, the golden frame stream and activity
  /// trace, and every cached bit-packed checkpoint set. This is the cost
  /// the service-layer engine registry charges an entry against its byte
  /// budget (the bit-packed checkpoints are what keep it small). Thread-safe.
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  const netlist::Netlist* nl_;
  const sim::Testbench* tb_;
  sim::CompiledStimulus stimulus_;
  sim::GoldenResult golden_;
  /// Checkpoint sets keyed by snapshot interval, recorded lazily.
  mutable std::map<std::size_t, std::shared_ptr<const sim::GoldenCheckpoints>>
      checkpoints_by_interval_;
  mutable std::mutex checkpoints_mutex_;
};

}  // namespace ffr::fault
