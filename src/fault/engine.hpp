#pragma once
/// \file engine.hpp
/// \brief Batched SFI campaign engine (paper §IV-A at scale).
///
/// CampaignEngine precomputes everything that is invariant across a
/// campaign's simulation passes — the compiled stimulus (waveforms validated
/// once and pre-broadcast to 64-lane words), the golden frame stream /
/// activity trace, and golden-state checkpoints (sim::GoldenCheckpoints,
/// snapshotted during the one-time golden run) — and keeps one ReplayRunner
/// per worker thread so the levelized evaluation order is built once per
/// worker instead of once per pass. run() packs injection windows across
/// flip-flops: the whole campaign's injections form one flat job list sliced
/// into lane-block passes of CampaignConfig::lane_width fault lanes each
/// (64 on the scalar path, 256/512 on the SIMD WideReplayRunner paths —
/// kAuto picks the widest block the host CPU supports via CPUID), costing
/// ceil(total_injections / block_lanes) passes instead of the flat
/// campaign's sum over flip-flops of ceil(injections_per_ff / 64). Under
/// the checkpointed replay modes the job list is additionally sorted by
/// injection cycle, so the lanes of one pass share a late start point: each
/// pass restores the latest golden checkpoint at or before its earliest
/// injection (wide passes splat the broadcast golden words across whole
/// blocks) and fast-forwards from there, and (in kIncremental mode)
/// evaluates only the dirty cone per cycle. Passes are distributed over a
/// work-stealing pool in chunks of CampaignConfig::batch_size.
///
/// Guarantee: for the same CampaignConfig seed/injection knobs, run() is
/// bit-identical to run_campaign() — same per-flip-flop class counts and
/// FDR vector — for every thread count, batch size, replay mode, checkpoint
/// interval and lane width (see tests/test_campaign_engine.cpp,
/// tests/test_incremental_replay.cpp and tests/test_lane_width.cpp).

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/campaign.hpp"
#include "netlist/netlist.hpp"
#include "sim/runner.hpp"

namespace ffr::fault {

class CampaignEngine {
 public:
  /// Compiles the stimulus and runs the golden simulation once, recording
  /// golden-state checkpoints at the default CampaignConfig interval. The
  /// netlist and testbench must outlive the engine.
  CampaignEngine(const netlist::Netlist& nl, const sim::Testbench& tb);

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }
  [[nodiscard]] const sim::Testbench& testbench() const noexcept { return *tb_; }

  /// The golden run shared by every campaign and estimation-flow invocation
  /// on this engine (frames, per-FF activity trace, eval accounting).
  [[nodiscard]] const sim::GoldenResult& golden() const noexcept { return golden_; }

  /// Golden checkpoints for the given snapshot interval. The constructor
  /// pre-records the default interval; other intervals are recorded on
  /// first use (one extra fault-free replay) and cached. Thread-safe.
  /// \throws std::invalid_argument when `interval` is 0 or exceeds the
  ///         testbench length.
  [[nodiscard]] std::shared_ptr<const sim::GoldenCheckpoints> checkpoints(
      std::size_t interval) const;

  /// Batched campaign over the configured flip-flop subset. Bit-identical to
  /// run_campaign(netlist(), testbench(), golden(), config) in every replay
  /// mode, but with cross-flip-flop lane packing, checkpointed mid-stream
  /// starts, dirty-set evaluation and chunked work-stealing scheduling.
  /// const because every precomputed member is read-only here (the
  /// checkpoint cache is internally synchronized) — concurrent run() calls
  /// on one engine are safe (each brings its own worker pool).
  [[nodiscard]] CampaignResult run(const CampaignConfig& config = {}) const;

  /// Disk-cached variant of run(): loads `cache_path` when it matches the
  /// netlist census + config (see load_campaign_cache), otherwise runs the
  /// batched campaign and saves. Pass an empty path to always run.
  [[nodiscard]] CampaignResult run_cached(
      const CampaignConfig& config,
      const std::filesystem::path& cache_path) const;

 private:
  const netlist::Netlist* nl_;
  const sim::Testbench* tb_;
  sim::CompiledStimulus stimulus_;
  sim::GoldenResult golden_;
  /// Checkpoint sets keyed by snapshot interval, recorded lazily.
  mutable std::map<std::size_t, std::shared_ptr<const sim::GoldenCheckpoints>>
      checkpoints_by_interval_;
  mutable std::mutex checkpoints_mutex_;
};

}  // namespace ffr::fault
