#pragma once
/// \file engine.hpp
/// \brief Batched SFI campaign engine (paper §IV-A at scale).
///
/// CampaignEngine precomputes everything that is invariant across a
/// campaign's simulation passes — the compiled stimulus (waveforms validated
/// once and pre-broadcast to 64-lane words) and the golden frame stream /
/// activity trace — and keeps one ReplayRunner per worker thread so the
/// levelized evaluation order is built once per worker instead of once per
/// pass. run() packs injection windows across flip-flops: the whole
/// campaign's injections form one flat job list sliced into 64-lane passes,
/// costing ceil(total_injections / 64) passes instead of the flat campaign's
/// sum over flip-flops of ceil(injections_per_ff / 64). Passes are
/// distributed over a work-stealing pool in chunks of
/// CampaignConfig::batch_size.
///
/// Guarantee: for the same CampaignConfig, run() is bit-identical to
/// run_campaign() — same per-flip-flop class counts and FDR vector — for
/// every thread count and batch size (see tests/test_campaign_engine.cpp).

#include <memory>
#include <vector>

#include "fault/campaign.hpp"
#include "netlist/netlist.hpp"
#include "sim/runner.hpp"

namespace ffr::fault {

class CampaignEngine {
 public:
  /// Compiles the stimulus and runs the golden simulation once. The netlist
  /// and testbench must outlive the engine.
  CampaignEngine(const netlist::Netlist& nl, const sim::Testbench& tb);

  [[nodiscard]] const netlist::Netlist& netlist() const noexcept { return *nl_; }
  [[nodiscard]] const sim::Testbench& testbench() const noexcept { return *tb_; }

  /// The golden run shared by every campaign and estimation-flow invocation
  /// on this engine (frames, per-FF activity trace, eval accounting).
  [[nodiscard]] const sim::GoldenResult& golden() const noexcept { return golden_; }

  /// Batched campaign over the configured flip-flop subset. Bit-identical to
  /// run_campaign(netlist(), testbench(), golden(), config), but with
  /// cross-flip-flop lane packing and chunked work-stealing scheduling.
  /// const because every precomputed member is read-only here — concurrent
  /// run() calls on one engine are safe (each brings its own worker pool).
  [[nodiscard]] CampaignResult run(const CampaignConfig& config = {}) const;

  /// Disk-cached variant of run(): loads `cache_path` when it matches the
  /// netlist census + config (see load_campaign_cache), otherwise runs the
  /// batched campaign and saves. Pass an empty path to always run.
  [[nodiscard]] CampaignResult run_cached(
      const CampaignConfig& config,
      const std::filesystem::path& cache_path) const;

 private:
  const netlist::Netlist* nl_;
  const sim::Testbench* tb_;
  sim::CompiledStimulus stimulus_;
  sim::GoldenResult golden_;
};

}  // namespace ffr::fault
