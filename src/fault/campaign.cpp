#include "fault/campaign.hpp"

#include <algorithm>
#include <fstream>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ffr::fault {

std::vector<double> CampaignResult::fdr_vector() const {
  std::vector<double> fdr;
  fdr.reserve(per_ff.size());
  for (const FfResult& ff : per_ff) fdr.push_back(ff.fdr());
  return fdr;
}

double CampaignResult::mean_fdr() const {
  if (per_ff.empty()) return 0.0;
  double sum = 0.0;
  for (const FfResult& ff : per_ff) sum += ff.fdr();
  return sum / static_cast<double>(per_ff.size());
}

void CampaignResult::save_csv(const std::filesystem::path& path) const {
  util::CsvTable table;
  table.header = {"ff_index", "name", "injections", "fdr"};
  for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
    table.header.push_back(std::string(to_string(static_cast<FailureClass>(c))));
  }
  for (const FfResult& ff : per_ff) {
    std::vector<std::string> row = {
        std::to_string(ff.ff_index), ff.name, std::to_string(ff.injections),
        util::CsvWriter::format_double(ff.fdr())};
    for (const auto count : ff.classes.counts) row.push_back(std::to_string(count));
    table.rows.push_back(std::move(row));
  }
  util::write_csv_file(path, table);
}

CampaignResult CampaignResult::load_csv(const std::filesystem::path& path) {
  const util::CsvTable table = util::read_csv_file(path);
  CampaignResult result;
  const std::size_t idx_col = table.column_index("ff_index");
  const std::size_t name_col = table.column_index("name");
  const std::size_t inj_col = table.column_index("injections");
  std::array<std::size_t, kNumFailureClasses> class_cols{};
  for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
    class_cols[c] =
        table.column_index(to_string(static_cast<FailureClass>(c)));
  }
  for (const auto& row : table.rows) {
    FfResult ff;
    ff.ff_index = std::stoull(row.at(idx_col));
    ff.name = row.at(name_col);
    ff.injections = std::stoull(row.at(inj_col));
    for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
      ff.classes.counts[c] = std::stoull(row.at(class_cols[c]));
    }
    result.total_injections += ff.injections;
    result.per_ff.push_back(std::move(ff));
  }
  return result;
}

CampaignResult run_campaign(const netlist::Netlist& nl, const sim::Testbench& tb,
                            const sim::GoldenResult& golden,
                            const CampaignConfig& config) {
  if (tb.inject_end <= tb.inject_begin) {
    throw std::invalid_argument("run_campaign: empty injection window");
  }
  const std::size_t window = tb.inject_end - tb.inject_begin;
  const auto ffs = nl.flip_flops();

  std::vector<std::size_t> subset = config.ff_subset;
  if (subset.empty()) {
    subset.resize(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) subset[i] = i;
  }
  for (const std::size_t i : subset) {
    if (i >= ffs.size()) throw std::out_of_range("run_campaign: ff index");
  }

  util::Stopwatch stopwatch;
  CampaignResult result;
  result.per_ff.resize(subset.size());
  std::vector<std::uint64_t> passes(subset.size(), 0);

  util::ThreadPool pool(config.num_threads);
  pool.parallel_for(subset.size(), [&](std::size_t task) {
    const std::size_t ff_index = subset[task];
    const netlist::CellId cell = ffs[ff_index];

    // Per-FF deterministic stream: independent of the subset ordering and of
    // how tasks are scheduled across threads.
    util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (ff_index + 1)));

    // Injection cycles: distinct when the window allows, as in a statistical
    // campaign sampling "different times during the active phase".
    std::vector<std::size_t> cycles;
    if (config.injections_per_ff <= window) {
      cycles = rng.sample_without_replacement(window, config.injections_per_ff);
    } else {
      cycles.resize(config.injections_per_ff);
      for (auto& c : cycles) c = static_cast<std::size_t>(rng.below(window));
    }
    for (auto& c : cycles) c += tb.inject_begin;

    FfResult ff_result;
    ff_result.ff_index = ff_index;
    ff_result.name = nl.cell(cell).name;
    ff_result.injections = config.injections_per_ff;

    for (std::size_t batch_start = 0; batch_start < cycles.size();
         batch_start += sim::kNumLanes) {
      const std::size_t lanes =
          std::min(sim::kNumLanes, cycles.size() - batch_start);
      std::vector<sim::InjectionEvent> events;
      events.reserve(lanes);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        sim::InjectionEvent ev;
        ev.ff_cell = cell;
        ev.cycle = static_cast<std::uint32_t>(cycles[batch_start + lane]);
        ev.lane_mask = sim::Lanes{1} << lane;
        events.push_back(ev);
      }
      const sim::RunResult run = sim::run_testbench(nl, tb, events);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        ff_result.classes.add(classify(golden.frames, run.lane_frames[lane]));
      }
      ++passes[task];
    }
    result.per_ff[task] = std::move(ff_result);
  });

  for (const auto p : passes) result.total_sim_passes += p;
  for (const FfResult& ff : result.per_ff) result.total_injections += ff.injections;
  result.wall_seconds = stopwatch.elapsed_seconds();
  return result;
}

CampaignResult run_campaign_cached(const netlist::Netlist& nl,
                                   const sim::Testbench& tb,
                                   const sim::GoldenResult& golden,
                                   const CampaignConfig& config,
                                   const std::filesystem::path& cache_path) {
  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    CampaignResult cached = CampaignResult::load_csv(cache_path);
    // Validate against the current netlist + config before trusting it.
    const auto ffs = nl.flip_flops();
    const std::size_t expected =
        config.ff_subset.empty() ? ffs.size() : config.ff_subset.size();
    bool valid = cached.per_ff.size() == expected;
    if (valid) {
      for (const FfResult& ff : cached.per_ff) {
        if (ff.ff_index >= ffs.size() ||
            nl.cell(ffs[ff.ff_index]).name != ff.name ||
            ff.injections != config.injections_per_ff) {
          valid = false;
          break;
        }
      }
    }
    if (valid) return cached;
  }
  CampaignResult fresh = run_campaign(nl, tb, golden, config);
  if (!cache_path.empty()) {
    std::filesystem::create_directories(cache_path.parent_path());
    fresh.save_csv(cache_path);
  }
  return fresh;
}

}  // namespace ffr::fault
