#include "fault/campaign.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace ffr::fault {

std::vector<double> CampaignResult::fdr_vector() const {
  std::vector<double> fdr;
  fdr.reserve(per_ff.size());
  for (const FfResult& ff : per_ff) fdr.push_back(ff.fdr());
  return fdr;
}

double CampaignResult::mean_fdr() const {
  if (per_ff.empty()) return 0.0;
  double sum = 0.0;
  for (const FfResult& ff : per_ff) sum += ff.fdr();
  return sum / static_cast<double>(per_ff.size());
}

void CampaignResult::save_csv(const std::filesystem::path& path) const {
  util::CsvTable table;
  table.header = {"ff_index", "name", "injections", "fdr"};
  for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
    table.header.push_back(std::string(to_string(static_cast<FailureClass>(c))));
  }
  for (const FfResult& ff : per_ff) {
    std::vector<std::string> row = {
        std::to_string(ff.ff_index), ff.name, std::to_string(ff.injections),
        util::CsvWriter::format_double(ff.fdr())};
    for (const auto count : ff.classes.counts) row.push_back(std::to_string(count));
    table.rows.push_back(std::move(row));
  }
  util::write_csv_file(path, table);
}

CampaignResult CampaignResult::load_csv(const std::filesystem::path& path) {
  const util::CsvTable table = util::read_csv_file(path);
  const auto fail = [&path](const std::string& what) {
    return std::runtime_error("CampaignResult::load_csv(" + path.string() +
                              "): " + what);
  };
  const auto column = [&](std::string_view name) {
    try {
      return table.column_index(name);
    } catch (const std::out_of_range&) {
      throw fail("missing column '" + std::string(name) + "'");
    }
  };
  CampaignResult result;
  const std::size_t idx_col = column("ff_index");
  const std::size_t name_col = column("name");
  const std::size_t inj_col = column("injections");
  std::array<std::size_t, kNumFailureClasses> class_cols{};
  for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
    class_cols[c] = column(to_string(static_cast<FailureClass>(c)));
  }
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (row.size() != table.header.size()) {
      throw fail("row " + std::to_string(r + 1) + " has " +
                 std::to_string(row.size()) + " fields, expected " +
                 std::to_string(table.header.size()));
    }
    const auto parse_count = [&](std::size_t col) {
      const std::string& field = row[col];
      std::uint64_t value = 0;
      const auto [end, ec] =
          std::from_chars(field.data(), field.data() + field.size(), value);
      if (ec != std::errc{} || end != field.data() + field.size()) {
        throw fail("bad count '" + field + "' in column '" + table.header[col] +
                   "', row " + std::to_string(r + 1));
      }
      return value;
    };
    FfResult ff;
    ff.ff_index = parse_count(idx_col);
    ff.name = row[name_col];
    ff.injections = parse_count(inj_col);
    std::uint64_t class_total = 0;
    for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
      ff.classes.counts[c] = parse_count(class_cols[c]);
      class_total += ff.classes.counts[c];
    }
    if (class_total != ff.injections) {
      throw fail("row " + std::to_string(r + 1) + " class counts sum to " +
                 std::to_string(class_total) + " but injections is " +
                 std::to_string(ff.injections));
    }
    result.total_injections += ff.injections;
    result.per_ff.push_back(std::move(ff));
  }
  return result;
}

std::vector<std::size_t> injection_cycles(const CampaignConfig& config,
                                          const sim::Testbench& tb,
                                          std::size_t ff_index) {
  if (tb.inject_end <= tb.inject_begin) {
    throw std::invalid_argument("injection_cycles: empty injection window");
  }
  const std::size_t window = tb.inject_end - tb.inject_begin;

  // Per-FF deterministic stream: independent of the subset ordering and of
  // how tasks are scheduled across threads.
  util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (ff_index + 1)));

  // Injection cycles: distinct when the window allows, as in a statistical
  // campaign sampling "different times during the active phase".
  std::vector<std::size_t> cycles;
  if (config.injections_per_ff <= window) {
    cycles = rng.sample_without_replacement(window, config.injections_per_ff);
  } else {
    cycles.resize(config.injections_per_ff);
    for (auto& c : cycles) c = static_cast<std::size_t>(rng.below(window));
  }
  for (auto& c : cycles) c += tb.inject_begin;
  return cycles;
}

std::vector<std::size_t> resolve_ff_subset(const CampaignConfig& config,
                                           std::size_t num_ffs) {
  std::vector<std::size_t> subset = config.ff_subset;
  if (subset.empty()) {
    subset.resize(num_ffs);
    for (std::size_t i = 0; i < num_ffs; ++i) subset[i] = i;
  }
  for (const std::size_t i : subset) {
    if (i >= num_ffs) throw std::out_of_range("resolve_ff_subset: ff index");
  }
  return subset;
}

CampaignResult run_campaign(const netlist::Netlist& nl, const sim::Testbench& tb,
                            const sim::GoldenResult& golden,
                            const CampaignConfig& config) {
  if (tb.inject_end <= tb.inject_begin) {
    throw std::invalid_argument("run_campaign: empty injection window");
  }
  const auto ffs = nl.flip_flops();
  const std::vector<std::size_t> subset = resolve_ff_subset(config, ffs.size());

  util::Stopwatch stopwatch;
  CampaignResult result;
  result.per_ff.resize(subset.size());
  std::vector<std::uint64_t> passes(subset.size(), 0);
  std::vector<std::uint64_t> sim_cycles(subset.size(), 0);
  std::vector<std::uint64_t> sim_ops(subset.size(), 0);

  util::ThreadPool pool(config.num_threads);
  pool.parallel_for(subset.size(), [&](std::size_t task) {
    const std::size_t ff_index = subset[task];
    const netlist::CellId cell = ffs[ff_index];

    const std::vector<std::size_t> cycles = injection_cycles(config, tb, ff_index);

    FfResult ff_result;
    ff_result.ff_index = ff_index;
    ff_result.name = nl.cell(cell).name;
    ff_result.injections = config.injections_per_ff;

    for (std::size_t batch_start = 0; batch_start < cycles.size();
         batch_start += sim::kNumLanes) {
      const std::size_t lanes =
          std::min(sim::kNumLanes, cycles.size() - batch_start);
      std::vector<sim::InjectionEvent> events;
      events.reserve(lanes);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        sim::InjectionEvent ev;
        ev.ff_cell = cell;
        ev.cycle = static_cast<std::uint32_t>(cycles[batch_start + lane]);
        ev.lane_mask = sim::Lanes{1} << lane;
        events.push_back(ev);
      }
      const sim::RunResult run = sim::run_testbench(nl, tb, events);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        ff_result.classes.add(classify(golden.frames, run.lane_frames[lane]));
      }
      ++passes[task];
      sim_cycles[task] += run.cycles_simulated;
      sim_ops[task] += run.ops_evaluated;
    }
    result.per_ff[task] = std::move(ff_result);
  });

  for (const auto p : passes) result.total_sim_passes += p;
  for (const auto c : sim_cycles) result.cycles_simulated += c;
  for (const auto o : sim_ops) result.ops_evaluated += o;
  for (const FfResult& ff : result.per_ff) result.total_injections += ff.injections;
  result.pass_histogram = {
      PassShapeCount{sim::kNumLanes, 1, result.total_sim_passes}};
  result.wall_seconds = stopwatch.elapsed_seconds();
  return result;
}

std::optional<CampaignResult> load_campaign_cache(
    const netlist::Netlist& nl, const CampaignConfig& config,
    const std::filesystem::path& path) {
  if (path.empty() || !std::filesystem::exists(path)) return std::nullopt;
  // A shard's accumulators are a CampaignPartial (fault/shard.hpp), not a
  // result CSV: an unsharded cache must never satisfy a shard request (its
  // per-FF injection counts would pass the checks below for shard configs
  // whose share happens to match).
  if (config.shard.is_sharded()) return std::nullopt;
  CampaignResult cached;
  try {
    cached = CampaignResult::load_csv(path);
  } catch (const std::runtime_error&) {
    return std::nullopt;  // corrupt cache: fall back to a fresh run
  }
  // Validate against the current netlist + config before trusting it: the
  // cached rows must target exactly the config's resolved subset, in order,
  // with matching cell names and injection counts.
  const auto ffs = nl.flip_flops();
  const std::vector<std::size_t> subset = resolve_ff_subset(config, ffs.size());
  if (cached.per_ff.size() != subset.size()) return std::nullopt;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const FfResult& ff = cached.per_ff[i];
    if (ff.ff_index != subset[i] || nl.cell(ffs[ff.ff_index]).name != ff.name ||
        ff.injections != config.injections_per_ff) {
      return std::nullopt;
    }
  }
  return cached;
}

CampaignResult run_campaign_cached(const netlist::Netlist& nl,
                                   const sim::Testbench& tb,
                                   const sim::GoldenResult& golden,
                                   const CampaignConfig& config,
                                   const std::filesystem::path& cache_path) {
  if (auto cached = load_campaign_cache(nl, config, cache_path)) {
    return *std::move(cached);
  }
  CampaignResult fresh = run_campaign(nl, tb, golden, config);
  if (!cache_path.empty()) {
    std::filesystem::create_directories(cache_path.parent_path());
    fresh.save_csv(cache_path);
  }
  return fresh;
}

}  // namespace ffr::fault
