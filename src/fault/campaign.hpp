#pragma once
/// \file campaign.hpp
/// \brief Flat statistical fault-injection (SFI) campaign (paper §IV-A).
///
/// For every flip-flop, N single-event upsets are injected at random cycles
/// inside the testbench's active window; each run is classified against the
/// golden frame stream and the Functional De-Rating factor is
/// failures / injections.
///
/// Injections are packed 64 per simulation pass (one lane per injection
/// time), so a full 947-FF x 170-injection campaign costs ~3 passes per
/// flip-flop. The batched CampaignEngine (fault/engine.hpp) additionally
/// packs lanes across flip-flops and reuses the golden run; run_campaign()
/// remains the simple reference implementation the engine is differentially
/// tested against.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fault/classification.hpp"
#include "netlist/netlist.hpp"
#include "sim/lane_block.hpp"
#include "sim/runner.hpp"

namespace ffr::fault {

/// How the batched CampaignEngine replays each 64-lane fault pass. Every
/// mode produces bit-identical per-flip-flop class counts and FDR vectors;
/// they differ only in simulated work. The flat run_campaign() ignores this
/// knob (it always replays in full — it is the differential reference).
enum class ReplayMode {
  /// Replay every pass from reset and evaluate the full op list each cycle
  /// (the PR 2 batched-engine behaviour; kept as the perf baseline).
  kFull,
  /// Restore the latest golden checkpoint at or before the pass's earliest
  /// injection and fast-forward from there, full eval per cycle.
  kCheckpoint,
  /// kCheckpoint plus dirty-set evaluation: post-injection cycles touch only
  /// the divergence cone instead of every op. The default.
  kIncremental,
};

[[nodiscard]] constexpr const char* to_string(ReplayMode mode) noexcept {
  switch (mode) {
    case ReplayMode::kFull: return "full";
    case ReplayMode::kCheckpoint: return "checkpoint";
    case ReplayMode::kIncremental: return "incremental";
  }
  return "?";
}

/// One shard of a k-of-N campaign. The batched CampaignEngine plans the
/// full campaign's pass schedule exactly as if it were unsharded and then
/// runs only the passes this shard owns (pass p belongs to shard
/// `p % count == index` — round-robin, so under checkpointed replay the
/// expensive early-injection passes spread evenly over the shards). Because
/// every pass's science output and deterministic cost counters are
/// independent of which other passes run alongside it, merge_partials()
/// (fault/shard.hpp) over all N shards reconstructs the unsharded
/// CampaignResult bit-identically. The flat run_campaign() ignores the
/// shard spec (it is the unsharded differential reference).
struct ShardSpec {
  std::size_t index = 0;  ///< This shard's id in [0, count).
  std::size_t count = 1;  ///< Total shards; 1 = unsharded.

  [[nodiscard]] bool is_sharded() const noexcept { return count > 1; }
  [[nodiscard]] bool operator==(const ShardSpec&) const = default;
};

/// Tunables of one campaign; defaults reproduce the paper's setting.
struct CampaignConfig {
  /// Single-event upsets injected per flip-flop (paper: 170).
  std::size_t injections_per_ff = 170;
  /// Seed for the per-flip-flop injection-cycle schedules.
  std::uint64_t seed = 0xFA57;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Simulation passes claimed per work-stealing chunk in the batched
  /// CampaignEngine (0 = auto). Pure scheduling knob: results are identical
  /// for every value. Ignored by the flat run_campaign().
  std::size_t batch_size = 0;
  /// Replay strategy of the batched CampaignEngine (see ReplayMode). Pure
  /// cost knob: results are bit-identical in every mode. Ignored by the
  /// flat run_campaign().
  ReplayMode replay_mode = ReplayMode::kIncremental;
  /// Cycles between golden-state checkpoints used by kCheckpoint /
  /// kIncremental replay. CampaignEngine::run rejects 0 and values larger
  /// than the testbench with std::invalid_argument. Pure cost knob: results
  /// are bit-identical for every valid value. Ignored by run_campaign().
  std::size_t checkpoint_interval = 16;
  /// SIMD lane-block width of each batched-engine pass: kAuto picks the
  /// widest block the host CPU natively supports (CPUID-dispatched), k64 is
  /// the scalar reference width, k256/k512 request LaneBlock<4>/<8> passes.
  /// A request wider than the host supports falls back to the native width
  /// with a warning recorded in CampaignResult::warnings — never an error.
  /// Pure cost knob: results are bit-identical at every width. Ignored by
  /// the flat run_campaign() (always 64 lanes — the differential reference).
  sim::LaneWidth lane_width = sim::LaneWidth::kAuto;
  /// Lane blocks the batched engine sweeps per simulation pass, multiplying
  /// the pass capacity to lane_width * blocks_per_pass fault lanes (e.g.
  /// 2 x 512 = 1024). 0 = auto: 1 on the resolved 64-lane reference path,
  /// otherwise the largest block count whose per-net state footprint fits a
  /// fixed cache budget (deterministic — no host probing, so schedules and
  /// counters are machine-independent). Explicit values are clamped to
  /// [1, sim::kMaxLaneBlocksPerPass] with a warning. Pure cost knob: results
  /// are bit-identical at every block count. Ignored by run_campaign().
  std::size_t blocks_per_pass = 0;
  /// Restrict the campaign to these flip-flop indices (positions within
  /// Netlist::flip_flops()). Empty = all flip-flops.
  std::vector<std::size_t> ff_subset;
  /// k-of-N shard of the batched engine's pass schedule (see ShardSpec).
  /// The engine rejects index >= count or count == 0 with
  /// std::invalid_argument. Ignored by the flat run_campaign().
  ShardSpec shard;
};

/// Campaign outcome for one flip-flop.
struct FfResult {
  std::size_t ff_index = 0;  ///< Position within Netlist::flip_flops().
  std::string name;          ///< Cell name of the flip-flop.
  /// Upsets injected into this flip-flop — config.injections_per_ff in a
  /// full campaign; in a sharded engine run, only this shard's share (the
  /// shares sum back to injections_per_ff under merge_partials()).
  std::uint64_t injections = 0;
  ClassCounts classes;           ///< Per-fault-class outcome counts.

  /// \return Functional De-Rating factor: failures / injections
  ///         (0 when nothing was injected).
  [[nodiscard]] double fdr() const noexcept {
    return injections == 0
               ? 0.0
               : static_cast<double>(classes.failures()) /
                     static_cast<double>(injections);
  }
};

/// One row of the batched engine's adaptive pass schedule: `passes` passes
/// ran as `blocks` SIMD lane blocks of `width` fault lanes each.
struct PassShapeCount {
  std::size_t width = sim::kNumLanes;  ///< Fault lanes per block (64/256/512).
  std::size_t blocks = 1;              ///< Lane blocks swept per pass.
  std::uint64_t passes = 0;            ///< Passes run at this shape.

  /// Fault-lane capacity of one pass at this shape.
  [[nodiscard]] std::size_t lanes() const noexcept { return width * blocks; }
};

/// Aggregate campaign outcome: per-flip-flop results plus cost accounting.
struct CampaignResult {
  std::vector<FfResult> per_ff;        ///< One entry per targeted flip-flop.
  std::uint64_t total_injections = 0;  ///< Upsets injected overall.
  /// Simulator passes used. The batched engine schedules adaptively: full
  /// passes carry `lanes_per_pass` fault lanes and the job tail is re-sliced
  /// into narrower shapes (see pass_histogram), so the total is at most
  /// ceil(total_injections / lanes_per_pass) plus a few tail passes.
  std::uint64_t total_sim_passes = 0;
  /// Fault-lane capacity of a full-shape engine pass: the resolved
  /// CampaignConfig lane_width (after any fallback) times the resolved
  /// blocks_per_pass. 64 on the scalar reference path.
  std::size_t lanes_per_pass = sim::kNumLanes;
  /// Lane blocks per full-shape pass after auto-resolution/clamping.
  std::size_t blocks_per_pass = 1;
  /// The engine's pass schedule, widest shape first: how many passes ran at
  /// each (width, blocks) shape. Sums to total_sim_passes. The flat
  /// run_campaign() reports its single 64x1 shape here.
  std::vector<PassShapeCount> pass_histogram;
  /// Non-fatal configuration diagnostics, e.g. a lane_width request wider
  /// than the host supports that fell back to the native width. Not
  /// persisted by save_csv().
  std::vector<std::string> warnings;
  /// Clock cycles actually advanced across all passes — with checkpointed
  /// replay this is the post-restore suffix only, so it measures the
  /// incremental-replay saving against passes * testbench_length.
  std::uint64_t cycles_simulated = 0;
  /// Individual gate evaluations across all passes; dirty-set evaluation
  /// shrinks this without changing cycles_simulated.
  std::uint64_t ops_evaluated = 0;
  /// Passes that resumed from a checkpoint later than cycle 0.
  std::uint64_t checkpoint_restores = 0;
  /// Bytes held by the golden checkpoint set used by this campaign (the
  /// bit-packed sim::GoldenCheckpoints representation; 0 in kFull mode and
  /// in the flat campaign, which replay from reset).
  std::size_t checkpoint_bytes = 0;
  /// Bytes the same checkpoint set would occupy in the pre-packed layout
  /// (one broadcast 64-bit word per FF per snapshot plus per-snapshot frame
  /// copies) — the baseline for the packing ratio.
  std::size_t checkpoint_bytes_unpacked = 0;
  double wall_seconds = 0.0;           ///< Campaign wall-clock time.

  /// FDR values in per_ff order.
  [[nodiscard]] std::vector<double> fdr_vector() const;

  /// Circuit-level average FDR (unweighted over flip-flops).
  [[nodiscard]] double mean_fdr() const;

  /// Persists the per-flip-flop results as CSV.
  void save_csv(const std::filesystem::path& path) const;
  /// Loads a result previously written by save_csv().
  /// \throws std::runtime_error on a missing or malformed file.
  [[nodiscard]] static CampaignResult load_csv(const std::filesystem::path& path);
};

/// The deterministic injection-cycle schedule for one flip-flop: cycles
/// drawn from the testbench's [inject_begin, inject_end) window, seeded by
/// (config.seed, ff_index) only — independent of subset order, threading
/// and batching. Shared by the flat campaign and the batched CampaignEngine;
/// their bit-exact equivalence rests on this function.
[[nodiscard]] std::vector<std::size_t> injection_cycles(const CampaignConfig& config,
                                                        const sim::Testbench& tb,
                                                        std::size_t ff_index);

/// Resolves config.ff_subset against a census of `num_ffs` flip-flops:
/// empty means all; out-of-range indices throw std::out_of_range.
[[nodiscard]] std::vector<std::size_t> resolve_ff_subset(const CampaignConfig& config,
                                                         std::size_t num_ffs);

/// Runs the campaign.
///
/// \param nl     Finalized netlist whose flip-flops are targeted.
/// \param tb     Testbench providing stimulus and the injection window.
/// \param golden Golden run of the SAME testbench on the SAME netlist;
///               fault runs are classified against its frame stream.
/// \param config Campaign tunables (injection count, seed, threads, subset).
/// \return Per-flip-flop FDR measurements plus cost accounting.
[[nodiscard]] CampaignResult run_campaign(const netlist::Netlist& nl,
                                          const sim::Testbench& tb,
                                          const sim::GoldenResult& golden,
                                          const CampaignConfig& config = {});

/// Loads a cached campaign from `path` if the file exists and matches the
/// netlist's flip-flop census and the config: the cached rows must cover
/// exactly the resolved ff_subset in order, with matching cell names and
/// injection counts; std::nullopt otherwise. The seed is not persisted in
/// the CSV, so a cache produced with a different seed is indistinguishable —
/// use distinct cache paths per seed. Shared by the cached entry points of
/// the flat campaign and the batched CampaignEngine.
[[nodiscard]] std::optional<CampaignResult> load_campaign_cache(
    const netlist::Netlist& nl, const CampaignConfig& config,
    const std::filesystem::path& path);

/// Disk-cached campaign: loads `cache_path` if it exists and matches the
/// netlist's flip-flop census; otherwise runs and saves. Pass an empty path
/// to always run. Used by the benchmark harnesses so the flat campaign is
/// executed once and shared.
[[nodiscard]] CampaignResult run_campaign_cached(
    const netlist::Netlist& nl, const sim::Testbench& tb,
    const sim::GoldenResult& golden, const CampaignConfig& config,
    const std::filesystem::path& cache_path);

}  // namespace ffr::fault
