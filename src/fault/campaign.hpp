#pragma once
// Flat statistical fault-injection campaign (paper §IV-A): for every
// flip-flop, N single-event upsets are injected at random cycles inside the
// testbench's active window; each run is classified against the golden frame
// stream and the Functional De-Rating factor is failures / injections.
//
// Injections are packed 64 per simulation pass (one lane per injection time),
// so a full 947-FF x 170-injection campaign costs ~3 passes per flip-flop.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fault/classification.hpp"
#include "netlist/netlist.hpp"
#include "sim/runner.hpp"

namespace ffr::fault {

struct CampaignConfig {
  std::size_t injections_per_ff = 170;  // the paper's setting
  std::uint64_t seed = 0xFA57;
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  /// Restrict the campaign to these flip-flop indices (positions within
  /// Netlist::flip_flops()). Empty = all flip-flops.
  std::vector<std::size_t> ff_subset;
};

/// Result for one flip-flop.
struct FfResult {
  std::size_t ff_index = 0;       // position within Netlist::flip_flops()
  std::string name;               // cell name
  std::uint64_t injections = 0;
  ClassCounts classes;

  [[nodiscard]] double fdr() const noexcept {
    return injections == 0
               ? 0.0
               : static_cast<double>(classes.failures()) /
                     static_cast<double>(injections);
  }
};

struct CampaignResult {
  std::vector<FfResult> per_ff;
  std::uint64_t total_injections = 0;
  std::uint64_t total_sim_passes = 0;
  double wall_seconds = 0.0;

  /// FDR values in per_ff order.
  [[nodiscard]] std::vector<double> fdr_vector() const;

  /// Circuit-level average FDR (unweighted over flip-flops).
  [[nodiscard]] double mean_fdr() const;

  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static CampaignResult load_csv(const std::filesystem::path& path);
};

/// Runs the campaign. The golden result must come from the same testbench.
[[nodiscard]] CampaignResult run_campaign(const netlist::Netlist& nl,
                                          const sim::Testbench& tb,
                                          const sim::GoldenResult& golden,
                                          const CampaignConfig& config = {});

/// Disk-cached campaign: loads `cache_path` if it exists and matches the
/// netlist's flip-flop census; otherwise runs and saves. Pass an empty path
/// to always run. Used by the benchmark harnesses so the flat campaign is
/// executed once and shared.
[[nodiscard]] CampaignResult run_campaign_cached(
    const netlist::Netlist& nl, const sim::Testbench& tb,
    const sim::GoldenResult& golden, const CampaignConfig& config,
    const std::filesystem::path& cache_path);

}  // namespace ffr::fault
