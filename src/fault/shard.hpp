#pragma once
/// \file shard.hpp
/// \brief Sharded campaigns: mergeable per-shard partial results, a versioned
/// text serialization, order-independent merging, and resume-from-partial.
///
/// A k-of-N shard (CampaignConfig::shard) runs the batched CampaignEngine
/// over every N-th pass of the FULL campaign's deterministic pass schedule.
/// Each pass's science output and cost counters depend only on its own job
/// range, so the N partials merge back into a CampaignResult bit-identical
/// to the unsharded run — FDR vector, class counts, and every deterministic
/// counter (total_sim_passes, cycles_simulated, ops_evaluated,
/// checkpoint_restores, pass_histogram) included.
///
/// ## Partial file format
///
/// Same tagged whitespace-token family as ml/serialize (`ffr-model ...`):
///
///     ffr-partial <version> campaign_shard
///     engine <content-hash-hex>
///     shard <index> <count>
///     config <injections_per_ff> <seed> <replay_mode> <checkpoint_interval>
///     shape <lanes_per_pass> <blocks_per_pass>
///     counters <total_injections> <total_sim_passes> <cycles_simulated>
///              <ops_evaluated> <checkpoint_restores> <checkpoint_bytes>
///              <checkpoint_bytes_unpacked>
///     wall <seconds>
///     histogram <n>  then n rows of <width> <blocks> <passes>
///     ffs <n>        then n rows of <ff_index> <injections> <5 class counts>
///                    <name-length> <name-bytes>
///     warnings <n>   then n rows of <length> <bytes>
///     end
///
/// Doubles use 17 significant digits (exact binary64 round-trip); names and
/// warnings are length-prefixed byte strings so embedded spaces survive. The
/// closing `end` sentinel makes truncation always detectable. Loading is
/// strict: every malformed token raises a `std::runtime_error` positioned as
/// `<source>: <what> (at byte N)`.
///
/// ## Resume rules
///
/// run_sharded_campaign() keeps one canonical file per shard
/// (`shard_<k>_of_<N>.partial`) in a working directory. A present, loadable
/// partial whose fingerprint (engine content hash + shard spec + campaign
/// config + resolved pass shape) matches is trusted and its shard is NOT
/// re-run; a missing file re-runs exactly that shard; a present file that is
/// truncated, corrupt, wrong-version, or fingerprint-mismatched is an error —
/// resuming over it silently would risk merging science from a different
/// circuit or config.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/engine.hpp"

namespace ffr::fault {

/// Current (and only) version of the partial text format.
inline constexpr int kPartialFormatVersion = 1;

/// One shard's campaign accumulators plus the fingerprint that guards
/// merging: two partials may only merge when they come from the same engine
/// (content hash), the same N, and the same science-and-schedule-relevant
/// config. The engine hash is kept as a plain hex string so fault/ stays
/// independent of service/ — callers compute it via service::content_hash.
struct CampaignPartial {
  /// Hex content hash of the (netlist, testbench) pair the shard ran on.
  std::string engine_hash;
  std::size_t shard_index = 0;  ///< This shard's id in [0, shard_count).
  std::size_t shard_count = 1;  ///< Total shards of the campaign.
  /// Campaign fingerprint: fields that determine the job list and pass
  /// schedule. lane width and blocks_per_pass are carried RESOLVED inside
  /// `result` (lanes_per_pass/blocks_per_pass), so partials produced by
  /// kAuto on hosts that resolve differently refuse to merge instead of
  /// silently mixing pass schedules.
  std::size_t injections_per_ff = 0;
  std::uint64_t seed = 0;
  ReplayMode replay_mode = ReplayMode::kIncremental;
  std::size_t checkpoint_interval = 0;
  /// This shard's share of the campaign: per-FF accumulators over the owned
  /// passes' jobs only, plus this shard's deterministic cost counters.
  CampaignResult result;

  /// Writes the partial in the versioned text format.
  void save(std::ostream& os) const;
  /// save() into a new file at `path` (parent directories created).
  /// \throws std::runtime_error when the file cannot be opened.
  void save_file(const std::filesystem::path& path) const;
  /// Reads one partial; `source` names the stream in error messages.
  /// \throws std::runtime_error positioned as "<source>: <what> (at byte N)"
  ///         on a bad magic/version/tag, malformed field, inconsistent class
  ///         sums, or truncation.
  [[nodiscard]] static CampaignPartial load(std::istream& is,
                                            const std::string& source);
  /// load() from the file at `path`.
  [[nodiscard]] static CampaignPartial load_file(
      const std::filesystem::path& path);
};

/// Canonical partial filename used by the resume protocol:
/// "shard_<index>_of_<count>.partial".
[[nodiscard]] std::string partial_filename(std::size_t index,
                                           std::size_t count);

/// Runs one shard on the engine and wraps the result with its merge
/// fingerprint. `config.shard` selects the shard; `engine_hash` is the
/// engine's content hash (service::content_hash(nl, tb).hex()).
[[nodiscard]] CampaignPartial run_shard(const CampaignEngine& engine,
                                        const CampaignConfig& config,
                                        const std::string& engine_hash);

/// Resume primitive: loads `dir / partial_filename(...)` when present,
/// otherwise runs the shard and saves the partial there. A present file
/// that fails to load or whose fingerprint does not match the requested
/// (engine_hash, config) is an error, never silently re-run.
/// `resumed` (optional) reports whether the partial came from disk.
/// \throws std::runtime_error on an invalid or mismatched existing partial.
[[nodiscard]] CampaignPartial load_or_run_shard(const CampaignEngine& engine,
                                                const CampaignConfig& config,
                                                const std::string& engine_hash,
                                                const std::filesystem::path& dir,
                                                bool* resumed = nullptr);

/// Merges the N partials of one campaign back into the unsharded
/// CampaignResult, bit-identically: per-FF class counts and injections sum,
/// deterministic counters sum, the pass histogram sums by shape (ordered
/// widest shape first, exactly as the unsharded engine emits it), and
/// duplicate per-shard warnings collapse to one. Order-independent: any
/// permutation of `partials` produces the identical result.
/// \throws std::runtime_error when partials are missing/duplicated, their
///         fingerprints disagree, or per-FF rows are inconsistent.
[[nodiscard]] CampaignResult merge_partials(
    const std::vector<CampaignPartial>& partials);

/// What run_sharded_campaign() did per shard, for tests and operators.
struct ResumeReport {
  std::vector<std::size_t> resumed;   ///< Shards loaded from disk.
  std::vector<std::size_t> executed;  ///< Shards (re-)run this call.
  /// Deterministic cost of the executed shards only (zero when every shard
  /// was resumed): proves resume re-ran exactly the missing work.
  std::uint64_t passes_executed = 0;
  std::uint64_t cycles_executed = 0;
};

/// Runs or resumes a whole N-shard campaign in `dir`: for every shard index
/// in [0, config.shard.count), load_or_run_shard(), then merge_partials().
/// `config.shard.index` is ignored; `config.shard.count` is N (1 = a
/// single-shard campaign that still round-trips through a partial file).
/// \throws std::runtime_error on invalid existing partials (see
///         load_or_run_shard) or a failed merge.
[[nodiscard]] CampaignResult run_sharded_campaign(
    const CampaignEngine& engine, const CampaignConfig& config,
    const std::string& engine_hash, const std::filesystem::path& dir,
    ResumeReport* report = nullptr);

}  // namespace ffr::fault
