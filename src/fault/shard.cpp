#include "fault/shard.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "sim/lane_block.hpp"

namespace ffr::fault {

namespace {

/// 17 significant digits round-trip IEEE-754 binary64 exactly, matching the
/// ml/serialize convention (fault/ does not link against ml/).
void write_double(std::ostream& os, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  os << buffer;
}

/// Strict positioned token reader: every failure names the source and the
/// stream offset, so a truncated or corrupt partial is diagnosable without
/// opening the file.
struct Reader {
  std::istream& is;
  const std::string& source;

  [[noreturn]] void fail(const std::string& what) const {
    is.clear();
    const auto pos = is.tellg();
    const std::string at =
        pos < 0 ? "end of stream"
                : "byte " + std::to_string(static_cast<long long>(pos));
    throw std::runtime_error(source + ": " + what + " (at " + at + ")");
  }

  std::string token() const {
    std::string t;
    if (!(is >> t)) fail("unexpected end of stream");
    return t;
  }

  void expect(std::string_view expected) const {
    const std::string t = token();
    if (t != expected) {
      fail("expected '" + std::string(expected) + "', got '" + t + "'");
    }
  }

  std::uint64_t u64(std::uint64_t max =
                        std::numeric_limits<std::uint64_t>::max()) const {
    const std::string t = token();
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(t.c_str(), &end, 10);
    if (end != t.c_str() + t.size() || t.empty() || t[0] == '-' ||
        errno == ERANGE) {
      fail("malformed count '" + t + "'");
    }
    if (value > max) {
      fail("count " + t + " exceeds the sanity limit " + std::to_string(max));
    }
    return value;
  }

  double dbl() const {
    const std::string t = token();
    char* end = nullptr;
    const double value = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size()) fail("malformed number '" + t + "'");
    return value;
  }

  /// Length-prefixed byte string: "<length> <bytes>" with exactly one
  /// separator, so names and warnings survive embedded whitespace.
  std::string bytes(std::uint64_t max_len = std::uint64_t{1} << 20) const {
    const std::uint64_t len = u64(max_len);
    if (is.get() == std::char_traits<char>::eof()) {
      fail("unexpected end of stream in byte string");
    }
    std::string value(static_cast<std::size_t>(len), '\0');
    if (!is.read(value.data(), static_cast<std::streamsize>(len))) {
      fail("byte string truncated (expected " + std::to_string(len) +
           " bytes)");
    }
    return value;
  }
};

ReplayMode parse_replay_mode(const Reader& r) {
  const std::string t = r.token();
  if (t == "full") return ReplayMode::kFull;
  if (t == "checkpoint") return ReplayMode::kCheckpoint;
  if (t == "incremental") return ReplayMode::kIncremental;
  r.fail("unknown replay mode '" + t + "'");
}

}  // namespace

void CampaignPartial::save(std::ostream& os) const {
  os << "ffr-partial " << kPartialFormatVersion << " campaign_shard\n";
  os << "engine " << engine_hash << '\n';
  os << "shard " << shard_index << ' ' << shard_count << '\n';
  os << "config " << injections_per_ff << ' ' << seed << ' '
     << to_string(replay_mode) << ' ' << checkpoint_interval << '\n';
  os << "shape " << result.lanes_per_pass << ' ' << result.blocks_per_pass
     << '\n';
  os << "counters " << result.total_injections << ' ' << result.total_sim_passes
     << ' ' << result.cycles_simulated << ' ' << result.ops_evaluated << ' '
     << result.checkpoint_restores << ' ' << result.checkpoint_bytes << ' '
     << result.checkpoint_bytes_unpacked << '\n';
  os << "wall ";
  write_double(os, result.wall_seconds);
  os << '\n';
  os << "histogram " << result.pass_histogram.size() << '\n';
  for (const PassShapeCount& shape : result.pass_histogram) {
    os << shape.width << ' ' << shape.blocks << ' ' << shape.passes << '\n';
  }
  os << "ffs " << result.per_ff.size() << '\n';
  for (const FfResult& ff : result.per_ff) {
    os << ff.ff_index << ' ' << ff.injections;
    for (const auto count : ff.classes.counts) os << ' ' << count;
    os << ' ' << ff.name.size() << ' ' << ff.name << '\n';
  }
  os << "warnings " << result.warnings.size() << '\n';
  for (const std::string& warning : result.warnings) {
    os << warning.size() << ' ' << warning << '\n';
  }
  os << "end\n";
}

void CampaignPartial::save_file(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("CampaignPartial::save_file: cannot open " +
                             path.string());
  }
  save(os);
  os.flush();
  if (!os) {
    throw std::runtime_error("CampaignPartial::save_file: write failed for " +
                             path.string());
  }
}

CampaignPartial CampaignPartial::load(std::istream& is,
                                      const std::string& source) {
  const Reader r{is, source};
  const std::string magic = r.token();
  if (magic != "ffr-partial") {
    r.fail("bad magic '" + magic + "', expected 'ffr-partial'");
  }
  const std::uint64_t version = r.u64();
  if (version != static_cast<std::uint64_t>(kPartialFormatVersion)) {
    r.fail("unsupported format version " + std::to_string(version) +
           " (supported: " + std::to_string(kPartialFormatVersion) + ")");
  }
  r.expect("campaign_shard");

  CampaignPartial partial;
  r.expect("engine");
  partial.engine_hash = r.token();
  r.expect("shard");
  partial.shard_index = static_cast<std::size_t>(r.u64());
  partial.shard_count = static_cast<std::size_t>(r.u64());
  if (partial.shard_count == 0 || partial.shard_index >= partial.shard_count) {
    r.fail("shard index " + std::to_string(partial.shard_index) +
           " out of range for " + std::to_string(partial.shard_count) +
           " shards");
  }
  r.expect("config");
  partial.injections_per_ff = static_cast<std::size_t>(r.u64());
  partial.seed = r.u64();
  partial.replay_mode = parse_replay_mode(r);
  partial.checkpoint_interval = static_cast<std::size_t>(r.u64());
  r.expect("shape");
  partial.result.lanes_per_pass = static_cast<std::size_t>(r.u64());
  partial.result.blocks_per_pass = static_cast<std::size_t>(r.u64());
  r.expect("counters");
  partial.result.total_injections = r.u64();
  partial.result.total_sim_passes = r.u64();
  partial.result.cycles_simulated = r.u64();
  partial.result.ops_evaluated = r.u64();
  partial.result.checkpoint_restores = r.u64();
  partial.result.checkpoint_bytes = static_cast<std::size_t>(r.u64());
  partial.result.checkpoint_bytes_unpacked = static_cast<std::size_t>(r.u64());
  r.expect("wall");
  partial.result.wall_seconds = r.dbl();

  r.expect("histogram");
  const std::uint64_t num_shapes = r.u64(std::uint64_t{1} << 20);
  partial.result.pass_histogram.reserve(static_cast<std::size_t>(num_shapes));
  for (std::uint64_t i = 0; i < num_shapes; ++i) {
    PassShapeCount shape;
    shape.width = static_cast<std::size_t>(r.u64());
    shape.blocks = static_cast<std::size_t>(r.u64());
    shape.passes = r.u64();
    partial.result.pass_histogram.push_back(shape);
  }

  r.expect("ffs");
  const std::uint64_t num_ffs = r.u64(std::uint64_t{1} << 32);
  partial.result.per_ff.reserve(static_cast<std::size_t>(num_ffs));
  for (std::uint64_t i = 0; i < num_ffs; ++i) {
    FfResult ff;
    ff.ff_index = static_cast<std::size_t>(r.u64());
    ff.injections = r.u64();
    std::uint64_t class_total = 0;
    for (auto& count : ff.classes.counts) {
      count = r.u64();
      class_total += count;
    }
    if (class_total != ff.injections) {
      r.fail("flip-flop " + std::to_string(ff.ff_index) +
             " class counts sum to " + std::to_string(class_total) +
             " but injections is " + std::to_string(ff.injections));
    }
    ff.name = r.bytes();
    partial.result.per_ff.push_back(std::move(ff));
  }

  r.expect("warnings");
  const std::uint64_t num_warnings = r.u64(std::uint64_t{1} << 16);
  for (std::uint64_t i = 0; i < num_warnings; ++i) {
    partial.result.warnings.push_back(r.bytes());
  }
  r.expect("end");

  // Cross-field integrity: the counters must agree with the rows they
  // summarize, so a file corrupted in either place is rejected here instead
  // of poisoning a merge.
  std::uint64_t injection_total = 0;
  for (const FfResult& ff : partial.result.per_ff) {
    injection_total += ff.injections;
  }
  if (injection_total != partial.result.total_injections) {
    r.fail("per-flip-flop injections sum to " +
           std::to_string(injection_total) + " but total_injections is " +
           std::to_string(partial.result.total_injections));
  }
  std::uint64_t pass_total = 0;
  for (const PassShapeCount& shape : partial.result.pass_histogram) {
    pass_total += shape.passes;
  }
  if (pass_total != partial.result.total_sim_passes) {
    r.fail("pass histogram sums to " + std::to_string(pass_total) +
           " but total_sim_passes is " +
           std::to_string(partial.result.total_sim_passes));
  }
  return partial;
}

CampaignPartial CampaignPartial::load_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("CampaignPartial::load_file: cannot open " +
                             path.string());
  }
  return load(is, path.string());
}

std::string partial_filename(std::size_t index, std::size_t count) {
  return "shard_" + std::to_string(index) + "_of_" + std::to_string(count) +
         ".partial";
}

CampaignPartial run_shard(const CampaignEngine& engine,
                          const CampaignConfig& config,
                          const std::string& engine_hash) {
  CampaignPartial partial;
  partial.engine_hash = engine_hash;
  partial.shard_index = config.shard.index;
  partial.shard_count = config.shard.count;
  partial.injections_per_ff = config.injections_per_ff;
  partial.seed = config.seed;
  partial.replay_mode = config.replay_mode;
  partial.checkpoint_interval = config.checkpoint_interval;
  partial.result = engine.run(config);
  return partial;
}

CampaignPartial load_or_run_shard(const CampaignEngine& engine,
                                  const CampaignConfig& config,
                                  const std::string& engine_hash,
                                  const std::filesystem::path& dir,
                                  bool* resumed) {
  const std::filesystem::path path =
      dir / partial_filename(config.shard.index, config.shard.count);
  if (std::filesystem::exists(path)) {
    CampaignPartial partial = CampaignPartial::load_file(path);
    const auto mismatch = [&path](const std::string& what) {
      return std::runtime_error(path.string() +
                                ": partial does not match this campaign (" +
                                what + ")");
    };
    if (partial.engine_hash != engine_hash) {
      throw mismatch("engine content hash " + partial.engine_hash +
                     ", expected " + engine_hash);
    }
    if (partial.shard_index != config.shard.index ||
        partial.shard_count != config.shard.count) {
      throw mismatch("shard " + std::to_string(partial.shard_index) + "/" +
                     std::to_string(partial.shard_count) + ", expected " +
                     std::to_string(config.shard.index) + "/" +
                     std::to_string(config.shard.count));
    }
    if (partial.injections_per_ff != config.injections_per_ff ||
        partial.seed != config.seed ||
        partial.replay_mode != config.replay_mode ||
        partial.checkpoint_interval != config.checkpoint_interval) {
      throw mismatch("campaign config differs");
    }
    // The partial records the RESOLVED pass shape; re-resolve the request on
    // this host so a kAuto partial from a wider machine is rejected instead
    // of merging a different pass schedule.
    const sim::ResolvedLaneWidth resolved =
        sim::resolve_lane_width(config.lane_width);
    const std::size_t block_lanes = sim::lanes_of(resolved.width);
    const std::size_t blocks = resolve_blocks_per_pass(
        config.blocks_per_pass, block_lanes, engine.netlist().num_nets(),
        nullptr);
    if (partial.result.lanes_per_pass != block_lanes * blocks ||
        partial.result.blocks_per_pass != blocks) {
      throw mismatch(
          "pass shape " + std::to_string(partial.result.lanes_per_pass) + "x" +
          std::to_string(partial.result.blocks_per_pass) + " blocks, expected " +
          std::to_string(block_lanes * blocks) + "x" + std::to_string(blocks));
    }
    if (resumed != nullptr) *resumed = true;
    return partial;
  }
  CampaignPartial partial = run_shard(engine, config, engine_hash);
  partial.save_file(path);
  if (resumed != nullptr) *resumed = false;
  return partial;
}

CampaignResult merge_partials(const std::vector<CampaignPartial>& partials) {
  const auto fail = [](const std::string& what) {
    return std::runtime_error("merge_partials: " + what);
  };
  if (partials.empty()) throw fail("no partials to merge");
  const CampaignPartial& ref = partials.front();
  if (partials.size() != ref.shard_count) {
    throw fail("have " + std::to_string(partials.size()) +
               " partials but the campaign has " +
               std::to_string(ref.shard_count) + " shards");
  }

  // Index the partials by shard id: merging iterates 0..N-1, so the result
  // is independent of the order the caller collected them in.
  std::vector<const CampaignPartial*> by_index(ref.shard_count, nullptr);
  for (const CampaignPartial& partial : partials) {
    if (partial.engine_hash != ref.engine_hash) {
      throw fail("engine content hash mismatch: " + partial.engine_hash +
                 " vs " + ref.engine_hash);
    }
    if (partial.shard_count != ref.shard_count) {
      throw fail("shard count mismatch: " +
                 std::to_string(partial.shard_count) + " vs " +
                 std::to_string(ref.shard_count));
    }
    if (partial.injections_per_ff != ref.injections_per_ff ||
        partial.seed != ref.seed || partial.replay_mode != ref.replay_mode ||
        partial.checkpoint_interval != ref.checkpoint_interval) {
      throw fail("campaign config mismatch at shard " +
                 std::to_string(partial.shard_index));
    }
    if (partial.result.lanes_per_pass != ref.result.lanes_per_pass ||
        partial.result.blocks_per_pass != ref.result.blocks_per_pass) {
      throw fail("pass shape mismatch at shard " +
                 std::to_string(partial.shard_index) +
                 " (partials from hosts that resolved kAuto differently "
                 "cannot merge)");
    }
    if (partial.result.checkpoint_bytes != ref.result.checkpoint_bytes ||
        partial.result.checkpoint_bytes_unpacked !=
            ref.result.checkpoint_bytes_unpacked) {
      throw fail("checkpoint footprint mismatch at shard " +
                 std::to_string(partial.shard_index));
    }
    if (partial.result.per_ff.size() != ref.result.per_ff.size()) {
      throw fail("shard " + std::to_string(partial.shard_index) + " covers " +
                 std::to_string(partial.result.per_ff.size()) +
                 " flip-flops, expected " +
                 std::to_string(ref.result.per_ff.size()));
    }
    if (partial.shard_index >= ref.shard_count) {
      throw fail("shard index " + std::to_string(partial.shard_index) +
                 " out of range");
    }
    if (by_index[partial.shard_index] != nullptr) {
      throw fail("duplicate shard index " +
                 std::to_string(partial.shard_index));
    }
    by_index[partial.shard_index] = &partial;
  }
  // partials.size() == shard_count and no duplicates => every slot is filled.

  CampaignResult merged;
  merged.lanes_per_pass = ref.result.lanes_per_pass;
  merged.blocks_per_pass = ref.result.blocks_per_pass;
  merged.checkpoint_bytes = ref.result.checkpoint_bytes;
  merged.checkpoint_bytes_unpacked = ref.result.checkpoint_bytes_unpacked;
  merged.per_ff.resize(ref.result.per_ff.size());
  for (std::size_t i = 0; i < merged.per_ff.size(); ++i) {
    merged.per_ff[i].ff_index = ref.result.per_ff[i].ff_index;
    merged.per_ff[i].name = ref.result.per_ff[i].name;
  }

  for (std::size_t k = 0; k < ref.shard_count; ++k) {
    const CampaignResult& shard = by_index[k]->result;
    for (std::size_t i = 0; i < merged.per_ff.size(); ++i) {
      const FfResult& ff = shard.per_ff[i];
      if (ff.ff_index != merged.per_ff[i].ff_index ||
          ff.name != merged.per_ff[i].name) {
        throw fail("shard " + std::to_string(k) + " row " + std::to_string(i) +
                   " targets flip-flop " + std::to_string(ff.ff_index) + " '" +
                   ff.name + "', expected " +
                   std::to_string(merged.per_ff[i].ff_index) + " '" +
                   merged.per_ff[i].name + "'");
      }
      merged.per_ff[i].injections += ff.injections;
      for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
        merged.per_ff[i].classes.counts[c] += ff.classes.counts[c];
      }
    }
    merged.total_injections += shard.total_injections;
    merged.total_sim_passes += shard.total_sim_passes;
    merged.cycles_simulated += shard.cycles_simulated;
    merged.ops_evaluated += shard.ops_evaluated;
    merged.checkpoint_restores += shard.checkpoint_restores;
    merged.wall_seconds += shard.wall_seconds;
    for (const PassShapeCount& shape : shard.pass_histogram) {
      auto it = std::find_if(merged.pass_histogram.begin(),
                             merged.pass_histogram.end(),
                             [&](const PassShapeCount& s) {
                               return s.width == shape.width &&
                                      s.blocks == shape.blocks;
                             });
      if (it == merged.pass_histogram.end()) {
        merged.pass_histogram.push_back(shape);
      } else {
        it->passes += shape.passes;
      }
    }
    // Per-shard runs re-emit the same configuration warnings N times;
    // merging keeps one copy of each, first occurrence first.
    for (const std::string& warning : shard.warnings) {
      if (std::find(merged.warnings.begin(), merged.warnings.end(), warning) ==
          merged.warnings.end()) {
        merged.warnings.push_back(warning);
      }
    }
  }

  // The shard shares of every flip-flop must reassemble the full campaign.
  for (const FfResult& ff : merged.per_ff) {
    if (ff.injections != ref.injections_per_ff) {
      throw fail("flip-flop " + std::to_string(ff.ff_index) +
                 " shard shares sum to " + std::to_string(ff.injections) +
                 " injections, expected " +
                 std::to_string(ref.injections_per_ff));
    }
  }

  // Widest shape first — the order the unsharded engine's schedule emits
  // shapes in, so the merged histogram is bit-identical to its.
  std::sort(merged.pass_histogram.begin(), merged.pass_histogram.end(),
            [](const PassShapeCount& a, const PassShapeCount& b) {
              return a.width != b.width ? a.width > b.width
                                        : a.blocks > b.blocks;
            });
  return merged;
}

CampaignResult run_sharded_campaign(const CampaignEngine& engine,
                                    const CampaignConfig& config,
                                    const std::string& engine_hash,
                                    const std::filesystem::path& dir,
                                    ResumeReport* report) {
  if (config.shard.count == 0) {
    throw std::invalid_argument(
        "run_sharded_campaign: shard count must be >= 1");
  }
  std::filesystem::create_directories(dir);
  std::vector<CampaignPartial> partials;
  partials.reserve(config.shard.count);
  ResumeReport local;
  for (std::size_t k = 0; k < config.shard.count; ++k) {
    CampaignConfig shard_config = config;
    shard_config.shard.index = k;
    bool resumed = false;
    partials.push_back(
        load_or_run_shard(engine, shard_config, engine_hash, dir, &resumed));
    if (resumed) {
      local.resumed.push_back(k);
    } else {
      local.executed.push_back(k);
      local.passes_executed += partials.back().result.total_sim_passes;
      local.cycles_executed += partials.back().result.cycles_simulated;
    }
  }
  if (report != nullptr) *report = std::move(local);
  return merge_partials(partials);
}

}  // namespace ffr::fault
