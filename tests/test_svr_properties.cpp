// Property tests for the SMO epsilon-SVR: KKT structure of the solution,
// the epsilon-tube property, kernel identities, and behavioural monotonics
// in C / epsilon / gamma. These pin down the optimizer beyond "R2 is high".

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"

namespace ffr::ml {
namespace {

struct Problem {
  Matrix x;
  Vector y;
};

Problem smooth_problem(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  util::Rng rng(seed);
  Problem p;
  p.x = Matrix(n, 2);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.x(i, 0) = rng.uniform(-2, 2);
    p.x(i, 1) = rng.uniform(-2, 2);
    p.y[i] = std::sin(p.x(i, 0)) + 0.5 * p.x(i, 1) + noise * rng.normal();
  }
  return p;
}

TEST(SvrKernels, RbfIdentities) {
  SvrConfig config;
  config.gamma = 0.7;
  const SvrRegressor model(config);
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{0.5, -1.0, 2.0};
  // Symmetry.
  EXPECT_DOUBLE_EQ(model.kernel(a, b), model.kernel(b, a));
  // Self-similarity is exactly 1.
  EXPECT_DOUBLE_EQ(model.kernel(a, a), 1.0);
  // Bounded in (0, 1].
  EXPECT_GT(model.kernel(a, b), 0.0);
  EXPECT_LE(model.kernel(a, b), 1.0);
  // Known value: ||a-b||^2 = 0.25 + 9 + 1 = 10.25.
  EXPECT_NEAR(model.kernel(a, b), std::exp(-0.7 * 10.25), 1e-12);
}

TEST(SvrKernels, LinearAndPoly) {
  SvrConfig lin;
  lin.kernel = SvrKernel::kLinear;
  const SvrRegressor linear(lin);
  const Vector a{1.0, 2.0};
  const Vector b{3.0, -1.0};
  EXPECT_DOUBLE_EQ(linear.kernel(a, b), 1.0);  // dot = 3 - 2
  SvrConfig poly;
  poly.kernel = SvrKernel::kPoly;
  poly.gamma = 0.5;
  poly.poly_degree = 2;
  const SvrRegressor quadratic(poly);
  EXPECT_NEAR(quadratic.kernel(a, b), std::pow(0.5 * 1.0 + 1.0, 2), 1e-12);
}

TEST(SvrProperties, NonSupportPointsLieInsideTube) {
  // Points with beta == 0 must satisfy |y - f(x)| <= epsilon (+ tol slack).
  const Problem p = smooth_problem(150, 1);
  SvrConfig config;
  config.c = 10.0;
  config.gamma = 0.5;
  config.epsilon = 0.1;
  SvrRegressor model(config);
  model.fit(p.x, p.y);
  ASSERT_LE(model.final_gap(), config.tol);
  const Vector pred = model.predict(p.x);
  // Count points outside the tube; they must all be support vectors, so
  // #outside <= #SV, and most non-SV residuals are inside the tube.
  std::size_t outside = 0;
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    if (std::abs(p.y[i] - pred[i]) > config.epsilon + 2 * config.tol) ++outside;
  }
  EXPECT_LE(outside, model.num_support_vectors());
}

TEST(SvrProperties, SupportVectorCountGrowsWithSmallerEpsilon) {
  const Problem p = smooth_problem(120, 2, 0.05);
  std::size_t previous = 0;
  bool first = true;
  for (const double eps : {0.3, 0.1, 0.03, 0.01}) {
    SvrConfig config;
    config.c = 10.0;
    config.gamma = 0.5;
    config.epsilon = eps;
    SvrRegressor model(config);
    model.fit(p.x, p.y);
    if (!first) {
      EXPECT_GE(model.num_support_vectors(), previous);
    }
    previous = model.num_support_vectors();
    first = false;
  }
}

TEST(SvrProperties, TightCLimitsFit) {
  // With C -> 0 the model degenerates toward a constant (the mean region).
  const Problem p = smooth_problem(100, 3);
  SvrConfig tight;
  tight.c = 1e-4;
  tight.gamma = 0.5;
  tight.epsilon = 0.01;
  SvrRegressor constrained(tight);
  constrained.fit(p.x, p.y);
  SvrConfig loose = tight;
  loose.c = 50.0;
  SvrRegressor free_model(loose);
  free_model.fit(p.x, p.y);
  const double constrained_r2 = r2_score(p.y, constrained.predict(p.x));
  const double free_r2 = r2_score(p.y, free_model.predict(p.x));
  EXPECT_GT(free_r2, constrained_r2 + 0.2);
}

TEST(SvrProperties, GammaControlsLocality) {
  // Huge gamma -> kernel is ~identity -> train fit near-perfect but poor
  // generalization; tiny gamma -> underfit. Moderate gamma generalizes best.
  const Problem train = smooth_problem(150, 4);
  const Problem test = smooth_problem(60, 5);
  auto fit_r2 = [&](double gamma) {
    SvrConfig config;
    config.c = 10.0;
    config.gamma = gamma;
    config.epsilon = 0.01;
    SvrRegressor model(config);
    model.fit(train.x, train.y);
    return std::pair{r2_score(train.y, model.predict(train.x)),
                     r2_score(test.y, model.predict(test.x))};
  };
  const auto [train_huge, test_huge] = fit_r2(500.0);
  const auto [train_mid, test_mid] = fit_r2(0.5);
  EXPECT_GT(train_huge, 0.95);       // memorizes
  EXPECT_GT(test_mid, test_huge);    // moderate gamma generalizes better
  EXPECT_GT(test_mid, 0.9);
}

TEST(SvrProperties, DuplicatedTrainingPointsHandled) {
  // eta == 0 pairs (identical rows) must not break SMO.
  Matrix x{{1.0}, {1.0}, {1.0}, {2.0}, {2.0}, {3.0}};
  Vector y{1.0, 1.0, 1.0, 2.0, 2.0, 3.0};
  SvrConfig config;
  config.c = 10.0;
  config.gamma = 1.0;
  config.epsilon = 0.01;
  SvrRegressor model(config);
  model.fit(x, y);
  const Vector pred = model.predict(x);
  EXPECT_NEAR(pred[0], 1.0, 0.15);
  EXPECT_NEAR(pred[5], 3.0, 0.15);
}

TEST(SvrProperties, PredictionIsDeterministic) {
  const Problem p = smooth_problem(80, 6);
  SvrConfig config;
  config.c = 5.0;
  config.gamma = 0.3;
  config.epsilon = 0.05;
  SvrRegressor a(config);
  a.fit(p.x, p.y);
  SvrRegressor b(config);
  b.fit(p.x, p.y);
  const Vector pa = a.predict(p.x);
  const Vector pb = b.predict(p.x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

class SvrSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SvrSeedSweep, ConvergesOnRandomProblems) {
  const Problem p = smooth_problem(90, 100 + GetParam(), 0.02);
  SvrConfig config;
  config.c = 8.0;
  config.gamma = 0.4;
  config.epsilon = 0.02;
  SvrRegressor model(config);
  model.fit(p.x, p.y);
  EXPECT_LE(model.final_gap(), config.tol) << "KKT gap not closed";
  EXPECT_GT(r2_score(p.y, model.predict(p.x)), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SvrSeedSweep, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ffr::ml
