// Deliberately non-canonical structural Verilog: block comments, mixed
// whitespace, comma declaration lists, out-of-order named pin connections,
// tie-off literals, escaped identifiers, an init attribute and a
// register-bus pragma. The reader must accept all of it; the writer then
// re-emits a canonical form that must be byte-stable.
module mix_tolerance (clk, go,
    \din[0] , y, \state_out );
  input clk;
  input go, \din[0] ;
  output y, \state_out ;
  wire n1, n2 /* inline comment */ , sel;
  wire q0, q1;
  assign y = n2;
  assign \state_out  = q1;
  INV_X1 u_inv (.A(go), .ZN(n1));
  AND2_X2 u_sel (.A2(\din[0] ), .A1(go), .ZN(sel));
  MUX2_X1 u_mux (.S(sel), .B(1'b1), .ZN(n2), .A(n1));
  (* init = 1'b1 *) DFF_X1 q0_reg (.D(n2), .CK(clk), .Q(q0));
  DFF_X2 q1_reg (.Q(q1), .D(q0), .CK(clk));
  // ffr:bus state q0_reg q1_reg
endmodule
