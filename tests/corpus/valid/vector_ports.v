// Vectored port/wire declarations with bit selects: a 4-bit input reduced
// pairwise, two combinational output bits and one registered output.
module vector_ports (clk, d, q, y);
  input clk;
  input [3:0] d;
  output [1:0] q;
  output y;
  wire [2:0] n;
  assign q[0] = n[0];
  assign q[1] = n[1];
  assign y = n[2];
  AND2_X1 u0 (.A1(d[3]), .A2(d[2]), .ZN(n[0]));
  AND2_X1 u1 (.A1(d[1]), .A2(d[0]), .ZN(n[1]));
  DFF_X1 r0 (.D(n[0]), .CK(clk), .Q(n[2]));
endmodule
