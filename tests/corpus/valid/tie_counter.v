// A 2-bit enable counter: feedback through flip-flops (legal sequential
// loop), a powered-on LSB via (* init = 1'b1 *), upsized DFF_X2 registers,
// a shared 1'b0 tie-off and a bus pragma with an escaped bus name.
module tie_counter (clk, en, \count[0] , \count[1] , zero);
  input clk;
  input en;
  output \count[0] , \count[1] , zero;
  wire d0, d1, q0, q1, carry, zn;
  assign \count[0]  = q0;
  assign \count[1]  = q1;
  assign zero = zn;
  XOR2_X1 u_t0 (.A1(q0), .A2(en), .ZN(d0));
  AND2_X1 u_c (.A1(q0), .A2(en), .ZN(carry));
  XOR2_X1 u_t1 (.A1(q1), .A2(carry), .ZN(d1));
  NOR2_X1 u_z (.A1(q1), .A2(1'b0), .ZN(zn));
  (* init = 1'b1 *) DFF_X2 r0 (.D(d0), .CK(clk), .Q(q0));
  DFF_X2 r1 (.D(d1), .CK(clk), .Q(q1));
  // ffr:bus \count  r0 r1
endmodule
