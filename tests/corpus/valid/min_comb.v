// Smallest accepted shape: purely combinational, no clk consumer (clk is
// still declared because the writer always emits it), one AOI21 with its
// three distinct pin names.
module min_comb (clk, a, b, c, y);
  input clk;
  input a, b, c;
  output y;
  wire n1;
  assign y = n1;
  AOI21_X4 u0 (.A1(a), .A2(b), .B(c), .ZN(n1));
endmodule
