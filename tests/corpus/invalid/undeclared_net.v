// Rejected: 'ghost' is used as a pin connection but never declared as an
// input or wire (single-pass reader: declarations must precede use).
module undeclared_net (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1;
  assign y = n1;
  INV_X1 u1 (.A(ghost), .ZN(n1));
endmodule
