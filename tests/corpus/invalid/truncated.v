// Rejected: the file ends mid-instance (simulates a truncated download or
// an interrupted write). Expected diagnostic: "... got end of file".
module truncated (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1;
  assign y = n1;
  INV_X1 u1 (.A(a)