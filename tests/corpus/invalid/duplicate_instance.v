// Rejected: two instances share the name 'u1' — cell names key the fault
// campaign's per-flip-flop results and must be unique.
module duplicate_instance (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1, n2;
  assign y = n2;
  INV_X1 u1 (.A(a), .ZN(n1));
  INV_X1 u1 (.A(n1), .ZN(n2));
endmodule
