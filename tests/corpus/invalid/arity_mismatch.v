// Rejected: NAND2 has pins A1 and A2; pin A2 is left unconnected.
module arity_mismatch (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1;
  assign y = n1;
  NAND2_X1 u1 (.A1(a), .ZN(n1));
endmodule
