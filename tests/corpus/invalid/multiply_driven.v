// Rejected: net 'n1' is driven by two instance outputs.
module multiply_driven (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1;
  assign y = n1;
  INV_X1 u1 (.A(a), .ZN(n1));
  BUF_X1 u2 (.A(a), .ZN(n1));
endmodule
