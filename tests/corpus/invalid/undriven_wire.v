// Rejected: wire 'dangling' has no driver — the netlist invariant (every
// net is a primary input or driven by exactly one cell) would not hold.
module undriven_wire (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1, dangling;
  assign y = n1;
  INV_X1 u1 (.A(a), .ZN(n1));
endmodule
