// Rejected: NAND9_X7 is not a cell of the NanGate45-style default library.
module unknown_cell (clk, a, y);
  input clk;
  input a;
  output y;
  wire n1;
  assign y = n1;
  NAND9_X7 u1 (.A1(a), .ZN(n1));
endmodule
