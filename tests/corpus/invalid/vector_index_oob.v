// Rejected: bit select outside the declared [3:0] range.
module vector_index_oob (clk, d, y);
  input clk;
  input [3:0] d;
  output y;
  wire n0;
  assign y = n0;
  AND2_X1 u0 (.A1(d[4]), .A2(d[0]), .ZN(n0));
endmodule
