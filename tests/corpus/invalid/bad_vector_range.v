// Rejected: the vector range is wider than the reader's 4096-bit cap
// (a typo'd bound must become a diagnostic, not a million-net elaboration).
module bad_vector_range (clk, d, y);
  input clk;
  input [70000:0] d;
  output y;
  assign y = d[0];
endmodule
