// Tests for model selection and hyperparameter search: fold invariants,
// stratification, the training-size protocol, learning curves, random+grid
// search reproducibility.

#include <gtest/gtest.h>

#include <set>

#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/model_selection.hpp"
#include "ml/search.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"

namespace ffr::ml {
namespace {

struct Problem {
  Matrix x;
  Vector y;
};

Problem make_problem(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Problem p;
  p.x = Matrix(n, 3);
  p.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 3; ++c) p.x(i, c) = rng.uniform(-2, 2);
    p.y[i] = std::abs(p.x(i, 0)) + 0.5 * p.x(i, 1) * p.x(i, 2);
  }
  return p;
}

TEST(SplitTools, TrainTestSplitPartitions) {
  const Split split = train_test_split(100, 0.3, 1);
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_EQ(split.test.size(), 70u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTools, TrainTestSplitRejectsBadFraction) {
  EXPECT_THROW((void)train_test_split(10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)train_test_split(10, 1.0, 1), std::invalid_argument);
}

TEST(SplitTools, KFoldCoversEveryRowExactlyOnce) {
  const auto splits = k_fold(53, 10, 2);
  ASSERT_EQ(splits.size(), 10u);
  std::vector<int> test_hits(53, 0);
  for (const Split& split : splits) {
    EXPECT_EQ(split.train.size() + split.test.size(), 53u);
    for (const std::size_t i : split.test) ++test_hits[i];
    // Train and test are disjoint.
    std::set<std::size_t> train_set(split.train.begin(), split.train.end());
    for (const std::size_t i : split.test) EXPECT_EQ(train_set.count(i), 0u);
  }
  for (const int hits : test_hits) EXPECT_EQ(hits, 1);
}

TEST(SplitTools, StratifiedFoldsBalanceTargetRange) {
  // Bimodal target: half ~0, half ~1 (like FDR distributions).
  util::Rng rng(3);
  Vector y(200);
  for (std::size_t i = 0; i < 200; ++i) y[i] = i < 100 ? rng.uniform(0, 0.05)
                                                       : rng.uniform(0.9, 1.0);
  const auto splits = stratified_k_fold(y, 10, 4);
  for (const Split& split : splits) {
    std::size_t high = 0;
    for (const std::size_t i : split.test) high += y[i] > 0.5;
    // Each fold's test set (20 rows) should hold ~10 of each mode.
    EXPECT_NEAR(static_cast<double>(high), 10.0, 2.0);
  }
  // Coverage invariant as for plain k-fold.
  std::vector<int> hits(200, 0);
  for (const Split& split : splits) {
    for (const std::size_t i : split.test) ++hits[i];
  }
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(CrossValidate, PerfectModelScoresPerfectly) {
  // Linear model on exactly linear data: R2 = 1 in every fold.
  util::Rng rng(5);
  Matrix x(80, 2);
  Vector y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = rng.uniform(-1, 1);
    x(i, 1) = rng.uniform(-1, 1);
    y[i] = 3 * x(i, 0) - x(i, 1) + 2;
  }
  const auto splits = k_fold(80, 5, 6);
  LinearLeastSquares prototype;
  const CrossValidationResult cv = cross_validate(prototype, x, y, splits);
  EXPECT_NEAR(cv.mean_test.r2, 1.0, 1e-9);
  EXPECT_NEAR(cv.mean_train.r2, 1.0, 1e-9);
  EXPECT_NEAR(cv.r2_test_stddev, 0.0, 1e-9);
  EXPECT_EQ(cv.folds.size(), 5u);
}

TEST(CrossValidate, TrainingSizeLimitsSamples) {
  const Problem p = make_problem(100, 7);
  const auto splits = k_fold(100, 5, 8);
  KnnRegressor prototype(3, 2.0, KnnWeights::kDistance);
  // 20% training size: each fold trains on ~20 samples although 80 available.
  const CrossValidationResult cv =
      cross_validate(prototype, p.x, p.y, splits, 0.2);
  // The protocol ran; scores are defined and training R2 is high for k-NN.
  EXPECT_GT(cv.mean_train.r2, 0.9);
}

TEST(CrossValidate, MoreTrainingDataHelps) {
  const Problem p = make_problem(300, 9);
  const auto splits = k_fold(300, 5, 10);
  KnnRegressor prototype(3, 2.0, KnnWeights::kDistance);
  const double r2_small =
      cross_validate(prototype, p.x, p.y, splits, 0.05).mean_test.r2;
  const double r2_large =
      cross_validate(prototype, p.x, p.y, splits, 0.8).mean_test.r2;
  EXPECT_GT(r2_large, r2_small);
}

TEST(LearningCurve, MonotoneImprovementAndSaturation) {
  const Problem p = make_problem(400, 11);
  const auto splits = k_fold(400, 5, 12);
  KnnRegressor prototype(3, 2.0, KnnWeights::kDistance);
  const std::vector<double> fractions{0.05, 0.2, 0.5, 0.8};
  const auto curve = learning_curve(prototype, p.x, p.y, fractions, splits);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_GT(curve.back().test_r2_mean, curve.front().test_r2_mean);
  // Saturation: the 0.5 -> 0.8 gain is much smaller than 0.05 -> 0.2.
  const double early_gain = curve[1].test_r2_mean - curve[0].test_r2_mean;
  const double late_gain = curve[3].test_r2_mean - curve[2].test_r2_mean;
  EXPECT_LT(late_gain, early_gain);
  // Train sample counts follow the fractions (of the full dataset).
  EXPECT_EQ(curve[1].train_samples, 80u);
  EXPECT_EQ(curve[2].train_samples, 200u);
}

TEST(Search, RandomSearchFindsGoodGamma) {
  const Problem p = make_problem(150, 13);
  const auto splits = k_fold(150, 4, 14);
  SvrConfig base;
  base.c = 10;
  base.epsilon = 0.05;
  SvrRegressor prototype(base);
  const std::vector<ParamRange> ranges{
      {.name = "gamma", .lo = 1e-3, .hi = 10.0, .log_scale = true}};
  const SearchResult result =
      random_search(prototype, p.x, p.y, ranges, 8, splits);
  EXPECT_EQ(result.evaluated.size(), 8u);
  EXPECT_GT(result.best.score, 0.5);
  // Best must be the max of the evaluated scores.
  for (const auto& cand : result.evaluated) {
    EXPECT_LE(cand.score, result.best.score);
  }
}

TEST(Search, RandomSearchDeterministicForSeed) {
  const Problem p = make_problem(80, 15);
  const auto splits = k_fold(80, 4, 16);
  KnnRegressor prototype;
  const std::vector<ParamRange> ranges{
      {.name = "k", .lo = 1, .hi = 15, .integer = true}};
  const SearchResult a =
      random_search(prototype, p.x, p.y, ranges, 5, splits, 1.0, 42);
  const SearchResult b =
      random_search(prototype, p.x, p.y, ranges, 5, splits, 1.0, 42);
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_EQ(a.evaluated[i].params, b.evaluated[i].params);
    EXPECT_DOUBLE_EQ(a.evaluated[i].score, b.evaluated[i].score);
  }
}

TEST(Search, GridSearchEnumeratesFullGrid) {
  const Problem p = make_problem(60, 17);
  const auto splits = k_fold(60, 3, 18);
  KnnRegressor prototype;
  const std::vector<GridAxis> grid{{"k", {1, 3, 5}}, {"weights", {0, 1}}};
  const SearchResult result = grid_search(prototype, p.x, p.y, grid, splits);
  EXPECT_EQ(result.evaluated.size(), 6u);
  std::set<std::pair<double, double>> seen;
  for (const auto& cand : result.evaluated) {
    seen.insert({cand.params.at("k"), cand.params.at("weights")});
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Search, RandomThenGridRefines) {
  const Problem p = make_problem(120, 19);
  const auto splits = k_fold(120, 4, 20);
  KnnRegressor prototype(5, 2.0, KnnWeights::kDistance);
  const std::vector<ParamRange> ranges{
      {.name = "k", .lo = 1, .hi = 20, .integer = true}};
  const SearchResult result = random_then_grid_search(prototype, p.x, p.y, ranges,
                                                      6, 5, splits);
  // The two-stage search must be at least as good as its random stage alone.
  const SearchResult random_only =
      random_search(prototype, p.x, p.y, ranges, 6, splits);
  EXPECT_GE(result.best.score, random_only.best.score - 1e-12);
  EXPECT_GT(result.evaluated.size(), random_only.evaluated.size());
}

TEST(Search, EmptyInputsRejected) {
  const Problem p = make_problem(30, 21);
  const auto splits = k_fold(30, 3, 22);
  KnnRegressor prototype;
  EXPECT_THROW(
      (void)random_search(prototype, p.x, p.y, {}, 5, splits),
      std::invalid_argument);
  const std::vector<GridAxis> empty_axis{{"k", {}}};
  EXPECT_THROW((void)grid_search(prototype, p.x, p.y, empty_axis, splits),
               std::invalid_argument);
}

}  // namespace
}  // namespace ffr::ml
