// Unit + property tests for src/linalg: matrix algebra identities, QR-based
// least squares (including rank-deficient designs), Cholesky solves, ridge.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace ffr::linalg {
namespace {

Matrix random_matrix(util::Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

Vector random_vector(util::Rng& rng, std::size_t n) {
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(Matrix, InitializerListAndAccess) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6.0);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndMatmul) {
  util::Rng rng(1);
  const Matrix a = random_matrix(rng, 4, 4);
  const Matrix prod = matmul(a, Matrix::identity(4));
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
  }
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  EXPECT_THROW((void)matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
  util::Rng rng(2);
  const Matrix a = random_matrix(rng, 3, 5);
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
  }
}

TEST(Matrix, MatvecMatchesMatmul) {
  util::Rng rng(3);
  const Matrix a = random_matrix(rng, 4, 3);
  const Vector x = random_vector(rng, 3);
  const Vector y = matvec(a, x);
  Matrix xm(3, 1);
  for (std::size_t i = 0; i < 3; ++i) xm(i, 0) = x[i];
  const Matrix ym = matmul(a, xm);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-12);
}

TEST(Matrix, SelectRowsAndCols) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::size_t rows[] = {2, 0};
  const Matrix sel = m.select_rows(rows);
  EXPECT_EQ(sel(0, 0), 7.0);
  EXPECT_EQ(sel(1, 2), 3.0);
  const std::size_t cols[] = {1};
  const Matrix selc = m.select_cols(cols);
  EXPECT_EQ(selc.cols(), 1u);
  EXPECT_EQ(selc(2, 0), 8.0);
}

TEST(Matrix, WithBiasColumn) {
  const Matrix m{{2, 3}};
  const Matrix b = m.with_bias_column();
  EXPECT_EQ(b.cols(), 3u);
  EXPECT_EQ(b(0, 0), 1.0);
  EXPECT_EQ(b(0, 1), 2.0);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1, 2, 3};
  const Vector b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm1(b), 15.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  EXPECT_NEAR(norm2(a), std::sqrt(14.0), 1e-12);
  const Vector c = axpy(2.0, a, b);
  EXPECT_EQ(c, (Vector{6, -1, 12}));
}

TEST(VectorOps, Statistics) {
  const Vector v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(min_value(v), 1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 4.0);
  EXPECT_THROW((void)mean(Vector{}), std::invalid_argument);
}

TEST(Qr, SolvesExactSquareSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vector b{5, 10};
  const Vector x = lstsq(a, b);
  EXPECT_NEAR(2 * x[0] + x[1], 5.0, 1e-10);
  EXPECT_NEAR(x[0] + 3 * x[1], 10.0, 1e-10);
}

TEST(Qr, RecoversPlantedCoefficients) {
  util::Rng rng(7);
  const std::size_t n = 200;
  const std::size_t p = 6;
  const Vector truth{1.5, -2.0, 0.0, 3.25, 0.5, -1.0};
  Matrix x = random_matrix(rng, n, p);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = dot(x.row(i), truth);
  const Vector est = lstsq(x, y);
  for (std::size_t j = 0; j < p; ++j) EXPECT_NEAR(est[j], truth[j], 1e-9);
}

TEST(Qr, LeastSquaresResidualOrthogonalToColumns) {
  util::Rng rng(8);
  const Matrix x = random_matrix(rng, 50, 4);
  const Vector y = random_vector(rng, 50);
  const Vector beta = lstsq(x, y);
  const Vector fitted = matvec(x, beta);
  Vector resid(50);
  for (std::size_t i = 0; i < 50; ++i) resid[i] = y[i] - fitted[i];
  const Vector xt_r = vecmat(resid, x);
  for (const double v : xt_r) EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST(Qr, RankDeficientDesignHandled) {
  // Third column is the sum of the first two.
  Matrix x(30, 3);
  util::Rng rng(9);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    x(i, 2) = x(i, 0) + x(i, 1);
  }
  Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) y[i] = 2.0 * x(i, 2);
  const QrDecomposition qr(x);
  EXPECT_EQ(qr.rank(), 2u);
  const Vector beta = qr.solve(y);
  // Predictions must still be exact even though beta is not unique.
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(dot(x.row(i), beta), y[i], 1e-8);
  }
}

TEST(Qr, RankOfIdentity) {
  const QrDecomposition qr(Matrix::identity(5));
  EXPECT_EQ(qr.rank(), 5u);
}

TEST(Cholesky, SolvesSpdSystem) {
  util::Rng rng(10);
  const Matrix a = random_matrix(rng, 6, 6);
  Matrix spd = matmul(a.transposed(), a);
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 1.0;
  const Vector b = random_vector(rng, 6);
  const CholeskyDecomposition chol(spd);
  const Vector x = chol.solve(b);
  const Vector back = matvec(spd, x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix not_spd{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyDecomposition{not_spd}, std::runtime_error);
}

TEST(Ridge, ShrinksTowardZero) {
  util::Rng rng(11);
  const Matrix x = random_matrix(rng, 40, 3);
  const Vector y = random_vector(rng, 40);
  const Vector small_reg = ridge_solve(x, y, 1e-8);
  const Vector big_reg = ridge_solve(x, y, 1e6);
  EXPECT_LT(norm2(big_reg), norm2(small_reg));
  EXPECT_LT(norm2(big_reg), 1e-3);
}

TEST(Ridge, MatchesLstsqWhenUnregularized) {
  util::Rng rng(12);
  const Matrix x = random_matrix(rng, 40, 4);
  Vector y(40);
  const Vector truth{1, -1, 2, 0.5};
  for (std::size_t i = 0; i < 40; ++i) y[i] = dot(x.row(i), truth);
  const Vector a = lstsq(x, y);
  const Vector b = ridge_solve(x, y, 0.0);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(a[j], b[j], 1e-7);
}

// Property sweep: QR solve matches Cholesky-based normal equations on
// random well-conditioned problems of varying size.
class QrVsNormalEquations : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QrVsNormalEquations, Agree) {
  util::Rng rng(100 + GetParam());
  const std::size_t n = 20 + 7 * GetParam();
  const std::size_t p = 3 + GetParam() % 5;
  const Matrix x = random_matrix(rng, n, p);
  const Vector y = random_vector(rng, n);
  const Vector qr_beta = lstsq(x, y);
  const Vector ne_beta = ridge_solve(x, y, 0.0);
  for (std::size_t j = 0; j < p; ++j) EXPECT_NEAR(qr_beta[j], ne_beta[j], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QrVsNormalEquations,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

}  // namespace
}  // namespace ffr::linalg
