// Integration tests for the MAC core + testbench: the golden loopback run
// must deliver exactly the sent payloads, deterministically; fault injection
// must produce classifiable failures; benign flip-flops must stay benign.

#include <gtest/gtest.h>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "rtl/crc.hpp"
#include "sim/runner.hpp"

namespace ffr::circuits {
namespace {

MacConfig small_config() {
  MacConfig config;
  config.tx_depth_log2 = 4;
  config.rx_depth_log2 = 4;
  return config;
}

MacTestbenchConfig small_tb_config() {
  MacTestbenchConfig config;
  config.num_frames = 4;
  config.min_payload = 8;
  config.max_payload = 20;
  config.seed = 77;
  return config;
}

TEST(Residue, MatchesSoftwareCrcForAnyMessage) {
  // Processing message+FCS must land the CRC register on the same residue
  // regardless of message content.
  const std::uint32_t residue = rtl::crc32_residue();
  for (const std::size_t len : {0u, 1u, 7u, 64u}) {
    std::vector<std::uint8_t> msg(len);
    for (std::size_t i = 0; i < len; ++i) msg[i] = static_cast<std::uint8_t>(i * 37);
    std::uint32_t state = rtl::kCrc32Init;
    for (const auto byte : msg) state = rtl::crc32_update(state, byte);
    const std::uint32_t fcs = state ^ rtl::kCrc32FinalXor;
    for (int i = 0; i < 4; ++i) {
      state = rtl::crc32_update(state, static_cast<std::uint8_t>(fcs >> (8 * i)));
    }
    EXPECT_EQ(state, residue) << "len=" << len;
  }
}

TEST(MacCore, BuildsWithExpectedStructure) {
  const MacCore mac = build_mac_core(small_config());
  const auto& nl = mac.netlist;
  EXPECT_GT(nl.num_flip_flops(), 300u);
  EXPECT_GT(nl.register_buses().size(), 10u);
  EXPECT_EQ(mac.in.tx_data.size(), 8u);
  EXPECT_EQ(mac.out.rx_data.size(), 8u);
  EXPECT_EQ(mac.out.status.size(), 8u);
  // Every flip-flop reachable via the bus table belongs to the netlist.
  for (const auto& bus : nl.register_buses()) {
    for (const auto ff : bus.flip_flops) {
      EXPECT_TRUE(netlist::is_sequential(nl.cell(ff).func));
    }
  }
}

TEST(MacCore, DefaultConfigApproachesPaperScale) {
  const MacCore mac = build_mac_core();
  // The paper's 10GE MAC synthesis yields 1054 flip-flops; ours should be in
  // the same regime (several hundred to ~1k).
  EXPECT_GE(mac.netlist.num_flip_flops(), 800u);
  EXPECT_LE(mac.netlist.num_flip_flops(), 1300u);
}

TEST(MacGolden, LoopbackDeliversExactPayloads) {
  const MacCore mac = build_mac_core(small_config());
  const MacTestbench bench = build_mac_testbench(mac, small_tb_config());
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  ASSERT_EQ(golden.frames.size(), bench.sent_payloads.size());
  for (std::size_t f = 0; f < golden.frames.size(); ++f) {
    EXPECT_EQ(golden.frames[f].bytes, bench.sent_payloads[f]) << "frame " << f;
    EXPECT_FALSE(golden.frames[f].err) << "frame " << f;
  }
}

TEST(MacGolden, ContinuousReadAlsoDelivers) {
  const MacCore mac = build_mac_core(small_config());
  MacTestbenchConfig tbc = small_tb_config();
  tbc.rx_read_burst = 0;  // read every cycle
  const MacTestbench bench = build_mac_testbench(mac, tbc);
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  ASSERT_EQ(golden.frames.size(), bench.sent_payloads.size());
  for (std::size_t f = 0; f < golden.frames.size(); ++f) {
    EXPECT_EQ(golden.frames[f].bytes, bench.sent_payloads[f]);
  }
}

TEST(MacGolden, DeterministicAcrossRuns) {
  const MacCore mac = build_mac_core(small_config());
  const MacTestbench bench = build_mac_testbench(mac, small_tb_config());
  const sim::GoldenResult a = sim::run_golden(mac.netlist, bench.tb);
  const sim::GoldenResult b = sim::run_golden(mac.netlist, bench.tb);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    EXPECT_EQ(a.frames[f].bytes, b.frames[f].bytes);
  }
  EXPECT_EQ(a.activity.cycles_at_1, b.activity.cycles_at_1);
  EXPECT_EQ(a.activity.state_changes, b.activity.state_changes);
}

TEST(MacGolden, VariedSeedsProduceDifferentWorkloads) {
  const MacCore mac = build_mac_core(small_config());
  MacTestbenchConfig tbc = small_tb_config();
  tbc.seed = 1;
  const MacTestbench a = build_mac_testbench(mac, tbc);
  tbc.seed = 2;
  const MacTestbench b = build_mac_testbench(mac, tbc);
  EXPECT_NE(a.sent_payloads, b.sent_payloads);
}

TEST(MacGolden, ActivityShowsIdleAndBusyFlipFlops) {
  const MacCore mac = build_mac_core(small_config());
  const MacTestbench bench = build_mac_testbench(mac, small_tb_config());
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  std::size_t never_toggled = 0;
  std::size_t busy = 0;
  for (const auto changes : golden.activity.state_changes) {
    if (changes == 0) ++never_toggled;
    if (changes > 10) ++busy;
  }
  // The design mixes hot datapath state with cold config state.
  EXPECT_GT(never_toggled, 5u);
  EXPECT_GT(busy, 50u);
}

TEST(MacFault, CrcFlipDuringTransmitIsDetectedAtReceiver) {
  const MacCore mac = build_mac_core(small_config());
  const MacTestbench bench = build_mac_testbench(mac, small_tb_config());
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);

  // Find the TX CRC bus and flip one of its bits while frame 0 transits.
  const auto& nl = mac.netlist;
  const netlist::RegisterBus* tx_crc = nullptr;
  for (const auto& bus : nl.register_buses()) {
    if (bus.name == "tx_crc") tx_crc = &bus;
  }
  ASSERT_NE(tx_crc, nullptr);
  sim::InjectionEvent ev;
  ev.ff_cell = tx_crc->flip_flops[5];
  ev.cycle = 30;  // mid-frame-0 transmission
  ev.lane_mask = 0b1;
  const sim::RunResult run = sim::run_testbench(mac.netlist, bench.tb, {&ev, 1});
  // The receiver must flag at least one frame as bad (CRC mismatch) or the
  // frame stream must differ from golden.
  bool differs = run.lane_frames[0].size() != golden.frames.size();
  if (!differs) {
    for (std::size_t f = 0; f < golden.frames.size(); ++f) {
      if (!(run.lane_frames[0][f] == golden.frames[f])) differs = true;
    }
  }
  EXPECT_TRUE(differs);
  // Lane 1 (no injection) must match golden exactly.
  ASSERT_EQ(run.lane_frames[1].size(), golden.frames.size());
  for (std::size_t f = 0; f < golden.frames.size(); ++f) {
    EXPECT_TRUE(run.lane_frames[1][f] == golden.frames[f]);
  }
}

TEST(MacFault, BistFlipIsBenign) {
  const MacCore mac = build_mac_core(small_config());
  const MacTestbench bench = build_mac_testbench(mac, small_tb_config());
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  const auto& nl = mac.netlist;
  const netlist::RegisterBus* lfsr = nullptr;
  for (const auto& bus : nl.register_buses()) {
    if (bus.name == "bist_lfsr") lfsr = &bus;
  }
  ASSERT_NE(lfsr, nullptr);
  sim::InjectionEvent ev;
  ev.ff_cell = lfsr->flip_flops[3];
  ev.cycle = 30;
  ev.lane_mask = sim::kAllLanes;
  const sim::RunResult run = sim::run_testbench(mac.netlist, bench.tb, {&ev, 1});
  ASSERT_EQ(run.lane_frames[0].size(), golden.frames.size());
  for (std::size_t f = 0; f < golden.frames.size(); ++f) {
    EXPECT_TRUE(run.lane_frames[0][f] == golden.frames[f]);
  }
}

TEST(MacFault, SixtyFourLanesCarryIndependentInjections) {
  const MacCore mac = build_mac_core(small_config());
  MacTestbenchConfig tbc = small_tb_config();
  tbc.num_frames = 2;
  const MacTestbench bench = build_mac_testbench(mac, tbc);
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  // Inject into a TX FIFO storage cell at a different cycle per lane.
  const auto& nl = mac.netlist;
  const netlist::RegisterBus* mem = nullptr;
  for (const auto& bus : nl.register_buses()) {
    if (bus.name == "tx_fifo_mem0") mem = &bus;
  }
  ASSERT_NE(mem, nullptr);
  std::vector<sim::InjectionEvent> events;
  for (std::size_t lane = 0; lane < 8; ++lane) {
    sim::InjectionEvent ev;
    ev.ff_cell = mem->flip_flops[0];
    ev.cycle = static_cast<std::uint32_t>(12 + 7 * lane);
    ev.lane_mask = sim::Lanes{1} << lane;
    events.push_back(ev);
  }
  const sim::RunResult run = sim::run_testbench(mac.netlist, bench.tb, events);
  // Some lanes fail, some do not (the slot only intermittently holds live
  // data) — and lane 63 (never injected) matches golden.
  ASSERT_EQ(run.lane_frames[63].size(), golden.frames.size());
  for (std::size_t f = 0; f < golden.frames.size(); ++f) {
    EXPECT_TRUE(run.lane_frames[63][f] == golden.frames[f]);
  }
}

}  // namespace
}  // namespace ffr::circuits
