// Differential and determinism tests for the batched CampaignEngine
// (fault/engine.hpp): the engine must reproduce the flat run_campaign
// per-flip-flop results bit-exactly for the same seed, across circuits, and
// its output must be invariant under every threading / batching choice —
// scheduling can never change science output. Also covers the cached-golden
// estimation-flow overload and the ReplayRunner reuse contract.

#include <gtest/gtest.h>

#include <filesystem>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "core/estimation_flow.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "sim/runner.hpp"

namespace ffr::fault {
namespace {

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].ff_index, b.per_ff[i].ff_index) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].name, b.per_ff[i].name) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].injections, b.per_ff[i].injections) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << "ff " << i << " (" << a.per_ff[i].name << ")";
  }
  const auto fdr_a = a.fdr_vector();
  const auto fdr_b = b.fdr_vector();
  ASSERT_EQ(fdr_a.size(), fdr_b.size());
  for (std::size_t i = 0; i < fdr_a.size(); ++i) {
    // Bit-exact, not approximately equal: both sides divide identical
    // integer counts.
    EXPECT_EQ(fdr_a[i], fdr_b[i]) << "ff " << i;
  }
  EXPECT_EQ(a.total_injections, b.total_injections);
}

struct MacEngineFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = new circuits::MacCore(circuits::build_mac_core(mc));
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = new circuits::MacTestbench(circuits::build_mac_testbench(*mac, tbc));
    engine = new CampaignEngine(mac->netlist, bench->tb);
  }
  static void TearDownTestSuite() {
    delete engine;
    engine = nullptr;
    delete bench;
    bench = nullptr;
    delete mac;
    mac = nullptr;
  }
  static circuits::MacCore* mac;
  static circuits::MacTestbench* bench;
  static CampaignEngine* engine;
};

circuits::MacCore* MacEngineFixture::mac = nullptr;
circuits::MacTestbench* MacEngineFixture::bench = nullptr;
CampaignEngine* MacEngineFixture::engine = nullptr;

TEST_F(MacEngineFixture, GoldenMatchesRunGolden) {
  const sim::GoldenResult reference = sim::run_golden(mac->netlist, bench->tb);
  const sim::GoldenResult& cached = engine->golden();
  EXPECT_EQ(cached.frames, reference.frames);
  EXPECT_EQ(cached.activity.cycles_at_1, reference.activity.cycles_at_1);
  EXPECT_EQ(cached.activity.state_changes, reference.activity.state_changes);
  EXPECT_EQ(cached.activity.total_cycles, reference.activity.total_cycles);
  EXPECT_EQ(cached.eval_count, reference.eval_count);
}

TEST_F(MacEngineFixture, BitExactWithFlatCampaignOnMac) {
  CampaignConfig config;
  config.injections_per_ff = 48;
  for (std::size_t i = 0; i < mac->netlist.num_flip_flops(); i += 9) {
    config.ff_subset.push_back(i);
  }
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  const CampaignResult batched = engine->run(config);
  expect_bit_identical(flat, batched);
}

TEST_F(MacEngineFixture, PacksLanesAcrossFlipFlops) {
  CampaignConfig config;
  config.injections_per_ff = 48;  // flat: 1 pass per FF, 16 idle lanes each
  config.ff_subset = {0, 3, 7, 11, 20, 33, 40, 55};
  // Pin the scalar width: this test asserts 64-lane packing arithmetic, and
  // kAuto would pick a wider block on SIMD hosts.
  config.lane_width = sim::LaneWidth::k64;
  const CampaignResult flat =
      run_campaign(mac->netlist, bench->tb, engine->golden(), config);
  const CampaignResult batched = engine->run(config);
  // 8 x 48 = 384 injections: flat needs 8 passes, batched ceil(384/64) = 6.
  // The 64-lane scalar reference path never re-shapes or multi-blocks its
  // passes, so these counts are pinned exactly.
  EXPECT_EQ(flat.total_sim_passes, 8u);
  EXPECT_EQ(batched.total_sim_passes, 6u);
  EXPECT_EQ(batched.lanes_per_pass, 64u);
  EXPECT_EQ(batched.blocks_per_pass, 1u);
  ASSERT_EQ(batched.pass_histogram.size(), 1u);
  EXPECT_EQ(batched.pass_histogram[0].width, 64u);
  EXPECT_EQ(batched.pass_histogram[0].blocks, 1u);
  EXPECT_EQ(batched.pass_histogram[0].passes, 6u);
  expect_bit_identical(flat, batched);

  // Same campaign at whatever (width, blocks) shape the host resolves for
  // kAuto: the pass count follows the deterministic adaptive schedule, the
  // science does not.
  CampaignConfig wide = config;
  wide.lane_width = sim::LaneWidth::kAuto;
  const CampaignResult auto_width = engine->run(wide);
  const std::size_t auto_block_width =
      auto_width.lanes_per_pass / auto_width.blocks_per_pass;
  EXPECT_EQ(auto_width.total_sim_passes,
            build_pass_schedule(384, auto_block_width,
                                auto_width.blocks_per_pass)
                .size());
  expect_bit_identical(flat, auto_width);
}

TEST_F(MacEngineFixture, DeterministicAcrossThreadsAndBatchSizes) {
  CampaignConfig base;
  base.injections_per_ff = 24;
  base.ff_subset = {1, 2, 5, 30, 60, 90, 120, 150};
  const CampaignResult reference = engine->run(base);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    for (const std::size_t batch :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      CampaignConfig config = base;
      config.num_threads = threads;
      config.batch_size = batch;
      const CampaignResult result = engine->run(config);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      expect_bit_identical(reference, result);
      EXPECT_EQ(result.total_sim_passes, reference.total_sim_passes);
    }
  }
}

TEST_F(MacEngineFixture, SubsetOrderIndependent) {
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.ff_subset = {7, 90};
  const CampaignResult a = engine->run(config);
  config.ff_subset = {90, 7, 33};
  const CampaignResult b = engine->run(config);
  EXPECT_EQ(a.per_ff[0].classes.counts, b.per_ff[1].classes.counts);  // ff 7
  EXPECT_EQ(a.per_ff[1].classes.counts, b.per_ff[0].classes.counts);  // ff 90
}

TEST_F(MacEngineFixture, RunCachedRoundTrips) {
  const auto path =
      std::filesystem::temp_directory_path() / "ffr_engine_cache_test.csv";
  std::filesystem::remove(path);
  CampaignConfig config;
  config.injections_per_ff = 8;
  config.ff_subset = {0, 1, 2};
  const CampaignResult first = engine->run_cached(config, path);
  ASSERT_TRUE(std::filesystem::exists(path));
  const CampaignResult second = engine->run_cached(config, path);
  expect_bit_identical(first, second);
  std::filesystem::remove(path);
}

TEST_F(MacEngineFixture, FlowOverloadMatchesStandaloneFlow) {
  core::FlowConfig config;
  config.training_size = 0.25;
  config.injections_per_ff = 24;
  config.model = "knn_paper";
  const core::FlowResult standalone =
      core::run_estimation_flow(mac->netlist, bench->tb, config);
  const core::FlowResult reused = core::run_estimation_flow(*engine, config);
  ASSERT_EQ(standalone.fdr.size(), reused.fdr.size());
  for (std::size_t i = 0; i < standalone.fdr.size(); ++i) {
    EXPECT_EQ(standalone.fdr[i], reused.fdr[i]) << "ff " << i;
  }
  EXPECT_EQ(standalone.train_indices, reused.train_indices);
  EXPECT_EQ(standalone.injections_spent, reused.injections_spent);
}

TEST_F(MacEngineFixture, RepeatedFlowInvocationsReuseGoldenDeterministically) {
  core::FlowConfig config;
  config.training_size = 0.2;
  config.injections_per_ff = 16;
  const core::FlowResult a = core::run_estimation_flow(*engine, config);
  const core::FlowResult b = core::run_estimation_flow(*engine, config);
  ASSERT_EQ(a.fdr.size(), b.fdr.size());
  for (std::size_t i = 0; i < a.fdr.size(); ++i) {
    EXPECT_EQ(a.fdr[i], b.fdr[i]) << "ff " << i;
  }
}

TEST_F(MacEngineFixture, ReplayRunnerIsBitExactAcrossReuse) {
  // The engine's per-worker simulator reuse rests on this contract: a
  // ReplayRunner's n-th run equals a fresh run_testbench with the same
  // schedule, including after interleaved fault runs.
  const sim::CompiledStimulus stimulus(mac->netlist, bench->tb);
  sim::ReplayRunner runner(stimulus);
  const sim::RunResult clean_first = runner.run();
  sim::InjectionEvent ev;
  ev.ff_cell = mac->netlist.flip_flops()[3];
  ev.cycle = static_cast<std::uint32_t>(bench->tb.inject_begin + 5);
  ev.lane_mask = 0x10;
  const sim::InjectionEvent events[] = {ev};
  const sim::RunResult faulty = runner.run(events);
  const sim::RunResult clean_again = runner.run();
  const sim::RunResult reference = sim::run_testbench(mac->netlist, bench->tb);
  for (std::size_t lane = 0; lane < sim::kNumLanes; ++lane) {
    EXPECT_EQ(clean_first.lane_frames[lane], reference.lane_frames[lane]);
    EXPECT_EQ(clean_again.lane_frames[lane], reference.lane_frames[lane]);
  }
  EXPECT_EQ(clean_first.eval_count, reference.eval_count);
  EXPECT_EQ(clean_again.eval_count, reference.eval_count);
  // The faulted lane differs from golden somewhere or classifies as OK —
  // either way the other 63 lanes must still match the clean run.
  for (std::size_t lane = 0; lane < sim::kNumLanes; ++lane) {
    if (lane == 4) continue;
    EXPECT_EQ(faulty.lane_frames[lane], reference.lane_frames[lane]);
  }
}

TEST_F(MacEngineFixture, EmptyWindowRejected) {
  sim::Testbench bad = bench->tb;
  bad.inject_end = bad.inject_begin;
  CampaignEngine bad_engine(mac->netlist, bad);
  EXPECT_THROW((void)bad_engine.run({}), std::invalid_argument);
}

TEST_F(MacEngineFixture, OutOfRangeSubsetRejected) {
  CampaignConfig config;
  config.ff_subset = {mac->netlist.num_flip_flops()};
  EXPECT_THROW((void)engine->run(config), std::out_of_range);
}

// ---- second circuit: the pipeline datapath --------------------------------------

TEST(PipelineEngine, BitExactWithFlatCampaign) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core);
  CampaignEngine engine(core.netlist, bench.tb);
  CampaignConfig config;
  config.injections_per_ff = 32;
  const CampaignResult flat =
      run_campaign(core.netlist, bench.tb, engine.golden(), config);
  const CampaignResult batched = engine.run(config);
  expect_bit_identical(flat, batched);
  EXPECT_LE(batched.total_sim_passes, flat.total_sim_passes);
}

TEST(PipelineEngine, DeterministicAcrossThreads) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core);
  CampaignEngine engine(core.netlist, bench.tb);
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.num_threads = 1;
  const CampaignResult single = engine.run(config);
  config.num_threads = 0;  // hardware concurrency
  config.batch_size = 2;
  const CampaignResult parallel = engine.run(config);
  expect_bit_identical(single, parallel);
}

}  // namespace
}  // namespace ffr::fault
