// Property and differential tests for the incremental checkpointed replay
// subsystem: dirty-set eval_incremental() vs full eval() equivalence on
// random circuits, golden checkpoint record/restore bit-exactness on
// mac_core and pipeline_core (relay_core is covered in test_relay_core.cpp),
// replay-mode equivalence of the batched CampaignEngine against the flat
// reference campaign, cost-accounting invariants, and validation of the new
// CampaignConfig knobs.

#include <gtest/gtest.h>

#include <vector>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/random_circuit.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "sim/packed_sim.hpp"
#include "sim/runner.hpp"
#include "sim/wide_runner.hpp"
#include "sim/wide_sim.hpp"
#include "util/rng.hpp"

namespace ffr {
namespace {

// ---- dirty-set evaluation vs full evaluation ---------------------------------

TEST(DirtySetEval, MatchesFullEvalOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    circuits::RandomCircuitConfig cc;
    cc.num_inputs = 5;
    cc.num_outputs = 4;
    cc.num_gates = 60 + 30 * static_cast<std::size_t>(seed % 3);
    cc.num_flip_flops = 8 + 4 * static_cast<std::size_t>(seed % 2);
    cc.seed = seed;
    const netlist::Netlist nl = circuits::build_random_circuit(cc);
    sim::PackedSimulator full(nl);
    sim::PackedSimulator incremental(nl);
    util::Rng rng(seed * 77 + 1);
    const auto pis = nl.primary_inputs();
    const auto ffs = nl.flip_flops();
    for (int cycle = 0; cycle < 40; ++cycle) {
      for (const netlist::NetId pi : pis) {
        // Lane-varying words, not broadcasts: the dirty-set comparison is
        // word-level and must survive diverged lanes.
        const sim::Lanes value = rng();
        full.set_input(pi, value);
        incremental.set_input(pi, value);
      }
      if (!ffs.empty() && rng.bernoulli(0.3)) {
        const netlist::CellId cell = ffs[rng.below(ffs.size())];
        const sim::Lanes mask = rng();
        full.inject(cell, mask);
        incremental.inject(cell, mask);
      }
      full.eval();
      incremental.eval_incremental();
      for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
        ASSERT_EQ(full.value(net), incremental.value(net))
            << "seed " << seed << " cycle " << cycle << " net " << net << " ("
            << nl.net(net).name << ")";
      }
      full.tick();
      incremental.tick();
    }
    // The whole point: the event-driven sweep must not do more gate
    // evaluations than the full sweep.
    EXPECT_LE(incremental.ops_evaluated(), full.ops_evaluated()) << "seed " << seed;
  }
}

TEST(DirtySetEval, QuiescentSweepEvaluatesNothing) {
  const netlist::Netlist nl = circuits::build_random_circuit({});
  sim::PackedSimulator sim(nl);
  sim.eval();
  const std::uint64_t before = sim.ops_evaluated();
  sim.eval_incremental();  // no inputs changed since the full sweep
  EXPECT_EQ(sim.ops_evaluated(), before);
}

TEST(DirtySetEval, RestoreForcesFullResyncSweep) {
  const netlist::Netlist nl = circuits::build_random_circuit({});
  sim::PackedSimulator reference(nl);
  sim::PackedSimulator sim(nl);
  util::Rng rng(99);
  const auto pis = nl.primary_inputs();
  // Walk `sim` into an arbitrary state, then restore `reference`'s flip-flop
  // state into it: the next incremental sweep must fall back to a full eval
  // and converge to reference's net values exactly.
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (const netlist::NetId pi : pis) sim.set_input(pi, rng());
    sim.eval();
    sim.tick();
  }
  std::vector<sim::Lanes> state;
  reference.snapshot_ff_state(state);
  sim.restore_ff_state(state);
  for (const netlist::NetId pi : pis) {
    sim.set_input(pi, reference.value(pi));
  }
  sim.eval_incremental();
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    ASSERT_EQ(sim.value(net), reference.value(net)) << "net " << net;
  }
}

TEST(DirtySetEval, RestoreRejectsSizeMismatch) {
  const netlist::Netlist nl = circuits::build_random_circuit({});
  sim::PackedSimulator sim(nl);
  const std::vector<sim::Lanes> wrong(sim.num_ffs() + 1, 0);
  EXPECT_THROW(sim.restore_ff_state(wrong), std::invalid_argument);
}

// ---- wide (SIMD lane-block) simulator: same dirty-set contracts ----------------

template <std::size_t W>
sim::LaneBlock<W> random_block(util::Rng& rng) {
  sim::LaneBlock<W> block = sim::LaneBlock<W>::zero();
  for (std::size_t w = 0; w < W; ++w) block.set_word(w, rng());
  return block;
}

template <std::size_t W>
void check_wide_dirty_set_matches_full() {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    circuits::RandomCircuitConfig cc;
    cc.num_gates = 50 + 25 * static_cast<std::size_t>(seed % 3);
    cc.num_flip_flops = 6 + 3 * static_cast<std::size_t>(seed % 2);
    cc.seed = seed;
    const netlist::Netlist nl = circuits::build_random_circuit(cc);
    sim::WideSimulator<W> full(nl);
    sim::WideSimulator<W> incremental(nl);
    util::Rng rng(seed * 55 + 2);
    const auto pis = nl.primary_inputs();
    const auto ffs = nl.flip_flops();
    for (int cycle = 0; cycle < 24; ++cycle) {
      for (const netlist::NetId pi : pis) {
        const auto value = random_block<W>(rng);
        full.set_input(pi, value);
        incremental.set_input(pi, value);
      }
      if (!ffs.empty() && rng.bernoulli(0.3)) {
        const netlist::CellId cell = ffs[rng.below(ffs.size())];
        const auto mask = random_block<W>(rng);
        full.inject(cell, mask);
        incremental.inject(cell, mask);
      }
      full.eval();
      incremental.eval_incremental();
      for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
        ASSERT_FALSE(differs(full.value(net), incremental.value(net)))
            << "W=" << W << " seed " << seed << " cycle " << cycle << " net "
            << net << " (" << nl.net(net).name << ")";
      }
      full.tick();
      incremental.tick();
    }
    EXPECT_LE(incremental.ops_evaluated(), full.ops_evaluated())
        << "W=" << W << " seed " << seed;
  }
}

TEST(WideDirtySetEval, MatchesFullEvalAt256) { check_wide_dirty_set_matches_full<4>(); }
TEST(WideDirtySetEval, MatchesFullEvalAt512) { check_wide_dirty_set_matches_full<8>(); }

template <std::size_t W>
void check_wide_restore_forces_resync() {
  const netlist::Netlist nl = circuits::build_random_circuit({});
  sim::WideSimulator<W> reference(nl);
  sim::WideSimulator<W> sim(nl);
  util::Rng rng(43 + W);
  const auto pis = nl.primary_inputs();
  const auto ffs = nl.flip_flops();
  // Walk `sim` into a fully diverged per-lane state (checkpoint-restore at
  // width > 64 happens mid-campaign, when every block carries live faults).
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (const netlist::NetId pi : pis) sim.set_input(pi, random_block<W>(rng));
    if (!ffs.empty()) sim.inject(ffs[rng.below(ffs.size())], random_block<W>(rng));
    sim.eval_incremental();
    sim.tick();
  }
  // Regression guard: leave nets dirtied but NOT yet swept when the restore
  // lands. A resync that trusted the stale dirty set would only re-evaluate
  // those cones and skip every block the restore invalidated underneath.
  for (const netlist::NetId pi : pis) sim.set_input(pi, random_block<W>(rng));
  std::vector<sim::LaneBlock<W>> state;
  reference.snapshot_ff_state(state);
  sim.restore_ff_state(state);
  for (const netlist::NetId pi : pis) sim.set_input(pi, reference.value(pi));
  sim.eval_incremental();
  for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
    ASSERT_FALSE(differs(sim.value(net), reference.value(net)))
        << "W=" << W << " net " << net << " (" << nl.net(net).name << ")";
  }
}

TEST(WideDirtySetEval, RestoreForcesFullResyncAt256) {
  check_wide_restore_forces_resync<4>();
}
TEST(WideDirtySetEval, RestoreForcesFullResyncAt512) {
  check_wide_restore_forces_resync<8>();
}

TEST(WideDirtySetEval, RestoreRejectsSizeMismatch) {
  const netlist::Netlist nl = circuits::build_random_circuit({});
  sim::WideSimulator<8> sim(nl);
  const std::vector<sim::LaneBlock<8>> wrong(sim.num_ffs() + 1,
                                             sim::LaneBlock<8>::zero());
  EXPECT_THROW(sim.restore_ff_state(wrong), std::invalid_argument);
}

// ---- checkpoint record / restore ---------------------------------------------

void expect_same_run(const sim::RunResult& full, const sim::RunResult& resumed) {
  ASSERT_EQ(full.lane_frames.size(), resumed.lane_frames.size());
  for (std::size_t lane = 0; lane < full.lane_frames.size(); ++lane) {
    const sim::FrameList& a = full.lane_frames[lane];
    const sim::FrameList& b = resumed.lane_frames[lane];
    ASSERT_EQ(a.size(), b.size()) << "lane " << lane;
    for (std::size_t f = 0; f < a.size(); ++f) {
      EXPECT_EQ(a[f].bytes, b[f].bytes) << "lane " << lane << " frame " << f;
      EXPECT_EQ(a[f].err, b[f].err) << "lane " << lane << " frame " << f;
      // Stricter than Frame::operator== — a resumed replay reproduces even
      // the delivery cycles.
      EXPECT_EQ(a[f].end_cycle, b[f].end_cycle)
          << "lane " << lane << " frame " << f;
    }
  }
}

void expect_same_ff_state(const netlist::Netlist& nl, const sim::ReplayRunner& a,
                          const sim::ReplayRunner& b) {
  for (const netlist::CellId ff : nl.flip_flops()) {
    ASSERT_EQ(a.simulator().ff_state(ff), b.simulator().ff_state(ff))
        << "ff " << nl.cell(ff).name;
  }
}

/// For every recorded checkpoint: an injection schedule that lands right at,
/// right after, and far beyond the snapshot cycle must replay bit-exactly
/// (frames of all 64 lanes, final flip-flop state) whether it starts from
/// reset or from the checkpoint — with and without dirty-set evaluation.
void check_checkpoint_property(const netlist::Netlist& nl, const sim::Testbench& tb,
                               std::size_t interval) {
  const sim::CompiledStimulus stimulus(nl, tb);
  sim::GoldenCheckpoints ckpts;
  ckpts.interval = interval;
  sim::ReplayRunner recorder(stimulus);
  sim::RunOptions record_options;
  record_options.record = &ckpts;
  (void)recorder.run({}, record_options);
  ASSERT_EQ(ckpts.snapshots.size(), (stimulus.num_cycles() + interval - 1) / interval);
  for (std::size_t k = 0; k < ckpts.snapshots.size(); ++k) {
    ASSERT_EQ(ckpts.snapshots[k].cycle, k * interval);
  }

  const auto ffs = nl.flip_flops();
  sim::ReplayRunner full_runner(stimulus);
  sim::ReplayRunner resumed_runner(stimulus);
  util::Rng rng(interval * 1234567ULL + 9);
  for (std::size_t k = 0; k < ckpts.snapshots.size(); ++k) {
    const std::size_t base = ckpts.snapshots[k].cycle;
    std::vector<sim::InjectionEvent> events;
    sim::InjectionEvent first;
    first.ff_cell = ffs[rng.below(ffs.size())];
    first.cycle = static_cast<std::uint32_t>(base);
    first.lane_mask = sim::Lanes{1} << (k % sim::kNumLanes);
    events.push_back(first);
    if (base + interval / 2 + 1 < stimulus.num_cycles()) {
      sim::InjectionEvent second;
      second.ff_cell = ffs[rng.below(ffs.size())];
      second.cycle = static_cast<std::uint32_t>(base + interval / 2 + 1);
      second.lane_mask = sim::Lanes{1} << ((k + 17) % sim::kNumLanes);
      events.push_back(second);
    }
    const sim::RunResult full = full_runner.run(events);
    EXPECT_EQ(full.start_cycle, 0u);
    for (const bool incremental : {false, true}) {
      sim::RunOptions options;
      options.resume = &ckpts;
      options.incremental_eval = incremental;
      const sim::RunResult resumed = resumed_runner.run(events, options);
      SCOPED_TRACE("checkpoint " + std::to_string(k) + " incremental " +
                   std::to_string(incremental));
      EXPECT_EQ(resumed.start_cycle, base);
      EXPECT_EQ(resumed.cycles_simulated, stimulus.num_cycles() - base);
      expect_same_run(full, resumed);
      expect_same_ff_state(nl, full_runner, resumed_runner);
    }
  }
}

TEST(CheckpointRestore, ReproducesFullRunOnMac) {
  circuits::MacConfig mc;
  mc.tx_depth_log2 = 3;
  mc.rx_depth_log2 = 3;
  const circuits::MacCore mac = circuits::build_mac_core(mc);
  circuits::MacTestbenchConfig tbc;
  tbc.num_frames = 2;
  tbc.min_payload = 8;
  tbc.max_payload = 12;
  tbc.seed = 7;
  const circuits::MacTestbench bench = circuits::build_mac_testbench(mac, tbc);
  check_checkpoint_property(mac.netlist, bench.tb, 13);
}

TEST(CheckpointRestore, ReproducesFullRunOnPipeline) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core, 48);
  check_checkpoint_property(core.netlist, bench.tb, 9);
}

TEST(CheckpointRestore, RunnerContractsRejectMisuse) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core, 24);
  const sim::CompiledStimulus stimulus(core.netlist, bench.tb);
  sim::ReplayRunner runner(stimulus);
  sim::GoldenCheckpoints ckpts;

  sim::RunOptions bad_interval;
  bad_interval.record = &ckpts;
  ckpts.interval = 0;
  EXPECT_THROW((void)runner.run({}, bad_interval), std::invalid_argument);
  ckpts.interval = stimulus.num_cycles() + 1;
  EXPECT_THROW((void)runner.run({}, bad_interval), std::invalid_argument);

  ckpts.interval = 8;
  sim::InjectionEvent ev;
  ev.ff_cell = core.netlist.flip_flops()[0];
  ev.cycle = static_cast<std::uint32_t>(bench.tb.inject_begin);
  ev.lane_mask = 1;
  const sim::InjectionEvent events[] = {ev};
  sim::RunOptions record_with_faults;
  record_with_faults.record = &ckpts;
  EXPECT_THROW((void)runner.run(events, record_with_faults), std::invalid_argument);

  (void)runner.run({}, sim::RunOptions{.record = &ckpts});
  sim::RunOptions resume_with_activity;
  resume_with_activity.resume = &ckpts;
  resume_with_activity.trace_activity = true;
  EXPECT_THROW((void)runner.run(events, resume_with_activity),
               std::invalid_argument);

  // Empty checkpoints cannot serve a resume.
  const sim::GoldenCheckpoints empty;
  sim::RunOptions resume_empty;
  resume_empty.resume = &empty;
  EXPECT_THROW((void)runner.run(events, resume_empty), std::logic_error);
}

// ---- bit-packed checkpoints: one shared representation, two consumers --------

/// Restoring a bit-packed snapshot must behave identically whether the
/// consumer is the scalar 64-lane ReplayRunner or a multi-block wide runner:
/// the packed golden bit is splat across every lane of every block, so the
/// same checkpoint set drives both paths to bit-identical frames and state.
TEST(PackedCheckpoints, RestoreFromPackedEqualsRestoreFromWide) {
  circuits::MacConfig mc;
  mc.tx_depth_log2 = 3;
  mc.rx_depth_log2 = 3;
  const circuits::MacCore mac = circuits::build_mac_core(mc);
  circuits::MacTestbenchConfig tbc;
  tbc.num_frames = 2;
  tbc.min_payload = 8;
  tbc.max_payload = 12;
  tbc.seed = 11;
  const circuits::MacTestbench bench = circuits::build_mac_testbench(mac, tbc);
  const sim::CompiledStimulus stimulus(mac.netlist, bench.tb);

  sim::GoldenCheckpoints ckpts;
  ckpts.interval = 10;
  sim::ReplayRunner recorder(stimulus);
  sim::RunOptions record_options;
  record_options.record = &ckpts;
  (void)recorder.run({}, record_options);

  constexpr std::size_t kW = 4;
  constexpr std::size_t kBlocks = 2;
  const auto ffs = mac.netlist.flip_flops();
  sim::ReplayRunner scalar(stimulus);
  sim::WideReplayRunner<kW> wide(stimulus, kBlocks);
  ASSERT_EQ(wide.lanes(), kBlocks * kW * 64);

  // The same three injections in both runners; the wide lanes deliberately
  // span both blocks (lane 0, a lane in the middle of block 0, a lane in
  // block 1) so every splat path is exercised.
  const std::size_t cycles[] = {bench.tb.inject_begin + 1,
                                bench.tb.inject_begin + 11,
                                bench.tb.inject_end - 1};
  const std::size_t scalar_lanes[] = {0, 13, 40};
  const std::size_t wide_lanes[] = {0, kW * 64 - 7, kW * 64 + 129};
  std::vector<sim::InjectionEvent> scalar_events;
  std::vector<sim::LaneInjection> wide_events;
  for (std::size_t i = 0; i < 3; ++i) {
    sim::InjectionEvent sev;
    sev.ff_cell = ffs[(i * 37 + 5) % ffs.size()];
    sev.cycle = static_cast<std::uint32_t>(cycles[i]);
    sev.lane_mask = sim::Lanes{1} << scalar_lanes[i];
    scalar_events.push_back(sev);
    sim::LaneInjection wev;
    wev.ff_cell = sev.ff_cell;
    wev.cycle = sev.cycle;
    wev.lane = static_cast<std::uint32_t>(wide_lanes[i]);
    wide_events.push_back(wev);
  }

  for (const bool incremental : {false, true}) {
    SCOPED_TRACE(std::string("incremental ") + std::to_string(incremental));
    sim::RunOptions scalar_options;
    scalar_options.resume = &ckpts;
    scalar_options.incremental_eval = incremental;
    const sim::RunResult from_scalar = scalar.run(scalar_events, scalar_options);
    sim::WideRunOptions wide_options;
    wide_options.resume = &ckpts;
    wide_options.incremental_eval = incremental;
    const sim::RunResult from_wide = wide.run(wide_events, wide_options);

    EXPECT_EQ(from_scalar.start_cycle, from_wide.start_cycle);
    ASSERT_EQ(from_wide.lane_frames.size(), wide.lanes());
    for (std::size_t i = 0; i < 3; ++i) {
      const sim::FrameList& a = from_scalar.lane_frames[scalar_lanes[i]];
      const sim::FrameList& b = from_wide.lane_frames[wide_lanes[i]];
      ASSERT_EQ(a.size(), b.size()) << "injection " << i;
      for (std::size_t f = 0; f < a.size(); ++f) {
        EXPECT_EQ(a[f].bytes, b[f].bytes) << "injection " << i << " frame " << f;
        EXPECT_EQ(a[f].err, b[f].err) << "injection " << i << " frame " << f;
        EXPECT_EQ(a[f].end_cycle, b[f].end_cycle)
            << "injection " << i << " frame " << f;
      }
    }
    // Final flip-flop state, per corresponding lane.
    for (const netlist::CellId ff : ffs) {
      const sim::Lanes scalar_state = scalar.simulator().ff_state(ff);
      for (std::size_t i = 0; i < 3; ++i) {
        const std::size_t g = wide_lanes[i];
        const std::uint64_t wide_word =
            wide.simulator().ff_state(ff, g / (kW * 64)).word((g / 64) % kW);
        ASSERT_EQ((scalar_state >> scalar_lanes[i]) & 1u,
                  (wide_word >> (g % 64)) & 1u)
            << "ff " << mac.netlist.cell(ff).name << " injection " << i;
      }
    }
  }
}

TEST(PackedCheckpoints, PackedMemoryIsWellBelowBroadcastWords) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core, 64);
  const sim::CompiledStimulus stimulus(core.netlist, bench.tb);
  sim::GoldenCheckpoints ckpts;
  ckpts.interval = 8;
  sim::ReplayRunner recorder(stimulus);
  sim::RunOptions options;
  options.record = &ckpts;
  (void)recorder.run({}, options);

  // One bit per FF (+ loopback) per snapshot, rounded up to whole words.
  EXPECT_EQ(ckpts.state_bits.size(),
            ckpts.snapshots.size() * ckpts.state_stride());
  EXPECT_EQ(ckpts.state_stride(),
            (ckpts.num_ffs + ckpts.num_loopbacks + 63) / 64);
  // The packed representation must undercut the broadcast-word layout by a
  // wide margin; the exact >= 32x bound is asserted at paper scale in
  // test_relay_core.cpp.
  EXPECT_LT(ckpts.memory_bytes(), ckpts.broadcast_word_bytes());
  // Golden frames are stored once, as a prefix-shared stream, not copied
  // per snapshot.
  for (const auto& snap : ckpts.snapshots) {
    EXPECT_LE(snap.frames_completed, ckpts.golden_frames.size());
  }
}

TEST(PackedCheckpoints, WideRunnerContractsRejectMisuse) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core, 24);
  const sim::CompiledStimulus stimulus(core.netlist, bench.tb);

  // Block-count bounds are enforced at construction.
  EXPECT_THROW(sim::WideReplayRunner<4>(stimulus, 0), std::invalid_argument);
  EXPECT_THROW(sim::WideReplayRunner<4>(stimulus, sim::kMaxLaneBlocksPerPass + 1),
               std::invalid_argument);

  sim::WideReplayRunner<4> runner(stimulus, 2);
  sim::GoldenCheckpoints ckpts;

  sim::WideRunOptions bad_interval;
  bad_interval.record = &ckpts;
  ckpts.interval = 0;
  EXPECT_THROW((void)runner.run({}, bad_interval), std::invalid_argument);
  ckpts.interval = stimulus.num_cycles() + 1;
  EXPECT_THROW((void)runner.run({}, bad_interval), std::invalid_argument);

  ckpts.interval = 8;
  sim::LaneInjection ev;
  ev.ff_cell = core.netlist.flip_flops()[0];
  ev.cycle = static_cast<std::uint32_t>(bench.tb.inject_begin);
  ev.lane = 0;
  const sim::LaneInjection events[] = {ev};
  sim::WideRunOptions record_with_faults;
  record_with_faults.record = &ckpts;
  EXPECT_THROW((void)runner.run(events, record_with_faults),
               std::invalid_argument);

  // A lane beyond blocks * W * 64 is out of range.
  sim::LaneInjection out_of_range = ev;
  out_of_range.lane = static_cast<std::uint32_t>(runner.lanes());
  const sim::LaneInjection bad_events[] = {out_of_range};
  EXPECT_THROW((void)runner.run(bad_events, {}), std::invalid_argument);

  (void)runner.run({}, sim::WideRunOptions{.record = &ckpts});
  sim::WideRunOptions resume_with_activity;
  resume_with_activity.resume = &ckpts;
  resume_with_activity.trace_activity = true;
  EXPECT_THROW((void)runner.run(events, resume_with_activity),
               std::invalid_argument);

  const sim::GoldenCheckpoints empty;
  sim::WideRunOptions resume_empty;
  resume_empty.resume = &empty;
  EXPECT_THROW((void)runner.run(events, resume_empty), std::logic_error);
}

// ---- engine-level differential across replay modes ---------------------------

void expect_bit_identical(const fault::CampaignResult& a,
                          const fault::CampaignResult& b) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].ff_index, b.per_ff[i].ff_index) << "ff " << i;
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << "ff " << i << " (" << a.per_ff[i].name << ")";
  }
  const auto fdr_a = a.fdr_vector();
  const auto fdr_b = b.fdr_vector();
  ASSERT_EQ(fdr_a.size(), fdr_b.size());
  for (std::size_t i = 0; i < fdr_a.size(); ++i) {
    EXPECT_EQ(fdr_a[i], fdr_b[i]) << "ff " << i;
  }
  EXPECT_EQ(a.total_injections, b.total_injections);
}

struct MacIncrementalFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = new circuits::MacCore(circuits::build_mac_core(mc));
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = new circuits::MacTestbench(circuits::build_mac_testbench(*mac, tbc));
    engine = new fault::CampaignEngine(mac->netlist, bench->tb);
  }
  static void TearDownTestSuite() {
    delete engine;
    engine = nullptr;
    delete bench;
    bench = nullptr;
    delete mac;
    mac = nullptr;
  }
  static circuits::MacCore* mac;
  static circuits::MacTestbench* bench;
  static fault::CampaignEngine* engine;
};

circuits::MacCore* MacIncrementalFixture::mac = nullptr;
circuits::MacTestbench* MacIncrementalFixture::bench = nullptr;
fault::CampaignEngine* MacIncrementalFixture::engine = nullptr;

TEST_F(MacIncrementalFixture, AllModesMatchFlatAcrossIntervalsAndThreads) {
  fault::CampaignConfig base;
  base.injections_per_ff = 24;
  for (std::size_t i = 0; i < mac->netlist.num_flip_flops(); i += 11) {
    base.ff_subset.push_back(i);
  }
  const fault::CampaignResult flat =
      fault::run_campaign(mac->netlist, bench->tb, engine->golden(), base);
  const std::size_t num_cycles = bench->tb.stimulus.num_cycles();
  for (const fault::ReplayMode mode :
       {fault::ReplayMode::kFull, fault::ReplayMode::kCheckpoint,
        fault::ReplayMode::kIncremental}) {
    for (const std::size_t interval :
         {std::size_t{1}, std::size_t{7}, std::size_t{16}, num_cycles}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
        fault::CampaignConfig config = base;
        config.replay_mode = mode;
        config.checkpoint_interval = interval;
        config.num_threads = threads;
        SCOPED_TRACE(std::string("mode=") + fault::to_string(mode) +
                     " interval=" + std::to_string(interval) +
                     " threads=" + std::to_string(threads));
        const fault::CampaignResult result = engine->run(config);
        expect_bit_identical(flat, result);
      }
    }
  }
}

TEST_F(MacIncrementalFixture, CheckpointedReplaySimulatesFewerCyclesAndOps) {
  fault::CampaignConfig config;
  config.injections_per_ff = 32;
  for (std::size_t i = 0; i < mac->netlist.num_flip_flops(); i += 7) {
    config.ff_subset.push_back(i);
  }
  config.checkpoint_interval = 8;

  config.replay_mode = fault::ReplayMode::kFull;
  const fault::CampaignResult full = engine->run(config);
  config.replay_mode = fault::ReplayMode::kCheckpoint;
  const fault::CampaignResult checkpointed = engine->run(config);
  config.replay_mode = fault::ReplayMode::kIncremental;
  const fault::CampaignResult incremental = engine->run(config);

  expect_bit_identical(full, checkpointed);
  expect_bit_identical(full, incremental);

  // Full mode replays every pass from reset.
  EXPECT_EQ(full.cycles_simulated,
            full.total_sim_passes * bench->tb.stimulus.num_cycles());
  EXPECT_EQ(full.checkpoint_restores, 0u);
  // The injection window opens after cycle 0, so sorted lane packing must
  // let most passes skip a prefix.
  EXPECT_LT(checkpointed.cycles_simulated, full.cycles_simulated);
  EXPECT_GT(checkpointed.checkpoint_restores, 0u);
  EXPECT_EQ(incremental.cycles_simulated, checkpointed.cycles_simulated);
  // Dirty-set evaluation shrinks gate evaluations further still.
  EXPECT_LT(incremental.ops_evaluated, checkpointed.ops_evaluated);
}

TEST_F(MacIncrementalFixture, KnobValidation) {
  fault::CampaignConfig config;
  config.injections_per_ff = 4;
  config.ff_subset = {0};
  config.checkpoint_interval = 0;
  EXPECT_THROW((void)engine->run(config), std::invalid_argument);
  config.checkpoint_interval = bench->tb.stimulus.num_cycles() + 1;
  EXPECT_THROW((void)engine->run(config), std::invalid_argument);
  // Validated in every mode — a kFull config must not silently accept knobs
  // that would break a later switch to incremental replay.
  config.replay_mode = fault::ReplayMode::kFull;
  EXPECT_THROW((void)engine->run(config), std::invalid_argument);
  EXPECT_THROW((void)engine->checkpoints(0), std::invalid_argument);
  EXPECT_THROW((void)engine->checkpoints(bench->tb.stimulus.num_cycles() + 1),
               std::invalid_argument);
}

TEST_F(MacIncrementalFixture, CheckpointCacheIsSharedPerInterval) {
  const auto a = engine->checkpoints(10);
  const auto b = engine->checkpoints(10);
  EXPECT_EQ(a.get(), b.get());
  const auto c = engine->checkpoints(20);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(c->snapshots.size(),
            (bench->tb.stimulus.num_cycles() + 19) / 20);
}

TEST(PipelineIncremental, DefaultModeMatchesFlat) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench =
      circuits::build_pipeline_testbench(core);
  fault::CampaignEngine engine(core.netlist, bench.tb);
  fault::CampaignConfig config;
  config.injections_per_ff = 32;
  ASSERT_EQ(config.replay_mode, fault::ReplayMode::kIncremental);
  const fault::CampaignResult flat =
      fault::run_campaign(core.netlist, bench.tb, engine.golden(), config);
  const fault::CampaignResult incremental = engine.run(config);
  expect_bit_identical(flat, incremental);
  EXPECT_LT(incremental.cycles_simulated, flat.cycles_simulated);
  EXPECT_LT(incremental.ops_evaluated, flat.ops_evaluated);
}

}  // namespace
}  // namespace ffr
