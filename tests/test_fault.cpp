// Tests for src/fault: failure classification semantics and the statistical
// campaign (determinism, caching, FDR plausibility on the MAC core).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "fault/campaign.hpp"
#include "fault/classification.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace ffr::fault {
namespace {

sim::Frame frame(std::initializer_list<std::uint8_t> bytes, bool err = false) {
  sim::Frame f;
  f.bytes = bytes;
  f.err = err;
  return f;
}

TEST(Classification, IdenticalStreamsAreOk) {
  const sim::FrameList golden = {frame({1, 2, 3}), frame({4, 5})};
  EXPECT_EQ(classify(golden, golden), FailureClass::kOk);
}

TEST(Classification, TimingShiftIsBenign) {
  sim::FrameList golden = {frame({1, 2, 3})};
  sim::FrameList observed = {frame({1, 2, 3})};
  golden[0].end_cycle = 100;
  observed[0].end_cycle = 140;  // later but intact
  EXPECT_EQ(classify(golden, observed), FailureClass::kOk);
}

TEST(Classification, MissingFrameIsFrameLoss) {
  const sim::FrameList golden = {frame({1}), frame({2})};
  const sim::FrameList observed = {frame({1})};
  EXPECT_EQ(classify(golden, observed), FailureClass::kFrameLoss);
}

TEST(Classification, ExtraFrameIsSpurious) {
  const sim::FrameList golden = {frame({1})};
  const sim::FrameList observed = {frame({1}), frame({9})};
  EXPECT_EQ(classify(golden, observed), FailureClass::kSpuriousFrame);
}

TEST(Classification, ByteDifferenceIsPayloadCorruption) {
  const sim::FrameList golden = {frame({1, 2, 3})};
  const sim::FrameList observed = {frame({1, 9, 3})};
  EXPECT_EQ(classify(golden, observed), FailureClass::kPayloadCorruption);
}

TEST(Classification, ErrorFlagIsDetectedError) {
  const sim::FrameList golden = {frame({1, 2, 3})};
  const sim::FrameList observed = {frame({1, 2, 3}, true)};
  EXPECT_EQ(classify(golden, observed), FailureClass::kDetectedError);
}

TEST(Classification, SilentCorruptionOutranksDetectedError) {
  const sim::FrameList golden = {frame({1}), frame({2})};
  const sim::FrameList observed = {frame({9}), frame({2}, true)};
  EXPECT_EQ(classify(golden, observed), FailureClass::kPayloadCorruption);
}

TEST(Classification, EveryNonOkClassIsFunctionalFailure) {
  EXPECT_FALSE(is_functional_failure(FailureClass::kOk));
  EXPECT_TRUE(is_functional_failure(FailureClass::kFrameLoss));
  EXPECT_TRUE(is_functional_failure(FailureClass::kSpuriousFrame));
  EXPECT_TRUE(is_functional_failure(FailureClass::kPayloadCorruption));
  EXPECT_TRUE(is_functional_failure(FailureClass::kDetectedError));
}

TEST(ClassCounts, TotalsAndFailures) {
  ClassCounts counts;
  counts.add(FailureClass::kOk);
  counts.add(FailureClass::kOk);
  counts.add(FailureClass::kFrameLoss);
  counts.add(FailureClass::kPayloadCorruption);
  EXPECT_EQ(counts.total(), 4u);
  EXPECT_EQ(counts.failures(), 2u);
}

// ---- campaign on the (small) MAC core ------------------------------------------

struct CampaignFixture : public ::testing::Test {
  void SetUp() override {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = circuits::build_mac_core(mc);
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = circuits::build_mac_testbench(mac, tbc);
    golden = sim::run_golden(mac.netlist, bench.tb);
  }
  circuits::MacCore mac;
  circuits::MacTestbench bench;
  sim::GoldenResult golden;
};

TEST_F(CampaignFixture, SubsetCampaignProducesPlausibleFdr) {
  CampaignConfig config;
  config.injections_per_ff = 32;
  config.ff_subset = {0, 5, 10, 50, 100};
  const CampaignResult result = run_campaign(mac.netlist, bench.tb, golden, config);
  ASSERT_EQ(result.per_ff.size(), 5u);
  EXPECT_EQ(result.total_injections, 5u * 32u);
  for (const FfResult& ff : result.per_ff) {
    EXPECT_GE(ff.fdr(), 0.0);
    EXPECT_LE(ff.fdr(), 1.0);
    EXPECT_EQ(ff.classes.total(), 32u);
  }
}

TEST_F(CampaignFixture, DeterministicForSameSeed) {
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.ff_subset = {1, 2, 3, 40, 80, 120};
  const CampaignResult a = run_campaign(mac.netlist, bench.tb, golden, config);
  const CampaignResult b = run_campaign(mac.netlist, bench.tb, golden, config);
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts);
  }
}

TEST_F(CampaignFixture, SubsetOrderIndependent) {
  // The same flip-flop must get the same injection schedule regardless of
  // where it sits in the subset list.
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.ff_subset = {7, 90};
  const CampaignResult a = run_campaign(mac.netlist, bench.tb, golden, config);
  config.ff_subset = {90, 7, 33};
  const CampaignResult b = run_campaign(mac.netlist, bench.tb, golden, config);
  EXPECT_EQ(a.per_ff[0].classes.counts, b.per_ff[1].classes.counts);  // ff 7
  EXPECT_EQ(a.per_ff[1].classes.counts, b.per_ff[0].classes.counts);  // ff 90
}

TEST_F(CampaignFixture, FdrSpreadCoversBenignAndCritical) {
  // Run over a sample of flip-flops; the MAC must exhibit both ~0 FDR
  // (BIST/config) and substantial FDR (pointers/FSM) instances.
  CampaignConfig config;
  config.injections_per_ff = 24;
  for (std::size_t i = 0; i < mac.netlist.num_flip_flops(); i += 7) {
    config.ff_subset.push_back(i);
  }
  const CampaignResult result = run_campaign(mac.netlist, bench.tb, golden, config);
  const auto fdr = result.fdr_vector();
  EXPECT_LT(ffr::linalg::min_value(fdr), 0.05);
  EXPECT_GT(ffr::linalg::max_value(fdr), 0.5);
  EXPECT_GT(result.mean_fdr(), 0.01);
  EXPECT_LT(result.mean_fdr(), 0.9);
}

TEST_F(CampaignFixture, CsvRoundTrip) {
  CampaignConfig config;
  config.injections_per_ff = 8;
  config.ff_subset = {0, 1, 2};
  const CampaignResult result = run_campaign(mac.netlist, bench.tb, golden, config);
  const auto path = std::filesystem::temp_directory_path() / "ffr_campaign_test.csv";
  result.save_csv(path);
  const CampaignResult loaded = CampaignResult::load_csv(path);
  ASSERT_EQ(loaded.per_ff.size(), result.per_ff.size());
  for (std::size_t i = 0; i < result.per_ff.size(); ++i) {
    EXPECT_EQ(loaded.per_ff[i].name, result.per_ff[i].name);
    EXPECT_EQ(loaded.per_ff[i].classes.counts, result.per_ff[i].classes.counts);
    EXPECT_DOUBLE_EQ(loaded.per_ff[i].fdr(), result.per_ff[i].fdr());
  }
  std::filesystem::remove(path);
}

TEST_F(CampaignFixture, CachedCampaignReusesFile) {
  const auto path = std::filesystem::temp_directory_path() / "ffr_cache_test.csv";
  std::filesystem::remove(path);
  CampaignConfig config;
  config.injections_per_ff = 8;
  config.ff_subset = {0, 1};
  const CampaignResult first =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path);
  ASSERT_TRUE(std::filesystem::exists(path));
  const CampaignResult second =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path);
  EXPECT_EQ(first.per_ff[0].classes.counts, second.per_ff[0].classes.counts);
  // A mismatching config invalidates the cache (different injection count).
  config.injections_per_ff = 4;
  const CampaignResult third =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path);
  EXPECT_EQ(third.per_ff[0].injections, 4u);
  std::filesystem::remove(path);
}

// ---- load_csv robustness --------------------------------------------------------

class LoadCsvRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("ffr_load_csv_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()) +
             ".csv");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void write(const std::string& text) {
    std::ofstream out(path_);
    out << text;
  }

  /// A header matching save_csv's layout: ff_index,name,injections,fdr + one
  /// column per failure class.
  static std::string header() {
    std::string h = "ff_index,name,injections,fdr";
    for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
      h += ",";
      h += to_string(static_cast<FailureClass>(c));
    }
    return h + "\n";
  }

  /// A row with the given injections split as `ok` no-effect runs plus
  /// failures in the first failure class.
  static std::string row(std::size_t index, const std::string& name,
                         std::uint64_t ok, std::uint64_t failures) {
    std::string r = std::to_string(index) + "," + name + "," +
                    std::to_string(ok + failures) + ",0.5," +
                    std::to_string(ok) + "," + std::to_string(failures);
    for (std::size_t c = 2; c < kNumFailureClasses; ++c) r += ",0";
    return r + "\n";
  }

  std::filesystem::path path_;
};

TEST_F(LoadCsvRobustness, MissingFileThrows) {
  EXPECT_THROW((void)CampaignResult::load_csv(path_), std::runtime_error);
}

TEST_F(LoadCsvRobustness, WellFormedFileLoads) {
  write(header() + row(0, "a", 6, 2) + row(3, "b", 8, 0));
  const CampaignResult result = CampaignResult::load_csv(path_);
  ASSERT_EQ(result.per_ff.size(), 2u);
  EXPECT_EQ(result.per_ff[0].name, "a");
  EXPECT_EQ(result.per_ff[0].injections, 8u);
  EXPECT_DOUBLE_EQ(result.per_ff[0].fdr(), 0.25);
  EXPECT_EQ(result.per_ff[1].ff_index, 3u);
  EXPECT_EQ(result.total_injections, 16u);
}

TEST_F(LoadCsvRobustness, MissingColumnThrowsRuntimeError) {
  write("ff_index,name,fdr\n0,a,0.5\n");
  EXPECT_THROW((void)CampaignResult::load_csv(path_), std::runtime_error);
}

TEST_F(LoadCsvRobustness, TruncatedRowThrowsRuntimeError) {
  std::string text = header() + row(0, "a", 6, 2);
  // Second row cut off mid-record (e.g. a crashed writer).
  text += "1,b,8";
  write(text);
  EXPECT_THROW((void)CampaignResult::load_csv(path_), std::runtime_error);
}

TEST_F(LoadCsvRobustness, NonNumericCountThrowsRuntimeError) {
  std::string text = header();
  text += "zero,a,8,0.5,6,2";
  for (std::size_t c = 2; c < kNumFailureClasses; ++c) text += ",0";
  text += "\n";
  write(text);
  EXPECT_THROW((void)CampaignResult::load_csv(path_), std::runtime_error);
}

TEST_F(LoadCsvRobustness, NegativeCountThrowsRuntimeError) {
  std::string text = header();
  text += "0,a,8,0.5,-6,14";
  for (std::size_t c = 2; c < kNumFailureClasses; ++c) text += ",0";
  text += "\n";
  write(text);
  EXPECT_THROW((void)CampaignResult::load_csv(path_), std::runtime_error);
}

TEST_F(LoadCsvRobustness, ClassCountsMismatchingInjectionsThrows) {
  // Census mismatch inside one row: classes sum to 7 but injections says 9.
  std::string text = header();
  text += "0,a,9,0.5,5,2";
  for (std::size_t c = 2; c < kNumFailureClasses; ++c) text += ",0";
  text += "\n";
  write(text);
  EXPECT_THROW((void)CampaignResult::load_csv(path_), std::runtime_error);
}

TEST_F(LoadCsvRobustness, CorruptCacheFallsBackToFreshRun) {
  // run_campaign_cached must treat an unreadable cache as a miss, not die.
  circuits::MacConfig mc;
  mc.tx_depth_log2 = 3;
  mc.rx_depth_log2 = 3;
  const circuits::MacCore mac = circuits::build_mac_core(mc);
  circuits::MacTestbenchConfig tbc;
  tbc.num_frames = 2;
  const circuits::MacTestbench bench = circuits::build_mac_testbench(mac, tbc);
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  write("not,a,campaign\nfile,at,all\n");
  CampaignConfig config;
  config.injections_per_ff = 4;
  config.ff_subset = {0, 1};
  const CampaignResult result =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path_);
  EXPECT_EQ(result.per_ff.size(), 2u);
  // The bad cache was overwritten with the fresh result.
  const CampaignResult reloaded = CampaignResult::load_csv(path_);
  EXPECT_EQ(reloaded.per_ff.size(), 2u);
}

TEST_F(LoadCsvRobustness, MismatchedCensusCacheIsIgnored) {
  circuits::MacConfig mc;
  mc.tx_depth_log2 = 3;
  mc.rx_depth_log2 = 3;
  const circuits::MacCore mac = circuits::build_mac_core(mc);
  // A structurally valid file whose flip-flop names do not match the
  // netlist census: load_campaign_cache must reject it.
  write(header() + row(0, "not_a_real_ff", 3, 1));
  CampaignConfig config;
  config.injections_per_ff = 4;
  config.ff_subset = {0};
  EXPECT_FALSE(load_campaign_cache(mac.netlist, config, path_).has_value());
  // Same shape but the real name and matching injection count: accepted.
  const std::string real_name =
      mac.netlist.cell(mac.netlist.flip_flops()[0]).name;
  write(header() + row(0, real_name, 3, 1));
  EXPECT_TRUE(load_campaign_cache(mac.netlist, config, path_).has_value());
  // Injection-count mismatch: rejected again.
  config.injections_per_ff = 8;
  EXPECT_FALSE(load_campaign_cache(mac.netlist, config, path_).has_value());
}

TEST_F(LoadCsvRobustness, DifferentSubsetCacheIsRejected) {
  // A cache saved for one flip-flop subset must not be returned for a
  // different subset of the same size — results are positional.
  circuits::MacConfig mc;
  mc.tx_depth_log2 = 3;
  mc.rx_depth_log2 = 3;
  const circuits::MacCore mac = circuits::build_mac_core(mc);
  const auto ffs = mac.netlist.flip_flops();
  const auto name_of = [&](std::size_t i) { return mac.netlist.cell(ffs[i]).name; };
  write(header() + row(0, name_of(0), 3, 1) + row(1, name_of(1), 3, 1));
  CampaignConfig config;
  config.injections_per_ff = 4;
  config.ff_subset = {0, 1};
  EXPECT_TRUE(load_campaign_cache(mac.netlist, config, path_).has_value());
  config.ff_subset = {2, 3};  // same size, different flip-flops
  EXPECT_FALSE(load_campaign_cache(mac.netlist, config, path_).has_value());
  config.ff_subset = {1, 0};  // same set, different order
  EXPECT_FALSE(load_campaign_cache(mac.netlist, config, path_).has_value());
}

TEST_F(LoadCsvRobustness, SaveLoadRoundTripProperty) {
  // Property test: random synthetic results — including names that need CSV
  // quoting — survive save/load bit-exactly.
  util::Rng rng(0xC5F);
  for (int trial = 0; trial < 20; ++trial) {
    CampaignResult original;
    const std::size_t num_ffs = 1 + rng.below(12);
    for (std::size_t i = 0; i < num_ffs; ++i) {
      FfResult ff;
      ff.ff_index = i * (1 + rng.below(3));
      ff.name = "reg_" + std::to_string(trial) + "[" + std::to_string(i) + "]";
      if (rng.bernoulli(0.3)) ff.name += ",quoted\"name";  // stress escaping
      for (std::size_t c = 0; c < kNumFailureClasses; ++c) {
        ff.classes.counts[c] = rng.below(50);
      }
      ff.injections = ff.classes.total();
      original.total_injections += ff.injections;
      original.per_ff.push_back(std::move(ff));
    }
    original.save_csv(path_);
    const CampaignResult loaded = CampaignResult::load_csv(path_);
    ASSERT_EQ(loaded.per_ff.size(), original.per_ff.size());
    EXPECT_EQ(loaded.total_injections, original.total_injections);
    for (std::size_t i = 0; i < original.per_ff.size(); ++i) {
      EXPECT_EQ(loaded.per_ff[i].ff_index, original.per_ff[i].ff_index);
      EXPECT_EQ(loaded.per_ff[i].name, original.per_ff[i].name);
      EXPECT_EQ(loaded.per_ff[i].injections, original.per_ff[i].injections);
      EXPECT_EQ(loaded.per_ff[i].classes.counts, original.per_ff[i].classes.counts);
      EXPECT_EQ(loaded.per_ff[i].fdr(), original.per_ff[i].fdr());
    }
  }
}

TEST_F(CampaignFixture, EmptyWindowRejected) {
  sim::Testbench bad = bench.tb;
  bad.inject_end = bad.inject_begin;
  CampaignConfig config;
  EXPECT_THROW((void)run_campaign(mac.netlist, bad, golden, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace ffr::fault
