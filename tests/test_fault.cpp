// Tests for src/fault: failure classification semantics and the statistical
// campaign (determinism, caching, FDR plausibility on the MAC core).

#include <gtest/gtest.h>

#include <filesystem>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "fault/campaign.hpp"
#include "fault/classification.hpp"
#include "linalg/matrix.hpp"

namespace ffr::fault {
namespace {

sim::Frame frame(std::initializer_list<std::uint8_t> bytes, bool err = false) {
  sim::Frame f;
  f.bytes = bytes;
  f.err = err;
  return f;
}

TEST(Classification, IdenticalStreamsAreOk) {
  const sim::FrameList golden = {frame({1, 2, 3}), frame({4, 5})};
  EXPECT_EQ(classify(golden, golden), FailureClass::kOk);
}

TEST(Classification, TimingShiftIsBenign) {
  sim::FrameList golden = {frame({1, 2, 3})};
  sim::FrameList observed = {frame({1, 2, 3})};
  golden[0].end_cycle = 100;
  observed[0].end_cycle = 140;  // later but intact
  EXPECT_EQ(classify(golden, observed), FailureClass::kOk);
}

TEST(Classification, MissingFrameIsFrameLoss) {
  const sim::FrameList golden = {frame({1}), frame({2})};
  const sim::FrameList observed = {frame({1})};
  EXPECT_EQ(classify(golden, observed), FailureClass::kFrameLoss);
}

TEST(Classification, ExtraFrameIsSpurious) {
  const sim::FrameList golden = {frame({1})};
  const sim::FrameList observed = {frame({1}), frame({9})};
  EXPECT_EQ(classify(golden, observed), FailureClass::kSpuriousFrame);
}

TEST(Classification, ByteDifferenceIsPayloadCorruption) {
  const sim::FrameList golden = {frame({1, 2, 3})};
  const sim::FrameList observed = {frame({1, 9, 3})};
  EXPECT_EQ(classify(golden, observed), FailureClass::kPayloadCorruption);
}

TEST(Classification, ErrorFlagIsDetectedError) {
  const sim::FrameList golden = {frame({1, 2, 3})};
  const sim::FrameList observed = {frame({1, 2, 3}, true)};
  EXPECT_EQ(classify(golden, observed), FailureClass::kDetectedError);
}

TEST(Classification, SilentCorruptionOutranksDetectedError) {
  const sim::FrameList golden = {frame({1}), frame({2})};
  const sim::FrameList observed = {frame({9}), frame({2}, true)};
  EXPECT_EQ(classify(golden, observed), FailureClass::kPayloadCorruption);
}

TEST(Classification, EveryNonOkClassIsFunctionalFailure) {
  EXPECT_FALSE(is_functional_failure(FailureClass::kOk));
  EXPECT_TRUE(is_functional_failure(FailureClass::kFrameLoss));
  EXPECT_TRUE(is_functional_failure(FailureClass::kSpuriousFrame));
  EXPECT_TRUE(is_functional_failure(FailureClass::kPayloadCorruption));
  EXPECT_TRUE(is_functional_failure(FailureClass::kDetectedError));
}

TEST(ClassCounts, TotalsAndFailures) {
  ClassCounts counts;
  counts.add(FailureClass::kOk);
  counts.add(FailureClass::kOk);
  counts.add(FailureClass::kFrameLoss);
  counts.add(FailureClass::kPayloadCorruption);
  EXPECT_EQ(counts.total(), 4u);
  EXPECT_EQ(counts.failures(), 2u);
}

// ---- campaign on the (small) MAC core ------------------------------------------

struct CampaignFixture : public ::testing::Test {
  void SetUp() override {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = circuits::build_mac_core(mc);
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 5;
    bench = circuits::build_mac_testbench(mac, tbc);
    golden = sim::run_golden(mac.netlist, bench.tb);
  }
  circuits::MacCore mac;
  circuits::MacTestbench bench;
  sim::GoldenResult golden;
};

TEST_F(CampaignFixture, SubsetCampaignProducesPlausibleFdr) {
  CampaignConfig config;
  config.injections_per_ff = 32;
  config.ff_subset = {0, 5, 10, 50, 100};
  const CampaignResult result = run_campaign(mac.netlist, bench.tb, golden, config);
  ASSERT_EQ(result.per_ff.size(), 5u);
  EXPECT_EQ(result.total_injections, 5u * 32u);
  for (const FfResult& ff : result.per_ff) {
    EXPECT_GE(ff.fdr(), 0.0);
    EXPECT_LE(ff.fdr(), 1.0);
    EXPECT_EQ(ff.classes.total(), 32u);
  }
}

TEST_F(CampaignFixture, DeterministicForSameSeed) {
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.ff_subset = {1, 2, 3, 40, 80, 120};
  const CampaignResult a = run_campaign(mac.netlist, bench.tb, golden, config);
  const CampaignResult b = run_campaign(mac.netlist, bench.tb, golden, config);
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts);
  }
}

TEST_F(CampaignFixture, SubsetOrderIndependent) {
  // The same flip-flop must get the same injection schedule regardless of
  // where it sits in the subset list.
  CampaignConfig config;
  config.injections_per_ff = 16;
  config.ff_subset = {7, 90};
  const CampaignResult a = run_campaign(mac.netlist, bench.tb, golden, config);
  config.ff_subset = {90, 7, 33};
  const CampaignResult b = run_campaign(mac.netlist, bench.tb, golden, config);
  EXPECT_EQ(a.per_ff[0].classes.counts, b.per_ff[1].classes.counts);  // ff 7
  EXPECT_EQ(a.per_ff[1].classes.counts, b.per_ff[0].classes.counts);  // ff 90
}

TEST_F(CampaignFixture, FdrSpreadCoversBenignAndCritical) {
  // Run over a sample of flip-flops; the MAC must exhibit both ~0 FDR
  // (BIST/config) and substantial FDR (pointers/FSM) instances.
  CampaignConfig config;
  config.injections_per_ff = 24;
  for (std::size_t i = 0; i < mac.netlist.num_flip_flops(); i += 7) {
    config.ff_subset.push_back(i);
  }
  const CampaignResult result = run_campaign(mac.netlist, bench.tb, golden, config);
  const auto fdr = result.fdr_vector();
  EXPECT_LT(ffr::linalg::min_value(fdr), 0.05);
  EXPECT_GT(ffr::linalg::max_value(fdr), 0.5);
  EXPECT_GT(result.mean_fdr(), 0.01);
  EXPECT_LT(result.mean_fdr(), 0.9);
}

TEST_F(CampaignFixture, CsvRoundTrip) {
  CampaignConfig config;
  config.injections_per_ff = 8;
  config.ff_subset = {0, 1, 2};
  const CampaignResult result = run_campaign(mac.netlist, bench.tb, golden, config);
  const auto path = std::filesystem::temp_directory_path() / "ffr_campaign_test.csv";
  result.save_csv(path);
  const CampaignResult loaded = CampaignResult::load_csv(path);
  ASSERT_EQ(loaded.per_ff.size(), result.per_ff.size());
  for (std::size_t i = 0; i < result.per_ff.size(); ++i) {
    EXPECT_EQ(loaded.per_ff[i].name, result.per_ff[i].name);
    EXPECT_EQ(loaded.per_ff[i].classes.counts, result.per_ff[i].classes.counts);
    EXPECT_DOUBLE_EQ(loaded.per_ff[i].fdr(), result.per_ff[i].fdr());
  }
  std::filesystem::remove(path);
}

TEST_F(CampaignFixture, CachedCampaignReusesFile) {
  const auto path = std::filesystem::temp_directory_path() / "ffr_cache_test.csv";
  std::filesystem::remove(path);
  CampaignConfig config;
  config.injections_per_ff = 8;
  config.ff_subset = {0, 1};
  const CampaignResult first =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path);
  ASSERT_TRUE(std::filesystem::exists(path));
  const CampaignResult second =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path);
  EXPECT_EQ(first.per_ff[0].classes.counts, second.per_ff[0].classes.counts);
  // A mismatching config invalidates the cache (different injection count).
  config.injections_per_ff = 4;
  const CampaignResult third =
      run_campaign_cached(mac.netlist, bench.tb, golden, config, path);
  EXPECT_EQ(third.per_ff[0].injections, 4u);
  std::filesystem::remove(path);
}

TEST_F(CampaignFixture, EmptyWindowRejected) {
  sim::Testbench bad = bench.tb;
  bad.inject_end = bad.inject_begin;
  CampaignConfig config;
  EXPECT_THROW((void)run_campaign(mac.netlist, bad, golden, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace ffr::fault
