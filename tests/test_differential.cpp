// Differential and property-based tests: the packed 64-lane simulator is
// cross-checked against the naive fixed-point reference simulator on many
// seeded random circuits, with and without fault injection; the random
// generator itself is checked to honour the netlist invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/random_circuit.hpp"
#include "features/extractor.hpp"
#include "netlist/verilog_writer.hpp"
#include "sim/packed_sim.hpp"
#include "sim/reference_sim.hpp"
#include "util/rng.hpp"

namespace ffr {
namespace {

class RandomCircuitSweep : public ::testing::TestWithParam<std::uint64_t> {};

circuits::RandomCircuitConfig config_for_seed(std::uint64_t seed) {
  circuits::RandomCircuitConfig config;
  config.seed = seed;
  config.num_inputs = 2 + seed % 5;
  config.num_outputs = 1 + seed % 4;
  config.num_gates = 20 + 13 * (seed % 7);
  config.num_flip_flops = 3 + seed % 12;
  return config;
}

TEST_P(RandomCircuitSweep, GeneratorHonoursInvariants) {
  const auto config = config_for_seed(GetParam());
  const netlist::Netlist nl = circuits::build_random_circuit(config);
  EXPECT_TRUE(nl.finalized());
  EXPECT_EQ(nl.primary_inputs().size(), config.num_inputs);
  EXPECT_EQ(nl.primary_outputs().size(), config.num_outputs);
  EXPECT_EQ(nl.num_flip_flops(), config.num_flip_flops);
  // Topological order covers every combinational cell exactly once.
  std::size_t comb = 0;
  for (const auto& cell : nl.cells()) comb += !netlist::is_sequential(cell.func);
  EXPECT_EQ(nl.topo_order().size(), comb);
}

TEST_P(RandomCircuitSweep, PackedMatchesReferenceWithoutFaults) {
  const netlist::Netlist nl =
      circuits::build_random_circuit(config_for_seed(GetParam()));
  sim::PackedSimulator packed(nl);
  sim::ReferenceSimulator reference(nl);
  util::Rng rng(GetParam() * 31 + 7);
  for (int cycle = 0; cycle < 24; ++cycle) {
    for (const netlist::NetId pi : nl.primary_inputs()) {
      const bool v = rng.bernoulli(0.5);
      packed.set_input_broadcast(pi, v);
      reference.set_input(pi, v);
    }
    packed.eval();
    reference.eval();
    for (netlist::NetId net = 0; net < nl.num_nets(); ++net) {
      ASSERT_EQ(packed.value_in_lane(net, 0), reference.value(net))
          << "cycle " << cycle << " net " << nl.net(net).name;
      // All lanes identical under broadcast stimulus.
      ASSERT_TRUE(packed.value(net) == 0 || packed.value(net) == sim::kAllLanes)
          << nl.net(net).name;
    }
    packed.tick();
    reference.tick();
  }
}

TEST_P(RandomCircuitSweep, PackedMatchesReferenceWithInjections) {
  const netlist::Netlist nl =
      circuits::build_random_circuit(config_for_seed(GetParam()));
  sim::PackedSimulator packed(nl);
  sim::ReferenceSimulator reference(nl);
  util::Rng rng(GetParam() * 17 + 3);
  const auto ffs = nl.flip_flops();
  for (int cycle = 0; cycle < 24; ++cycle) {
    for (const netlist::NetId pi : nl.primary_inputs()) {
      const bool v = rng.bernoulli(0.5);
      packed.set_input_broadcast(pi, v);
      reference.set_input(pi, v);
    }
    if (cycle % 5 == 2) {
      // Inject the same fault in lane 0 of the packed sim and the reference.
      const netlist::CellId target = ffs[rng.below(ffs.size())];
      packed.inject(target, 0b1);
      reference.inject(target);
    }
    packed.eval();
    reference.eval();
    for (const netlist::NetId po : nl.primary_outputs()) {
      ASSERT_EQ(packed.value_in_lane(po, 0), reference.value(po)) << cycle;
    }
    packed.tick();
    reference.tick();
  }
}

TEST_P(RandomCircuitSweep, FeatureExtractionTotalFunction) {
  // Feature extraction must succeed and produce finite values on any valid
  // netlist shape.
  const netlist::Netlist nl =
      circuits::build_random_circuit(config_for_seed(GetParam()));
  const features::FeatureMatrix fm = features::extract_static_features(nl);
  EXPECT_EQ(fm.num_ffs(), nl.num_flip_flops());
  for (std::size_t r = 0; r < fm.num_ffs(); ++r) {
    for (std::size_t c = 0; c < features::kNumFeatures; ++c) {
      ASSERT_TRUE(std::isfinite(fm.values(r, c))) << r << "," << c;
      ASSERT_GE(fm.values(r, c), -1.0) << r << "," << c;
    }
  }
}

TEST_P(RandomCircuitSweep, VerilogExportMentionsEveryCell) {
  const netlist::Netlist nl =
      circuits::build_random_circuit(config_for_seed(GetParam()));
  const std::string verilog = netlist::to_verilog(nl);
  EXPECT_NE(verilog.find("module"), std::string::npos);
  for (const auto& cell : nl.cells()) {
    const auto& lib =
        netlist::default_library().lookup(cell.func, cell.drive);
    EXPECT_NE(verilog.find(lib.name), std::string::npos) << lib.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Differential, LaneConsistencyUnderPerLaneFaults) {
  // Lanes with identical injections must produce identical values even when
  // other lanes diverge (no cross-lane leakage).
  const netlist::Netlist nl = circuits::build_random_circuit({});
  sim::PackedSimulator packed(nl);
  const auto ffs = nl.flip_flops();
  util::Rng rng(99);
  // Inject into lanes 1 and 2 identically; corrupt lane 3 differently.
  packed.inject(ffs[0], 0b0110);
  packed.inject(ffs[1 % ffs.size()], 0b1000);
  for (int cycle = 0; cycle < 16; ++cycle) {
    for (const netlist::NetId pi : nl.primary_inputs()) {
      packed.set_input_broadcast(pi, rng.bernoulli(0.5));
    }
    packed.eval();
    for (const netlist::NetId po : nl.primary_outputs()) {
      ASSERT_EQ(packed.value_in_lane(po, 1), packed.value_in_lane(po, 2));
    }
    packed.tick();
  }
}

}  // namespace
}  // namespace ffr
