// End-to-end tests of the estimation flow (paper Fig. 1) on a small MAC:
// the flow must spend proportionally fewer injections, produce calibrated
// FDR values, and its predictions must correlate with a full flat campaign.

#include <gtest/gtest.h>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "core/estimation_flow.hpp"

namespace ffr::core {
namespace {

struct FlowFixture : public ::testing::Test {
  void SetUp() override {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = circuits::build_mac_core(mc);
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 3;
    tbc.min_payload = 8;
    tbc.max_payload = 16;
    tbc.seed = 11;
    bench = circuits::build_mac_testbench(mac, tbc);
  }
  circuits::MacCore mac;
  circuits::MacTestbench bench;
};

TEST_F(FlowFixture, FlowProducesFdrForEveryFlipFlop) {
  FlowConfig config;
  config.training_size = 0.3;
  config.injections_per_ff = 16;
  config.model = "knn_paper";
  const FlowResult result = run_estimation_flow(mac.netlist, bench.tb, config);
  const std::size_t n = mac.netlist.num_flip_flops();
  EXPECT_EQ(result.fdr.size(), n);
  EXPECT_EQ(result.features.num_ffs(), n);
  for (const double v : result.fdr) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(FlowFixture, CostReductionMatchesTrainingSize) {
  FlowConfig config;
  config.training_size = 0.25;
  config.injections_per_ff = 8;
  const FlowResult result = run_estimation_flow(mac.netlist, bench.tb, config);
  EXPECT_NEAR(result.cost_reduction(), 4.0, 0.25);
  const std::size_t n = mac.netlist.num_flip_flops();
  EXPECT_EQ(result.injections_full, n * 8u);
  EXPECT_EQ(result.injections_spent, result.train_indices.size() * 8u);
}

TEST_F(FlowFixture, TrainEntriesKeepMeasuredValues) {
  FlowConfig config;
  config.training_size = 0.2;
  config.injections_per_ff = 8;
  const FlowResult result = run_estimation_flow(mac.netlist, bench.tb, config);
  for (std::size_t t = 0; t < result.train_indices.size(); ++t) {
    EXPECT_DOUBLE_EQ(result.fdr[result.train_indices[t]], result.train_fdr[t]);
  }
  // Training indices marked consistently.
  std::size_t marked = 0;
  for (const bool b : result.is_train) marked += b;
  EXPECT_EQ(marked, result.train_indices.size());
}

TEST_F(FlowFixture, DeterministicForSeed) {
  FlowConfig config;
  config.training_size = 0.3;
  config.injections_per_ff = 8;
  config.seed = 123;
  const FlowResult a = run_estimation_flow(mac.netlist, bench.tb, config);
  const FlowResult b = run_estimation_flow(mac.netlist, bench.tb, config);
  EXPECT_EQ(a.train_indices, b.train_indices);
  EXPECT_EQ(a.fdr, b.fdr);
}

TEST_F(FlowFixture, PredictionsCorrelateWithFullCampaign) {
  // Reference: full flat campaign with the same injection count.
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  fault::CampaignConfig full_config;
  full_config.injections_per_ff = 24;
  const fault::CampaignResult reference =
      fault::run_campaign(mac.netlist, bench.tb, golden, full_config);

  FlowConfig config;
  config.training_size = 0.5;
  config.injections_per_ff = 24;
  config.model = "knn_paper";
  const FlowResult flow = run_estimation_flow(mac.netlist, bench.tb, config);
  const ml::RegressionMetrics metrics = score_against_campaign(flow, reference);
  // On held-out flip-flops the model must clearly beat the trivial
  // mean-predictor (R2 > 0) and keep MAE well below the FDR range.
  EXPECT_GT(metrics.r2, 0.3);
  EXPECT_LT(metrics.mae, 0.25);
}

TEST_F(FlowFixture, LinearModelUnderperformsKnn) {
  const sim::GoldenResult golden = sim::run_golden(mac.netlist, bench.tb);
  fault::CampaignConfig full_config;
  full_config.injections_per_ff = 24;
  const fault::CampaignResult reference =
      fault::run_campaign(mac.netlist, bench.tb, golden, full_config);

  FlowConfig config;
  config.training_size = 0.5;
  config.injections_per_ff = 24;
  config.model = "linear";
  const double linear_r2 =
      score_against_campaign(run_estimation_flow(mac.netlist, bench.tb, config),
                             reference)
          .r2;
  config.model = "knn_paper";
  const double knn_r2 =
      score_against_campaign(run_estimation_flow(mac.netlist, bench.tb, config),
                             reference)
          .r2;
  EXPECT_GT(knn_r2, linear_r2);
}

TEST_F(FlowFixture, BadConfigRejected) {
  FlowConfig config;
  config.training_size = 0.0;
  EXPECT_THROW((void)run_estimation_flow(mac.netlist, bench.tb, config),
               std::invalid_argument);
  config.training_size = 1.5;
  EXPECT_THROW((void)run_estimation_flow(mac.netlist, bench.tb, config),
               std::invalid_argument);
}

TEST_F(FlowFixture, ScoreRequiresFullReference) {
  FlowConfig config;
  config.training_size = 0.3;
  config.injections_per_ff = 8;
  const FlowResult flow = run_estimation_flow(mac.netlist, bench.tb, config);
  fault::CampaignResult bogus;  // empty reference
  EXPECT_THROW((void)score_against_campaign(flow, bogus), std::invalid_argument);
}

}  // namespace
}  // namespace ffr::core
