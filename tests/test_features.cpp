// Tests for src/features: every structural feature is verified against
// hand-computed values on small, fully-understood netlists; graph utilities
// against known topologies; dynamic features against scripted activity.

#include <gtest/gtest.h>

#include <filesystem>

#include "features/extractor.hpp"
#include "features/feature_set.hpp"
#include "features/graph.hpp"
#include "netlist/builder.hpp"
#include "rtl/sequential.hpp"
#include "sim/runner.hpp"

namespace ffr::features {
namespace {

using netlist::FlipFlop;
using netlist::NetId;
using netlist::Netlist;
using netlist::NetlistBuilder;

double feat(const FeatureMatrix& fm, std::size_t ff, Feature f) {
  return fm.values(ff, index_of(f));
}

TEST(FeatureSet, NamesAreUniqueAndComplete) {
  const auto names = feature_names();
  EXPECT_EQ(names.size(), kNumFeatures);
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_NE(names[i], "unknown");
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(FeatureSet, GroupsPartitionAllFeatures) {
  const auto structural = structural_feature_indices();
  const auto synthesis = synthesis_feature_indices();
  const auto dynamic = dynamic_feature_indices();
  EXPECT_EQ(structural.size() + synthesis.size() + dynamic.size(), kNumFeatures);
}

// Chain: pi -> [inv] -> ffA -> [buf] -> ffB -> po, plus ffC (self-loop).
struct ChainFixture : public ::testing::Test {
  void SetUp() override {
    NetlistBuilder bld("chain");
    pi = bld.input("pi");
    FlipFlop a = bld.dff(bld.inv(pi), false, "ffA");
    FlipFlop b = bld.dff(bld.buf(a.q), false, "ffB");
    FlipFlop c = bld.dff_loop([&](NetId q) { return bld.inv(q); }, false, "ffC");
    bld.output(b.q, "po");
    bld.output(c.q, "po_c");
    nl = bld.build();
    // flip_flops() order is creation order: ffA=0, ffB=1, ffC=2.
    fm = extract_static_features(nl);
  }
  Netlist nl{"x"};
  NetId pi{};
  FeatureMatrix fm;
};

TEST_F(ChainFixture, FanInOut) {
  EXPECT_EQ(feat(fm, 0, Feature::kFfFanIn), 0.0);   // fed by PI only
  EXPECT_EQ(feat(fm, 0, Feature::kFfFanOut), 1.0);  // feeds ffB
  EXPECT_EQ(feat(fm, 1, Feature::kFfFanIn), 1.0);
  EXPECT_EQ(feat(fm, 1, Feature::kFfFanOut), 0.0);  // feeds only the PO
  EXPECT_EQ(feat(fm, 2, Feature::kFfFanIn), 1.0);   // itself via the loop
  EXPECT_EQ(feat(fm, 2, Feature::kFfFanOut), 1.0);
}

TEST_F(ChainFixture, TotalFfs) {
  EXPECT_EQ(feat(fm, 0, Feature::kTotalFfsFrom), 0.0);
  EXPECT_EQ(feat(fm, 0, Feature::kTotalFfsTo), 1.0);   // ffB
  EXPECT_EQ(feat(fm, 1, Feature::kTotalFfsFrom), 1.0); // ffA
  EXPECT_EQ(feat(fm, 1, Feature::kTotalFfsTo), 0.0);
  // ffC reaches itself through the loop.
  EXPECT_EQ(feat(fm, 2, Feature::kTotalFfsFrom), 1.0);
  EXPECT_EQ(feat(fm, 2, Feature::kTotalFfsTo), 1.0);
}

TEST_F(ChainFixture, PrimaryConnections) {
  EXPECT_EQ(feat(fm, 0, Feature::kConnFromPrimaryInput), 1.0);
  EXPECT_EQ(feat(fm, 1, Feature::kConnFromPrimaryInput), 0.0);
  EXPECT_EQ(feat(fm, 0, Feature::kConnToPrimaryOutput), 0.0);
  EXPECT_EQ(feat(fm, 1, Feature::kConnToPrimaryOutput), 1.0);
  EXPECT_EQ(feat(fm, 2, Feature::kConnToPrimaryOutput), 1.0);
}

TEST_F(ChainFixture, Proximity) {
  // ffA: 1 stage from PI; ffB: 2 stages from PI; ffC: unreachable from PI.
  EXPECT_EQ(feat(fm, 0, Feature::kProximityFromPiMin), 1.0);
  EXPECT_EQ(feat(fm, 0, Feature::kProximityFromPiAvg), 1.0);
  EXPECT_EQ(feat(fm, 1, Feature::kProximityFromPiMin), 2.0);
  EXPECT_EQ(feat(fm, 2, Feature::kProximityFromPiMin), kNoValue);
  EXPECT_EQ(feat(fm, 2, Feature::kProximityFromPiAvg), kNoValue);
  // To PO: ffB direct (1), ffA through ffB (2); ffC direct to po_c (1).
  EXPECT_EQ(feat(fm, 1, Feature::kProximityToPoMin), 1.0);
  EXPECT_EQ(feat(fm, 0, Feature::kProximityToPoMin), 2.0);
  EXPECT_EQ(feat(fm, 2, Feature::kProximityToPoMin), 1.0);
}

TEST_F(ChainFixture, FeedbackLoop) {
  EXPECT_EQ(feat(fm, 0, Feature::kHasFeedbackLoop), 0.0);
  EXPECT_EQ(feat(fm, 0, Feature::kFeedbackLoopDepth), kNoValue);
  EXPECT_EQ(feat(fm, 2, Feature::kHasFeedbackLoop), 1.0);
  EXPECT_EQ(feat(fm, 2, Feature::kFeedbackLoopDepth), 1.0);
}

TEST_F(ChainFixture, BusFeaturesForLooseFlipFlops) {
  EXPECT_EQ(feat(fm, 0, Feature::kPartOfBus), 0.0);
  EXPECT_EQ(feat(fm, 0, Feature::kBusPosition), kNoValue);
  EXPECT_EQ(feat(fm, 0, Feature::kBusLength), 0.0);
}

TEST_F(ChainFixture, CombCounts) {
  // ffA cone: the INV; ffB cone: the BUF (plus the loop-closing buffer on
  // ffC counts into ffC's cone via dff_loop's forward wire buffer).
  EXPECT_EQ(feat(fm, 0, Feature::kCombFanIn), 1.0);
  EXPECT_EQ(feat(fm, 1, Feature::kCombFanIn), 1.0);
  // ffA output cone: the BUF feeding ffB -> comb fan-out 1, path depth 1.
  EXPECT_EQ(feat(fm, 0, Feature::kCombFanOut), 1.0);
  EXPECT_EQ(feat(fm, 0, Feature::kCombPathDepth), 1.0);
  // ffB drives the PO directly: no comb cells.
  EXPECT_EQ(feat(fm, 1, Feature::kCombFanOut), 0.0);
  EXPECT_EQ(feat(fm, 1, Feature::kCombPathDepth), 0.0);
}

TEST(Features, DeepFeedbackLoopDepth) {
  // ff0 -> ff1 -> ff2 -> ff0: every FF lies on a 3-cycle.
  NetlistBuilder bld("ring");
  const NetId seed_wire = bld.forward_wire("loop_in");
  FlipFlop f0 = bld.dff(seed_wire, true, "f0");
  FlipFlop f1 = bld.dff(bld.buf(f0.q), false, "f1");
  FlipFlop f2 = bld.dff(bld.buf(f1.q), false, "f2");
  bld.bind_forward_wire(seed_wire, f2.q);
  bld.output(f2.q, "po");
  const Netlist nl = bld.build();
  const FeatureMatrix fm = extract_static_features(nl);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(feat(fm, i, Feature::kHasFeedbackLoop), 1.0) << i;
    EXPECT_EQ(feat(fm, i, Feature::kFeedbackLoopDepth), 3.0) << i;
  }
}

TEST(Features, BusMembership) {
  NetlistBuilder bld("bus");
  const auto d = bld.input_bus("d", 4);
  const auto ffs = bld.register_bus("reg", d);
  bld.output_bus(NetlistBuilder::q_nets(ffs), "q");
  const Netlist nl = bld.build();
  const FeatureMatrix fm = extract_static_features(nl);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(feat(fm, i, Feature::kPartOfBus), 1.0);
    EXPECT_EQ(feat(fm, i, Feature::kBusPosition), static_cast<double>(i));
    EXPECT_EQ(feat(fm, i, Feature::kBusLength), 4.0);
  }
}

TEST(Features, ConstantDriversCounted) {
  NetlistBuilder bld("consts");
  const NetId a = bld.input("a");
  const NetId one = bld.constant(true);
  const NetId zero = bld.constant(false);
  FlipFlop ff = bld.dff(bld.or2(bld.and2(a, one), zero), false, "ff");
  bld.output(ff.q, "po");
  const Netlist nl = bld.build();
  const FeatureMatrix fm = extract_static_features(nl);
  EXPECT_EQ(feat(fm, 0, Feature::kConnConstantDrivers), 2.0);
}

TEST(Features, DriveStrengthReflectsFanout) {
  NetlistBuilder bld("drv");
  const NetId a = bld.input("a");
  FlipFlop hot = bld.dff(a, false, "hot");  // fans out to 10 gates
  std::vector<NetId> sinks;
  for (int i = 0; i < 10; ++i) sinks.push_back(bld.inv(hot.q));
  FlipFlop cold = bld.dff(bld.or_reduce(sinks), false, "cold");
  bld.output(cold.q, "po");
  const Netlist nl = bld.build();
  const FeatureMatrix fm = extract_static_features(nl);
  EXPECT_EQ(feat(fm, 0, Feature::kDriveStrength), 4.0);  // upsized
  EXPECT_EQ(feat(fm, 1, Feature::kDriveStrength), 1.0);
}

TEST(Features, DynamicActivityFromTrace) {
  NetlistBuilder bld("dyn");
  const NetId d = bld.input("d");
  FlipFlop ff = bld.dff(d, false, "ff");
  bld.output(ff.q, "po");
  const Netlist nl = bld.build();
  sim::ActivityTrace trace;
  trace.cycles_at_1 = {25};
  trace.state_changes = {7};
  trace.total_cycles = 100;
  const FeatureMatrix fm = extract_features(nl, trace);
  EXPECT_DOUBLE_EQ(feat(fm, 0, Feature::kAt1Ratio), 0.25);
  EXPECT_DOUBLE_EQ(feat(fm, 0, Feature::kAt0Ratio), 0.75);
  EXPECT_DOUBLE_EQ(feat(fm, 0, Feature::kStateChanges), 7.0);
}

TEST(Features, ActivityMismatchRejected) {
  NetlistBuilder bld("dyn2");
  const NetId d = bld.input("d");
  FlipFlop ff = bld.dff(d, false, "ff");
  bld.output(ff.q, "po");
  const Netlist nl = bld.build();
  sim::ActivityTrace trace;  // wrong size
  trace.cycles_at_1 = {1, 2};
  trace.state_changes = {1, 2};
  trace.total_cycles = 10;
  EXPECT_THROW((void)extract_features(nl, trace), std::invalid_argument);
}

TEST(Features, CsvRoundTrip) {
  NetlistBuilder bld("csv");
  const auto d = bld.input_bus("d", 3);
  const auto ffs = bld.register_bus("r", d);
  bld.output_bus(NetlistBuilder::q_nets(ffs), "q");
  const Netlist nl = bld.build();
  const FeatureMatrix fm = extract_static_features(nl);
  const auto path = std::filesystem::temp_directory_path() / "ffr_features.csv";
  fm.save_csv(path);
  const FeatureMatrix loaded = FeatureMatrix::load_csv(path);
  ASSERT_EQ(loaded.num_ffs(), fm.num_ffs());
  EXPECT_EQ(loaded.ff_names, fm.ff_names);
  for (std::size_t r = 0; r < fm.num_ffs(); ++r) {
    for (std::size_t c = 0; c < kNumFeatures; ++c) {
      EXPECT_DOUBLE_EQ(loaded.values(r, c), fm.values(r, c));
    }
  }
  std::filesystem::remove(path);
}

// ---- graph utilities ------------------------------------------------------------

TEST(Graph, DijkstraUnitDistances) {
  // 0 -> 1 -> 2 -> 3, plus shortcut 0 -> 2.
  std::vector<std::vector<std::uint32_t>> adj = {{1, 2}, {2}, {3}, {}};
  const auto dist = dijkstra_unit(adj, {0});
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
}

TEST(Graph, DijkstraUnreachable) {
  std::vector<std::vector<std::uint32_t>> adj = {{}, {0}};
  const auto dist = dijkstra_unit(adj, {0});
  EXPECT_EQ(dist[1], kUnreachable);
}

TEST(Graph, CountReachableExcludesSelfWithoutCycle) {
  std::vector<std::vector<std::uint32_t>> adj = {{1}, {2}, {}};
  EXPECT_EQ(count_reachable(adj, 0), 2u);
  EXPECT_EQ(count_reachable(adj, 2), 0u);
}

TEST(Graph, ShortestCycle) {
  // 0 -> 1 -> 0 (len 2) and 2 -> 2 (self loop len 1), 3 acyclic.
  std::vector<std::vector<std::uint32_t>> adj = {{1}, {0}, {2}, {0}};
  EXPECT_EQ(shortest_cycle_through(adj, 0), 2u);
  EXPECT_EQ(shortest_cycle_through(adj, 2), 1u);
  EXPECT_EQ(shortest_cycle_through(adj, 3), kUnreachable);
}

}  // namespace
}  // namespace ffr::features
