// Unit tests for src/netlist: cell library semantics, netlist invariants,
// builder helpers, topological ordering, Verilog export.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog_writer.hpp"

namespace ffr::netlist {
namespace {

TEST(CellLibrary, NumInputsMatchesEvaluateContract) {
  const bool in4[] = {true, false, true, true};
  for (const auto& cell : default_library().cells()) {
    if (is_sequential(cell.func)) continue;
    const std::span<const bool> inputs(in4, num_inputs(cell.func));
    EXPECT_NO_THROW((void)evaluate(cell.func, inputs)) << cell.name;
  }
}

TEST(CellLibrary, BasicGateTruth) {
  const bool tt[] = {true, true};
  const bool tf[] = {true, false};
  const bool ff[] = {false, false};
  EXPECT_TRUE(evaluate(CellFunc::kAnd2, tt));
  EXPECT_FALSE(evaluate(CellFunc::kAnd2, tf));
  EXPECT_TRUE(evaluate(CellFunc::kNand2, tf));
  EXPECT_TRUE(evaluate(CellFunc::kNor2, ff));
  EXPECT_TRUE(evaluate(CellFunc::kXor2, tf));
  EXPECT_FALSE(evaluate(CellFunc::kXnor2, tf));
}

TEST(CellLibrary, Mux2SelectsCorrectInput) {
  const bool sel0[] = {true, false, false};  // A=1, B=0, S=0 -> A
  const bool sel1[] = {true, false, true};   // S=1 -> B
  EXPECT_TRUE(evaluate(CellFunc::kMux2, sel0));
  EXPECT_FALSE(evaluate(CellFunc::kMux2, sel1));
}

TEST(CellLibrary, Aoi21Oai21Truth) {
  for (int a1 = 0; a1 < 2; ++a1) {
    for (int a2 = 0; a2 < 2; ++a2) {
      for (int b = 0; b < 2; ++b) {
        const bool in[] = {a1 != 0, a2 != 0, b != 0};
        EXPECT_EQ(evaluate(CellFunc::kAoi21, in), !((a1 && a2) || b));
        EXPECT_EQ(evaluate(CellFunc::kOai21, in), !((a1 || a2) && b));
      }
    }
  }
}

TEST(CellLibrary, LookupByNameAndDrive) {
  const CellLibrary& lib = default_library();
  const LibraryCell& nand_x2 = lib.lookup(CellFunc::kNand2, DriveStrength::kX2);
  EXPECT_EQ(nand_x2.name, "NAND2_X2");
  EXPECT_NE(lib.find_by_name("DFF_X1"), nullptr);
  EXPECT_EQ(lib.find_by_name("NOPE_X9"), nullptr);
  EXPECT_GT(lib.lookup(CellFunc::kDff, DriveStrength::kX4).area_um2,
            lib.lookup(CellFunc::kDff, DriveStrength::kX1).area_um2);
}

TEST(Netlist, DuplicateNetNameRejected) {
  Netlist nl("t");
  (void)nl.add_net("n1");
  EXPECT_THROW((void)nl.add_net("n1"), std::runtime_error);
}

TEST(Netlist, MultipleDriversRejected) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId w = bld.forward_wire("w");
  bld.bind_forward_wire(w, a);
  EXPECT_THROW(bld.bind_forward_wire(w, a), std::runtime_error);
}

TEST(Netlist, UndrivenNetDetectedAtBuild) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId w = bld.forward_wire("dangling");
  bld.output(bld.and2(a, w), "y");
  EXPECT_THROW((void)bld.build(), std::runtime_error);
}

TEST(Netlist, CombinationalCycleDetected) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId w = bld.forward_wire("loop");
  const NetId g = bld.and2(a, w);
  bld.bind_forward_wire(w, g);  // combinational loop through the AND
  bld.output(g, "y");
  EXPECT_THROW((void)bld.build(), std::runtime_error);
}

TEST(Netlist, SequentialLoopIsLegal) {
  NetlistBuilder bld("t");
  FlipFlop ff = bld.dff_loop([&](NetId q) { return bld.inv(q); }, false, "toggler");
  bld.output(ff.q, "y");
  const Netlist nl = bld.build();
  EXPECT_EQ(nl.num_flip_flops(), 1u);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId b = bld.input("b");
  const NetId x = bld.and2(a, b);
  const NetId y = bld.or2(x, a);
  const NetId z = bld.xor2(y, x);
  bld.output(z, "z");
  const Netlist nl = bld.build();
  std::vector<std::size_t> position(nl.num_cells(), 0);
  for (std::size_t i = 0; i < nl.topo_order().size(); ++i) {
    position[nl.topo_order()[i]] = i;
  }
  for (const CellId id : nl.topo_order()) {
    for (const NetId in : nl.cell(id).inputs) {
      const CellId driver = nl.net(in).driver;
      if (driver != kNoCell && !is_sequential(nl.cell(driver).func)) {
        EXPECT_LT(position[driver], position[id]);
      }
    }
  }
}

TEST(Netlist, BusRegistrationAndLookup) {
  NetlistBuilder bld("t");
  const auto d = bld.input_bus("d", 4);
  const auto ffs = bld.register_bus("r", d, 0b1010);
  bld.output_bus(NetlistBuilder::q_nets(ffs), "q");
  const Netlist nl = bld.build();
  ASSERT_EQ(nl.register_buses().size(), 1u);
  EXPECT_EQ(nl.register_buses()[0].name, "r");
  const auto bus = nl.bus_of(ffs[2].cell);
  ASSERT_TRUE(bus.has_value());
  EXPECT_EQ(bus->second, 2u);
  // Init values follow the literal.
  EXPECT_FALSE(nl.cell(ffs[0].cell).init_value);
  EXPECT_TRUE(nl.cell(ffs[1].cell).init_value);
}

TEST(Netlist, ConstantsAreCached) {
  NetlistBuilder bld("t");
  const NetId c1 = bld.constant(true);
  const NetId c2 = bld.constant(true);
  const NetId c3 = bld.constant(false);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
}

TEST(Netlist, DriveStrengthAssignedByFanout) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("a");
  const NetId b = bld.input("b");
  const NetId hot = bld.and2(a, b);  // will fan out to 10 readers
  std::vector<NetId> outs;
  for (int i = 0; i < 10; ++i) outs.push_back(bld.inv(hot));
  bld.output(bld.or_reduce(outs), "y");
  const Netlist nl = bld.build();
  const CellId hot_cell = nl.net(hot).driver;
  EXPECT_EQ(nl.cell(hot_cell).drive, DriveStrength::kX4);
}

TEST(Netlist, SummaryMentionsCounts) {
  NetlistBuilder bld("top_x");
  const NetId a = bld.input("a");
  FlipFlop ff = bld.dff(a, false, "r0");
  bld.output(ff.q, "y");
  const Netlist nl = bld.build();
  const std::string s = nl.summary();
  EXPECT_NE(s.find("top_x"), std::string::npos);
  EXPECT_NE(s.find("1 FFs"), std::string::npos);
}

TEST(Netlist, FindCellAndNet) {
  NetlistBuilder bld("t");
  const NetId a = bld.input("alpha");
  FlipFlop ff = bld.dff(a, false, "myreg");
  bld.output(ff.q, "y");
  const Netlist nl = bld.build();
  EXPECT_TRUE(nl.find_cell("myreg").has_value());
  EXPECT_TRUE(nl.find_net("alpha").has_value());
  EXPECT_FALSE(nl.find_cell("ghost").has_value());
}

TEST(Verilog, EmitsModuleWithPortsAndInstances) {
  NetlistBuilder bld("tiny");
  const NetId a = bld.input("a");
  const NetId b = bld.input("b");
  FlipFlop ff = bld.dff(bld.and2(a, b), false, "r0");
  bld.output(ff.q, "y");
  const Netlist nl = bld.build();
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module tiny"), std::string::npos);
  EXPECT_NE(v.find("AND2_X1"), std::string::npos);
  EXPECT_NE(v.find("DFF_X1"), std::string::npos);
  EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

}  // namespace
}  // namespace ffr::netlist
