// Tests for the second evaluation circuit (pipeline_core): golden behaviour
// against a software model of the datapath, latency, fault sensitivity of
// the accumulator (long error retention) vs transient stage registers.

#include <gtest/gtest.h>

#include "circuits/pipeline_core.hpp"
#include "fault/campaign.hpp"
#include "sim/runner.hpp"

namespace ffr::circuits {
namespace {

// Software model of the pipeline datapath (4-stage configuration).
std::vector<std::uint8_t> model_pipeline(std::span<const std::uint8_t> bytes,
                                         std::uint16_t key) {
  std::vector<std::uint8_t> out;
  std::uint16_t acc = 0;
  std::uint16_t rotating_key = key;
  for (const std::uint8_t byte : bytes) {
    // Stage 2 uses the key value at the time the byte occupies stage 1...
    // The RTL rotates the key on every accepted input byte; stage 2 reads
    // the *rotated* key (rotation happens at the same tick that moves the
    // byte into stage 2).
    rotating_key = static_cast<std::uint16_t>((rotating_key >> 1) |
                                              ((rotating_key & 1u) << 15));
    const std::uint8_t mixed =
        static_cast<std::uint8_t>((byte ^ (rotating_key & 0xFF)) + 0x5D);
    // Stage 3 accumulates the stage-2 output; stage 4 reads the accumulator
    // value *before* this byte is added (acc register updates at the tick
    // that also moves the byte into stage 4).
    const std::uint8_t out_byte = static_cast<std::uint8_t>(mixed ^ (acc & 0xFF));
    acc = static_cast<std::uint16_t>(acc + mixed);
    out.push_back(out_byte);
  }
  return out;
}

TEST(PipelineCore, BuildsWithExpectedPorts) {
  const PipelineCore core = build_pipeline_core();
  EXPECT_EQ(core.in_data.size(), 8u);
  EXPECT_EQ(core.out_data.size(), 8u);
  EXPECT_EQ(core.out_sum.size(), 16u);
  EXPECT_GT(core.netlist.num_flip_flops(), 50u);
}

TEST(PipelineCore, GoldenMatchesSoftwareModel) {
  const PipelineCore core = build_pipeline_core();
  const PipelineTestbench bench = build_pipeline_testbench(core, 40, 0.6, 0x1234);
  const sim::GoldenResult golden = sim::run_golden(core.netlist, bench.tb);
  ASSERT_GE(golden.frames.size(), bench.sent_bytes.size());
  // The model needs the loaded key; reconstruct it from the testbench rng —
  // instead, verify structural properties: byte count matches and the
  // transform is a bijection per position (distinct inputs at the same acc
  // state give distinct outputs). Cross-check the exact bytes with the
  // model using the key recovered from the key register via the sum taps is
  // overkill; instead rebuild the testbench with a known key.
  EXPECT_EQ(golden.frames.size(), bench.sent_bytes.size());
}

TEST(PipelineCore, ExactBytesWithKnownKey) {
  // Drive the core manually with a known key and byte sequence, compare
  // against the software model byte-for-byte.
  const PipelineCore core = build_pipeline_core();
  const auto& nl = core.netlist;
  const auto pi = [&](netlist::NetId net) {
    return static_cast<std::size_t>(nl.net(net).pi_index);
  };
  const std::uint16_t key = 0xC3A5;
  const std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0x12, 0x34, 0x56, 0xAB};

  const std::size_t cycles = 8 + bytes.size() + 10;
  sim::Stimulus stim(nl.primary_inputs().size(), cycles);
  stim.set(pi(core.key_load), 1, true);
  for (std::size_t b = 0; b < 8; ++b) {
    stim.set(pi(core.key_data[b]), 1, ((key >> b) & 1u) != 0);
  }
  stim.set(pi(core.key_load), 2, true);
  for (std::size_t b = 0; b < 8; ++b) {
    stim.set(pi(core.key_data[b]), 2, ((key >> (8 + b)) & 1u) != 0);
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t c = 4 + i;
    stim.set(pi(core.in_valid), c, true);
    for (std::size_t b = 0; b < 8; ++b) {
      stim.set(pi(core.in_data[b]), c, ((bytes[i] >> b) & 1u) != 0);
    }
  }
  sim::Testbench tb;
  tb.stimulus = std::move(stim);
  tb.monitor = core.byte_monitor();
  const auto const0 = nl.find_net("const0");
  ASSERT_TRUE(const0.has_value());
  tb.monitor.eop = *const0;
  tb.monitor.err = *const0;
  tb.inject_begin = 0;
  tb.inject_end = cycles;

  const sim::GoldenResult golden = sim::run_golden(nl, tb);
  const std::vector<std::uint8_t> expected = model_pipeline(bytes, key);
  ASSERT_EQ(golden.frames.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(golden.frames[i].bytes.size(), 1u);
    EXPECT_EQ(golden.frames[i].bytes[0], expected[i]) << "byte " << i;
  }
}

TEST(PipelineCore, AccumulatorFaultPersistenceDependsOnBitPosition) {
  // A flip in a LOW accumulator bit corrupts (nearly) every later byte: the
  // wrong sum is XOR-folded into each output. A flip in a HIGH accumulator
  // bit never reaches the monitored 8-bit output (only out_sum carries it),
  // so it is functionally benign. This is exactly the kind of per-instance
  // difference the paper's per-flip-flop FDR captures and bus_position can
  // help a model learn.
  const PipelineCore core = build_pipeline_core();
  const PipelineTestbench bench = build_pipeline_testbench(core, 48, 0.8, 7);
  const sim::GoldenResult golden = sim::run_golden(core.netlist, bench.tb);
  const auto& nl = core.netlist;

  const auto bus_ff = [&](const std::string& name, std::size_t bit) {
    for (const auto& bus : nl.register_buses()) {
      if (bus.name == name) return bus.flip_flops.at(bit);
    }
    throw std::runtime_error("no bus " + name);
  };

  const std::uint32_t mid_cycle =
      static_cast<std::uint32_t>(bench.tb.stimulus.num_cycles() / 2);
  const auto corrupted = [&](const sim::FrameList& frames) {
    std::size_t count = 0;
    for (std::size_t f = 0; f < std::min(frames.size(), golden.frames.size());
         ++f) {
      count += !(frames[f] == golden.frames[f]);
    }
    return count;
  };

  sim::InjectionEvent low_ev{bus_ff("acc_reg", 0), mid_cycle, 0b1};
  const auto low_run = sim::run_testbench(nl, bench.tb, {&low_ev, 1});
  EXPECT_GT(corrupted(low_run.lane_frames[0]), 8u);

  sim::InjectionEvent high_ev{bus_ff("acc_reg", 15), mid_cycle, 0b1};
  const auto high_run = sim::run_testbench(nl, bench.tb, {&high_ev, 1});
  EXPECT_EQ(corrupted(high_run.lane_frames[0]), 0u);

  // A stage-register flip also persists *through* the accumulator (the
  // corrupted byte is summed in), so it corrupts later frames too.
  sim::InjectionEvent stage_ev{bus_ff("s1_data", 0), mid_cycle, 0b1};
  const auto stage_run = sim::run_testbench(nl, bench.tb, {&stage_ev, 1});
  EXPECT_GE(corrupted(stage_run.lane_frames[0]), 1u);
}

TEST(PipelineCore, CampaignSeparatesAccumulatorBitPositions) {
  const PipelineCore core = build_pipeline_core();
  const PipelineTestbench bench = build_pipeline_testbench(core, 48, 0.8, 9);
  const sim::GoldenResult golden = sim::run_golden(core.netlist, bench.tb);
  fault::CampaignConfig config;
  config.injections_per_ff = 24;
  const fault::CampaignResult campaign =
      fault::run_campaign(core.netlist, bench.tb, golden, config);
  // Low accumulator bits (folded into every output byte) must be far more
  // vulnerable than high bits (only visible on the unmonitored sum port).
  double low_sum = 0;
  int low_n = 0;
  double high_sum = 0;
  int high_n = 0;
  for (const auto& ff : campaign.per_ff) {
    if (ff.name.rfind("acc_reg[", 0) != 0) continue;
    const int bit = std::stoi(ff.name.substr(8));
    if (bit < 8) {
      low_sum += ff.fdr();
      ++low_n;
    } else {
      high_sum += ff.fdr();
      ++high_n;
    }
  }
  ASSERT_EQ(low_n, 8);
  ASSERT_EQ(high_n, 8);
  EXPECT_GT(low_sum / low_n, 0.3);
  EXPECT_LT(high_sum / high_n, 0.05);
}

TEST(PipelineTestbench, RejectsBadDutyCycle) {
  const PipelineCore core = build_pipeline_core();
  EXPECT_THROW((void)build_pipeline_testbench(core, 10, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)build_pipeline_testbench(core, 10, 1.5, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace ffr::circuits
