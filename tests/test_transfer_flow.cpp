// Cross-circuit transfer: DomainScaler normalization properties, the
// train-once/predict-many flow end-to-end on real circuits (persist, reload,
// bit-identical serving), and the shape-validation contract of fit/predict.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "core/transfer_flow.hpp"
#include "features/domain_scaler.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/svr.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace ffr {
namespace {

using features::ColumnNorm;
using features::DomainScaler;
using features::DomainScalerConfig;

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed, double scale = 1.0) {
  util::Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = scale * rng.uniform(-5, 5);
    }
  }
  return m;
}

DomainScalerConfig uniform_norms(std::size_t cols, ColumnNorm norm) {
  DomainScalerConfig config;
  config.norms.assign(cols, norm);
  return config;
}

// ---- DomainScaler ----------------------------------------------------------

TEST(DomainScaler, ZScoreColumnsHaveZeroMeanUnitVariance) {
  const linalg::Matrix x = random_matrix(200, 4, 0xAB, 37.0);
  const DomainScaler scaler(uniform_norms(4, ColumnNorm::kZScore));
  const linalg::Matrix z = scaler.standardize(x);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    const linalg::Vector col = z.col_copy(c);
    EXPECT_NEAR(linalg::mean(col), 0.0, 1e-9);
    EXPECT_NEAR(linalg::stddev(col), 1.0, 1e-9);
  }
}

TEST(DomainScaler, ZScoreIsInvariantToPerCircuitAffineRescaling) {
  // The whole point: two circuits whose features differ by scale/offset
  // produce identical standardized matrices.
  const linalg::Matrix x = random_matrix(64, 3, 0xCD);
  linalg::Matrix rescaled = x;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      rescaled(r, c) = 250.0 * x(r, c) + 17.0;
    }
  }
  const DomainScaler scaler(uniform_norms(3, ColumnNorm::kZScore));
  const linalg::Matrix a = scaler.standardize(x);
  const linalg::Matrix b = scaler.standardize(rescaled);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), 1e-9);
    }
  }
}

TEST(DomainScaler, ZScoreExcludesSentinelsFromStatistics) {
  // Column: many -1 sentinels plus a few real values. The real values must
  // standardize against their own mean/std, not the sentinel-dragged one.
  linalg::Matrix x(6, 1);
  x(0, 0) = features::kNoValue;
  x(1, 0) = features::kNoValue;
  x(2, 0) = features::kNoValue;
  x(3, 0) = 10.0;
  x(4, 0) = 20.0;
  x(5, 0) = 30.0;
  const DomainScaler scaler(uniform_norms(1, ColumnNorm::kZScore));
  const linalg::Matrix z = scaler.standardize(x);
  // Real values: mean 20, population std sqrt(200/3).
  const double std = std::sqrt(200.0 / 3.0);
  EXPECT_NEAR(z(3, 0), -10.0 / std, 1e-12);
  EXPECT_NEAR(z(4, 0), 0.0, 1e-12);
  EXPECT_NEAR(z(5, 0), 10.0 / std, 1e-12);
  // Sentinels map through the same affine map: lower than every real value.
  EXPECT_LT(z(0, 0), z(3, 0));
  EXPECT_EQ(z(0, 0), z(1, 0));
}

TEST(DomainScaler, RankColumnsAreUniformInOpenUnitInterval) {
  const linalg::Matrix x = random_matrix(100, 2, 0xEF, 1e4);
  const DomainScaler scaler(uniform_norms(2, ColumnNorm::kRank));
  const linalg::Matrix ranks = scaler.standardize(x);
  for (std::size_t c = 0; c < 2; ++c) {
    const linalg::Vector col = ranks.col_copy(c);
    EXPECT_GT(linalg::min_value(col), 0.0);
    EXPECT_LT(linalg::max_value(col), 1.0);
    // Distinct values, so ranks are the exact lattice (i + 0.5) / n.
    linalg::Vector sorted = col;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_NEAR(sorted[i],
                  (static_cast<double>(i) + 0.5) / static_cast<double>(sorted.size()),
                  1e-12);
    }
  }
}

TEST(DomainScaler, RankIsInvariantToMonotoneRescalingAndDuplication) {
  const linalg::Matrix x = random_matrix(40, 1, 0x11);
  const DomainScaler scaler(uniform_norms(1, ColumnNorm::kRank));
  const linalg::Matrix base = scaler.standardize(x);

  // Any monotone map (here exp) leaves ranks untouched.
  linalg::Matrix warped = x;
  for (std::size_t r = 0; r < x.rows(); ++r) warped(r, 0) = std::exp(x(r, 0));
  const linalg::Matrix warped_ranks = scaler.standardize(warped);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(base(r, 0), warped_ranks(r, 0));
  }

  // Duplicating every row (a "circuit" twice the size) keeps fractions.
  linalg::Matrix doubled(2 * x.rows(), 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    doubled(r, 0) = x(r, 0);
    doubled(x.rows() + r, 0) = x(r, 0);
  }
  const linalg::Matrix doubled_ranks = scaler.standardize(doubled);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_NEAR(doubled_ranks(r, 0), base(r, 0), 1e-12);
  }
}

TEST(DomainScaler, IdentityColumnsPassThrough) {
  const linalg::Matrix x = random_matrix(20, 2, 0x22);
  const DomainScaler scaler(uniform_norms(2, ColumnNorm::kIdentity));
  const linalg::Matrix out = scaler.standardize(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_EQ(out(r, 0), x(r, 0));
    EXPECT_EQ(out(r, 1), x(r, 1));
  }
}

TEST(DomainScaler, DefaultNormsCoverEveryFeatureColumn) {
  const auto norms = features::default_transfer_norms();
  EXPECT_EQ(norms.size(), features::kNumFeatures);
  // Flags/ratios stay identity; the state-change count is rank-normalized.
  EXPECT_EQ(norms[features::index_of(features::Feature::kAt0Ratio)],
            ColumnNorm::kIdentity);
  EXPECT_EQ(norms[features::index_of(features::Feature::kStateChanges)],
            ColumnNorm::kRank);
  EXPECT_EQ(norms[features::index_of(features::Feature::kFfFanIn)],
            ColumnNorm::kZScore);
}

TEST(DomainScaler, RejectsShapeMismatchAndBadConfig) {
  const DomainScaler scaler(uniform_norms(3, ColumnNorm::kZScore));
  EXPECT_THROW((void)scaler.standardize(random_matrix(5, 4, 1)),
               std::invalid_argument);
  EXPECT_THROW((void)scaler.standardize(linalg::Matrix{}),
               std::invalid_argument);
  DomainScalerConfig bad;
  bad.norms.assign(2, static_cast<ColumnNorm>(9));
  EXPECT_THROW(DomainScaler{bad}, std::invalid_argument);
}

// ---- fit/predict shape validation ------------------------------------------

TEST(ShapeValidation, FitRejectsRowLabelMismatchNamingShapes) {
  const linalg::Matrix x = random_matrix(10, 3, 0x33);
  const linalg::Vector y(7, 0.5);
  ml::LinearLeastSquares model;
  try {
    model.fit(x, y);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("10"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
  }
}

TEST(ShapeValidation, PredictRejectsFeatureCountDriftNamingShapes) {
  const linalg::Matrix x = random_matrix(30, 4, 0x44);
  linalg::Vector y(30);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = x(i, 0) + x(i, 2);
  const linalg::Matrix drifted = random_matrix(5, 3, 0x55);

  ml::LinearLeastSquares linear;
  linear.fit(x, y);
  ml::KnnRegressor knn;
  knn.fit(x, y);
  ml::SvrRegressor svr;
  svr.fit(x, y);
  ml::DecisionTreeRegressor tree;
  tree.fit(x, y);
  ml::RandomForestRegressor forest(ml::ForestConfig{.n_estimators = 3});
  forest.fit(x, y);
  ml::GradientBoostingRegressor gbr(ml::BoostingConfig{.n_estimators = 3});
  gbr.fit(x, y);

  const ml::Regressor* models[] = {&linear, &knn, &svr, &tree, &forest, &gbr};
  for (const ml::Regressor* model : models) {
    try {
      (void)model->predict(drifted);
      FAIL() << model->name() << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("fitted on 4"), std::string::npos)
          << model->name() << ": " << what;
      EXPECT_NE(what.find("5x3"), std::string::npos)
          << model->name() << ": " << what;
    }
  }
}

// ---- transfer flow end-to-end ----------------------------------------------

core::TransferSample gather(const netlist::Netlist& nl, const sim::Testbench& tb,
                            std::size_t injections) {
  core::TransferConfig config;
  config.injections_per_ff = injections;
  return core::gather_transfer_sample(nl, tb, config);
}

class TransferFlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuits::MacConfig mac_config;
    mac_config.tx_depth_log2 = 3;
    mac_config.rx_depth_log2 = 3;
    mac_ = new circuits::MacCore(circuits::build_mac_core(mac_config));
    mac_bench_ =
        new circuits::MacTestbench(circuits::build_mac_testbench(*mac_, {}));
    pipe_ = new circuits::PipelineCore(circuits::build_pipeline_core());
    pipe_bench_ = new circuits::PipelineTestbench(
        circuits::build_pipeline_testbench(*pipe_, 64, 0.7, 0x51));
    mac_sample_ = new core::TransferSample(gather(mac_->netlist, mac_bench_->tb, 8));
  }
  static void TearDownTestSuite() {
    delete mac_sample_;
    delete pipe_bench_;
    delete pipe_;
    delete mac_bench_;
    delete mac_;
  }

  static circuits::MacCore* mac_;
  static circuits::MacTestbench* mac_bench_;
  static circuits::PipelineCore* pipe_;
  static circuits::PipelineTestbench* pipe_bench_;
  static core::TransferSample* mac_sample_;
};

circuits::MacCore* TransferFlowTest::mac_ = nullptr;
circuits::MacTestbench* TransferFlowTest::mac_bench_ = nullptr;
circuits::PipelineCore* TransferFlowTest::pipe_ = nullptr;
circuits::PipelineTestbench* TransferFlowTest::pipe_bench_ = nullptr;
core::TransferSample* TransferFlowTest::mac_sample_ = nullptr;

TEST_F(TransferFlowTest, TrainPersistReloadServesBitIdentically) {
  core::TransferConfig config;
  config.model = "knn_paper";
  const std::vector<core::TransferSample> train = {*mac_sample_};
  const core::TransferModel trained = core::train_transfer_model(train, config);
  EXPECT_EQ(trained.model_name(), "knn_paper");
  EXPECT_EQ(trained.train_circuits(),
            std::vector<std::string>{std::string("mac_core")});
  EXPECT_EQ(trained.train_rows(), mac_sample_->fdr.size());

  std::ostringstream os;
  trained.save(os);
  std::istringstream is(os.str());
  const core::TransferModel served = core::TransferModel::load(is);
  EXPECT_EQ(served.model_name(), trained.model_name());
  EXPECT_EQ(served.train_circuits(), trained.train_circuits());

  // Predict an unseen circuit (golden run only, no injection) from both the
  // in-memory and the reloaded model: bit-identical.
  const linalg::Vector in_memory = trained.predict(pipe_->netlist, pipe_bench_->tb);
  const linalg::Vector reloaded = served.predict(pipe_->netlist, pipe_bench_->tb);
  ASSERT_EQ(in_memory.size(), pipe_->netlist.flip_flops().size());
  ASSERT_EQ(reloaded.size(), in_memory.size());
  for (std::size_t i = 0; i < in_memory.size(); ++i) {
    EXPECT_EQ(reloaded[i], in_memory[i]) << "row " << i;
  }
}

TEST_F(TransferFlowTest, FileRoundTripMatchesStreamRoundTrip) {
  core::TransferConfig config;
  config.model = "linear";
  const std::vector<core::TransferSample> train = {*mac_sample_};
  const core::TransferModel trained = core::train_transfer_model(train, config);
  const auto path =
      std::filesystem::temp_directory_path() / "ffr_test_transfer_model.txt";
  trained.save(path);
  const core::TransferModel loaded = core::TransferModel::load(path);
  std::filesystem::remove(path);
  const linalg::Vector a = trained.predict(mac_sample_->features);
  const linalg::Vector b = loaded.predict(mac_sample_->features);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(TransferFlowTest, EndToEndCircuitOverloadMatchesSampleOverload) {
  // The (netlist, testbench) overload must produce the same model as
  // gathering the sample manually with the same knobs.
  core::TransferConfig config;
  config.model = "linear";
  config.injections_per_ff = 8;
  const std::vector<core::TransferCircuit> circuits = {
      {&mac_->netlist, &mac_bench_->tb}};
  std::vector<core::TransferTrainStats> stats;
  const core::TransferModel from_circuits =
      core::train_transfer_model(circuits, config, &stats);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].circuit, "mac_core");
  EXPECT_EQ(stats[0].rows, mac_sample_->fdr.size());
  EXPECT_EQ(stats[0].injections, 8u * mac_sample_->fdr.size());

  const std::vector<core::TransferSample> train = {*mac_sample_};
  const core::TransferModel from_samples =
      core::train_transfer_model(train, config);
  const linalg::Vector a = from_circuits.predict(mac_sample_->features);
  const linalg::Vector b = from_samples.predict(mac_sample_->features);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(TransferFlowTest, InDomainPredictionIsAccurate) {
  // Sanity: standardized training does not break in-domain quality.
  core::TransferConfig config;
  config.model = "knn_paper";
  const std::vector<core::TransferSample> train = {*mac_sample_};
  const core::TransferModel trained = core::train_transfer_model(train, config);
  const linalg::Vector pred = trained.predict(mac_sample_->features);
  EXPECT_GT(ml::r2_score(mac_sample_->fdr, pred), 0.9);
}

TEST(TransferFlow, TrainRejectsBadInput) {
  EXPECT_THROW((void)core::train_transfer_model(
                   std::span<const core::TransferSample>{}),
               std::invalid_argument);

  core::TransferSample sample;
  sample.name = "bad";
  sample.features.values = linalg::Matrix(4, 3);
  sample.fdr.assign(5, 0.0);  // row/label mismatch
  std::vector<core::TransferSample> samples = {sample};
  core::TransferConfig config;
  config.norms.norms.assign(3, ColumnNorm::kZScore);
  EXPECT_THROW((void)core::train_transfer_model(samples, config),
               std::invalid_argument);

  const std::vector<core::TransferCircuit> null_circuit = {{nullptr, nullptr}};
  EXPECT_THROW((void)core::train_transfer_model(null_circuit),
               std::invalid_argument);
}

TEST(TransferFlow, LoadRejectsCorruptTransferFiles) {
  {
    std::istringstream is("not-a-transfer 1");
    EXPECT_THROW((void)core::TransferModel::load(is), std::runtime_error);
  }
  {
    std::istringstream is("ffr-transfer 9 model_name knn");
    EXPECT_THROW((void)core::TransferModel::load(is), std::runtime_error);
  }
  {
    // Truncated: header only.
    std::istringstream is("ffr-transfer 1\nmodel_name knn_paper\n");
    EXPECT_THROW((void)core::TransferModel::load(is), std::runtime_error);
  }
}

TEST(Metrics, SpearmanMatchesHandComputedValues) {
  const linalg::Vector a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const linalg::Vector monotone = {10.0, 20.0, 30.0, 40.0, 50.0};
  const linalg::Vector reversed = {5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(ml::spearman_rho(a, monotone), 1.0, 1e-12);
  EXPECT_NEAR(ml::spearman_rho(a, reversed), -1.0, 1e-12);
  const linalg::Vector constant = {2.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_EQ(ml::spearman_rho(a, constant), 0.0);
  // Nonlinear but monotone: still exactly 1 (the point of rank correlation).
  const linalg::Vector warped = {std::exp(1.0), std::exp(2.0), std::exp(3.0),
                                 std::exp(4.0), std::exp(5.0)};
  EXPECT_NEAR(ml::spearman_rho(a, warped), 1.0, 1e-12);
}

}  // namespace
}  // namespace ffr
