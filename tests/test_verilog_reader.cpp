// Round-trip and rejection suite for the structural Verilog frontend
// (netlist/verilog_reader + verilog_lexer), with the writer as the
// differential oracle:
//  - write -> read -> write must be byte-identical for every in-tree circuit
//    (mac_core, pipeline_core, relay_core) and seeded random_circuit shapes;
//  - read -> write -> read must be structurally equal for every accepted
//    file, including the hand-written tests/corpus fixtures;
//  - an imported design must be a first-class campaign citizen: golden
//    frames and flat/batched campaign FDR bit-identical to the in-memory
//    original (the paper-scale relay differential lives in
//    tests/test_relay_core.cpp under the "scale" label);
//  - every malformed input is rejected with a positioned
//    `<file>:<line>:<col>: error:` diagnostic — never a crash or silent
//    acceptance (this suite also runs under the ASan/UBSan CI leg).

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "circuits/pipeline_core.hpp"
#include "circuits/random_circuit.hpp"
#include "circuits/relay_core.hpp"
#include "fault/campaign.hpp"
#include "fault/engine.hpp"
#include "netlist/builder.hpp"
#include "netlist/verilog_lexer.hpp"
#include "netlist/verilog_reader.hpp"
#include "netlist/verilog_writer.hpp"
#include "sim/runner.hpp"
#include "sim/testbench.hpp"

namespace ffr::netlist {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// Full round-trip property: the emission reads back structurally identical
// (same creation order — every in-tree generator declares its primary inputs
// first, so even net ids survive) and re-emits byte-for-byte.
void expect_round_trip(const Netlist& nl) {
  const std::string text = to_verilog(nl);
  const Netlist reread = read_verilog(text, nl.name() + ".v");
  std::string why;
  EXPECT_TRUE(structurally_equal(nl, reread, &why)) << nl.name() << ": " << why;
  EXPECT_EQ(to_verilog(reread), text) << nl.name();
}

// Rejection helper: parsing must throw std::runtime_error whose message
// carries a file:line:col position; returns the message for content checks.
std::string rejection_of(std::string_view source) {
  try {
    (void)read_verilog(source, "bad.v");
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_TRUE(message.starts_with("bad.v:")) << message;
    EXPECT_NE(message.find(": error: "), std::string::npos) << message;
    // "<file>:" must be followed by "<line>:<col>".
    const std::size_t line_begin = std::string("bad.v:").size();
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(message[line_begin])))
        << message;
    return message;
  }
  ADD_FAILURE() << "input was accepted but should have been rejected:\n"
                << source;
  return {};
}

void expect_rejected(std::string_view source, std::string_view what) {
  const std::string message = rejection_of(source);
  EXPECT_NE(message.find(what), std::string::npos)
      << "diagnostic '" << message << "' does not mention '" << what << "'";
}

void expect_campaigns_bit_identical(const fault::CampaignResult& a,
                                    const fault::CampaignResult& b) {
  ASSERT_EQ(a.per_ff.size(), b.per_ff.size());
  for (std::size_t i = 0; i < a.per_ff.size(); ++i) {
    EXPECT_EQ(a.per_ff[i].name, b.per_ff[i].name);
    EXPECT_EQ(a.per_ff[i].classes.counts, b.per_ff[i].classes.counts)
        << "ff " << a.per_ff[i].name;
  }
  EXPECT_EQ(a.fdr_vector(), b.fdr_vector());
  EXPECT_EQ(a.total_injections, b.total_injections);
}

// ---------------------------------------------------------------------------
// Round-trip properties over the in-tree circuits
// ---------------------------------------------------------------------------

TEST(VerilogRoundTrip, MacCoreWriteReadWriteByteIdentical) {
  expect_round_trip(circuits::build_mac_core().netlist);
}

TEST(VerilogRoundTrip, PipelineCoreWriteReadWriteByteIdentical) {
  expect_round_trip(circuits::build_pipeline_core().netlist);
}

TEST(VerilogRoundTrip, RelayCoreWriteReadWriteByteIdentical) {
  // Paper-scale netlist (>= 1000 FFs); only built and parsed here — the
  // campaign differential at this scale is in test_relay_core.cpp.
  expect_round_trip(circuits::build_relay_core().netlist);
}

TEST(VerilogRoundTrip, SeededRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    circuits::RandomCircuitConfig config;
    config.seed = seed;
    config.num_gates = 30 + 17 * static_cast<std::size_t>(seed % 5);
    config.num_flip_flops = 4 + static_cast<std::size_t>(seed % 7);
    config.bus_probability = (seed % 2 == 0) ? 0.8 : 0.2;
    expect_round_trip(circuits::build_random_circuit(config));
  }
}

TEST(VerilogRoundTrip, InitValuesAndBusesSurvive) {
  NetlistBuilder bld("init_keeper");
  const NetId a = bld.input("a");
  auto ffs = bld.register_bus("state", std::vector<NetId>{a, bld.inv(a)}, 0b01);
  FlipFlop lone = bld.dff(ffs[1].q, true, "lone");
  bld.output(lone.q, "y");
  const Netlist nl = bld.build();

  const Netlist reread = read_verilog(to_verilog(nl), "init_keeper.v");
  ASSERT_EQ(reread.num_flip_flops(), 3u);
  EXPECT_TRUE(reread.cell(reread.flip_flops()[0]).init_value);   // init bit 0
  EXPECT_FALSE(reread.cell(reread.flip_flops()[1]).init_value);  // init bit 1
  EXPECT_TRUE(reread.cell(*reread.find_cell("lone")).init_value);
  ASSERT_EQ(reread.register_buses().size(), 1u);
  EXPECT_EQ(reread.register_buses()[0].name, "state");
  ASSERT_EQ(reread.register_buses()[0].flip_flops.size(), 2u);
  EXPECT_EQ(reread.cell(reread.register_buses()[0].flip_flops[1]).name,
            "state[1]");
}

TEST(VerilogRoundTrip, EscapedIdentifiersSurvive) {
  NetlistBuilder bld("escapes");
  const NetId a = bld.input("fancy[0]");
  const NetId n = bld.gate(CellFunc::kInv, {a}, "u.with-dots");
  bld.output(n, "out[1]");
  const Netlist nl = bld.build();
  const std::string text = to_verilog(nl);
  EXPECT_NE(text.find("\\fancy[0] "), std::string::npos);
  EXPECT_NE(text.find("\\u.with-dots "), std::string::npos);
  expect_round_trip(nl);
}

TEST(VerilogWriter, RejectsUnrepresentableNames) {
  NetlistBuilder bld("bad names");  // module name with a space
  const NetId a = bld.input("a");
  bld.output(bld.inv(a), "y");
  const Netlist nl = bld.build();
  EXPECT_THROW((void)to_verilog(nl), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lexer tolerance: the reader accepts more than the writer emits
// ---------------------------------------------------------------------------

TEST(VerilogLexerTolerance, CommentsWhitespaceAndMultiLineStatements) {
  const std::string source =
      "/* block comment\n   spanning lines */\n"
      "module   tolerant (clk, a, y);// trailing comment\n"
      "\tinput clk;\r\n"
      "  input a;\n"
      "  output y;\n"
      "  wire n1 /* inline */ , n2;\n"
      "  assign y =\n"
      "      n2;\n"
      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
      "  BUF_X4 u2 (\n"
      "      .A(n1),\n"
      "      .ZN(n2)\n"
      "  );\n"
      "endmodule\n"
      "// trailing comment after endmodule is fine\n";
  const Netlist nl = read_verilog(source, "tolerant.v");
  EXPECT_EQ(nl.name(), "tolerant");
  EXPECT_EQ(nl.num_cells(), 2u);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  // The accepted file normalizes: read -> write -> read is structurally
  // stable even though the input formatting is not canonical.
  const Netlist again = read_verilog(to_verilog(nl), "tolerant2.v");
  std::string why;
  EXPECT_TRUE(structurally_equal(nl, again, &why)) << why;
}

TEST(VerilogLexerTolerance, TieOffLiteralsElaborateToSharedConstCells) {
  const std::string source =
      "module ties (clk, a, y, z);\n"
      "  input clk;\n"
      "  input a;\n"
      "  output y;\n"
      "  output z;\n"
      "  wire n1, n2;\n"
      "  assign y = n1;\n"
      "  assign z = n2;\n"
      "  AND2_X1 u1 (.A1(a), .A2(1'b1), .ZN(n1));\n"
      "  OR2_X1 u2 (.A1(1'b1), .A2(1'b0), .ZN(n2));\n"
      "endmodule\n";
  const Netlist nl = read_verilog(source, "ties.v");
  // 1'b1 used twice -> one shared CONST1 cell; 1'b0 once -> one CONST0.
  std::size_t const_cells = 0;
  for (const Cell& cell : nl.cells()) {
    if (is_constant(cell.func)) ++const_cells;
  }
  EXPECT_EQ(const_cells, 2u);
  ASSERT_TRUE(nl.find_cell("$ffr_tie1").has_value());
  ASSERT_TRUE(nl.find_cell("$ffr_tie0").has_value());
  // Ties re-emit as escaped-identifier CONST instances and stay stable.
  const Netlist again = read_verilog(to_verilog(nl), "ties2.v");
  std::string why;
  EXPECT_TRUE(structurally_equal(nl, again, &why)) << why;
  EXPECT_EQ(to_verilog(again), to_verilog(nl));
}

TEST(VerilogLexerTolerance, AnyConnectionOrderAndCommaDeclLists) {
  const std::string source =
      "module anyorder (clk, a, b, y);\n"
      "  input clk;\n"
      "  input a, b;\n"
      "  output y;\n"
      "  wire n1, q;\n"
      "  assign y = q;\n"
      "  AOI21_X2 u1 (.B(b), .ZN(n1), .A2(b), .A1(a));\n"
      "  DFF_X1 r0 (.Q(q), .CK(clk), .D(n1));\n"
      "endmodule\n";
  const Netlist nl = read_verilog(source, "anyorder.v");
  const Cell& aoi = nl.cell(*nl.find_cell("u1"));
  EXPECT_EQ(nl.net(aoi.inputs[0]).name, "a");   // A1
  EXPECT_EQ(nl.net(aoi.inputs[1]).name, "b");   // A2
  EXPECT_EQ(nl.net(aoi.inputs[2]).name, "b");   // B
  EXPECT_EQ(aoi.drive, DriveStrength::kX2);
  EXPECT_EQ(nl.net(nl.cell(*nl.find_cell("r0")).output).name, "q");
}

TEST(VerilogLexer, TokensCarryPositions) {
  VerilogLexer lexer("module \\m[0] \n  (*", "lex.v");
  VToken tok = lexer.take();
  EXPECT_TRUE(tok.is_ident("module"));
  EXPECT_EQ(tok.line, 1u);
  EXPECT_EQ(tok.column, 1u);
  tok = lexer.take();
  EXPECT_EQ(tok.kind, VTokenKind::kEscapedId);
  EXPECT_EQ(tok.text, "m[0]");
  EXPECT_EQ(tok.column, 8u);
  tok = lexer.take();
  EXPECT_TRUE(tok.is_punct('('));
  EXPECT_EQ(tok.line, 2u);
  EXPECT_EQ(tok.column, 3u);
  tok = lexer.take();
  EXPECT_TRUE(tok.is_punct('*'));
  EXPECT_EQ(lexer.peek().kind, VTokenKind::kEof);
}

TEST(VerilogLexer, PragmaCommentsSurfaceOrdinaryCommentsDoNot) {
  VerilogLexer lexer("wire // plain comment\n//  ffr:bus b r0 r1\n;", "lex.v");
  EXPECT_TRUE(lexer.take().is_ident("wire"));
  const VToken pragma = lexer.take();
  ASSERT_EQ(pragma.kind, VTokenKind::kPragma);
  EXPECT_EQ(pragma.text, "bus b r0 r1");
  EXPECT_EQ(pragma.line, 2u);
  EXPECT_TRUE(lexer.take().is_punct(';'));
}

TEST(VerilogLexer, SplitPragmaFieldsStripsEscapes) {
  const auto fields = split_pragma_fields("bus \\state[1:0]   \\r[0]  r1");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "bus");
  EXPECT_EQ(fields[1], "state[1:0]");
  EXPECT_EQ(fields[2], "r[0]");
  EXPECT_EQ(fields[3], "r1");
}

// ---------------------------------------------------------------------------
// Vectored declarations: scalar expansion, bit selects, writer equivalence
// ---------------------------------------------------------------------------

TEST(VerilogVectors, VectoredDeclarationsExpandToScalars) {
  const std::string source =
      "module vec (clk, d, q, y);\n"
      "  input clk;\n"
      "  input [3:0] d;\n"
      "  output [1:0] q;\n"
      "  output y;\n"
      "  wire [2:0] n;\n"
      "  assign q[0] = n[0];\n"
      "  assign q[1] = n[1];\n"
      "  assign y = n[2];\n"
      "  AND2_X1 u0 (.A1(d[3]), .A2(d[2]), .ZN(n[0]));\n"
      "  AND2_X1 u1 (.A1(d[1]), .A2(d[0]), .ZN(n[1]));\n"
      "  DFF_X1 r0 (.D(n[0]), .CK(clk), .Q(n[2]));\n"
      "endmodule\n";
  const Netlist nl = read_verilog(source, "vec.v");
  // [3:0] expands in declared range order: left bound first.
  ASSERT_EQ(nl.primary_inputs().size(), 4u);
  EXPECT_EQ(nl.net(nl.primary_inputs()[0]).name, "d[3]");
  EXPECT_EQ(nl.net(nl.primary_inputs()[3]).name, "d[0]");
  EXPECT_EQ(nl.num_flip_flops(), 1u);
  // Scalar-by-construction equivalent: the expansion is pure sugar.
  const std::string scalar_source =
      "module vec (clk, \\d[3] , \\d[2] , \\d[1] , \\d[0] , \\q[0] , \\q[1] "
      ", y);\n"
      "  input clk;\n"
      "  input \\d[3] , \\d[2] , \\d[1] , \\d[0] ;\n"
      "  output \\q[0] , \\q[1] ;\n"
      "  output y;\n"
      "  wire \\n[2] , \\n[1] , \\n[0] ;\n"
      "  assign \\q[0] = \\n[0] ;\n"
      "  assign \\q[1] = \\n[1] ;\n"
      "  assign y = \\n[2] ;\n"
      "  AND2_X1 u0 (.A1(\\d[3] ), .A2(\\d[2] ), .ZN(\\n[0] ));\n"
      "  AND2_X1 u1 (.A1(\\d[1] ), .A2(\\d[0] ), .ZN(\\n[1] ));\n"
      "  DFF_X1 r0 (.D(\\n[0] ), .CK(clk), .Q(\\n[2] ));\n"
      "endmodule\n";
  // The header port list names the vectors while the scalar variant cannot,
  // so compare everything downstream of the header: emitted bodies match
  // cell-for-cell and net-for-net.
  const Netlist scalar = read_verilog(scalar_source, "vec_scalar.v");
  ASSERT_EQ(nl.primary_inputs().size(), scalar.primary_inputs().size());
  for (std::size_t i = 0; i < nl.primary_inputs().size(); ++i) {
    EXPECT_EQ(nl.net(nl.primary_inputs()[i]).name,
              scalar.net(scalar.primary_inputs()[i]).name);
  }
  ASSERT_EQ(nl.num_cells(), scalar.num_cells());
  // read -> write -> read stability for the vectored form.
  const std::string canonical = to_verilog(nl);
  const Netlist again = read_verilog(canonical, "vec2.v");
  std::string why;
  EXPECT_TRUE(structurally_equal(nl, again, &why)) << why;
  EXPECT_EQ(to_verilog(again), canonical);
}

TEST(VerilogVectors, AscendingRangeExpandsLeftBoundFirst) {
  const std::string source =
      "module asc (clk, d, y);\n"
      "  input clk;\n"
      "  input [0:2] d;\n"
      "  output y;\n"
      "  wire n0, n1;\n"
      "  assign y = n1;\n"
      "  AND2_X1 u0 (.A1(d[0]), .A2(d[1]), .ZN(n0));\n"
      "  AND2_X1 u1 (.A1(n0), .A2(d[2]), .ZN(n1));\n"
      "endmodule\n";
  const Netlist nl = read_verilog(source, "asc.v");
  ASSERT_EQ(nl.primary_inputs().size(), 3u);
  EXPECT_EQ(nl.net(nl.primary_inputs()[0]).name, "d[0]");
  EXPECT_EQ(nl.net(nl.primary_inputs()[2]).name, "d[2]");
}

TEST(VerilogVectors, NumberTokensCarryValuesAndPositions) {
  VerilogLexer lexer("[ 15 : 0 ]", "lex.v");
  EXPECT_TRUE(lexer.take().is_punct('['));
  VToken tok = lexer.take();
  ASSERT_EQ(tok.kind, VTokenKind::kNumber);
  EXPECT_EQ(tok.number, 15u);
  EXPECT_EQ(tok.line, 1u);
  EXPECT_EQ(tok.column, 3u);
  EXPECT_TRUE(lexer.take().is_punct(':'));
  tok = lexer.take();
  ASSERT_EQ(tok.kind, VTokenKind::kNumber);
  EXPECT_EQ(tok.number, 0u);
  EXPECT_TRUE(lexer.take().is_punct(']'));
  EXPECT_EQ(lexer.peek().kind, VTokenKind::kEof);
}

TEST(VerilogVectors, MalformedRangesAndSelectsRejected) {
  const std::string preamble =
      "module m (clk, a, y);\n  input clk;\n  input a;\n  output y;\n";
  expect_rejected(preamble + "  wire [7 0] v;\n",
                  "expected ':' between the vector bounds");
  expect_rejected(preamble + "  wire [7:] v;\n",
                  "expected number as the vector lsb");
  expect_rejected(preamble + "  wire [9999999:0] v;\n",
                  "wider than 4096 bits");
  expect_rejected(preamble + "  input [1:0] clk;\n",
                  "'clk' is the implicit clock and cannot be a vector");
  expect_rejected(preamble + "  wire [1:0] v;\n  wire [3:0] v;\n",
                  "vector 'v' declared twice");
  expect_rejected(preamble +
                      "  wire [1:0] v;\n  wire n0;\n  assign y = n0;\n"
                      "  AND2_X1 u0 (.A1(v[2]), .A2(a), .ZN(n0));\nendmodule\n",
                  "bit 2 is outside vector 'v[1:0]'");
  expect_rejected(preamble +
                      "  wire n0;\n  assign y = n0;\n"
                      "  INV_X1 u0 (.A(a[0]), .ZN(n0));\nendmodule\n",
                  "'a' is not a declared vector");
}

// ---------------------------------------------------------------------------
// Malformed-input suite: every diagnostic path, positioned, no crashes
// ---------------------------------------------------------------------------

namespace {
const char* kPreamble =
    "module m (clk, a, y);\n"
    "  input clk;\n"
    "  input a;\n"
    "  output y;\n";
}  // namespace

TEST(VerilogErrors, TruncatedFile) {
  expect_rejected("module m (clk, a", "got end of file");
  expect_rejected(std::string(kPreamble) + "  wire n1;\n  INV_X1 u1 (.A(a),",
                  "got end of file");
  expect_rejected(std::string(kPreamble) + "  wire n1;\n",
                  "missing 'endmodule'");
  expect_rejected("", "expected 'module'");
}

TEST(VerilogErrors, LexicalErrors) {
  expect_rejected("module m (clk); /* never closed", "unterminated block comment");
  expect_rejected(std::string(kPreamble) + "  wire 2bad;\n",
                  "only 1'b0 and 1'b1");
  expect_rejected(std::string(kPreamble) + "  INV_X1 u (.A(1'hF), .ZN(y));\n",
                  "only 1'b0 and 1'b1");
  expect_rejected("module m #(parameter W = 4);", "unexpected character '#'");
  expect_rejected("module \\\n", "empty escaped identifier");
}

TEST(VerilogErrors, UnknownCellType) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  NAND9_X7 u1 (.A1(a), .ZN(n1));\nendmodule\n",
                  "unknown cell type 'NAND9_X7'");
}

TEST(VerilogErrors, UndeclaredNet) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(ghost), .ZN(n1));\nendmodule\n",
                  "undeclared net 'ghost'");
  expect_rejected(std::string(kPreamble) + "  assign y = ghost;\nendmodule\n",
                  "undeclared net 'ghost'");
}

TEST(VerilogErrors, UndrivenWire) {
  const std::string message = rejection_of(std::string(kPreamble) +
                                           "  wire n1, dangling;\n"
                                           "  assign y = n1;\n"
                                           "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                                           "endmodule\n");
  EXPECT_NE(message.find("wire 'dangling' is never driven"), std::string::npos)
      << message;
  // The position points at the declaration on line 5.
  EXPECT_TRUE(message.starts_with("bad.v:5:")) << message;
}

TEST(VerilogErrors, MultiplyDrivenNet) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "  BUF_X1 u2 (.A(a), .ZN(n1));\nendmodule\n",
                  "net 'n1' is driven more than once");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(n1), .ZN(a));\nendmodule\n",
                  "primary input 'a' cannot be driven");
}

TEST(VerilogErrors, DuplicateNames) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "  wire n2;\n  INV_X1 u1 (.A(a), .ZN(n2));\nendmodule\n",
                  "duplicate instance name 'u1'");
  expect_rejected(std::string(kPreamble) + "  wire n1, n1;\n",
                  "net 'n1' declared twice");
  expect_rejected("module m (clk, a, a);\n", "listed twice in the header");
}

TEST(VerilogErrors, ArityAndPinMismatches) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  NAND2_X1 u1 (.A1(a), .ZN(n1));\nendmodule\n",
                  "pin 'A2' of NAND2_X1 instance 'u1' is unconnected");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .B(a), .ZN(n1));\nendmodule\n",
                  "cell INV_X1 has no pin 'B'");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .A(a), .ZN(n1));\nendmodule\n",
                  "pin 'A' connected twice");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a));\nendmodule\n",
                  "output pin 'ZN' of instance 'u1' is unconnected");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(1'b0));\nendmodule\n",
                  "expected identifier as the output connection");
}

TEST(VerilogErrors, ClockDiscipline) {
  expect_rejected(std::string(kPreamble) +
                      "  wire q;\n  assign y = q;\n"
                      "  DFF_X1 r0 (.D(a), .Q(q));\nendmodule\n",
                  "has no .CK(clk) connection");
  expect_rejected(std::string(kPreamble) +
                      "  wire q;\n  assign y = q;\n"
                      "  DFF_X1 r0 (.D(a), .CK(a), .Q(q));\nendmodule\n",
                  "pin 'CK' must connect to the clock port 'clk'");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(clk), .ZN(n1));\nendmodule\n",
                  "'clk' is the implicit clock and cannot drive a data pin");
  expect_rejected(std::string(kPreamble) + "  wire clk;\n",
                  "'clk' is the implicit clock and cannot be a net");
  expect_rejected("module m (a, y);\n  input a;\n  output y;\n"
                  "  wire q;\n  assign y = q;\n"
                  "  DFF_X1 r0 (.D(a), .CK(clk), .Q(q));\nendmodule\n",
                  "clock 'clk' is not declared as an input");
}

TEST(VerilogErrors, OutputPortDiscipline) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  INV_X1 u1 (.A(a), .ZN(n1));\nendmodule\n",
                  "output 'y' is never assigned");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\nendmodule\n",
                  "output 'y' assigned twice");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n  assign n1 = a;\n"
                      "endmodule\n",
                  "not a declared output port");
}

TEST(VerilogErrors, PortHeaderMismatches) {
  expect_rejected("module m (clk, a, y, phantom);\n"
                  "  input clk;\n  input a;\n  output y;\n"
                  "  wire n1;\n  assign y = n1;\n"
                  "  INV_X1 u1 (.A(a), .ZN(n1));\nendmodule\n",
                  "header port 'phantom' is never declared");
  expect_rejected("module m (clk, y);\n"
                  "  input clk;\n  input a;\n  output y;\n"
                  "  wire n1;\n  assign y = n1;\n"
                  "  INV_X1 u1 (.A(a), .ZN(n1));\nendmodule\n",
                  "port 'a' is declared but missing from the module header");
}

TEST(VerilogErrors, AttributeAndPragmaMisuse) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  (* init = 1'b1 *) INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "endmodule\n",
                  "(* init *) attribute on non-sequential");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  (* keep = 1'b1 *) INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "endmodule\n",
                  "unknown attribute 'keep'");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "  // ffr:frobnicate\nendmodule\n",
                  "unknown pragma");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "  // ffr:bus b ghost\nendmodule\n",
                  "references unknown flip-flop 'ghost'");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "  // ffr:bus b u1\nendmodule\n",
                  "references non-flip-flop 'u1'");
}

TEST(VerilogErrors, CombinationalCycleAndTrailingGarbage) {
  expect_rejected(std::string(kPreamble) +
                      "  wire n1, n2;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(n2), .ZN(n1));\n"
                      "  INV_X1 u2 (.A(n1), .ZN(n2));\nendmodule\n",
                  "module failed elaboration");
  expect_rejected(std::string(kPreamble) +
                      "  wire n1;\n  assign y = n1;\n"
                      "  INV_X1 u1 (.A(a), .ZN(n1));\n"
                      "endmodule\nmodule second (clk);\n",
                  "expected end of file after 'endmodule'");
}

// ---------------------------------------------------------------------------
// Checked-in corpus fixtures
// ---------------------------------------------------------------------------

std::filesystem::path corpus_dir(const char* kind) {
  return std::filesystem::path(FFR_TEST_CORPUS_DIR) / kind;
}

TEST(VerilogCorpus, ValidFixturesRoundTrip) {
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir("valid"))) {
    if (entry.path().extension() != ".v") continue;
    SCOPED_TRACE(entry.path().filename().string());
    ++seen;
    const Netlist nl = read_verilog_file(entry.path());
    EXPECT_TRUE(nl.finalized());
    EXPECT_GT(nl.num_cells(), 0u);
    // read -> write -> read structural stability, write byte-stability.
    const std::string canonical = to_verilog(nl);
    const Netlist again = read_verilog(canonical, "roundtrip.v");
    std::string why;
    EXPECT_TRUE(structurally_equal(nl, again, &why)) << why;
    EXPECT_EQ(to_verilog(again), canonical);
  }
  EXPECT_GE(seen, 2u) << "corpus/valid is missing fixtures";
}

TEST(VerilogCorpus, InvalidFixturesAllRejectedWithPositions) {
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir("invalid"))) {
    if (entry.path().extension() != ".v") continue;
    SCOPED_TRACE(entry.path().filename().string());
    ++seen;
    try {
      (void)read_verilog_file(entry.path());
      ADD_FAILURE() << "fixture was accepted";
    } catch (const std::runtime_error& e) {
      const std::string message = e.what();
      // Positioned diagnostic: "<path>:<line>:<col>: error: ...".
      EXPECT_NE(message.find(entry.path().filename().string() + ":"),
                std::string::npos)
          << message;
      EXPECT_NE(message.find(": error: "), std::string::npos) << message;
    }
  }
  EXPECT_GE(seen, 7u) << "corpus/invalid is missing fixtures";
}

TEST(VerilogCorpus, MissingFileIsAnError) {
  EXPECT_THROW((void)read_verilog_file(corpus_dir("valid") / "no_such_file.v"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Imported designs are first-class campaign citizens
// ---------------------------------------------------------------------------

TEST(VerilogImportDifferential, MacGoldenFramesBitIdentical) {
  const circuits::MacCore mac = circuits::build_mac_core();
  const circuits::MacTestbench bench = circuits::build_mac_testbench(mac);
  const Netlist imported = read_verilog(to_verilog(mac.netlist), "mac_core.v");
  const sim::Testbench tb =
      sim::retarget_testbench(bench.tb, mac.netlist, imported);

  const sim::GoldenResult original = sim::run_golden(mac.netlist, bench.tb);
  const sim::GoldenResult reimported = sim::run_golden(imported, tb);
  ASSERT_EQ(original.frames.size(), reimported.frames.size());
  for (std::size_t i = 0; i < original.frames.size(); ++i) {
    EXPECT_EQ(original.frames[i].bytes, reimported.frames[i].bytes) << i;
    EXPECT_EQ(original.frames[i].err, reimported.frames[i].err) << i;
  }
  EXPECT_EQ(original.activity.cycles_at_1, reimported.activity.cycles_at_1);
  EXPECT_EQ(original.activity.state_changes, reimported.activity.state_changes);
}

TEST(VerilogImportDifferential, PipelineCampaignBitIdentical) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench = circuits::build_pipeline_testbench(core);
  const Netlist imported = read_verilog(to_verilog(core.netlist), "pipeline.v");
  const sim::Testbench tb =
      sim::retarget_testbench(bench.tb, core.netlist, imported);

  fault::CampaignConfig config;
  config.injections_per_ff = 12;
  config.num_threads = 2;

  const sim::GoldenResult golden_orig = sim::run_golden(core.netlist, bench.tb);
  const sim::GoldenResult golden_imp = sim::run_golden(imported, tb);
  const fault::CampaignResult flat_orig =
      fault::run_campaign(core.netlist, bench.tb, golden_orig, config);
  const fault::CampaignResult flat_imp =
      fault::run_campaign(imported, tb, golden_imp, config);
  expect_campaigns_bit_identical(flat_orig, flat_imp);

  // The batched engine on the imported design matches the flat reference on
  // the original — the strongest cross-representation statement.
  fault::CampaignEngine engine(imported, tb);
  expect_campaigns_bit_identical(flat_orig, engine.run(config));
}

// ---------------------------------------------------------------------------
// Testbench retargeting contract
// ---------------------------------------------------------------------------

TEST(RetargetTestbench, RejectsMismatchedInterfaces) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench = circuits::build_pipeline_testbench(core);

  NetlistBuilder bld("other");
  const NetId a = bld.input("a");
  bld.output(bld.inv(a), "y");
  const Netlist other = bld.build();
  EXPECT_THROW((void)sim::retarget_testbench(bench.tb, core.netlist, other),
               std::invalid_argument);

  // Same PI count but different names must also be rejected.
  NetlistBuilder bld2("renamed");
  std::vector<NetId> pis;
  for (const NetId pi : core.netlist.primary_inputs()) {
    pis.push_back(bld2.input("x_" + core.netlist.net(pi).name));
  }
  bld2.output(bld2.inv(pis[0]), "y");
  const Netlist renamed = bld2.build();
  EXPECT_THROW((void)sim::retarget_testbench(bench.tb, core.netlist, renamed),
               std::invalid_argument);
}

TEST(RetargetTestbench, IdentityRetargetKeepsMonitorNets) {
  const circuits::PipelineCore core = circuits::build_pipeline_core();
  const circuits::PipelineTestbench bench = circuits::build_pipeline_testbench(core);
  const sim::Testbench same =
      sim::retarget_testbench(bench.tb, core.netlist, core.netlist);
  EXPECT_EQ(same.monitor.valid, bench.tb.monitor.valid);
  EXPECT_EQ(same.monitor.data, bench.tb.monitor.data);
  EXPECT_EQ(same.inject_begin, bench.tb.inject_begin);
  EXPECT_EQ(same.inject_end, bench.tb.inject_end);
}

}  // namespace
}  // namespace ffr::netlist
