// Tests for the markdown report generator.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuits/mac_core.hpp"
#include "circuits/mac_testbench.hpp"
#include "core/report.hpp"

namespace ffr::core {
namespace {

struct ReportFixture : public ::testing::Test {
  void SetUp() override {
    circuits::MacConfig mc;
    mc.tx_depth_log2 = 3;
    mc.rx_depth_log2 = 3;
    mac = circuits::build_mac_core(mc);
    circuits::MacTestbenchConfig tbc;
    tbc.num_frames = 2;
    tbc.min_payload = 8;
    tbc.max_payload = 12;
    bench = circuits::build_mac_testbench(mac, tbc);
    FlowConfig config;
    config.training_size = 0.25;
    config.injections_per_ff = 8;
    flow = run_estimation_flow(mac.netlist, bench.tb, config);
  }
  circuits::MacCore mac;
  circuits::MacTestbench bench;
  FlowResult flow;
};

TEST_F(ReportFixture, ContainsAllSections) {
  const std::string report = render_report(mac.netlist, flow);
  EXPECT_NE(report.find("# Functional De-Rating report: mac_core"),
            std::string::npos);
  EXPECT_NE(report.find("## FDR distribution"), std::string::npos);
  EXPECT_NE(report.find("## Most vulnerable instances"), std::string::npos);
  EXPECT_NE(report.find("## Per-block mean FDR"), std::string::npos);
  EXPECT_NE(report.find("injections spent"), std::string::npos);
}

TEST_F(ReportFixture, TopKRespected) {
  ReportOptions options;
  options.top_k = 3;
  const std::string report = render_report(mac.netlist, flow, options);
  EXPECT_NE(report.find("| 3 | `"), std::string::npos);
  EXPECT_EQ(report.find("| 4 | `"), std::string::npos);
}

TEST_F(ReportFixture, MentionsKnownBlocks) {
  const std::string report = render_report(mac.netlist, flow);
  EXPECT_NE(report.find("`tx_fifo_mem`"), std::string::npos);
  EXPECT_NE(report.find("`bist_lfsr`"), std::string::npos);
}

TEST_F(ReportFixture, WritesFile) {
  const auto path = std::filesystem::temp_directory_path() / "ffr_report.md";
  write_report(path, mac.netlist, flow);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), render_report(mac.netlist, flow));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ffr::core
